"""Crash recovery walkthrough: snapshot + WAL survive a process crash.

SPFresh's recovery story (paper §4.4): periodic snapshots of the in-memory
structures (centroid index, version map, block mapping) plus a write-ahead
log of updates between snapshots. The block store's copy-on-write
allocation keeps every snapshot-referenced block intact until the next
checkpoint, so recovery = load snapshot + replay WAL.

Run:  python examples/crash_recovery.py
"""

import numpy as np

from repro import SPFreshConfig, SPFreshIndex
from repro.storage.snapshot import SnapshotManager
from repro.storage.wal import WriteAheadLog

RNG = np.random.default_rng(7)
DIM = 32


def main() -> None:
    vectors = RNG.normal(size=(4000, DIM)).astype(np.float32)
    wal = WriteAheadLog()  # in-memory for the demo; pass a path for disk
    snapshots = SnapshotManager()
    index = SPFreshIndex.build(
        vectors, config=SPFreshConfig(dim=DIM), wal=wal, snapshots=snapshots
    )

    # Checkpoint: everything up to here is durable.
    generation = index.checkpoint()
    print(f"checkpoint generation {generation} taken "
          f"({index.live_vector_count} vectors)")

    # Post-checkpoint updates land in the WAL only.
    post_crash_vectors = {}
    for i in range(500):
        vid = 4000 + i
        vec = RNG.normal(size=DIM).astype(np.float32)
        index.insert(vid, vec)
        post_crash_vectors[vid] = vec
    for vid in range(200):
        index.delete(vid)
    print(f"applied 700 updates after the checkpoint "
          f"(WAL holds {wal.record_count} records)")

    # --- CRASH: all in-memory state is gone; only the device + WAL + ---
    # --- snapshot survive.                                            ---
    device = index.ssd
    config = index.config
    del index

    recovered = SPFreshIndex.recover(device, config, snapshots, wal=wal)
    print(f"recovered: {recovered.live_vector_count} live vectors, "
          f"{recovered.num_postings} postings")

    # Every post-checkpoint insert is searchable again.
    probe_id, probe_vec = next(iter(post_crash_vectors.items()))
    result = recovered.search(probe_vec, 1, nprobe=recovered.num_postings)
    assert result.ids[0] == probe_id
    # Every post-checkpoint delete stayed deleted.
    assert recovered.version_map.is_deleted(0)
    print("post-checkpoint inserts recovered, deletes honored — "
          "recovery complete.")


if __name__ == "__main__":
    main()
