"""Distributed SPFresh: scatter-gather over hash-routed shards.

The paper closes by positioning single-node SPFresh as the foundation for
a distributed version. This example runs that extension: a 4-shard
deployment serving the same API, with updates routed to single shards and
queries fanned out and merged.

Run:  python examples/distributed_shards.py
"""

import numpy as np

from repro import SPFreshConfig
from repro.datasets import exact_knn, make_spacev_like
from repro.distributed import ShardedSPFresh
from repro.metrics import recall_at_k

DIM = 32


def main() -> None:
    dataset = make_spacev_like(6000, 600, dim=DIM, seed=11)
    # The facade owns a thread pool; the context manager shuts it (and
    # every shard's background workers) down on exit.
    with ShardedSPFresh.build(
        dataset.base, num_shards=4, config=SPFreshConfig(dim=DIM)
    ) as cluster:
        print(f"4-shard cluster: shard sizes {cluster.shard_sizes()}, "
              f"{cluster.num_postings} postings total")

        # Scatter-gather search quality matches a single node; the
        # batched facade answers the whole query set in one pass per
        # shard (one ParallelGET each).
        queries = dataset.base[:40] + 0.01
        truth = exact_knn(dataset.base, np.arange(6000), queries, 10)
        results = cluster.search_many(queries, 10, nprobe=8)
        ids = [r.ids for r in results]
        latencies = [r.latency_us for r in results]
        print(f"recall10@10 = {recall_at_k(ids, truth, 10):.3f}, "
              f"mean simulated latency {np.mean(latencies):.0f} us "
              f"(max over shards + merge)")

        # Updates are single-shard operations.
        for i, vec in enumerate(dataset.pool):
            cluster.insert(100_000 + i, vec)
        for vid in range(300):
            cluster.delete(vid)
        cluster.drain()
        print(f"after 900 updates: shard sizes {cluster.shard_sizes()} "
              f"(hash routing keeps them balanced)")

        probe = dataset.pool[0]
        result = cluster.search(probe, 1)
        assert result.ids[0] == 100_000
        print("freshly inserted vector is the top hit — done.")


if __name__ == "__main__":
    main()
