"""Streaming-update scenario: a recommendation catalog that shifts daily.

This is the workload the paper's introduction motivates: a service (think
product or video recommendations) whose embedding catalog churns by ~1%
every day, with *new* items drawn from a shifted distribution (trends
move). The script runs the churn for a couple of simulated weeks and
prints the stability metrics Figure 7 plots: recall, tail latency, and
LIRE's background activity.

Run:  python examples/streaming_updates.py
"""


from repro import SPFreshConfig, SPFreshIndex
from repro.bench.harness import SPFreshAdapter, run_update_simulation, summarize
from repro.bench.reporting import format_series
from repro.datasets import workload_a

DAYS = 14


def main() -> None:
    workload = workload_a(
        n_base=6000, days=DAYS, daily_rate=0.02, dim=32, num_queries=60
    )
    index = SPFreshIndex.build(
        workload.base_vectors,
        ids=workload.base_ids,
        config=SPFreshConfig(dim=32),
    )
    print(f"serving a {index.live_vector_count}-item catalog "
          f"({index.num_postings} postings); running {DAYS} days of churn...\n")

    series = run_update_simulation(
        SPFreshAdapter(index), workload, k=10, progress=True
    )

    print()
    print(format_series(series, every=2, title="daily stability"))
    stats = summarize(series)
    print(f"\nmean recall {stats['mean_recall']:.3f}, "
          f"mean P99.9 {stats['mean_p999_ms']:.2f} ms, "
          f"peak DRAM {stats['peak_memory_mb']:.2f} MB")

    snap = index.stats.snapshot()
    print(f"LIRE work over {DAYS} days: {snap.splits} splits, "
          f"{snap.merges} merges, {snap.reassign_executed} reassigns — "
          f"no global rebuild ever ran.")


if __name__ == "__main__":
    main()
