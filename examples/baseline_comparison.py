"""Head-to-head: SPFresh vs SPANN+ vs DiskANN on a shifting workload.

A miniature of the paper's Figure 7 experiment, runnable in about a
minute: all three systems serve the same week of 2%-daily churn on a
SPACEV-like (skewed, drifting) dataset; the summary table shows who wins
on recall, tail latency, insert cost, and memory.

Run:  python examples/baseline_comparison.py
"""

from repro import SPFreshConfig, SPFreshIndex
from repro.baselines import DiskANNConfig, FreshDiskANNIndex, build_spann_plus
from repro.bench.harness import (
    DiskANNAdapter,
    SPFreshAdapter,
    run_update_simulation,
    summarize,
)
from repro.bench.reporting import format_table
from repro.datasets import workload_a

DIM = 32


def main() -> None:
    workload = workload_a(
        n_base=4000, days=7, daily_rate=0.02, dim=DIM, num_queries=40
    )
    config = SPFreshConfig(dim=DIM)

    print("running SPFresh...")
    spfresh = SPFreshIndex.build(
        workload.base_vectors, ids=workload.base_ids, config=config
    )
    results = {
        "SPFresh": run_update_simulation(SPFreshAdapter(spfresh), workload, k=10)
    }

    print("running SPANN+ (append-only)...")
    spann_plus = build_spann_plus(
        workload.base_vectors, ids=workload.base_ids, config=config
    )
    results["SPANN+"] = run_update_simulation(
        SPFreshAdapter(spann_plus, name="SPANN+", gc_every=5), workload, k=10
    )

    print("running DiskANN (this one is slow — graph inserts + merges)...")
    diskann = FreshDiskANNIndex.build(
        workload.base_vectors,
        ids=workload.base_ids,
        config=DiskANNConfig(dim=DIM, merge_threshold=200),
    )
    results["DiskANN"] = run_update_simulation(
        DiskANNAdapter(diskann), workload, k=10
    )

    rows = []
    for name, series in results.items():
        stats = summarize(series)
        rows.append(
            (
                name,
                stats["mean_recall"],
                stats["mean_p999_ms"],
                stats["max_p999_ms"],
                stats["mean_insert_us"],
                stats["peak_memory_mb"],
            )
        )
    print()
    print(
        format_table(
            [
                "system",
                "mean recall",
                "mean p99.9 ms",
                "max p99.9 ms",
                "insert us",
                "peak mem MB",
            ],
            rows,
            title="one week of 2% daily churn (skewed + shifting)",
        )
    )


if __name__ == "__main__":
    main()
