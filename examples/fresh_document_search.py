"""Fresh document retrieval: real-time inserts must be recallable at once.

The paper's motivation (§2.3) includes retrieval-augmented AI assistants:
notes, emails, and chat snippets arrive continuously as embeddings and
must be retrievable *immediately* — the ChatGPT-retrieval-plugin setting.
This script simulates a personal document store: documents stream in
grouped by topic (new topics appear over time, shifting the distribution),
and after every batch we query for the newest documents to verify they are
recalled without any rebuild or warm-up.

Run:  python examples/fresh_document_search.py
"""

import numpy as np

from repro import SPFreshConfig, SPFreshIndex
from repro.datasets import make_spacev_like

RNG = np.random.default_rng(21)
DIM = 32
BATCHES = 8
BATCH_SIZE = 250


def main() -> None:
    # Seed corpus + a drifted stream: new "topics" gain probability mass
    # over time, exactly the distribution shift LIRE has to absorb.
    corpus = make_spacev_like(
        3000, BATCHES * BATCH_SIZE, dim=DIM, seed=21, drift=0.8
    )
    index = SPFreshIndex.build(corpus.base, config=SPFreshConfig(dim=DIM))
    print(f"indexed seed corpus of {index.live_vector_count} documents\n")

    next_id = 3000
    for batch in range(BATCHES):
        docs = corpus.pool[batch * BATCH_SIZE : (batch + 1) * BATCH_SIZE]
        ids = np.arange(next_id, next_id + len(docs))
        index.insert_batch(ids, docs)
        next_id += len(docs)

        # Freshness check: query with slight paraphrase noise for the 50
        # newest documents; they must already be recall-able.
        probe_ids = ids[-50:]
        probe_vecs = docs[-50:] + RNG.normal(
            scale=0.05, size=(50, DIM)
        ).astype(np.float32)
        hits = sum(
            int(pid) in set(map(int, index.search(vec, 10).ids))
            for pid, vec in zip(probe_ids, probe_vecs)
        )
        snap = index.stats.snapshot()
        print(f"batch {batch + 1}: {len(docs)} new docs -> "
              f"fresh-recall {hits}/50, "
              f"{index.num_postings} postings, "
              f"{snap.splits} splits so far")

    print(f"\nfinal store: {index.live_vector_count} documents, "
          f"{index.memory_bytes() / 1024:.0f} KiB DRAM, zero rebuilds")


if __name__ == "__main__":
    main()
