"""Inner-product (MIPS) search on SPFresh via the L2 reduction.

SPACEV-style deep NLP encoders rank documents by dot product, while
SPFresh's LIRE protocol assumes Euclidean geometry. The bridge is the
classic order-preserving MIPS→L2 augmentation: one extra coordinate
completes every data vector to a common norm, after which L2 nearest
neighbors of the augmented query are exactly the maximum-inner-product
documents. The wrapped index stays fully updatable — LIRE runs unchanged
in the augmented space.

Run:  python examples/inner_product_search.py
"""

import numpy as np

from repro import SPFreshConfig
from repro.util.mips import MipsSPFreshIndex

RNG = np.random.default_rng(5)
DIM = 32


def main() -> None:
    # "Documents": random directions with varying magnitudes (dot-product
    # relevance depends on both direction and norm).
    directions = RNG.normal(size=(4000, DIM)).astype(np.float32)
    directions /= np.linalg.norm(directions, axis=1, keepdims=True)
    magnitudes = RNG.uniform(0.5, 2.0, size=(4000, 1)).astype(np.float32)
    corpus = directions * magnitudes

    index = MipsSPFreshIndex.build(
        corpus, config=SPFreshConfig(dim=DIM + 1)
    )
    print(f"MIPS index over {index.live_vector_count} documents "
          f"(augmented dim {index.transform.augmented_dim}, "
          f"norm bound {index.transform.norm_bound:.2f})")

    query = RNG.normal(size=DIM).astype(np.float32)
    result = index.search(query, 5, nprobe=16)
    exact = corpus @ query
    exact_top = np.argsort(-exact)[:5]
    print(f"top-5 by index:  {result.ids.tolist()}")
    print(f"top-5 exact MIPS: {exact_top.tolist()}")
    print("scores (inner products):",
          [round(float(s), 3) for s in result.distances])
    assert int(result.ids[0]) == int(exact_top[0])

    # Updates work exactly as in the L2 index.
    strong_doc = (query / np.linalg.norm(query)) * (
        index.transform.norm_bound * 0.9
    )
    index.insert(10_000, strong_doc.astype(np.float32))
    result = index.search(query, 1, nprobe=16)
    assert int(result.ids[0]) == 10_000
    print("a freshly inserted high-dot-product document is now the top hit.")


if __name__ == "__main__":
    main()
