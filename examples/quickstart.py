"""Quickstart: build an SPFresh index, search it, and update it in place.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import SPFreshConfig, SPFreshIndex

RNG = np.random.default_rng(0)
DIM = 32


def main() -> None:
    # --- 1. Build a disk-based index over an initial vector set ----------
    base_vectors = RNG.normal(size=(5000, DIM)).astype(np.float32)
    config = SPFreshConfig(dim=DIM)
    index = SPFreshIndex.build(base_vectors, config=config)
    print(f"built index: {index.num_postings} postings, "
          f"{index.live_vector_count} vectors, "
          f"{index.memory_bytes() / 1024:.1f} KiB DRAM")

    # --- 2. Search -------------------------------------------------------
    query = base_vectors[42] + RNG.normal(scale=0.01, size=DIM).astype(np.float32)
    result = index.search(query, k=10)
    print(f"top-10 for a query near vector 42: {result.ids.tolist()}")
    print(f"simulated latency: {result.latency_us:.0f} us "
          f"({result.postings_probed} postings, "
          f"{result.entries_scanned} entries scanned)")

    # --- 3. Update in place: no global rebuild, ever ----------------------
    fresh = RNG.normal(loc=2.0, size=(800, DIM)).astype(np.float32)
    for i, vector in enumerate(fresh):
        index.insert(5000 + i, vector)
    for vector_id in range(300):
        index.delete(vector_id)
    index.drain()  # let the Local Rebuilder finish split/merge/reassign

    print(f"after 1100 updates: {index.num_postings} postings, "
          f"{index.live_vector_count} live vectors")
    snap = index.stats.snapshot()
    print(f"LIRE activity: {snap.splits} splits, {snap.merges} merges, "
          f"{snap.reassign_executed} reassigns "
          f"(of {snap.reassign_evaluated} evaluated)")

    # --- 4. New vectors are immediately searchable ------------------------
    result = index.search(fresh[0], k=5)
    assert result.ids[0] == 5000, "the newly inserted vector should be #1"
    print(f"nearest to the first inserted vector: {result.ids.tolist()}")

    # --- 5. Deleted vectors never come back -------------------------------
    result = index.search(base_vectors[0], k=10,
                          nprobe=index.num_postings)
    assert 0 not in set(int(x) for x in result.ids)
    print("deleted vector 0 is gone from results — done.")


if __name__ == "__main__":
    main()
