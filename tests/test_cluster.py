"""Tests for the cluster model: placement, routing, splits, replicas."""

import numpy as np
import pytest

from repro.api import QueryRequest
from repro.datasets import exact_knn, make_arrival_trace
from repro.distributed import (
    CentroidPlacement,
    ClusterSPFresh,
    ClusterUnavailableError,
    ProcessShardPool,
    ShardedSPFresh,
    fork_available,
)
from repro.serving import ServingFrontend
from repro.storage.faults import FaultInjectingSSD, FaultPlan
from repro.storage.ssd import SimulatedSSD, SSDProfile
from repro.util.errors import IndexError_
from tests.conftest import DIM


@pytest.fixture
def cluster_config(small_config):
    return small_config.with_overrides(
        cluster_nprobe=2, cluster_centroids_per_shard=4
    )


@pytest.fixture
def cluster(vectors, cluster_config):
    with ClusterSPFresh.build(
        vectors, num_shards=3, config=cluster_config
    ) as index:
        yield index


@pytest.fixture
def replicated(vectors, cluster_config):
    config = cluster_config.with_overrides(cluster_replication_factor=2)
    with ClusterSPFresh.build(vectors, num_shards=3, config=config) as index:
        yield index


class TestPlacement:
    def test_fit_is_deterministic(self, vectors):
        a = CentroidPlacement.fit(vectors, 3, centroids_per_shard=4, seed=9)
        b = CentroidPlacement.fit(vectors, 3, centroids_per_shard=4, seed=9)
        np.testing.assert_array_equal(a.centroids, b.centroids)
        np.testing.assert_array_equal(a.shard_of_centroid, b.shard_of_centroid)

    def test_every_shard_owns_a_region(self, vectors):
        placement = CentroidPlacement.fit(vectors, 3, centroids_per_shard=4)
        sizes = placement.group_sizes()
        assert len(sizes) == 3
        assert sizes.min() >= 1
        assert sizes.max() / sizes.min() <= 3.0

    def test_route_vectors_in_range(self, vectors):
        placement = CentroidPlacement.fit(vectors, 3, centroids_per_shard=4)
        homes = placement.route_vectors(vectors)
        assert homes.min() >= 0 and homes.max() < 3
        assert len(homes) == len(vectors)

    def test_shards_for_queries_respects_nprobe(self, vectors):
        placement = CentroidPlacement.fit(vectors, 3, centroids_per_shard=4)
        queries = vectors[:5]
        for shards in placement.shards_for_queries(queries, 2):
            assert len(shards) == 2
        for shards in placement.shards_for_queries(queries, None):
            assert sorted(shards) == [0, 1, 2]
        for shards in placement.shards_for_queries(queries, 99):
            assert sorted(shards) == [0, 1, 2]

    def test_split_group_moves_some_keeps_some(self, vectors):
        placement = CentroidPlacement.fit(vectors, 3, centroids_per_shard=4)
        rng = np.random.default_rng(0)
        before = placement.group_sizes()[0]
        moved = placement.split_group(0, 3, rng)
        assert 1 <= len(moved) < before
        assert placement.num_shards == 4
        assert (placement.shard_of_centroid[moved] == 3).all()
        assert placement.group_sizes()[0] >= 1

    def test_too_few_vectors_rejected(self, rng):
        few = rng.normal(size=(3, DIM)).astype(np.float32)
        with pytest.raises(ValueError):
            CentroidPlacement.fit(few, 64)


class TestBuild:
    def test_all_vectors_placed(self, cluster, vectors):
        assert cluster.num_shards == 3
        assert cluster.live_vector_count == len(vectors)
        assert sum(cluster.shard_sizes()) == len(vectors)
        assert len(cluster.directory) == len(vectors)

    def test_fresh_build_passes_audit(self, cluster):
        report = cluster.check_invariants()
        assert report.ok, report.failures
        assert report.conservation_violations == 0

    def test_placement_and_directory_agree(self, cluster, vectors):
        homes = cluster.placement.route_vectors(vectors)
        for vid, home in enumerate(homes):
            assert cluster.directory[vid] == home


class TestRoutedSearch:
    def test_broadcast_matches_exact(self, cluster, vectors):
        queries = vectors[:10] + 0.01
        gt = exact_knn(vectors, np.arange(len(vectors)), queries, 5)
        request = QueryRequest(vectors=queries, k=5, nprobe=10**6)
        response = cluster.query(request, broadcast=True)
        for i, result in enumerate(response.results):
            assert set(map(int, result.ids)) == set(map(int, gt[i]))

    def test_routed_recall_close_to_broadcast(self, cluster, vectors):
        queries = vectors[:40] + 0.01
        request = QueryRequest(vectors=queries, k=5, nprobe=10**6)
        routed = cluster.query(request)
        broadcast = cluster.query(request, broadcast=True)
        hits = total = 0
        for r, b in zip(routed.results, broadcast.results):
            hits += len(set(map(int, r.ids)) & set(map(int, b.ids)))
            total += len(b.ids)
        assert hits / total >= 0.9
        assert cluster.shards_probed_fraction() < 1.0

    def test_routed_probes_nprobe_shards(self, cluster, vectors):
        request = QueryRequest(vectors=vectors[:7], k=3)
        cluster.query(request)
        assert cluster.stats.queries == 7
        assert cluster.stats.shards_probed == 7 * 2  # cluster_nprobe=2

    def test_latency_model(self, cluster, vectors):
        request = QueryRequest(vectors=vectors[:3], k=5)
        for result in cluster.query(request).results:
            floor = (
                cluster.config.cluster.route_cost_us
                + ClusterSPFresh.MERGE_COST_US
            )
            assert result.latency_us > floor
            assert result.io_latency_us <= result.latency_us

    def test_parallel_mode_same_results(self, cluster, vectors):
        request = QueryRequest(vectors=vectors[:8] + 0.01, k=5)
        serial = cluster.query(request)
        parallel = cluster.query(request, parallel=True)
        for s, p in zip(serial.results, parallel.results):
            np.testing.assert_array_equal(s.ids, p.ids)
            np.testing.assert_array_equal(s.distances, p.distances)

    def test_rejects_untyped_query(self, cluster, vectors):
        with pytest.raises(TypeError):
            cluster.query(vectors[0])


class TestUpdates:
    def test_insert_routes_by_centroid(self, cluster, rng):
        vec = rng.normal(size=DIM).astype(np.float32)
        want = int(cluster.placement.route_vectors(vec[None])[0])
        before = cluster.shard_sizes()
        cluster.insert(90_000, vec)
        after = cluster.shard_sizes()
        assert cluster.directory[90_000] == want
        assert after[want] == before[want] + 1
        assert sum(after) == sum(before) + 1

    def test_inserted_vector_found(self, cluster, rng):
        vec = rng.normal(size=DIM).astype(np.float32)
        cluster.insert(91_000, vec)
        request = QueryRequest.single(vec, k=1, nprobe=10**6)
        result = cluster.query(request, broadcast=True).result
        assert int(result.ids[0]) == 91_000

    def test_delete_hides_and_missing_raises(self, cluster, vectors):
        cluster.delete(5)
        request = QueryRequest.single(vectors[5], k=10, nprobe=10**6)
        result = cluster.query(request, broadcast=True).result
        assert 5 not in set(map(int, result.ids))
        with pytest.raises(IndexError_):
            cluster.delete(5)

    def test_reinsert_rehomes_on_drift(self, cluster, vectors):
        homes = cluster.placement.route_vectors(vectors)
        a = int(np.nonzero(homes == homes[0])[0][0])
        b = int(np.nonzero(homes != homes[0])[0][0])
        cluster.insert(95_000, vectors[a])
        assert cluster.directory[95_000] == homes[a]
        cluster.insert(95_000, vectors[b])
        assert cluster.directory[95_000] == homes[b]
        assert cluster.stats.rerouted_updates == 1
        report = cluster.check_invariants()
        assert report.ok, report.failures
        assert report.duplicate_ids == []


class TestSplit:
    def test_hot_shard_splits_and_conserves(self, vectors, cluster_config):
        config = cluster_config.with_overrides(cluster_split_threshold=160)
        rng = np.random.default_rng(11)
        with ClusterSPFresh.build(
            vectors, num_shards=3, config=config
        ) as cluster:
            hot = (
                vectors[0][None]
                + rng.normal(scale=0.3, size=(80, DIM)).astype(np.float32)
            ).astype(np.float32)
            for i, vec in enumerate(hot):
                cluster.insert(10_000 + i, vec)
            assert max(cluster.shard_sizes()) > 160
            splits = cluster.maybe_split()
            assert splits >= 1
            assert cluster.num_shards == 3 + splits
            assert cluster.stats.migrated_vectors > 0
            assert cluster.placement.num_shards == cluster.num_shards
            # Conservation across the migration: nothing lost, nothing
            # duplicated, every id where its directory entry says.
            total = len(vectors) + len(hot)
            assert sum(cluster.shard_sizes()) == total
            assert len(cluster.directory) == total
            report = cluster.check_invariants()
            assert report.ok, report.failures
            assert report.conservation_violations == 0

    def test_post_split_broadcast_still_exact(self, vectors, cluster_config):
        config = cluster_config.with_overrides(cluster_split_threshold=160)
        rng = np.random.default_rng(12)
        with ClusterSPFresh.build(
            vectors, num_shards=3, config=config
        ) as cluster:
            hot = (
                vectors[0][None]
                + rng.normal(scale=0.3, size=(80, DIM)).astype(np.float32)
            ).astype(np.float32)
            for i, vec in enumerate(hot):
                cluster.insert(10_000 + i, vec)
            assert cluster.maybe_split() >= 1
            all_vectors = np.concatenate([vectors, hot])
            all_ids = np.concatenate(
                [np.arange(len(vectors)), 10_000 + np.arange(len(hot))]
            )
            queries = np.concatenate([vectors[:6], hot[:6]]) + 0.01
            gt = exact_knn(all_vectors, all_ids, queries, 5)
            request = QueryRequest(vectors=queries, k=5, nprobe=10**6)
            response = cluster.query(request, broadcast=True)
            for i, result in enumerate(response.results):
                assert set(map(int, result.ids)) == set(map(int, gt[i]))

    def test_no_threshold_means_no_splits(self, cluster):
        assert cluster.maybe_split() == 0
        assert cluster.num_shards == 3


class TestReplicas:
    def test_fanout_deterministic_under_fixed_seed(self, vectors, cluster_config):
        config = cluster_config.with_overrides(cluster_replication_factor=2)
        picks = []
        for _ in range(2):
            with ClusterSPFresh.build(
                vectors, num_shards=3, config=config
            ) as cluster:
                trail = []
                for q in vectors[:15]:
                    cluster.query(QueryRequest.single(q, k=3))
                    trail.append(dict(cluster.last_replica_read))
                picks.append(trail)
        assert picks[0] == picks[1]

    def test_reads_spread_over_replicas(self, replicated, vectors):
        seen: dict[int, set[int]] = {}
        for q in vectors[:30]:
            replicated.query(QueryRequest.single(q, k=3), broadcast=True)
            for shard, replica in replicated.last_replica_read.items():
                seen.setdefault(shard, set()).add(replica)
        assert any(len(replicas) == 2 for replicas in seen.values())

    def test_replicas_bit_identical(self, replicated):
        report = replicated.check_invariants()
        assert report.ok, report.failures
        assert report.diverged_replicas == []

    def test_read_skips_downed_replica(self, replicated, vectors):
        replicated.fail_replica(0, 0)
        for q in vectors[:10]:
            replicated.query(QueryRequest.single(q, k=3), broadcast=True)
            assert replicated.last_replica_read[0] == 1

    def test_all_replicas_down_is_unavailable(self, replicated, vectors):
        replicated.fail_replica(0, 0)
        replicated.fail_replica(0, 1)
        with pytest.raises(ClusterUnavailableError):
            replicated.query(
                QueryRequest.single(vectors[0], k=3), broadcast=True
            )

    def test_recover_replica_resyncs_writes(self, replicated, rng):
        replicated.fail_replica(0, 0)
        for i in range(20):
            replicated.insert(
                80_000 + i, rng.normal(size=DIM).astype(np.float32)
            )
        rows = replicated.recover_replica(0, 0)
        assert rows == replicated.groups[0].primary.live_vector_count
        assert not replicated.groups[0].down[0]
        assert replicated.stats.replica_resyncs == 1
        report = replicated.check_invariants()
        assert report.ok, report.failures
        assert report.diverged_replicas == []

    def test_audit_flags_diverged_replica(self, replicated, rng):
        # Bypass the cluster write path: one replica silently gains a row.
        replicated.groups[0].replicas[1].insert(
            70_000, rng.normal(size=DIM).astype(np.float32)
        )
        report = replicated.check_invariants()
        assert not report.ok
        assert (0, 1) in report.diverged_replicas
        assert report.conservation_violations > 0
        with pytest.raises(IndexError_):
            report.raise_if_failed()


class TestFaultInjection:
    def test_device_fault_fails_over_mid_read(self, vectors, cluster_config):
        config = cluster_config.with_overrides(cluster_replication_factor=2)
        plan = FaultPlan(seed=3, read_error_rate=1.0).disarm()

        def device_factory(shard_id, replica_id, shard_config):
            device = SimulatedSSD(
                shard_config.ssd_blocks,
                SSDProfile(block_size=shard_config.block_size),
            )
            if shard_id == 0 and replica_id == 0:
                return FaultInjectingSSD(device, plan)
            return device

        with ClusterSPFresh.build(
            vectors, num_shards=3, config=config, device_factory=device_factory
        ) as cluster:
            plan.arm()  # every read on shard 0 / replica 0 now errors
            for q in vectors[:20]:
                result = cluster.query(
                    QueryRequest.single(q, k=3), broadcast=True
                ).result
                assert len(result.ids) > 0  # failover kept answers flowing
                if cluster.groups[0].down[0]:
                    break
            assert cluster.groups[0].down[0]
            assert cluster.stats.replica_failovers >= 1
            assert cluster.last_replica_read[0] == 1


class TestEmptyBatch:
    """The empty batch is well-defined on every query() facade."""

    def _empty(self):
        return QueryRequest(vectors=np.empty((0, DIM), dtype=np.float32), k=5)

    def test_single_node(self, built_index):
        response = built_index.query(self._empty())
        assert response.results == ()

    def test_sharded(self, vectors, small_config):
        with ShardedSPFresh.build(
            vectors, num_shards=3, config=small_config
        ) as sharded:
            assert sharded.query(self._empty()).results == ()

    def test_cluster(self, cluster):
        response = cluster.query(self._empty())
        assert response.results == ()
        assert cluster.stats.queries == 0  # nothing probed, nothing counted


@pytest.mark.skipif(not fork_available(), reason="needs fork start method")
class TestProcessPool:
    def test_pooled_answers_match_serial_replay(self, cluster, vectors):
        queries = (vectors[:12] + 0.01).astype(np.float32)
        plan = cluster.placement.shards_for_queries(
            queries, cluster.config.cluster.nprobe
        )
        batches: dict[int, list[int]] = {}
        for qi, shards in enumerate(plan):
            for shard in shards:
                batches.setdefault(int(shard), []).append(qi)
        # Fork BEFORE the parent runs anything: workers and the parent
        # then replay identical sub-batches from identical (build) state.
        with ProcessShardPool(
            [g.primary for g in cluster.groups]
        ) as pool:
            jobs = {
                shard: (queries[rows], 5, None)
                for shard, rows in batches.items()
            }
            pooled = pool.query_shards(jobs)
            for shard, rows in batches.items():
                sub = QueryRequest(vectors=queries[rows], k=5)
                serial = list(cluster.groups[shard].primary.query(sub))
                assert len(pooled[shard]) == len(serial)
                for (ids, dists, latency), want in zip(pooled[shard], serial):
                    np.testing.assert_array_equal(ids, want.ids)
                    np.testing.assert_array_equal(dists, want.distances)
                    assert latency == want.latency_us

    def test_closed_pool_rejects_jobs(self, cluster):
        pool = ProcessShardPool([g.primary for g in cluster.groups])
        pool.close()
        pool.close()  # idempotent
        with pytest.raises(RuntimeError):
            pool.query_shards({0: (np.zeros((1, DIM), np.float32), 1, None)})


class TestServingPassthrough:
    def test_frontend_drives_cluster_engine(self, cluster, vectors, rng):
        pool = (vectors[:32] + rng.normal(scale=0.05, size=(32, DIM))).astype(
            np.float32
        )
        trace = make_arrival_trace(pool, 80, 8000.0, seed=2, name="cluster")
        fe = ServingFrontend(cluster, k=5, queue_capacity=64, keep_results=True)
        report = fe.run(trace)
        answered = report.answered
        assert len(answered) + len(report.shed) == len(trace)
        assert len(answered) > 0
        for outcome in answered:
            assert outcome.result is not None
            assert 0 < len(outcome.result.ids) <= 5
