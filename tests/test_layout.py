"""Tests for the posting/block codec."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.layout import PostingCodec, PostingData
from repro.util.errors import StorageError

DIM = 16


def random_posting(rng, n):
    return PostingData.from_rows(
        ids=rng.integers(0, 1 << 40, size=n),
        versions=rng.integers(0, 128, size=n).astype(np.uint8),
        vectors=rng.normal(size=(n, DIM)).astype(np.float32),
    )


class TestPostingData:
    def test_length_consistency_enforced(self):
        with pytest.raises(ValueError):
            PostingData(
                ids=np.zeros(2, dtype=np.int64),
                versions=np.zeros(1, dtype=np.uint8),
                vectors=np.zeros((2, DIM), dtype=np.float32),
            )

    def test_from_rows_single_vector(self):
        data = PostingData.from_rows([1], [0], np.ones(DIM))
        assert len(data) == 1
        assert data.vectors.shape == (1, DIM)

    def test_empty(self):
        data = PostingData.empty(DIM)
        assert len(data) == 0
        assert data.vectors.shape == (0, DIM)

    def test_select_and_concat(self, rng):
        data = random_posting(rng, 10)
        mask = np.zeros(10, dtype=bool)
        mask[[2, 5]] = True
        sub = data.select(mask)
        assert list(sub.ids) == [data.ids[2], data.ids[5]]
        merged = sub.concat(data.select(~mask))
        assert len(merged) == 10

    def test_owned_is_noop_for_owning_columns(self, rng):
        data = PostingData(
            ids=np.arange(6, dtype=np.int64),
            versions=np.zeros(6, dtype=np.uint8),
            vectors=rng.normal(size=(6, DIM)).astype(np.float32),
        )
        assert data.owns_memory()
        assert data.owned() is data

    def test_owned_copies_views(self, rng):
        data = PostingData(
            ids=np.arange(6, dtype=np.int64),
            versions=np.zeros(6, dtype=np.uint8),
            vectors=rng.normal(size=(6, DIM)).astype(np.float32),
        )
        view = PostingData(
            ids=data.ids[:4], versions=data.versions[:4], vectors=data.vectors[:4]
        )
        assert not view.owns_memory()
        owned = view.owned()
        assert owned.owns_memory()
        data.ids[:] = -1
        assert not np.array_equal(owned.ids, data.ids[:4])


class TestCodec:
    def test_entry_packing_geometry(self):
        codec = PostingCodec(dim=DIM, block_size=512)
        assert codec.entry_size == 8 + 1 + 4 * DIM
        assert codec.entries_per_block == 512 // codec.entry_size
        assert codec.blocks_needed(0) == 0
        assert codec.blocks_needed(1) == 1
        epb = codec.entries_per_block
        assert codec.blocks_needed(epb) == 1
        assert codec.blocks_needed(epb + 1) == 2

    def test_block_too_small_for_entry(self):
        with pytest.raises(StorageError):
            PostingCodec(dim=1024, block_size=64)

    def test_roundtrip(self, rng):
        codec = PostingCodec(dim=DIM, block_size=512)
        data = random_posting(rng, 23)
        payloads = codec.encode(data)
        assert len(payloads) == codec.blocks_needed(23)
        decoded = codec.decode(payloads, 23)
        np.testing.assert_array_equal(decoded.ids, data.ids)
        np.testing.assert_array_equal(decoded.versions, data.versions)
        np.testing.assert_array_equal(decoded.vectors, data.vectors)

    def test_roundtrip_empty(self):
        codec = PostingCodec(dim=DIM, block_size=512)
        assert codec.encode(PostingData.empty(DIM)) == []
        assert len(codec.decode([], 0)) == 0

    def test_decode_insufficient_blocks(self, rng):
        codec = PostingCodec(dim=DIM, block_size=512)
        data = random_posting(rng, 30)
        payloads = codec.encode(data)
        with pytest.raises(StorageError):
            codec.decode(payloads[:-1], 30)

    def test_no_entry_spans_blocks(self, rng):
        """Every block payload holds whole entries only (APPEND invariant)."""
        codec = PostingCodec(dim=DIM, block_size=512)
        data = random_posting(rng, 50)
        for payload in codec.encode(data):
            assert len(payload) % codec.entry_size == 0

    def test_tail_fill(self):
        codec = PostingCodec(dim=DIM, block_size=512)
        epb = codec.entries_per_block
        assert codec.tail_fill(0) == 0
        assert codec.tail_fill(1) == 1
        assert codec.tail_fill(epb) == epb
        assert codec.tail_fill(epb + 3) == 3

    @given(st.integers(1, 120))
    @settings(max_examples=30)
    def test_roundtrip_property(self, n):
        rng = np.random.default_rng(n)
        codec = PostingCodec(dim=DIM, block_size=512)
        data = random_posting(rng, n)
        decoded = codec.decode(codec.encode(data), n)
        np.testing.assert_array_equal(decoded.ids, data.ids)
        np.testing.assert_array_equal(decoded.vectors, data.vectors)

    def test_decode_ignores_padding_in_tail(self, rng):
        """Tail block padding (zeros) never leaks into decoded entries."""
        codec = PostingCodec(dim=DIM, block_size=512)
        data = random_posting(rng, 1)
        payloads = codec.encode(data)
        padded = [payloads[0] + b"\xff" * 16]
        decoded = codec.decode(padded, 1)
        assert len(decoded) == 1
        np.testing.assert_array_equal(decoded.ids, data.ids)
