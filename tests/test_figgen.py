"""Tests for the ASCII chart renderer."""

import numpy as np

from repro.bench.figgen import day_series_chart, line_chart, sparkline
from tests.test_analysis import make_day


class TestSparkline:
    def test_length_matches_input(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_flat_series(self):
        line = sparkline([5.0] * 6)
        assert len(set(line)) == 1

    def test_monotone_rises(self):
        line = sparkline(np.arange(9))
        # Bar glyphs are ordered, so a rising series yields rising glyphs.
        assert list(line) == sorted(line)

    def test_downsampling(self):
        assert len(sparkline(np.arange(100), width=20)) == 20

    def test_empty(self):
        assert sparkline([]) == ""


class TestLineChart:
    def test_contains_markers_and_legend(self):
        chart = line_chart({"a": [1, 2, 3], "b": [3, 2, 1]}, title="T")
        assert "== T ==" in chart
        assert "*" in chart and "o" in chart
        assert "*=a" in chart and "o=b" in chart

    def test_bounds_in_axis_labels(self):
        chart = line_chart({"x": [10.0, 20.0, 30.0]})
        assert "30.00" in chart and "10.00" in chart

    def test_empty_series(self):
        assert line_chart({}) == ""
        assert line_chart({"a": []}) == ""

    def test_flat_series_renders(self):
        chart = line_chart({"flat": [2.0, 2.0, 2.0]})
        assert "flat" in chart


class TestDaySeriesChart:
    def test_renders_metric_field(self):
        results = {
            "SPFresh": [make_day(i, p999=1000.0) for i in range(5)],
            "DiskANN": [make_day(i, p999=1000.0 + 4000 * (i % 2)) for i in range(5)],
        }
        chart = day_series_chart(results, "search_p999_us")
        assert "SPFresh" in chart and "DiskANN" in chart
        assert "search_p999_us" in chart
