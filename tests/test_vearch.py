"""Tests for the Vearch-style in-memory baseline (§2.3)."""

import numpy as np
import pytest

from repro.baselines.vearch import VearchLikeIndex
from repro.datasets import exact_knn, make_spacev_like
from repro.util.errors import IndexError_

DIM = 16


@pytest.fixture(scope="module")
def dataset():
    return make_spacev_like(1500, 500, dim=DIM, seed=8, drift=0.9)


@pytest.fixture
def index(dataset):
    return VearchLikeIndex.build(dataset.base, num_partitions=32, seed=1)


class TestBasics:
    def test_build_distributes_all(self, index, dataset):
        assert index.live_vector_count == len(dataset.base)
        assert index.partition_sizes().sum() == len(dataset.base)

    def test_search_finds_self(self, index, dataset):
        result = index.search(dataset.base[5], 1, nprobe=32)
        assert result.ids[0] == 5

    def test_recall_reasonable(self, index, dataset):
        queries = dataset.base[:30] + 0.01
        gt = exact_knn(dataset.base, np.arange(len(dataset.base)), queries, 10)
        hits = 0
        for i, q in enumerate(queries):
            r = index.search(q, 10, nprobe=8)
            hits += len(set(map(int, r.ids)) & set(map(int, gt[i])))
        assert hits / 300 > 0.85

    def test_insert_and_find(self, index, dataset):
        index.insert(99_999, dataset.pool[0])
        result = index.search(dataset.pool[0], 1, nprobe=32)
        assert result.ids[0] == 99_999

    def test_duplicate_insert_rejected(self, index, dataset):
        with pytest.raises(IndexError_):
            index.insert(0, dataset.base[0])

    def test_delete_hides(self, index, dataset):
        index.delete(3)
        result = index.search(dataset.base[3], 10, nprobe=32)
        assert 3 not in set(map(int, result.ids))
        assert index.live_vector_count == len(dataset.base) - 1

    def test_delete_unknown_noop(self, index):
        assert index.delete(10**9) >= 0

    def test_memory_counts_tombstoned_storage(self, index):
        before = index.memory_bytes()
        index.delete(0)  # tombstone does not reclaim storage
        assert index.memory_bytes() == before

    def test_empty_index_search(self):
        empty = VearchLikeIndex(DIM)
        assert len(empty.search(np.zeros(DIM, dtype=np.float32), 5).ids) == 0


class TestRebuild:
    def test_rebuild_reclaims_tombstones(self, index, dataset):
        for vid in range(100):
            index.delete(vid)
        stored_before = index.partition_sizes().sum()
        index.rebuild()
        assert index.rebuilds_completed == 1
        assert index.partition_sizes().sum() == stored_before - 100

    def test_shifted_inserts_skew_partitions_until_rebuild(self, index, dataset):
        """The §2.3 story: frozen centroids let shifted inserts pile into
        few partitions; a global rebuild re-balances them."""
        for i, vec in enumerate(dataset.pool):
            index.insert(10_000 + i, vec)
        skew_before = index.partition_sizes().max() / max(
            index.partition_sizes().mean(), 1
        )
        index.rebuild()
        skew_after = index.partition_sizes().max() / max(
            index.partition_sizes().mean(), 1
        )
        assert skew_after <= skew_before

    def test_rebuild_preserves_search(self, index, dataset):
        index.insert(50_000, dataset.pool[0])
        index.rebuild()
        result = index.search(dataset.pool[0], 1, nprobe=32)
        assert result.ids[0] == 50_000

    def test_rebuild_empty(self):
        empty = VearchLikeIndex(DIM)
        assert empty.rebuild() == 0.0
