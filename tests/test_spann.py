"""Tests for the SPANN substrate: build plan, posting helpers, searcher."""

import numpy as np
import pytest

from repro.core.index import SPFreshIndex
from repro.core.version_map import VersionMap
from repro.spann.build import build_plan
from repro.spann.postings import dedup_top_k, live_view
from repro.storage.layout import PostingData
from tests.conftest import DIM


@pytest.fixture
def plan(vectors, small_config, rng):
    return build_plan(vectors, small_config, rng)


class TestBuildPlan:
    def test_posting_sizes_bounded(self, plan, small_config):
        sizes = plan.posting_sizes()
        # Leaves start at the build target; boundary replication can add up
        # to a replica_count multiple concentrated in dense regions (the
        # post-build normalization pass splits those before serving).
        bound = small_config.build_target_posting_size * (
            small_config.replica_count + 1
        )
        assert sizes.max() <= bound
        assert sizes.min() >= 1

    def test_primary_covers_all_vectors(self, plan, vectors):
        assert len(plan.primary) == len(vectors)
        union = set()
        for rows in plan.members:
            union.update(int(r) for r in rows)
        assert union == set(range(len(vectors)))

    def test_replica_counts(self, plan, small_config):
        counts = plan.replica_counts()
        assert counts.min() >= 1
        assert counts.max() <= small_config.replica_count

    def test_centroid_count_matches_members(self, plan):
        assert len(plan.centroids) == len(plan.members) == plan.num_postings

    def test_empty_input_raises(self, small_config, rng):
        with pytest.raises(ValueError):
            build_plan(np.empty((0, DIM), dtype=np.float32), small_config, rng)


class TestLiveView:
    def test_none_version_map_passthrough(self, rng):
        data = PostingData.from_rows([1, 2], [0, 0], rng.normal(size=(2, DIM)))
        assert live_view(data, None) is data

    def test_filters_deleted_and_stale(self, rng):
        vm = VersionMap()
        for vid in (1, 2, 3):
            vm.register(vid)
        vm.delete(2)
        vm.cas_bump(3, 0)
        data = PostingData.from_rows(
            [1, 2, 3], [0, 0, 0], rng.normal(size=(3, DIM))
        )
        live = live_view(data, vm)
        assert list(live.ids) == [1]

    def test_all_live_returns_same_object(self, rng):
        vm = VersionMap()
        vm.register(1)
        data = PostingData.from_rows([1], [0], rng.normal(size=(1, DIM)))
        assert live_view(data, vm) is data


class TestDedupTopK:
    def test_removes_duplicate_ids(self):
        ids = np.array([1, 2, 1, 3], dtype=np.int64)
        dists = np.array([0.5, 0.2, 0.5, 0.9], dtype=np.float32)
        top_ids, top_dists = dedup_top_k(ids, dists, 10)
        assert list(top_ids) == [2, 1, 3]
        assert list(top_dists) == [np.float32(0.2), np.float32(0.5), np.float32(0.9)]

    def test_keeps_best_instance(self):
        ids = np.array([7, 7], dtype=np.int64)
        dists = np.array([3.0, 1.0], dtype=np.float32)
        top_ids, top_dists = dedup_top_k(ids, dists, 1)
        assert top_ids[0] == 7 and top_dists[0] == 1.0

    def test_k_truncation(self):
        ids = np.arange(10, dtype=np.int64)
        dists = np.arange(10, dtype=np.float32)[::-1].copy()
        top_ids, _ = dedup_top_k(ids, dists, 3)
        assert list(top_ids) == [9, 8, 7]

    def test_empty_and_zero_k(self):
        empty_ids, empty_d = dedup_top_k(np.empty(0, np.int64), np.empty(0, np.float32), 5)
        assert len(empty_ids) == 0
        ids, d = dedup_top_k(np.array([1]), np.array([1.0], dtype=np.float32), 0)
        assert len(ids) == 0


class TestSearcher:
    def test_exact_for_full_probe(self, built_index, vectors):
        """Probing every posting must return the true nearest neighbors."""
        query = vectors[3]
        result = built_index.search(query, 5, nprobe=built_index.num_postings)
        assert result.ids[0] == 3
        assert result.distances[0] == pytest.approx(0.0, abs=1e-3)

    def test_latency_increases_with_nprobe(self, built_index, vectors):
        small = built_index.search(vectors[0], 5, nprobe=1)
        large = built_index.search(vectors[0], 5, nprobe=16)
        assert large.io_latency_us >= small.io_latency_us
        assert large.postings_probed >= small.postings_probed

    def test_entries_scanned_counted(self, built_index, vectors):
        result = built_index.search(vectors[0], 5, nprobe=4)
        assert result.entries_scanned > 0

    def test_latency_budget_truncates(self, vectors, small_config):
        config = small_config.with_overrides(
            search_latency_budget_us=100.0  # tighter than one probe wave
        )
        index = SPFreshIndex.build(vectors, config=config)
        result = index.search(vectors[0], 5, nprobe=32)
        assert result.truncated
        assert result.latency_us <= 100.0
        assert result.postings_probed >= 1

    def test_no_budget_never_truncates(self, vectors, small_config):
        config = small_config.with_overrides(search_latency_budget_us=None)
        index = SPFreshIndex.build(vectors, config=config)
        result = index.search(vectors[0], 5, nprobe=32)
        assert not result.truncated

    def test_deleted_vectors_never_returned(self, built_index, vectors):
        built_index.delete(3)
        result = built_index.search(vectors[3], 10, nprobe=built_index.num_postings)
        assert 3 not in set(int(i) for i in result.ids)

    def test_search_result_len(self, built_index, vectors):
        result = built_index.search(vectors[0], 7)
        assert len(result) == len(result.ids) == 7
