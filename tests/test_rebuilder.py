"""Tests for the Local Rebuilder: split, merge, reassign semantics."""

import numpy as np
import pytest

from repro.core.jobs import MergeJob, ReassignJob, SplitJob
from repro.util.errors import IndexError_
from tests.conftest import DIM
from tests.helpers import (
    assert_no_vector_lost,
    assert_posting_size_bounds,
    live_assignment,
    npa_violations,
)


def stuff_posting(index, rng, posting_id=None, count=None, id_start=50_000):
    """Insert vectors right at a posting's centroid until it must split."""
    if posting_id is None:
        posting_id = index.controller.posting_ids()[0]
    count = count or (index.config.max_posting_size + 10)
    centroid = index.centroid_index.get(posting_id)
    ids = []
    for i in range(count):
        vid = id_start + i
        index.updater.insert(
            vid, (centroid + rng.normal(scale=0.05, size=DIM)).astype(np.float32)
        )
        ids.append(vid)
    return ids


class TestSplit:
    def test_split_replaces_posting_with_two(self, built_index, rng):
        postings_before = built_index.num_postings
        stuff_posting(built_index, rng)
        built_index.drain()
        assert built_index.stats.splits >= 1
        assert built_index.num_postings > postings_before

    def test_split_conserves_live_vectors(self, built_index, vectors, rng):
        new_ids = stuff_posting(built_index, rng)
        built_index.drain()
        expected = list(range(len(vectors))) + new_ids
        assert_no_vector_lost(built_index, expected)

    def test_split_bounds_posting_sizes(self, built_index, rng):
        stuff_posting(built_index, rng, count=200)
        built_index.drain()
        assert_posting_size_bounds(built_index)

    def test_gc_only_split_when_mostly_dead(self, built_index, rng):
        """A posting whose length is inflated by dead entries is garbage
        collected by the split job rather than split (paper §4.2.1)."""
        new_ids = stuff_posting(built_index, rng, count=40, id_start=60_000)
        built_index.drain()
        for vid in new_ids:
            built_index.updater.delete(vid)
        target = dirtiest_posting(built_index)
        splits_before = built_index.stats.splits
        gc_before = built_index.stats.gc_writebacks
        built_index.rebuilder.process(SplitJob(posting_id=target))
        built_index.drain()
        assert (
            built_index.stats.gc_writebacks > gc_before
            or built_index.stats.splits > splits_before
        )

    def test_split_missing_posting_is_noop(self, built_index):
        before = built_index.stats.splits
        built_index.rebuilder.process(SplitJob(posting_id=987654))
        assert built_index.stats.splits == before

    def test_old_centroid_removed_new_added(self, built_index, rng):
        stuff_posting(built_index, rng)
        victims_before = set(built_index.controller.posting_ids())
        built_index.drain()
        # The split posting's id must be gone; fresh ids allocated.
        after = set(built_index.controller.posting_ids())
        assert after != victims_before
        for pid in after:
            assert pid in built_index.centroid_index


def dirtiest_posting(index):
    """Posting holding the most dead (stale or tombstoned) entries."""
    from repro.spann.postings import live_view

    best_pid, best_dead = None, -1
    for pid in index.controller.posting_ids():
        data, _ = index.controller.get(pid)
        dead = len(data) - len(live_view(data, index.version_map))
        if dead > best_dead:
            best_pid, best_dead = pid, dead
    return best_pid


class TestReassign:
    def test_reassign_restores_npa(self, built_index, rng):
        stuff_posting(built_index, rng, count=150)
        built_index.drain()
        violations = npa_violations(built_index)
        # LIRE guarantee: after quiescence NPA violations are rare (the
        # paper's reassign-range check is deliberately approximate).
        assert len(violations) <= max(4, built_index.live_vector_count // 64)

    def test_disable_reassign_leaves_violations(self, vectors, small_config, rng):
        from repro.core.index import SPFreshIndex

        config = small_config.with_overrides(enable_reassign=False)
        index = SPFreshIndex.build(vectors, config=config)
        stuff_posting(index, rng, count=150)
        index.drain()
        with_off = len(npa_violations(index))

        index2 = SPFreshIndex.build(vectors, config=small_config)
        stuff_posting(index2, rng, count=150)
        index2.drain()
        with_on = len(npa_violations(index2))
        assert with_on <= with_off

    def test_stale_version_job_aborts(self, built_index, rng):
        vec = rng.normal(size=DIM).astype(np.float32)
        built_index.insert(70_000, vec)
        job = ReassignJob(
            vector_id=70_000, vector=vec, expected_version=5, source_posting=0
        )
        before = built_index.stats.reassign_aborted_version
        built_index.rebuilder.process(job)
        assert built_index.stats.reassign_aborted_version == before + 1

    def test_deleted_vector_job_aborts(self, built_index, rng):
        vec = rng.normal(size=DIM).astype(np.float32)
        built_index.insert(70_001, vec)
        built_index.delete(70_001)
        job = ReassignJob(
            vector_id=70_001, vector=vec, expected_version=0, source_posting=0
        )
        before = built_index.stats.reassign_aborted_version
        built_index.rebuilder.process(job)
        assert built_index.stats.reassign_aborted_version == before + 1

    def test_npa_false_positive_aborts(self, built_index, rng):
        """A vector already in its nearest posting is a false positive."""
        pid0 = built_index.controller.posting_ids()[0]
        centroid = built_index.centroid_index.get(pid0)
        vec = (centroid + rng.normal(scale=0.01, size=DIM)).astype(np.float32)
        built_index.insert(70_002, vec)
        hits = built_index.centroid_index.search(vec, 1)
        job = ReassignJob(
            vector_id=70_002, vector=vec, expected_version=0,
            source_posting=hits.nearest,
        )
        before = built_index.stats.reassign_aborted_npa
        built_index.rebuilder.process(job)
        assert built_index.stats.reassign_aborted_npa == before + 1

    def test_executed_reassign_bumps_version(self, built_index, rng):
        # Plant a vector in a *wrong* posting deliberately, then reassign.
        far_pid = built_index.controller.posting_ids()[-1]
        near_pid = built_index.controller.posting_ids()[0]
        target_centroid = built_index.centroid_index.get(near_pid)
        vec = (target_centroid + rng.normal(scale=0.01, size=DIM)).astype(np.float32)
        built_index.version_map.register(70_003)
        from repro.storage.layout import PostingData

        built_index.controller.append(
            far_pid, PostingData.from_rows([70_003], [0], vec)
        )
        job = ReassignJob(
            vector_id=70_003, vector=vec, expected_version=0,
            source_posting=far_pid,
        )
        built_index.rebuilder.process(job)
        built_index.drain()
        assert built_index.version_map.current_version(70_003) == 1
        assignment = live_assignment(built_index)
        assert far_pid not in assignment.get(70_003, {far_pid})


class TestMerge:
    def make_small_posting(self, index, rng):
        """Delete vectors from a posting until it is undersized."""
        pid = self.healthy_posting(index)
        data, _ = index.controller.get(pid)
        survivors = int(index.config.min_posting_size) - 1
        for vid in data.ids[survivors:]:
            index.updater.delete(int(vid))
        return pid

    def test_merge_removes_posting(self, built_index, rng):
        pid = self.make_small_posting(built_index, rng)
        built_index.rebuilder.process(MergeJob(posting_id=pid))
        built_index.drain()
        assert built_index.stats.merges == 1
        assert not built_index.controller.exists(pid)
        assert pid not in built_index.centroid_index

    def test_merge_preserves_live_vectors(self, built_index, vectors, rng):
        pid = self.make_small_posting(built_index, rng)
        deleted = built_index.version_map.deleted_count
        built_index.rebuilder.process(MergeJob(posting_id=pid))
        built_index.drain()
        expected = [
            i for i in range(len(vectors)) if not built_index.version_map.is_deleted(i)
        ]
        assert_no_vector_lost(built_index, expected)
        assert built_index.version_map.deleted_count == deleted

    @staticmethod
    def healthy_posting(index):
        for pid in index.controller.posting_ids():
            if index.controller.length(pid) >= index.config.min_posting_size * 2:
                return pid
        raise AssertionError("no healthy posting found")

    def test_merge_skips_healthy_posting(self, built_index):
        pid = self.healthy_posting(built_index)
        built_index.rebuilder.process(MergeJob(posting_id=pid))
        assert built_index.stats.merges == 0
        assert built_index.controller.exists(pid)

    def test_merge_missing_posting_noop(self, built_index):
        built_index.rebuilder.process(MergeJob(posting_id=313371))
        assert built_index.stats.merges == 0

    def test_search_triggers_merge(self, built_index, vectors, rng):
        """The searcher reports undersized postings; search() queues merges."""
        pid = self.make_small_posting(built_index, rng)
        centroid = built_index.centroid_index.get(pid)
        built_index.search(centroid, 5, nprobe=4)
        built_index.drain()
        assert built_index.stats.merge_jobs >= 1


class TestDrain:
    def test_drain_returns_job_count(self, built_index, rng):
        stuff_posting(built_index, rng, count=10)
        pid = built_index.controller.posting_ids()[0]
        built_index.job_queue.put(SplitJob(posting_id=pid))
        executed = built_index.rebuilder.drain()
        assert executed >= 1

    def test_drain_bounded(self, built_index):
        pids = built_index.controller.posting_ids()[:5]
        for pid in pids:
            built_index.job_queue.put(SplitJob(posting_id=pid))
        assert built_index.rebuilder.drain(max_jobs=3) == 3

    def test_duplicate_split_jobs_deduped(self, built_index):
        pid = built_index.controller.posting_ids()[0]
        for _ in range(5):
            built_index.job_queue.put(SplitJob(posting_id=pid))
        assert built_index.job_queue.pending == 1

    def test_unknown_job_type_raises(self, built_index):
        with pytest.raises(IndexError_):
            built_index.rebuilder.process(object())
