"""Tests for nprobe auto-tuning."""

import numpy as np
import pytest

from repro.core.autotune import TuneResult, tune_nprobe
from repro.datasets import exact_knn


@pytest.fixture
def validation(built_index, vectors):
    queries = vectors[:25] + 0.01
    truth = exact_knn(vectors, np.arange(len(vectors)), queries, 5)
    return queries, truth


class TestTuneNprobe:
    def test_meets_target(self, built_index, validation):
        queries, truth = validation
        result = tune_nprobe(built_index, queries, truth, k=5, target_recall=0.9)
        assert result.target_met
        assert result.recall >= 0.9

    def test_minimality(self, built_index, validation):
        """One nprobe lower must miss the target (or be nprobe=1)."""
        queries, truth = validation
        result = tune_nprobe(built_index, queries, truth, k=5, target_recall=0.95)
        assert result.target_met
        if result.nprobe > 1:
            from repro.metrics import recall_at_k

            ids = [
                built_index.search(q, 5, result.nprobe - 1).ids for q in queries
            ]
            assert recall_at_k(ids, truth, 5) < 0.95

    def test_easy_target_uses_few_probes(self, built_index, validation):
        queries, truth = validation
        loose = tune_nprobe(built_index, queries, truth, k=5, target_recall=0.5)
        tight = tune_nprobe(built_index, queries, truth, k=5, target_recall=0.99)
        assert loose.nprobe <= tight.nprobe

    def test_unreachable_target_reports_best(self, built_index, validation):
        queries, truth = validation
        result = tune_nprobe(
            built_index, queries, truth, k=5, target_recall=1.0, max_nprobe=1
        )
        if not result.target_met:
            assert result.nprobe == 1
            assert result.recall < 1.0

    def test_binary_search_is_logarithmic(self, built_index, validation):
        queries, truth = validation
        result = tune_nprobe(built_index, queries, truth, k=5, target_recall=0.9)
        import math

        ceiling = built_index.num_postings
        assert result.evaluations <= math.ceil(math.log2(ceiling)) + 2

    def test_invalid_inputs(self, built_index, validation):
        queries, truth = validation
        with pytest.raises(ValueError):
            tune_nprobe(built_index, queries, truth, target_recall=0.0)
        with pytest.raises(ValueError):
            tune_nprobe(
                built_index, np.empty((0, 16), dtype=np.float32), truth[:0]
            )

    def test_result_fields(self, built_index, validation):
        queries, truth = validation
        result = tune_nprobe(built_index, queries, truth, k=5, target_recall=0.8)
        assert isinstance(result, TuneResult)
        assert result.mean_latency_us > 0
        assert result.evaluations >= 1
