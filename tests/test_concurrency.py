"""Concurrency tests: background pipeline, locks, CAS races."""

import threading

import numpy as np
import pytest

from repro.core.index import SPFreshIndex
from repro.core.jobs import PostingLockManager
from tests.conftest import DIM
from tests.helpers import assert_no_vector_lost, npa_violations


class TestLockManager:
    def test_hold_single(self):
        locks = PostingLockManager()
        with locks.hold(3):
            pass  # no deadlock, no error

    def test_hold_multiple_sorted(self):
        locks = PostingLockManager()
        with locks.hold(5, 2, 9):
            with locks.hold(2):  # RLock: re-entrant from same thread
                pass

    def test_contention_counted(self):
        locks = PostingLockManager()
        started = threading.Event()
        release = threading.Event()

        def holder():
            with locks.hold(1):
                started.set()
                release.wait(timeout=5)

        t = threading.Thread(target=holder)
        t.start()
        started.wait(timeout=5)
        grabbed = threading.Event()

        def contender():
            with locks.hold(1):
                grabbed.set()

        t2 = threading.Thread(target=contender)
        t2.start()
        # Give the contender time to hit the lock, then release.
        import time

        time.sleep(0.05)
        release.set()
        t.join()
        t2.join()
        assert grabbed.is_set()
        assert locks.contention_hits >= 1
        assert 0.0 < locks.contention_rate <= 1.0

    def test_forget_releases_metadata(self):
        locks = PostingLockManager()
        with locks.hold(1):
            pass
        locks.forget(1)
        with locks.hold(1):  # re-created on demand
            pass

    def test_deadlock_free_opposite_order(self):
        """Two threads acquiring {a,b} in opposite argument order never
        deadlock because hold() sorts ids."""
        locks = PostingLockManager()
        errors = []

        def worker(first, second):
            try:
                for _ in range(200):
                    with locks.hold(first, second):
                        pass
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        t1 = threading.Thread(target=worker, args=(1, 2))
        t2 = threading.Thread(target=worker, args=(2, 1))
        t1.start(); t2.start()
        t1.join(timeout=10); t2.join(timeout=10)
        assert not t1.is_alive() and not t2.is_alive()
        assert not errors


class TestBackgroundPipeline:
    @pytest.fixture
    def async_index(self, vectors, small_config):
        config = small_config.with_overrides(
            synchronous_rebuild=False, background_workers=2
        )
        index = SPFreshIndex.build(vectors, config=config)
        index.start()
        yield index
        index.stop()

    def test_background_splits_happen(self, async_index, rng):
        centroid = async_index.centroid_index.get(
            async_index.controller.posting_ids()[0]
        )
        for i in range(async_index.config.max_posting_size * 2):
            async_index.insert(
                90_000 + i,
                (centroid + rng.normal(scale=0.05, size=DIM)).astype(np.float32),
            )
        async_index.rebuilder.wait_idle()
        assert async_index.stats.splits >= 1

    def test_concurrent_updates_and_searches(self, async_index, rng, vectors):
        errors = []
        stop = threading.Event()

        def searcher():
            while not stop.is_set():
                try:
                    async_index.search(vectors[0], 5, nprobe=4)
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

        threads = [threading.Thread(target=searcher) for _ in range(2)]
        for t in threads:
            t.start()
        inserted = []
        try:
            for i in range(300):
                vid = 95_000 + i
                async_index.insert(vid, rng.normal(size=DIM).astype(np.float32))
                inserted.append(vid)
                if i % 5 == 4:
                    async_index.delete(inserted.pop(0))
        finally:
            stop.set()
            for t in threads:
                t.join()
        async_index.rebuilder.wait_idle()
        assert not errors
        expected = set(range(len(vectors))) | set(inserted)
        assert_no_vector_lost(async_index, expected)

    def test_quality_converges_after_async_churn(self, async_index, rng):
        hot = async_index.centroid_index.get(
            async_index.controller.posting_ids()[0]
        )
        for i in range(250):
            async_index.insert(
                97_000 + i, (hot + rng.normal(scale=0.2, size=DIM)).astype(np.float32)
            )
        async_index.rebuilder.wait_idle()
        violations = npa_violations(async_index)
        assert len(violations) <= max(3, async_index.live_vector_count // 50)

    def test_stop_is_idempotent(self, async_index):
        async_index.stop()
        async_index.stop()

    def test_start_twice_is_noop(self, async_index):
        workers = len(async_index.rebuilder._workers)
        async_index.start()
        assert len(async_index.rebuilder._workers) == workers
