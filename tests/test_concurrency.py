"""Concurrency tests: background pipeline, locks, CAS races."""

import threading

import numpy as np
import pytest

from repro.core.index import SPFreshIndex
from repro.core.jobs import PostingLockManager
from tests.conftest import DIM
from tests.helpers import assert_no_vector_lost, npa_violations


class TestLockManager:
    def test_hold_single(self):
        locks = PostingLockManager()
        with locks.hold(3):
            pass  # no deadlock, no error

    def test_hold_multiple_sorted(self):
        locks = PostingLockManager()
        with locks.hold(5, 2, 9):
            with locks.hold(2):  # RLock: re-entrant from same thread
                pass

    def test_contention_counted(self):
        locks = PostingLockManager()
        started = threading.Event()
        release = threading.Event()

        def holder():
            with locks.hold(1):
                started.set()
                release.wait(timeout=5)

        t = threading.Thread(target=holder)
        t.start()
        started.wait(timeout=5)
        grabbed = threading.Event()

        def contender():
            with locks.hold(1):
                grabbed.set()

        t2 = threading.Thread(target=contender)
        t2.start()
        # Give the contender time to hit the lock, then release.
        import time

        time.sleep(0.05)
        release.set()
        t.join()
        t2.join()
        assert grabbed.is_set()
        assert locks.contention_hits >= 1
        assert 0.0 < locks.contention_rate <= 1.0

    def test_forget_releases_metadata(self):
        locks = PostingLockManager()
        with locks.hold(1):
            pass
        locks.forget(1)
        with locks.hold(1):  # re-created on demand
            pass

    def test_deadlock_free_opposite_order(self):
        """Two threads acquiring {a,b} in opposite argument order never
        deadlock because hold() sorts ids."""
        locks = PostingLockManager()
        errors = []

        def worker(first, second):
            try:
                for _ in range(200):
                    with locks.hold(first, second):
                        pass
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        t1 = threading.Thread(target=worker, args=(1, 2))
        t2 = threading.Thread(target=worker, args=(2, 1))
        t1.start(); t2.start()
        t1.join(timeout=10); t2.join(timeout=10)
        assert not t1.is_alive() and not t2.is_alive()
        assert not errors


class TestLockLifecycle:
    """Regression tests for the forget/hold lifecycle race.

    On the seed implementation ``forget`` popped the lock entry outright,
    so a thread arriving after the forget minted a *fresh* lock while the
    old one was still held/contended — two threads inside "mutually
    excluded" critical sections for the same posting id.
    """

    def test_forget_while_held_still_mutually_excludes(self):
        locks = PostingLockManager()
        in_critical = threading.Event()
        release = threading.Event()
        overlap = threading.Event()

        def first_holder():
            with locks.hold(7):
                in_critical.set()
                release.wait(timeout=5)

        def late_contender():
            with locks.hold(7):
                if not release.is_set():
                    overlap.set()  # entered while first_holder still held

        t1 = threading.Thread(target=first_holder)
        t1.start()
        assert in_critical.wait(timeout=5)
        locks.forget(7)  # posting deleted while its lock is held
        t2 = threading.Thread(target=late_contender)
        t2.start()
        t2.join(timeout=0.3)  # must still be blocked on the shared lock
        assert not overlap.is_set(), "contender entered while lock was held"
        release.set()
        t1.join(timeout=5)
        t2.join(timeout=5)
        assert not overlap.is_set()

    def test_contenders_across_forget_stay_exclusive(self):
        """Two threads hammering one posting across repeated forgets never
        overlap in the critical section."""
        import time

        locks = PostingLockManager()
        guard = threading.Lock()
        state = {"active": 0, "max_active": 0}
        stop = threading.Event()

        def worker():
            for _ in range(60):
                with locks.hold(3):
                    with guard:
                        state["active"] += 1
                        state["max_active"] = max(
                            state["max_active"], state["active"]
                        )
                    time.sleep(0.0003)
                    with guard:
                        state["active"] -= 1

        def forgetter():
            while not stop.is_set():
                locks.forget(3)
                time.sleep(0.0001)

        workers = [threading.Thread(target=worker) for _ in range(3)]
        killer = threading.Thread(target=forgetter)
        killer.start()
        for t in workers:
            t.start()
        for t in workers:
            t.join(timeout=30)
        stop.set()
        killer.join(timeout=5)
        assert state["max_active"] == 1

    def test_forget_unreferenced_entry_recycles_immediately(self):
        locks = PostingLockManager()
        with locks.hold(1):
            pass
        assert locks.live_locks == 1
        locks.forget(1)
        assert locks.live_locks == 0
        assert locks.lock_recycles == 1

    def test_forget_referenced_entry_recycles_at_last_unpin(self):
        locks = PostingLockManager()
        in_critical = threading.Event()
        release = threading.Event()

        def holder():
            with locks.hold(2):
                in_critical.set()
                release.wait(timeout=5)

        t = threading.Thread(target=holder)
        t.start()
        assert in_critical.wait(timeout=5)
        locks.forget(2)
        assert locks.live_locks == 1  # pinned by the holder, not dropped
        assert locks.lock_recycles == 0
        release.set()
        t.join(timeout=5)
        assert locks.live_locks == 0
        assert locks.lock_recycles == 1

    def test_forget_unknown_posting_is_noop(self):
        locks = PostingLockManager()
        locks.forget(12345)
        assert locks.lock_recycles == 0

    def test_recycles_reported_to_stats(self):
        from repro.core.stats import LireStats

        stats = LireStats()
        locks = PostingLockManager(stats=stats)
        with locks.hold(5):
            pass
        locks.forget(5)
        assert stats.lock_recycles == 1

    def test_chaos_hook_called_at_acquisition(self):
        points = []
        locks = PostingLockManager(chaos=lambda point, pid: points.append((point, pid)))
        with locks.hold(4, 9):
            pass
        assert ("lock.acquire", 4) in points
        assert ("lock.acquired", 9) in points


class TestBackgroundPipeline:
    @pytest.fixture
    def async_index(self, vectors, small_config):
        config = small_config.with_overrides(
            synchronous_rebuild=False, background_workers=2
        )
        index = SPFreshIndex.build(vectors, config=config)
        index.start()
        yield index
        index.stop()

    def test_background_splits_happen(self, async_index, rng):
        centroid = async_index.centroid_index.get(
            async_index.controller.posting_ids()[0]
        )
        for i in range(async_index.config.max_posting_size * 2):
            async_index.insert(
                90_000 + i,
                (centroid + rng.normal(scale=0.05, size=DIM)).astype(np.float32),
            )
        async_index.rebuilder.wait_idle()
        assert async_index.stats.splits >= 1

    def test_concurrent_updates_and_searches(self, async_index, rng, vectors):
        errors = []
        stop = threading.Event()

        def searcher():
            while not stop.is_set():
                try:
                    async_index.search(vectors[0], 5, nprobe=4)
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

        threads = [threading.Thread(target=searcher) for _ in range(2)]
        for t in threads:
            t.start()
        inserted = []
        try:
            for i in range(300):
                vid = 95_000 + i
                async_index.insert(vid, rng.normal(size=DIM).astype(np.float32))
                inserted.append(vid)
                if i % 5 == 4:
                    async_index.delete(inserted.pop(0))
        finally:
            stop.set()
            for t in threads:
                t.join()
        async_index.rebuilder.wait_idle()
        assert not errors
        expected = set(range(len(vectors))) | set(inserted)
        assert_no_vector_lost(async_index, expected)

    def test_quality_converges_after_async_churn(self, async_index, rng):
        hot = async_index.centroid_index.get(
            async_index.controller.posting_ids()[0]
        )
        for i in range(250):
            async_index.insert(
                97_000 + i, (hot + rng.normal(scale=0.2, size=DIM)).astype(np.float32)
            )
        async_index.rebuilder.wait_idle()
        violations = npa_violations(async_index)
        assert len(violations) <= max(3, async_index.live_vector_count // 50)

    def test_stop_is_idempotent(self, async_index):
        async_index.stop()
        async_index.stop()

    def test_start_twice_is_noop(self, async_index):
        workers = len(async_index.rebuilder._workers)
        async_index.start()
        assert len(async_index.rebuilder._workers) == workers
