"""Tests for the version map: registration, tombstones, CAS, batch masks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.version_map import VERSION_MASK, VersionMap
from repro.util.errors import IndexError_


class TestRegistration:
    def test_register_and_query(self):
        vm = VersionMap()
        assert not vm.is_registered(5)
        assert vm.register(5) == 0
        assert vm.is_registered(5)
        assert vm.current_version(5) == 0
        assert not vm.is_deleted(5)

    def test_double_register_live_fails(self):
        vm = VersionMap()
        vm.register(1)
        with pytest.raises(IndexError_):
            vm.register(1)

    def test_negative_id_rejected(self):
        with pytest.raises(IndexError_):
            VersionMap().register(-1)

    def test_capacity_growth(self):
        vm = VersionMap(initial_capacity=4)
        vm.register(10_000)
        assert vm.is_registered(10_000)
        assert vm.live_count == 1

    def test_reinsert_after_delete_resets_version(self):
        vm = VersionMap()
        vm.register(3)
        vm.cas_bump(3, 0)
        vm.delete(3)
        assert vm.register(3) == 0
        assert vm.current_version(3) == 0
        assert not vm.is_deleted(3)


class TestTombstones:
    def test_delete_sets_bit(self):
        vm = VersionMap()
        vm.register(1)
        assert vm.delete(1)
        assert vm.is_deleted(1)
        assert vm.live_count == 0
        assert vm.deleted_count == 1

    def test_double_delete_returns_false(self):
        vm = VersionMap()
        vm.register(1)
        assert vm.delete(1)
        assert not vm.delete(1)

    def test_delete_unknown_returns_false(self):
        assert not VersionMap().delete(42)

    def test_unknown_is_deleted(self):
        assert VersionMap().is_deleted(9)


class TestCas:
    def test_bump_success(self):
        vm = VersionMap()
        vm.register(1)
        assert vm.cas_bump(1, 0) == 1
        assert vm.current_version(1) == 1

    def test_bump_wrong_expected_fails(self):
        vm = VersionMap()
        vm.register(1)
        vm.cas_bump(1, 0)
        assert vm.cas_bump(1, 0) is None

    def test_bump_deleted_fails(self):
        vm = VersionMap()
        vm.register(1)
        vm.delete(1)
        assert vm.cas_bump(1, 0) is None

    def test_bump_unknown_fails(self):
        assert VersionMap().cas_bump(7, 0) is None

    def test_version_wraps_skipping_sentinel(self):
        """Versions cycle without ever producing the 0x7F value whose
        deleted form would collide with the unregistered sentinel."""
        vm = VersionMap()
        vm.register(1)
        seen = set()
        version = 0
        for _ in range(300):
            version = vm.cas_bump(1, version)
            assert version is not None
            assert version != VERSION_MASK
            seen.add(version)
        assert max(seen) == VERSION_MASK - 1
        vm.delete(1)
        assert vm.is_registered(1)  # never confused with the sentinel


class TestLiveMask:
    def test_basic_filtering(self):
        vm = VersionMap()
        for vid in (1, 2, 3):
            vm.register(vid)
        vm.cas_bump(2, 0)  # stored version 0 becomes stale
        vm.delete(3)
        ids = np.array([1, 2, 3, 99], dtype=np.int64)
        versions = np.zeros(4, dtype=np.uint8)
        mask = vm.live_mask(ids, versions)
        assert list(mask) == [True, False, False, False]

    def test_fresh_version_live(self):
        vm = VersionMap()
        vm.register(1)
        new_v = vm.cas_bump(1, 0)
        mask = vm.live_mask(
            np.array([1, 1]), np.array([0, new_v], dtype=np.uint8)
        )
        assert list(mask) == [False, True]

    def test_empty_input(self):
        vm = VersionMap()
        mask = vm.live_mask(np.empty(0, np.int64), np.empty(0, np.uint8))
        assert mask.shape == (0,)

    def test_negative_and_out_of_range_ids(self):
        vm = VersionMap(initial_capacity=4)
        vm.register(0)
        ids = np.array([-5, 0, 1_000_000], dtype=np.int64)
        mask = vm.live_mask(ids, np.zeros(3, dtype=np.uint8))
        assert list(mask) == [False, True, False]

    @given(st.lists(st.integers(0, 50), min_size=1, max_size=30, unique=True))
    @settings(max_examples=25)
    def test_mask_matches_scalar_api(self, ids):
        vm = VersionMap()
        rng = np.random.default_rng(42)
        for vid in ids:
            vm.register(vid)
            if rng.random() < 0.3:
                vm.cas_bump(vid, 0)
            if rng.random() < 0.3:
                vm.delete(vid)
        arr = np.array(ids, dtype=np.int64)
        stored = np.zeros(len(ids), dtype=np.uint8)
        mask = vm.live_mask(arr, stored)
        for i, vid in enumerate(ids):
            expected = (
                vm.is_registered(vid)
                and not vm.is_deleted(vid)
                and vm.current_version(vid) == 0
            )
            assert mask[i] == expected


class TestStateDict:
    def test_roundtrip(self):
        vm = VersionMap()
        for vid in range(10):
            vm.register(vid)
        vm.delete(4)
        vm.cas_bump(5, 0)
        other = VersionMap()
        other.load_state_dict(vm.state_dict())
        assert other.live_count == vm.live_count
        assert other.is_deleted(4)
        assert other.current_version(5) == 1

    def test_memory_scales_with_capacity(self):
        vm = VersionMap(initial_capacity=1024)
        assert vm.memory_bytes() == 1024
        vm.register(5000)
        assert vm.memory_bytes() >= 5001
