"""Tests for the file-backed block device and cross-"process" recovery."""

import numpy as np
import pytest

from repro.core.index import SPFreshIndex
from repro.storage.filedev import FileBackedSSD
from repro.storage.snapshot import SnapshotManager
from repro.storage.ssd import SSDProfile
from repro.storage.wal import WriteAheadLog
from repro.util.errors import StorageError
from tests.conftest import DIM


@pytest.fixture
def device(tmp_path):
    dev = FileBackedSSD(
        str(tmp_path / "dev.img"), num_blocks=128, profile=SSDProfile(block_size=512)
    )
    yield dev
    dev.close()


class TestDevice:
    def test_roundtrip(self, device):
        device.write_block(3, b"hello")
        data, _ = device.read_block(3)
        assert data.startswith(b"hello")
        assert len(data) == 512

    def test_unwritten_reads_zero(self, device):
        data, _ = device.read_block(100)
        assert data == b"\x00" * 512

    def test_batch_io_and_stats(self, device):
        device.write_blocks([1, 2], [b"a", b"b"])
        payloads, latency = device.read_blocks([2, 1])
        assert payloads[0][:1] == b"b"
        assert latency == device.profile.read_batch_latency_us(2)
        assert device.stats.block_writes == 2

    def test_trim_zeroes(self, device):
        device.write_block(7, b"x")
        device.trim([7])
        data, _ = device.read_block(7)
        assert data == b"\x00" * 512

    def test_used_blocks(self, device):
        assert device.used_blocks() == 0
        device.write_block(0, b"z")
        assert device.used_blocks() == 1

    def test_out_of_range(self, device):
        with pytest.raises(StorageError):
            device.read_block(999)

    def test_oversized_payload(self, device):
        with pytest.raises(StorageError):
            device.write_block(0, b"x" * 513)

    def test_persistence_across_reopen(self, tmp_path):
        path = str(tmp_path / "p.img")
        dev = FileBackedSSD(path, 16, SSDProfile(block_size=512))
        dev.write_block(5, b"durable")
        dev.sync()
        dev.close()
        dev2 = FileBackedSSD.reopen(path, 16, SSDProfile(block_size=512))
        data, _ = dev2.read_block(5)
        assert data.startswith(b"durable")
        dev2.close()

    def test_reopen_missing_file(self, tmp_path):
        with pytest.raises(StorageError):
            FileBackedSSD.reopen(str(tmp_path / "nope.img"), 16)

    def test_refuses_to_shrink(self, tmp_path):
        path = str(tmp_path / "s.img")
        FileBackedSSD(path, 32, SSDProfile(block_size=512)).close()
        with pytest.raises(StorageError):
            FileBackedSSD(path, 8, SSDProfile(block_size=512))

    def test_reopen_rejects_truncated_file(self, tmp_path):
        path = str(tmp_path / "t.img")
        profile = SSDProfile(block_size=512)
        dev = FileBackedSSD(path, 16, profile)
        dev.write_block(9, b"precious")
        dev.close()
        # Chop the tail off, as a crashed filesystem or bad copy would.
        with open(path, "r+b") as fh:
            fh.truncate(16 * 512 - 100)
        with pytest.raises(StorageError, match="truncated or resized"):
            FileBackedSSD.reopen(path, 16, profile)

    def test_reopen_rejects_wrong_geometry(self, tmp_path):
        path = str(tmp_path / "g.img")
        profile = SSDProfile(block_size=512)
        FileBackedSSD(path, 16, profile).close()
        # File is intact, but the caller asks for a different block count:
        # the size check must catch the mismatch in both directions.
        with pytest.raises(StorageError):
            FileBackedSSD.reopen(path, 32, profile)
        with pytest.raises(StorageError):
            FileBackedSSD.reopen(path, 8, profile)
        FileBackedSSD.reopen(path, 16, profile).close()  # exact match is fine

    def test_peek_poke_and_export_roundtrip(self, tmp_path):
        path = str(tmp_path / "pp.img")
        dev = FileBackedSSD(path, 16, SSDProfile(block_size=512))
        before = dev.stats.snapshot()
        dev.poke_block(4, b"backdoor")
        assert dev.peek_block(4).startswith(b"backdoor")
        exported = dev.export_blocks()
        assert exported[4].startswith(b"backdoor")
        delta = dev.stats.snapshot().delta(before)
        assert delta.read_ops == 0 and delta.write_ops == 0  # stats-free
        dev2 = FileBackedSSD(str(tmp_path / "pp2.img"), 16, SSDProfile(block_size=512))
        dev2.import_blocks(exported)
        data, _ = dev2.read_block(4)
        assert data.startswith(b"backdoor")
        dev.close()
        dev2.close()


class TestColdRecovery:
    """Full restart path: new device object + on-disk snapshot and WAL."""

    def test_recover_from_files_only(self, tmp_path, vectors, small_config, rng):
        dev_path = str(tmp_path / "index.img")
        profile = SSDProfile(block_size=small_config.block_size)
        device = FileBackedSSD(dev_path, small_config.ssd_blocks, profile)
        wal = WriteAheadLog(str(tmp_path / "u.wal"))
        snaps = SnapshotManager(str(tmp_path))

        index = SPFreshIndex.build(
            vectors, config=small_config, wal=wal, snapshots=snaps, device=device
        )
        index.checkpoint()
        inserted = {}
        for i in range(15):
            vid = 90_000 + i
            vec = rng.normal(size=DIM).astype(np.float32)
            index.insert(vid, vec)
            inserted[vid] = vec
        device.sync()
        wal.close()
        device.close()
        del index  # "process exit"

        # Restart: everything comes back from files.
        device2 = FileBackedSSD.reopen(dev_path, small_config.ssd_blocks, profile)
        wal2 = WriteAheadLog(str(tmp_path / "u.wal"))
        snaps2 = SnapshotManager(str(tmp_path))
        recovered = SPFreshIndex.recover(device2, small_config, snaps2, wal=wal2)
        assert recovered.live_vector_count == len(vectors) + 15
        for vid, vec in inserted.items():
            result = recovered.search(vec, 1, nprobe=recovered.num_postings)
            assert result.ids[0] == vid
        device2.close()
