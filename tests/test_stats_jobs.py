"""Tests for LIRE stats counters, job queue, and id allocation."""

import threading

import numpy as np
import pytest

from repro.core.ids import IdAllocator
from repro.core.jobs import JobQueue, ReassignJob, SplitJob
from repro.core.stats import LireStats, StatsSnapshot


class TestLireStats:
    def test_incr_and_read(self):
        stats = LireStats()
        stats.incr("splits")
        stats.incr("splits", 2)
        assert stats.splits == 3

    def test_snapshot_is_immutable_copy(self):
        stats = LireStats()
        stats.incr("merges")
        snap = stats.snapshot()
        stats.incr("merges")
        assert snap.merges == 1
        assert stats.merges == 2

    def test_delta(self):
        stats = LireStats()
        stats.incr("inserts", 10)
        before = stats.snapshot()
        stats.incr("inserts", 5)
        delta = stats.snapshot().delta(before)
        assert delta.inserts == 5

    def test_cascade_depth_max(self):
        stats = LireStats()
        stats.observe_cascade_depth(2)
        stats.observe_cascade_depth(1)
        assert stats.split_cascade_max_depth == 2

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError):
            LireStats().nonexistent_counter

    def test_thread_safe_increments(self):
        stats = LireStats()

        def bump():
            for _ in range(1000):
                stats.incr("appends")

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert stats.appends == 4000

    def test_snapshot_fields_complete(self):
        snap = LireStats().snapshot()
        assert isinstance(snap, StatsSnapshot)
        assert snap.splits == 0 and snap.reassign_executed == 0


class TestJobQueue:
    def test_fifo_order(self):
        q = JobQueue()
        q.put(SplitJob(posting_id=1))
        q.put(SplitJob(posting_id=2))
        assert q.get().posting_id == 1
        q.task_done()
        assert q.get().posting_id == 2
        q.task_done()

    def test_pending_counts(self):
        q = JobQueue()
        assert q.empty()
        q.put(SplitJob(posting_id=1))
        assert q.pending == 1
        assert not q.empty()

    def test_join_after_task_done(self):
        q = JobQueue()
        q.put(SplitJob(posting_id=1))
        q.get()
        q.task_done()
        q.join()  # returns immediately


class TestJobTypes:
    def test_jobs_are_frozen(self):
        job = SplitJob(posting_id=1)
        with pytest.raises(Exception):
            job.posting_id = 2

    def test_reassign_job_carries_context(self):
        vec = np.ones(4, dtype=np.float32)
        job = ReassignJob(
            vector_id=7, vector=vec, expected_version=3, source_posting=9
        )
        assert job.vector_id == 7
        assert job.expected_version == 3
        assert job.attempts == 0


class TestIdAllocator:
    def test_monotonic(self):
        alloc = IdAllocator(5)
        assert [alloc.next() for _ in range(3)] == [5, 6, 7]
        assert alloc.peek() == 8

    def test_advance_to(self):
        alloc = IdAllocator()
        alloc.advance_to(100)
        assert alloc.next() == 100
        alloc.advance_to(50)  # never goes backwards
        assert alloc.next() == 101

    def test_thread_safety_no_duplicates(self):
        alloc = IdAllocator()
        out: list[int] = []
        lock = threading.Lock()

        def grab():
            local = [alloc.next() for _ in range(500)]
            with lock:
                out.extend(local)

        threads = [threading.Thread(target=grab) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(out) == len(set(out)) == 2000
