"""Tests for LIRE stats counters, job queue, and id allocation."""

import threading

import numpy as np
import pytest

from repro.core.ids import IdAllocator
from repro.core.jobs import JobQueue, MergeJob, ReassignJob, SplitJob
from repro.core.stats import LireStats, StatsSnapshot


class TestLireStats:
    def test_incr_and_read(self):
        stats = LireStats()
        stats.incr("splits")
        stats.incr("splits", 2)
        assert stats.splits == 3

    def test_snapshot_is_immutable_copy(self):
        stats = LireStats()
        stats.incr("merges")
        snap = stats.snapshot()
        stats.incr("merges")
        assert snap.merges == 1
        assert stats.merges == 2

    def test_delta(self):
        stats = LireStats()
        stats.incr("inserts", 10)
        before = stats.snapshot()
        stats.incr("inserts", 5)
        delta = stats.snapshot().delta(before)
        assert delta.inserts == 5

    def test_cascade_depth_max(self):
        stats = LireStats()
        stats.observe_cascade_depth(2)
        stats.observe_cascade_depth(1)
        assert stats.split_cascade_max_depth == 2

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError):
            LireStats().nonexistent_counter

    def test_thread_safe_increments(self):
        stats = LireStats()

        def bump():
            for _ in range(1000):
                stats.incr("appends")

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert stats.appends == 4000

    def test_snapshot_fields_complete(self):
        snap = LireStats().snapshot()
        assert isinstance(snap, StatsSnapshot)
        assert snap.splits == 0 and snap.reassign_executed == 0


class TestJobQueue:
    def test_fifo_order(self):
        q = JobQueue()
        q.put(SplitJob(posting_id=1))
        q.put(SplitJob(posting_id=2))
        assert q.get().posting_id == 1
        q.task_done()
        assert q.get().posting_id == 2
        q.task_done()

    def test_pending_counts(self):
        q = JobQueue()
        assert q.empty()
        q.put(SplitJob(posting_id=1))
        assert q.pending == 1
        assert not q.empty()

    def test_join_after_task_done(self):
        q = JobQueue()
        q.put(SplitJob(posting_id=1))
        q.get()
        q.task_done()
        q.join()  # returns immediately

    def test_get_default_is_nonblocking(self):
        import queue as queue_mod
        import time

        q = JobQueue()
        start = time.perf_counter()
        with pytest.raises(queue_mod.Empty):
            q.get()
        # Regression: a falsy timeout must not silently change semantics.
        with pytest.raises(queue_mod.Empty):
            q.get(timeout=0)
        assert time.perf_counter() - start < 0.5

    def test_get_block_waits_for_producer(self):
        q = JobQueue()

        def producer():
            import time

            time.sleep(0.05)
            q.put(SplitJob(posting_id=9))

        t = threading.Thread(target=producer)
        t.start()
        # Seed bug: get(timeout=None) could never block; this would raise
        # Empty immediately instead of waiting for the producer.
        job = q.get(block=True)
        t.join()
        assert job.posting_id == 9

    def test_get_block_honors_timeout(self):
        import queue as queue_mod

        q = JobQueue()
        with pytest.raises(queue_mod.Empty):
            q.get(timeout=0.02, block=True)

    def test_split_jobs_deduplicated(self):
        q = JobQueue()
        assert q.put(SplitJob(posting_id=1))
        assert not q.put(SplitJob(posting_id=1))
        assert q.pending == 1
        q.get()
        q.task_done()
        # Marker cleared at dequeue: a fresh job can be scheduled.
        assert q.put(SplitJob(posting_id=1))

    def test_merge_jobs_deduplicated(self):
        q = JobQueue()
        assert q.put(MergeJob(posting_id=4))
        assert not q.put(MergeJob(posting_id=4))
        assert q.put(MergeJob(posting_id=5))
        assert q.pending == 2
        assert q.get().posting_id == 4
        q.task_done()
        assert q.put(MergeJob(posting_id=4))  # cleared at dequeue

    def test_split_and_merge_dedup_independent(self):
        q = JobQueue()
        assert q.put(SplitJob(posting_id=1))
        assert q.put(MergeJob(posting_id=1))  # different kind, same pid
        assert q.pending == 2

    def test_reassign_jobs_never_deduplicated(self):
        vec = np.ones(4, dtype=np.float32)
        q = JobQueue()
        job = ReassignJob(vector_id=1, vector=vec, expected_version=0, source_posting=2)
        assert q.put(job)
        assert q.put(job)
        assert q.pending == 2

    def test_chaos_hook_called_at_dequeue(self):
        points = []
        q = JobQueue(chaos=lambda point, detail: points.append(point))
        q.put(SplitJob(posting_id=1))
        q.get()
        assert "queue.get" in points and "queue.got" in points


class TestJobTypes:
    def test_jobs_are_frozen(self):
        job = SplitJob(posting_id=1)
        with pytest.raises(Exception):
            job.posting_id = 2

    def test_reassign_job_carries_context(self):
        vec = np.ones(4, dtype=np.float32)
        job = ReassignJob(
            vector_id=7, vector=vec, expected_version=3, source_posting=9
        )
        assert job.vector_id == 7
        assert job.expected_version == 3
        assert job.attempts == 0


class TestIdAllocator:
    def test_monotonic(self):
        alloc = IdAllocator(5)
        assert [alloc.next() for _ in range(3)] == [5, 6, 7]
        assert alloc.peek() == 8

    def test_advance_to(self):
        alloc = IdAllocator()
        alloc.advance_to(100)
        assert alloc.next() == 100
        alloc.advance_to(50)  # never goes backwards
        assert alloc.next() == 101

    def test_thread_safety_no_duplicates(self):
        alloc = IdAllocator()
        out: list[int] = []
        lock = threading.Lock()

        def grab():
            local = [alloc.next() for _ in range(500)]
            with lock:
                out.extend(local)

        threads = [threading.Thread(target=grab) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(out) == len(set(out)) == 2000
