"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import SPFreshConfig
from repro.core.index import SPFreshIndex
from repro.storage.controller import BlockController
from repro.storage.layout import PostingCodec
from repro.storage.ssd import SimulatedSSD, SSDProfile

DIM = 16


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def vectors(rng) -> np.ndarray:
    """Clustered vectors: 4 well-separated Gaussian blobs."""
    centers = rng.normal(scale=6.0, size=(4, DIM)).astype(np.float32)
    assignment = rng.integers(0, 4, size=400)
    return (centers[assignment] + rng.normal(scale=0.5, size=(400, DIM))).astype(
        np.float32
    )


@pytest.fixture
def small_config() -> SPFreshConfig:
    return SPFreshConfig(
        dim=DIM,
        max_posting_size=32,
        min_posting_size=3,
        build_target_posting_size=16,
        ssd_blocks=1 << 13,
        reassign_range=8,
        seed=7,
    )


@pytest.fixture
def built_index(vectors, small_config) -> SPFreshIndex:
    return SPFreshIndex.build(vectors, config=small_config)


@pytest.fixture
def ssd() -> SimulatedSSD:
    return SimulatedSSD(num_blocks=256, profile=SSDProfile(block_size=512))


@pytest.fixture
def codec() -> PostingCodec:
    return PostingCodec(dim=DIM, block_size=512)


@pytest.fixture
def controller(ssd, codec) -> BlockController:
    return BlockController(ssd, codec)


def make_posting(rng, n: int, dim: int = DIM, id_start: int = 0):
    """Random PostingData helper used across storage tests."""
    from repro.storage.layout import PostingData

    return PostingData.from_rows(
        ids=np.arange(id_start, id_start + n, dtype=np.int64),
        versions=rng.integers(0, 100, size=n).astype(np.uint8),
        vectors=rng.normal(size=(n, dim)).astype(np.float32),
    )
