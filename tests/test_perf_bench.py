"""Perf-regression harness tests: schema, determinism, compare verdicts.

The CI perf lane gates on the deterministic sections of ``BENCH_*.json``;
these tests pin down the three properties that gate relies on: every
emitted file round-trips through the stable schema, two runs under the
same seed produce byte-identical deterministic sections, and ``--compare``
renders the right verdict for within-tolerance, beyond-tolerance, and
new/missing metrics.
"""

from __future__ import annotations

import copy
import json

import pytest

from repro.bench.perf import (
    FILE_PREFIX,
    SCENARIOS,
    SCHEMA_VERSION,
    compare_dirs,
    compare_documents,
    load_documents,
    main,
    run_markdown_summary,
    run_scenarios,
    write_results,
)
from repro.bench.scales import PERF_SCALES


@pytest.fixture(scope="module")
def tiny_results():
    return run_scenarios(PERF_SCALES["tiny"], seed=0)


@pytest.fixture(scope="module")
def tiny_docs(tiny_results):
    return {r.scenario: r.to_document() for r in tiny_results}


class TestSchema:
    def test_all_scenarios_emit_files(self, tiny_results, tmp_path):
        paths = write_results(tiny_results, tmp_path)
        assert len(paths) == len(SCENARIOS) >= 4
        for path in paths:
            assert path.name.startswith(FILE_PREFIX)
            assert path.name.endswith(".json")

    def test_document_roundtrip(self, tiny_results, tmp_path):
        write_results(tiny_results, tmp_path)
        docs = load_documents(tmp_path)
        assert set(docs) == set(SCENARIOS)
        for result in tiny_results:
            assert docs[result.scenario] == result.to_document()

    def test_schema_keys_and_gating_policy(self, tiny_docs):
        for scenario, doc in tiny_docs.items():
            assert doc["schema_version"] == SCHEMA_VERSION
            assert doc["scenario"] == scenario
            assert doc["gating"] == {
                "deterministic": "gate",
                "wall_clock": "informational",
            }
            assert doc["deterministic"], scenario
            assert set(doc["directions"]) == set(doc["deterministic"])
            assert set(doc["directions"].values()) <= {"lower", "higher"}
            assert doc["config"]["seed"] == 0

    def test_percentile_and_io_metrics_present(self, tiny_docs):
        # Acceptance criterion: percentile latency + IOStats amplification.
        for scenario in ("search", "update", "cache"):
            keys = tiny_docs[scenario]["deterministic"]
            assert any(k.endswith("_p99.9") for k in keys), scenario
            assert any(k.endswith("_p50") for k in keys), scenario
        search = tiny_docs["search"]["deterministic"]
        assert search["single_read_amplification"] > 0
        assert search["single_io_block_reads"] > 0
        update = tiny_docs["update"]["deterministic"]
        assert update["write_amplification"] > 0

    def test_recall_gated_higher_is_better(self, tiny_docs):
        doc = tiny_docs["search"]
        assert doc["directions"]["single_recall_at_k"] == "higher"
        assert doc["directions"]["single_latency_us_p50"] == "lower"
        assert doc["deterministic"]["single_recall_at_k"] > 0.8

    def test_cache_scenario_uses_package_export(self, tiny_docs):
        # The cached-vs-uncached ablation rides on the public package API.
        from repro.storage import CachedBlockController  # noqa: F401

        cache = tiny_docs["cache"]["deterministic"]
        assert cache["cache_hit_rate"] > 0.5
        assert cache["cached_block_reads"] < cache["uncached_block_reads"]
        assert (
            cache["cached_latency_us_p50"] < cache["uncached_latency_us_p50"]
        )

    def test_recovery_replays_every_logged_update(self, tiny_docs):
        det = tiny_docs["recovery"]["deterministic"]
        assert det["wal_records_replayed"] + det["wal_records_skipped"] == (
            PERF_SCALES["tiny"].recovery_updates
        )
        assert det["wal_records_quarantined"] == 0
        assert det["live_vector_drift"] == 0

    def test_rebalance_exercises_lire_paths(self, tiny_docs):
        det = tiny_docs["rebalance"]["deterministic"]
        assert det["splits"] > 0
        assert det["merges"] > 0
        assert det["reassign_executed"] > 0


class TestDeterminism:
    def test_same_seed_byte_identical_deterministic_sections(
        self, tiny_results
    ):
        rerun = run_scenarios(PERF_SCALES["tiny"], seed=0)
        for first, second in zip(tiny_results, rerun):
            assert json.dumps(
                first.deterministic, sort_keys=True
            ) == json.dumps(second.deterministic, sort_keys=True)
            assert first.config == second.config

    def test_different_seed_changes_metrics(self):
        base = run_scenarios(PERF_SCALES["tiny"], seed=0, scenarios=["search"])
        other = run_scenarios(
            PERF_SCALES["tiny"], seed=7, scenarios=["search"]
        )
        assert base[0].deterministic != other[0].deterministic


class TestCompare:
    def test_self_compare_passes_at_zero_tolerance(self, tiny_docs):
        report = compare_documents(tiny_docs, tiny_docs, tolerance=0.0)
        assert report.ok
        assert not report.regressions
        assert "OK" in report.summary()

    def test_regression_beyond_tolerance_fails(self, tiny_docs):
        worse = copy.deepcopy(tiny_docs)
        worse["search"]["deterministic"]["single_latency_us_p50"] *= 1.10
        report = compare_documents(tiny_docs, worse, tolerance=0.05)
        assert not report.ok
        names = {(d.scenario, d.metric) for d in report.regressions}
        assert ("search", "single_latency_us_p50") in names
        assert "REGRESSION" in report.summary()

    def test_within_tolerance_passes(self, tiny_docs):
        close = copy.deepcopy(tiny_docs)
        close["search"]["deterministic"]["single_latency_us_p50"] *= 1.02
        assert compare_documents(tiny_docs, close, tolerance=0.05).ok

    def test_higher_is_better_direction(self, tiny_docs):
        worse = copy.deepcopy(tiny_docs)
        worse["search"]["deterministic"]["single_recall_at_k"] *= 0.5
        report = compare_documents(tiny_docs, worse, tolerance=0.05)
        assert not report.ok
        better = copy.deepcopy(tiny_docs)
        better["search"]["deterministic"]["single_recall_at_k"] = 1.0
        assert compare_documents(tiny_docs, better, tolerance=0.0).ok

    def test_new_metric_is_not_a_failure(self, tiny_docs):
        current = copy.deepcopy(tiny_docs)
        current["search"]["deterministic"]["brand_new_metric"] = 1.0
        report = compare_documents(tiny_docs, current, tolerance=0.05)
        assert report.ok
        assert any(d.verdict == "new" for d in report.deltas)

    def test_missing_metric_is_a_failure(self, tiny_docs):
        current = copy.deepcopy(tiny_docs)
        del current["search"]["deterministic"]["single_latency_us_p50"]
        report = compare_documents(tiny_docs, current, tolerance=0.05)
        assert not report.ok
        assert any(d.verdict == "missing" for d in report.regressions)

    def test_missing_scenario_is_a_failure(self, tiny_docs):
        current = {k: v for k, v in tiny_docs.items() if k != "recovery"}
        report = compare_documents(tiny_docs, current, tolerance=0.05)
        assert not report.ok
        assert report.missing_scenarios == ["recovery"]

    def test_new_scenario_is_not_a_failure(self, tiny_docs):
        baseline = {k: v for k, v in tiny_docs.items() if k != "recovery"}
        report = compare_documents(baseline, tiny_docs, tolerance=0.05)
        assert report.ok
        assert report.new_scenarios == ["recovery"]

    def test_compare_dirs_matches_documents(self, tiny_results, tmp_path):
        a = tmp_path / "a"
        b = tmp_path / "b"
        write_results(tiny_results, a)
        write_results(tiny_results, b)
        assert compare_dirs(a, b, tolerance=0.0).ok

    def test_markdown_outputs(self, tiny_results, tiny_docs):
        summary = run_markdown_summary(tiny_results)
        for scenario in SCENARIOS:
            assert scenario in summary
        worse = copy.deepcopy(tiny_docs)
        worse["search"]["deterministic"]["single_latency_us_p50"] *= 2
        table = compare_documents(tiny_docs, worse, tolerance=0.05).markdown()
        assert "regression" in table
        assert "single_latency_us_p50" in table


class TestCli:
    def test_main_run_and_self_compare(self, tmp_path, capsys):
        out = tmp_path / "out"
        assert (
            main(
                [
                    "--scale",
                    "tiny",
                    "--out",
                    str(out),
                    "--scenarios",
                    "cache",
                    "--summary",
                    str(tmp_path / "summary.md"),
                ]
            )
            == 0
        )
        assert (out / f"{FILE_PREFIX}cache.json").exists()
        assert (tmp_path / "summary.md").read_text().strip()
        assert (
            main(
                [
                    "--compare-only",
                    "--compare",
                    str(out),
                    "--out",
                    str(out),
                    "--tolerance",
                    "0",
                ]
            )
            == 0
        )
        capsys.readouterr()

    def test_main_detects_injected_regression(self, tmp_path, capsys):
        out = tmp_path / "out"
        baseline = tmp_path / "baseline"
        assert main(["--scale", "tiny", "--out", str(out), "--scenarios", "cache"]) == 0
        baseline.mkdir()
        doc = json.loads((out / f"{FILE_PREFIX}cache.json").read_text())
        doc["deterministic"]["cached_latency_us_p50"] *= 0.5  # baseline was faster
        (baseline / f"{FILE_PREFIX}cache.json").write_text(
            json.dumps(doc, indent=2, sort_keys=True)
        )
        assert (
            main(
                [
                    "--compare-only",
                    "--compare",
                    str(baseline),
                    "--out",
                    str(out),
                    "--tolerance",
                    "0.05",
                ]
            )
            == 1
        )
        capsys.readouterr()

    def test_repro_cli_subcommand(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        assert (
            cli_main(
                [
                    "perf",
                    "--scale",
                    "tiny",
                    "--scenarios",
                    "cache",
                    "--out",
                    str(tmp_path),
                ]
            )
            == 0
        )
        assert (tmp_path / f"{FILE_PREFIX}cache.json").exists()
        capsys.readouterr()
