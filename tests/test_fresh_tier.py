"""Fresh-tier (LSM-style memory tier) test suite.

Covers the tier data structure, the buffered insert path, flush/LIRE
interaction, the differential oracle against :class:`FlatIndex`, the
hypothesis-pinned parity properties (flush invisibility, delete masking,
batch/single agreement), WAL-backed recovery into the tier, the
tier-aware invariants, and the ``dedup_top_k`` duplicate-in-one-posting
regression the tier work surfaced. See docs/fresh-tier.md.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import FlatIndex
from repro.core.config import SPFreshConfig
from repro.core.fresh_tier import FreshTier
from repro.core.index import SPFreshIndex
from repro.core.version_map import VersionMap
from repro.spann.postings import _exact_dedup_top_k, dedup_top_k
from repro.storage.snapshot import SnapshotManager
from repro.storage.ssd import SimulatedSSD, SSDProfile
from repro.storage.wal import WriteAheadLog
from tests.conftest import DIM

from .helpers import live_assignment

FULL_PROBE = 10**6


def _fresh_config(threshold: int = 10_000, **overrides) -> SPFreshConfig:
    base = dict(
        dim=DIM,
        max_posting_size=32,
        min_posting_size=3,
        build_target_posting_size=16,
        ssd_blocks=1 << 13,
        reassign_range=8,
        seed=7,
        enable_fresh_tier=True,
        fresh_flush_threshold=threshold,
        search_latency_budget_us=None,
    )
    base.update(overrides)
    return SPFreshConfig(**base).validate()


def _clustered(n: int, seed: int = 11) -> np.ndarray:
    rng = np.random.default_rng(seed)
    centers = rng.normal(scale=6.0, size=(4, DIM)).astype(np.float32)
    assignment = rng.integers(0, 4, size=n)
    return (centers[assignment] + rng.normal(scale=0.5, size=(n, DIM))).astype(
        np.float32
    )


@pytest.fixture
def fresh_index(vectors):
    """Fresh-tier index over the shared clustered vectors, no auto flush."""
    return SPFreshIndex.build(vectors, config=_fresh_config())


# ----------------------------------------------------------------------
# the tier data structure
# ----------------------------------------------------------------------
class TestFreshTierUnit:
    def test_add_and_lookup(self):
        tier = FreshTier(DIM)
        vec = np.arange(DIM, dtype=np.float32)
        tier.add(7, vec, 3)
        assert len(tier) == 1
        assert 7 in tier
        assert 8 not in tier
        assert tier.version_of(7) == 3
        ids, versions, matrix = tier.entries()
        np.testing.assert_array_equal(ids, [7])
        np.testing.assert_array_equal(versions, [3])
        np.testing.assert_array_equal(matrix[0], vec)

    def test_add_overwrites_existing_row(self):
        tier = FreshTier(DIM)
        tier.add(7, np.zeros(DIM, dtype=np.float32), 0)
        tier.add(7, np.ones(DIM, dtype=np.float32), 1)
        assert len(tier) == 1
        assert tier.version_of(7) == 1
        _, _, matrix = tier.entries()
        np.testing.assert_array_equal(matrix[0], np.ones(DIM))

    def test_discard_swaps_with_last(self):
        tier = FreshTier(DIM)
        for vid in range(5):
            tier.add(vid, np.full(DIM, vid, dtype=np.float32), 0)
        assert tier.discard(2)
        assert not tier.discard(2)
        assert len(tier) == 4
        ids, _, matrix = tier.entries()
        assert set(ids) == {0, 1, 3, 4}
        for row, vid in enumerate(ids):
            np.testing.assert_array_equal(matrix[row], np.full(DIM, vid))

    def test_growth_beyond_initial_capacity(self):
        tier = FreshTier(DIM)
        for vid in range(100):
            tier.add(vid, np.full(DIM, vid, dtype=np.float32), 0)
        assert len(tier) == 100
        ids, _, matrix = tier.entries()
        for row, vid in enumerate(ids):
            np.testing.assert_array_equal(matrix[row], np.full(DIM, int(vid)))

    def test_clear_and_memory(self):
        tier = FreshTier(DIM)
        assert tier.memory_bytes() > 0
        tier.add(1, np.zeros(DIM, dtype=np.float32), 0)
        tier.clear()
        assert len(tier) == 0
        assert 1 not in tier

    def test_take_is_non_destructive(self):
        tier = FreshTier(DIM)
        for vid in range(6):
            tier.add(vid, np.full(DIM, vid, dtype=np.float32), 0)
        batch = tier.take(4)
        assert len(batch) == 4
        assert len(tier) == 6  # flush discards only after a durable append
        assert len(tier.take(None)) == 6

    def test_live_snapshot_masks_deleted_rows(self):
        vmap = VersionMap()
        tier = FreshTier(DIM, vmap)
        for vid in (1, 2):
            vmap.register(vid)
            tier.add(vid, np.full(DIM, vid, dtype=np.float32), 0)
        vmap.delete(1)
        ids, matrix = tier.live_snapshot()
        np.testing.assert_array_equal(ids, [2])
        np.testing.assert_array_equal(matrix[0], np.full(DIM, 2))

    def test_invalid_dim_rejected(self):
        with pytest.raises(ValueError):
            FreshTier(0)


# ----------------------------------------------------------------------
# the buffered insert path
# ----------------------------------------------------------------------
class TestInsertPath:
    def test_insert_lands_in_tier_not_on_disk(self, fresh_index, rng):
        sizes_before = fresh_index.posting_sizes().sum()
        latency = fresh_index.insert(9000, rng.normal(size=DIM).astype(np.float32))
        assert latency == fresh_index.config.fresh_insert_cpu_us
        assert len(fresh_index.fresh_tier) == 1
        assert 9000 in fresh_index.fresh_tier
        assert fresh_index.posting_sizes().sum() == sizes_before
        assert 9000 not in live_assignment(fresh_index)
        assert fresh_index.stats.fresh_inserts == 1

    def test_tier_resident_vector_is_searchable(self, fresh_index, rng):
        vec = rng.normal(size=DIM).astype(np.float32)
        fresh_index.insert(9001, vec)
        result = fresh_index.search(vec, 1, nprobe=FULL_PROBE)
        assert int(result.ids[0]) == 9001
        assert result.distances[0] == 0.0
        assert result.fresh_entries_scanned >= 1

    def test_threshold_triggers_flush(self, vectors, rng):
        index = SPFreshIndex.build(vectors, config=_fresh_config(threshold=16))
        for i in range(16):
            index.insert(9100 + i, rng.normal(size=DIM).astype(np.float32))
        index.drain()
        assert index.stats.fresh_flushes >= 1
        assert index.stats.fresh_flushed_vectors == 16
        assert len(index.fresh_tier) == 0
        assignment = live_assignment(index)
        for i in range(16):
            assert 9100 + i in assignment

    def test_flush_groups_appends(self, vectors, rng):
        # One grouped append per destination posting, not one per vector.
        index = SPFreshIndex.build(vectors, config=_fresh_config())
        for i in range(32):
            index.insert(9200 + i, vectors[i] + 0.01)
        flushed = index.flush_fresh_tier()
        assert flushed == 32
        assert 0 < index.stats.fresh_flush_appends < 32

    def test_delete_before_flush_never_reaches_disk(self, fresh_index, rng):
        vec = rng.normal(size=DIM).astype(np.float32)
        writes_before = fresh_index.ssd.stats.snapshot().block_writes
        fresh_index.insert(9002, vec)
        fresh_index.delete(9002)
        assert len(fresh_index.fresh_tier) == 0
        assert fresh_index.stats.fresh_discards == 1
        fresh_index.flush_fresh_tier()
        assert 9002 not in live_assignment(fresh_index)
        assert fresh_index.ssd.stats.snapshot().block_writes == writes_before
        result = fresh_index.search(vec, 5, nprobe=FULL_PROBE)
        assert 9002 not in set(map(int, result.ids))

    def test_delete_masks_flushed_duplicate(self, fresh_index, rng):
        vec = rng.normal(size=DIM).astype(np.float32)
        fresh_index.insert(9003, vec)
        fresh_index.flush_fresh_tier()
        assert 9003 in live_assignment(fresh_index)
        fresh_index.delete(9003)
        result = fresh_index.search(vec, 5, nprobe=FULL_PROBE)
        assert 9003 not in set(map(int, result.ids))

    def test_insert_logs_to_wal_before_ack(self, vectors, rng):
        wal = WriteAheadLog()
        index = SPFreshIndex.build(vectors, config=_fresh_config(), wal=wal)
        records_before = wal.record_count
        index.insert(9004, rng.normal(size=DIM).astype(np.float32))
        assert wal.record_count == records_before + 1
        assert 9004 in index.fresh_tier  # buffered, not on disk — WAL is
        # the only durable record of the ack.

    def test_checkpoint_flushes_tier_then_truncates_wal(self, vectors, rng):
        cfg = _fresh_config()
        wal = WriteAheadLog()
        snapshots = SnapshotManager()
        ssd = SimulatedSSD(cfg.ssd_blocks, SSDProfile(block_size=cfg.block_size))
        index = SPFreshIndex.build(
            vectors, config=cfg, wal=wal, snapshots=snapshots, device=ssd
        )
        for i in range(8):
            index.insert(9300 + i, rng.normal(size=DIM).astype(np.float32))
        index.checkpoint()
        assert len(index.fresh_tier) == 0
        assert wal.record_count == 0
        assignment = live_assignment(index)
        for i in range(8):
            assert 9300 + i in assignment

    def test_memory_bytes_includes_tier(self, fresh_index, rng):
        before = fresh_index.memory_bytes()
        for i in range(64):
            fresh_index.insert(9400 + i, rng.normal(size=DIM).astype(np.float32))
        assert fresh_index.memory_bytes() > before


# ----------------------------------------------------------------------
# age-based flush trigger (fresh_max_age_ops)
# ----------------------------------------------------------------------
class TestAgeFlush:
    def test_trickle_flushes_at_age_bound(self, vectors, rng):
        # Far below the size threshold, the op-count clock still forces
        # the buffered batch out after fresh_max_age_ops foreground ops.
        index = SPFreshIndex.build(
            vectors, config=_fresh_config(threshold=10_000, fresh_max_age_ops=5)
        )
        for i in range(4):
            index.insert(9500 + i, rng.normal(size=DIM).astype(np.float32))
        assert len(index.fresh_tier) == 4  # ages 1..4: not yet
        index.insert(9504, rng.normal(size=DIM).astype(np.float32))
        index.drain()
        assert index.stats.fresh_flushes >= 1
        assert len(index.fresh_tier) == 0
        assignment = live_assignment(index)
        for i in range(5):
            assert 9500 + i in assignment

    def test_deletes_count_toward_age(self, vectors, rng):
        index = SPFreshIndex.build(
            vectors, config=_fresh_config(threshold=10_000, fresh_max_age_ops=4)
        )
        index.insert(9510, rng.normal(size=DIM).astype(np.float32))
        # Deletes of disk-resident ids age the buffered batch too.
        for vid in (0, 1, 2):
            index.delete(vid)
        index.drain()
        assert index.stats.fresh_flushes >= 1
        assert len(index.fresh_tier) == 0
        assert 9510 in live_assignment(index)

    def test_age_clock_restarts_per_batch(self, vectors, rng):
        index = SPFreshIndex.build(
            vectors, config=_fresh_config(threshold=10_000, fresh_max_age_ops=6)
        )
        for i in range(6):
            index.insert(9520 + i, rng.normal(size=DIM).astype(np.float32))
        index.drain()
        assert index.stats.fresh_flushes == 1
        # A new batch gets a fresh clock: 5 more ops stay buffered.
        for i in range(5):
            index.insert(9530 + i, rng.normal(size=DIM).astype(np.float32))
        index.drain()
        assert index.stats.fresh_flushes == 1
        assert len(index.fresh_tier) == 5

    def test_disabled_by_default(self, vectors, rng):
        index = SPFreshIndex.build(vectors, config=_fresh_config())
        assert index.config.fresh_max_age_ops is None
        for i in range(50):
            index.insert(9540 + i, rng.normal(size=DIM).astype(np.float32))
            index.delete(9540 + i)
        index.insert(9999, rng.normal(size=DIM).astype(np.float32))
        for vid in range(20):
            index.delete(int(vid))
        index.drain()
        # No age trigger, under the size threshold: still buffered.
        assert index.stats.fresh_flushes == 0
        assert 9999 in index.fresh_tier

    def test_empty_tier_does_not_age(self, vectors):
        index = SPFreshIndex.build(
            vectors, config=_fresh_config(threshold=10_000, fresh_max_age_ops=2)
        )
        # Deletes with nothing buffered never enqueue a flush.
        for vid in range(10):
            index.delete(int(vid))
        index.drain()
        assert index.stats.fresh_flushes == 0


# ----------------------------------------------------------------------
# differential oracle: FlatIndex in lockstep
# ----------------------------------------------------------------------
class TestDifferentialOracle:
    STEPS = 180

    def _check_search(self, index, oracle, query, k):
        want_ids, want_dists = oracle.search(query, k)
        result = index.search(query, k, nprobe=FULL_PROBE)
        assert set(map(int, result.ids)) == set(map(int, want_ids))
        np.testing.assert_array_equal(result.distances, want_dists)

    def test_lockstep_interleaving_with_mid_flush_states(self):
        base = _clustered(120)
        index = SPFreshIndex.build(base, config=_fresh_config())
        oracle = FlatIndex(DIM)
        for vid, vec in enumerate(base):
            oracle.insert(vid, vec)

        rng = np.random.default_rng(42)
        live = list(range(len(base)))
        next_vid = 5000
        for step in range(self.STEPS):
            roll = rng.random()
            if roll < 0.45:
                vec = rng.normal(scale=3.0, size=DIM).astype(np.float32)
                index.insert(next_vid, vec)
                oracle.insert(next_vid, vec)
                live.append(next_vid)
                next_vid += 1
            elif roll < 0.65 and live:
                victim = live.pop(int(rng.integers(len(live))))
                index.delete(victim)
                oracle.delete(victim)
            else:
                query = rng.normal(scale=3.0, size=DIM).astype(np.float32)
                self._check_search(index, oracle, query, 8)
            if step % 23 == 11:
                # Partial flush parks the index mid-flush: some rows moved
                # to postings, the rest still tier-resident.
                index.flush_fresh_tier(max_vectors=3)
                query = rng.normal(scale=3.0, size=DIM).astype(np.float32)
                self._check_search(index, oracle, query, 8)
        # Final drain and a last sweep from live vectors themselves.
        index.flush_fresh_tier()
        index.drain()
        assert index.check_invariants().ok
        for vid in live[:10]:
            # Perturbed live vectors probe the near-duplicate regime.
            query = oracle._vectors[vid] + np.float32(0.01)
            self._check_search(index, oracle, query, 8)


# ----------------------------------------------------------------------
# hypothesis-pinned parity properties
# ----------------------------------------------------------------------
class TestParityProperties:
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=12, deadline=None)
    def test_flush_is_invisible_to_search(self, seed):
        """Tier-merged search is bit-identical to the eagerly-flushed index."""
        index = SPFreshIndex.build(_clustered(60), config=_fresh_config())
        rng = np.random.default_rng(seed)
        for i in range(int(rng.integers(1, 40))):
            index.insert(7000 + i, rng.normal(scale=3.0, size=DIM).astype(np.float32))
        queries = rng.normal(scale=3.0, size=(6, DIM)).astype(np.float32)
        pre = [index.search(q, 5, nprobe=FULL_PROBE) for q in queries]
        assert index.flush_fresh_tier() > 0
        post = [index.search(q, 5, nprobe=FULL_PROBE) for q in queries]
        for p, q in zip(pre, post):
            np.testing.assert_array_equal(p.ids, q.ids)
            np.testing.assert_array_equal(p.distances, q.distances)

    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=12, deadline=None)
    def test_deleted_ids_never_surface(self, seed):
        """Deletes mask both tier-resident rows and flushed disk duplicates."""
        index = SPFreshIndex.build(_clustered(60), config=_fresh_config())
        rng = np.random.default_rng(seed)
        inserted = []
        for i in range(24):
            vec = rng.normal(scale=3.0, size=DIM).astype(np.float32)
            index.insert(7100 + i, vec)
            inserted.append((7100 + i, vec))
        # Flush half, so victims span disk-resident and tier-resident rows.
        index.flush_fresh_tier(max_vectors=12)
        picks = rng.choice(len(inserted), size=8, replace=False)
        for pick in picks:
            index.delete(inserted[pick][0])
        victims = {inserted[pick][0] for pick in picks}
        for pick in picks:
            vid, vec = inserted[pick]
            result = index.search(vec, 10, nprobe=FULL_PROBE)
            assert not victims & set(map(int, result.ids))

    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=12, deadline=None)
    def test_batch_single_parity_with_resident_tier(self, seed):
        index = SPFreshIndex.build(_clustered(60), config=_fresh_config())
        rng = np.random.default_rng(seed)
        for i in range(int(rng.integers(1, 30))):
            index.insert(7200 + i, rng.normal(scale=3.0, size=DIM).astype(np.float32))
        assert len(index.fresh_tier) > 0
        queries = rng.normal(scale=3.0, size=(5, DIM)).astype(np.float32)
        singles = [index.search(q, 5, nprobe=FULL_PROBE) for q in queries]
        batched = index.search_batch(queries, 5, nprobe=FULL_PROBE)
        for s, b in zip(singles, batched):
            np.testing.assert_array_equal(s.ids, b.ids)
            np.testing.assert_array_equal(s.distances, b.distances)
            assert s.fresh_entries_scanned == b.fresh_entries_scanned


# ----------------------------------------------------------------------
# durability: WAL replay lands acked inserts back in the tier
# ----------------------------------------------------------------------
class TestRecoveryIntoTier:
    def test_acked_unflushed_inserts_recover_into_tier(self, rng):
        cfg = _fresh_config()
        ssd = SimulatedSSD(cfg.ssd_blocks, SSDProfile(block_size=cfg.block_size))
        wal = WriteAheadLog()
        snapshots = SnapshotManager()
        index = SPFreshIndex.build(
            _clustered(60), config=cfg, wal=wal, snapshots=snapshots, device=ssd
        )
        index.checkpoint()
        fresh = {
            8000 + i: rng.normal(scale=3.0, size=DIM).astype(np.float32)
            for i in range(12)
        }
        for vid, vec in fresh.items():
            index.insert(vid, vec)
        assert len(index.fresh_tier) == 12  # acked but never flushed

        # "Process restart": recover from durable state only.
        recovered = SPFreshIndex.recover(ssd, cfg, snapshots, wal=wal)
        assert recovered.last_recovery.records_in_fresh_tier == 12
        assert "fresh tier" in recovered.last_recovery.summary()
        for vid, vec in fresh.items():
            assert vid in recovered.fresh_tier
            result = recovered.search(vec, 1, nprobe=FULL_PROBE)
            assert int(result.ids[0]) == vid
        assert recovered.check_invariants().ok


# ----------------------------------------------------------------------
# tier-aware invariants
# ----------------------------------------------------------------------
class TestTierInvariants:
    def test_tier_resident_vectors_are_not_lost(self, fresh_index, rng):
        for i in range(10):
            fresh_index.insert(9500 + i, rng.normal(size=DIM).astype(np.float32))
        report = fresh_index.check_invariants()
        assert report.ok, report.failures
        assert report.fresh_tier_vectors == 10

    def test_stale_tier_row_is_flagged(self, fresh_index, rng):
        vec = rng.normal(size=DIM).astype(np.float32)
        fresh_index.insert(9600, vec)
        # Tombstone the id behind the tier's back: the row is now stale
        # and the hygiene check must catch it.
        fresh_index.version_map.delete(9600)
        report = fresh_index.check_invariants()
        assert not report.ok
        assert report.stale_tier_entries == [9600]

    def test_mid_flush_state_passes_conservation(self, fresh_index, rng):
        for i in range(20):
            fresh_index.insert(9700 + i, rng.normal(size=DIM).astype(np.float32))
        fresh_index.flush_fresh_tier(max_vectors=7)
        report = fresh_index.check_invariants()
        assert report.ok, report.failures
        # Some vectors on disk, the rest tier-resident; none lost.
        assert report.fresh_tier_vectors == 13


# ----------------------------------------------------------------------
# regression: duplicate live replicas of one id inside a single posting
# ----------------------------------------------------------------------
class TestDedupTopKDuplicateRegression:
    def test_capped_prefilter_falls_back_when_ids_collide(self):
        # A merge can co-locate two live boundary replicas of one id in a
        # single posting, so `max_dup` (the searcher passes the number of
        # candidate arrays) undercounts and the capped prefix can span
        # fewer than k unique ids. The fallback must recover the exact
        # answer instead of returning a short/incomplete top-k.
        ids = np.array([21, 21, 12, 26, 30, 32], dtype=np.int64)
        dists = np.array([0.1, 0.1, 0.2, 0.3, 0.4, 0.5], dtype=np.float32)
        got_ids, got_dists = dedup_top_k(ids, dists, 5, max_dup=1)
        want_ids, want_dists = _exact_dedup_top_k(ids, dists, 5)
        np.testing.assert_array_equal(got_ids, want_ids)
        np.testing.assert_array_equal(got_dists, want_dists)
        assert set(got_ids) == {21, 12, 26, 30, 32}

    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        max_dup=st.integers(min_value=1, max_value=4),
        k=st.integers(min_value=1, max_value=12),
    )
    @settings(max_examples=60, deadline=None)
    def test_capped_matches_uncapped_exactly(self, seed, max_dup, k):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 60))
        ids = rng.integers(0, 20, size=n).astype(np.int64)
        dists = rng.random(n).astype(np.float32)
        got_ids, got_dists = dedup_top_k(ids, dists, k, max_dup=max_dup)
        want_ids, want_dists = _exact_dedup_top_k(ids, dists, k)
        np.testing.assert_array_equal(got_ids, want_ids)
        np.testing.assert_array_equal(got_dists, want_dists)
