"""Tests for the proactive maintenance scanner."""

import numpy as np
import pytest

from repro.core.maintenance import MaintenanceScanner, ScanReport
from tests.conftest import DIM


class TestScanReport:
    def test_jobs_scheduled_sum(self):
        report = ScanReport(merges_scheduled=2, splits_scheduled=3)
        assert report.jobs_scheduled == 5


class TestScanner:
    def test_invalid_threshold(self, built_index):
        with pytest.raises(ValueError):
            MaintenanceScanner(built_index, garbage_threshold=0.0)
        with pytest.raises(ValueError):
            MaintenanceScanner(built_index, garbage_threshold=1.5)

    def test_clean_index_schedules_nothing(self, built_index):
        report = MaintenanceScanner(built_index).scan()
        assert report.splits_scheduled == 0
        assert report.gc_rewrites == 0
        assert report.postings_scanned == built_index.num_postings

    def test_detects_undersized_postings(self, built_index):
        # Carve a posting down below the merge threshold.
        pid = max(
            built_index.controller.posting_ids(),
            key=built_index.controller.length,
        )
        data, _ = built_index.controller.get(pid)
        for vid in data.ids[: len(data) - 1]:
            built_index.version_map.delete(int(vid))
        report = MaintenanceScanner(built_index).scan(drain=False)
        assert report.merges_scheduled + report.gc_rewrites >= 1

    def test_gc_rewrites_garbage_heavy_posting(self, built_index, vectors):
        for vid in range(len(vectors) // 2):
            built_index.delete(vid)
        entries_before = built_index.controller.total_entries()
        report = MaintenanceScanner(built_index, garbage_threshold=0.3).scan()
        assert report.gc_rewrites >= 1
        assert built_index.controller.total_entries() < entries_before

    def test_max_postings_bound(self, built_index):
        report = MaintenanceScanner(built_index).scan(max_postings=3)
        assert report.postings_scanned == 3

    def test_dead_entries_counted(self, built_index, vectors):
        for vid in range(25):
            built_index.delete(vid)
        report = MaintenanceScanner(built_index).scan(drain=False)
        assert report.dead_entries_seen >= 25

    def test_drain_runs_scheduled_jobs(self, built_index, rng):
        # Leave an oversized posting behind by bypassing the updater.
        from repro.storage.layout import PostingData

        pid = built_index.controller.posting_ids()[0]
        extra = built_index.config.max_posting_size + 5
        ids = np.arange(80_000, 80_000 + extra)
        for vid in ids:
            built_index.version_map.register(int(vid))
        built_index.controller.append(
            pid,
            PostingData.from_rows(
                ids,
                np.zeros(extra, dtype=np.uint8),
                rng.normal(size=(extra, DIM)).astype(np.float32),
            ),
        )
        splits_before = built_index.stats.splits
        report = MaintenanceScanner(built_index).scan()
        assert report.splits_scheduled >= 1
        assert built_index.stats.splits > splits_before
