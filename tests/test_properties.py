"""Cross-cutting property-based tests (hypothesis) on core invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.clustering.balanced import balanced_kmeans
from repro.spann.postings import dedup_top_k
from repro.storage.wal import WriteAheadLog
from repro.util.mips import MipsTransform

coords = st.floats(-20, 20, allow_nan=False, allow_infinity=False, width=32)


class TestDedupProperties:
    @given(
        st.lists(st.integers(0, 15), min_size=1, max_size=60),
        st.integers(1, 20),
    )
    @settings(max_examples=50)
    def test_dedup_output_unique_and_sorted(self, id_list, k):
        rng = np.random.default_rng(42)
        ids = np.array(id_list, dtype=np.int64)
        dists = rng.random(len(ids)).astype(np.float32)
        top_ids, top_dists = dedup_top_k(ids, dists, k)
        assert len(set(top_ids.tolist())) == len(top_ids)
        assert list(top_dists) == sorted(top_dists)
        assert len(top_ids) == min(k, len(set(id_list)))

    @given(st.lists(st.integers(0, 15), min_size=1, max_size=60))
    @settings(max_examples=30)
    def test_dedup_keeps_global_minimum(self, id_list):
        rng = np.random.default_rng(7)
        ids = np.array(id_list, dtype=np.int64)
        dists = rng.random(len(ids)).astype(np.float32)
        top_ids, top_dists = dedup_top_k(ids, dists, 1)
        assert top_dists[0] == dists.min()
        assert top_ids[0] == ids[int(dists.argmin())]


class TestBalancedKMeansProperties:
    @given(st.integers(4, 60), st.integers(2, 6))
    @settings(max_examples=20, deadline=None)
    def test_every_point_assigned_once(self, n, k):
        rng = np.random.default_rng(n * 7 + k)
        points = rng.normal(size=(n, 6)).astype(np.float32)
        centroids, assignments = balanced_kmeans(points, k, rng, max_iters=4)
        assert len(assignments) == n
        assert assignments.min() >= 0
        assert assignments.max() < len(centroids)

    @given(st.integers(10, 50))
    @settings(max_examples=15, deadline=None)
    def test_strong_balance_with_high_weight(self, n):
        rng = np.random.default_rng(n)
        points = rng.normal(size=(n, 4)).astype(np.float32)
        _, assignments = balanced_kmeans(points, 2, rng, balance_weight=64.0)
        counts = np.bincount(assignments, minlength=2)
        assert abs(counts[0] - counts[1]) <= max(2, n // 5)


class TestWalProperties:
    @given(
        st.lists(
            st.tuples(
                st.booleans(),
                st.integers(0, 10**6),
                hnp.arrays(np.float32, (4,), elements=coords),
            ),
            max_size=30,
        )
    )
    @settings(max_examples=30)
    def test_replay_reproduces_any_sequence(self, records):
        wal = WriteAheadLog()
        for is_insert, vid, vec in records:
            if is_insert:
                wal.log_insert(vid, vec)
            else:
                wal.log_delete(vid)
        replayed = list(wal.replay())
        assert len(replayed) == len(records)
        for (is_insert, vid, vec), rec in zip(records, replayed):
            assert rec.is_insert == is_insert
            assert rec.vector_id == vid
            if is_insert:
                np.testing.assert_array_equal(rec.vector, vec)

    @given(
        st.lists(
            st.tuples(
                st.booleans(),
                st.integers(0, 10**6),
                hnp.arrays(np.float32, (4,), elements=coords),
            ),
            max_size=20,
        ),
        st.data(),
    )
    @settings(max_examples=60)
    def test_truncation_replays_longest_valid_prefix(self, records, data):
        """A WAL cut at *any* byte offset replays the longest whole-frame
        prefix, reports the rest as a torn tail, and never raises."""
        from repro.storage.wal import WalReplayReport

        wal = WriteAheadLog()
        boundaries = [0]  # byte offset after each complete frame
        for is_insert, vid, vec in records:
            if is_insert:
                wal.log_insert(vid, vec)
            else:
                wal.log_delete(vid)
            boundaries.append(wal.size_bytes())
        stream = wal.to_bytes()
        cut = data.draw(st.integers(0, len(stream)), label="cut")

        torn = WriteAheadLog()
        torn.load_bytes(stream[:cut])
        report = WalReplayReport()
        replayed = list(torn.replay(report=report))  # must never raise

        whole = sum(1 for b in boundaries[1:] if b <= cut)
        assert len(replayed) == whole
        for (is_insert, vid, vec), rec in zip(records, replayed):
            assert rec.is_insert == is_insert
            assert rec.vector_id == vid
        assert report.records_quarantined == 0
        assert report.torn_tail_bytes == cut - boundaries[whole]

    @given(
        st.lists(
            st.tuples(
                st.booleans(),
                st.integers(0, 10**6),
                hnp.arrays(np.float32, (4,), elements=coords),
            ),
            min_size=1,
            max_size=20,
        ),
        st.data(),
    )
    @settings(max_examples=60)
    def test_flipped_byte_is_never_silently_replayed(self, records, data):
        """Any single corrupted byte loses exactly the frame containing it
        — detected by CRC and reported — while every other record survives
        intact. No flipped record is ever replayed as if it were valid."""
        from repro.storage.wal import WalReplayReport

        wal = WriteAheadLog()
        for is_insert, vid, vec in records:
            if is_insert:
                wal.log_insert(vid, vec)
            else:
                wal.log_delete(vid)
        stream = bytearray(wal.to_bytes())
        offset = data.draw(st.integers(0, len(stream) - 1), label="offset")
        mask = data.draw(st.integers(1, 255), label="mask")
        stream[offset] ^= mask

        damaged = WriteAheadLog()
        damaged.load_bytes(bytes(stream))
        report = WalReplayReport()
        replayed = list(damaged.replay(report=report))  # must never raise

        assert len(replayed) == len(records) - 1
        assert report.records_quarantined >= 1 or report.torn_tail_bytes > 0
        # Every replayed record matches an original verbatim (multiset).
        originals = [
            (is_insert, vid, vec.tobytes() if is_insert else b"")
            for is_insert, vid, vec in records
        ]
        for rec in replayed:
            key = (
                rec.is_insert,
                rec.vector_id,
                rec.vector.tobytes() if rec.is_insert else b"",
            )
            assert key in originals
            originals.remove(key)


class TestMipsProperties:
    @given(
        hnp.arrays(np.float32, (6, 5), elements=coords),
    )
    @settings(max_examples=30)
    def test_augmented_norms_equal_bound(self, vectors):
        transform = MipsTransform.fit(vectors, headroom=1.3)
        augmented = transform.transform_data(vectors)
        norms = np.linalg.norm(augmented.astype(np.float64), axis=1)
        np.testing.assert_allclose(norms, transform.norm_bound, rtol=1e-3)

    @given(hnp.arrays(np.float32, (5,), elements=coords))
    @settings(max_examples=30)
    def test_query_transform_preserves_prefix(self, query):
        transform = MipsTransform(5, 100.0)
        augmented = transform.transform_query(query)
        np.testing.assert_array_equal(augmented[:5], query)
        assert augmented[5] == 0.0
