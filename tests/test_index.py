"""End-to-end tests of the SPFreshIndex public API and LIRE invariants."""

import numpy as np
import pytest

from repro.core.config import SPFreshConfig
from repro.core.index import SPFreshIndex
from repro.datasets import GroundTruthTracker
from tests.conftest import DIM
from tests.helpers import (
    assert_no_vector_lost,
    assert_posting_size_bounds,
    npa_violations,
)


class TestBuild:
    def test_build_registers_everything(self, built_index, vectors):
        assert built_index.live_vector_count == len(vectors)
        assert built_index.num_postings > 1

    def test_build_with_custom_ids(self, vectors, small_config):
        ids = np.arange(1000, 1000 + len(vectors))
        index = SPFreshIndex.build(vectors, ids=ids, config=small_config)
        result = index.search(vectors[0], 1, nprobe=index.num_postings)
        assert result.ids[0] == 1000

    def test_build_id_length_mismatch(self, vectors, small_config):
        with pytest.raises(ValueError):
            SPFreshIndex.build(vectors, ids=np.arange(3), config=small_config)

    def test_build_dim_inferred(self, vectors):
        index = SPFreshIndex.build(vectors, config=SPFreshConfig(dim=1, ssd_blocks=1 << 13))
        assert index.config.dim == DIM

    def test_initial_recall_is_high(self, built_index, vectors):
        queries = vectors[:30]
        hits = 0
        for i, q in enumerate(queries):
            result = built_index.search(q, 10, nprobe=8)
            if i in set(int(x) for x in result.ids):
                hits += 1
        assert hits >= 28  # the query vector itself must be found


class TestChurnInvariants:
    def churn(self, index, rng, rounds=300, id_start=100_000):
        """Random interleaved inserts/deletes biased toward one region."""
        tracker = {int(i) for i in range(index.live_vector_count)}
        hot = index.centroid_index.get(index.controller.posting_ids()[0])
        next_id = id_start
        for step in range(rounds):
            if step % 3 != 2:
                vec = (hot + rng.normal(scale=0.3, size=DIM)).astype(np.float32)
                index.insert(next_id, vec)
                tracker.add(next_id)
                next_id += 1
            elif tracker:
                victim = int(rng.choice(sorted(tracker)))
                index.delete(victim)
                tracker.discard(victim)
        index.drain()
        return tracker

    def test_no_vector_lost_under_churn(self, built_index, rng):
        live = self.churn(built_index, rng)
        assert_no_vector_lost(built_index, live)

    def test_posting_sizes_bounded_under_churn(self, built_index, rng):
        self.churn(built_index, rng)
        assert_posting_size_bounds(built_index)

    def test_npa_maintained_under_churn(self, built_index, rng):
        self.churn(built_index, rng)
        violations = npa_violations(built_index)
        assert len(violations) <= max(2, built_index.live_vector_count // 100)

    def test_convergence_jobs_terminate(self, built_index, rng):
        """Cascading split-reassign always drains (paper §3.4)."""
        self.churn(built_index, rng, rounds=200)
        # drain() already ran; queue must be empty and stay empty.
        assert built_index.job_queue.pending == 0
        executed = built_index.rebuilder.drain()
        assert executed == 0

    def test_split_count_bounded_by_vectors(self, built_index, rng):
        """|C| grows by one per split and |C| <= |V| (convergence bound)."""
        self.churn(built_index, rng)
        total_vectors = built_index.controller.total_entries()
        assert built_index.stats.splits <= total_vectors

    def test_recall_stays_high_under_churn(self, built_index, vectors, rng):
        tracker = GroundTruthTracker(
            np.arange(len(vectors)), vectors
        )
        hot = built_index.centroid_index.get(built_index.controller.posting_ids()[0])
        for i in range(200):
            vid = 200_000 + i
            vec = (hot + rng.normal(scale=0.3, size=DIM)).astype(np.float32)
            built_index.insert(vid, vec)
            tracker.insert(vid, vec)
        built_index.drain()
        queries = vectors[:20]
        gt = tracker.ground_truth(queries, 10)
        recalls = []
        for i, q in enumerate(queries):
            result = built_index.search(q, 10, nprobe=8)
            recalls.append(
                len(set(map(int, result.ids)) & set(map(int, gt[i]))) / 10
            )
        assert np.mean(recalls) > 0.8


class TestMaintenance:
    def test_gc_pass_reclaims_dead_entries(self, built_index, vectors):
        for vid in range(0, 100):
            built_index.delete(vid)
        entries_before = built_index.controller.total_entries()
        rewritten = built_index.gc_pass()
        assert rewritten > 0
        assert built_index.controller.total_entries() < entries_before

    def test_gc_pass_bounded(self, built_index):
        for vid in range(0, 50):
            built_index.delete(vid)
        assert built_index.gc_pass(max_postings=1) <= 1

    def test_memory_accounting_positive_components(self, built_index):
        total = built_index.memory_bytes()
        assert total > 0
        assert built_index.centroid_index.memory_bytes() > 0
        assert built_index.version_map.memory_bytes() > 0
        assert built_index.controller.mapping_memory_bytes() > 0

    def test_posting_sizes_snapshot(self, built_index):
        sizes = built_index.posting_sizes()
        assert len(sizes) == built_index.num_postings
        assert (sizes >= 0).all()

    def test_replica_histogram(self, built_index, vectors):
        histogram = built_index.replica_histogram()
        assert sum(histogram.values()) == len(vectors)
        assert all(count >= 1 for count in histogram)

    def test_replica_histogram_skips_stale_postings(self, built_index, vectors):
        from repro.util.errors import StalePostingError

        replica_mass = lambda h: sum(rc * freq for rc, freq in h.items())  # noqa: E731
        baseline = replica_mass(built_index.replica_histogram())
        original_get = built_index.controller.get
        skipped_pid = built_index.controller.posting_ids()[0]

        def flaky_get(pid):
            if pid == skipped_pid:
                raise StalePostingError(f"posting {pid} does not exist")
            return original_get(pid)

        built_index.controller.get = flaky_get
        # Concurrently-deleted postings are skipped, not fatal.
        assert replica_mass(built_index.replica_histogram()) < baseline

    def test_replica_histogram_propagates_storage_errors(self, built_index):
        """Regression: a blanket ``except Exception`` used to silently
        swallow real storage failures, not just concurrent deletions."""
        from repro.util.errors import StorageError

        def broken_get(pid):
            raise StorageError("device read failed")

        built_index.controller.get = broken_get
        with pytest.raises(StorageError):
            built_index.replica_histogram()

    def test_checkpoint_requires_snapshot_manager(self, built_index):
        with pytest.raises(ValueError):
            built_index.checkpoint()


class TestBatchAPI:
    def test_insert_batch(self, built_index, rng):
        ids = np.arange(300_000, 300_010)
        vecs = rng.normal(size=(10, DIM)).astype(np.float32)
        latencies = built_index.insert_batch(ids, vecs)
        assert len(latencies) == 10
        assert built_index.live_vector_count >= 10

    def test_delete_batch(self, built_index):
        live_before = built_index.live_vector_count
        built_index.delete_batch(np.arange(5))
        assert built_index.live_vector_count == live_before - 5
