"""Tests for the Table 2/3 thread-allocation presets."""

from repro.bench import TABLE2_THREAD_ALLOCATION, TABLE3_THREAD_ALLOCATION


class TestTable2:
    def test_totals_match_paper(self):
        assert TABLE2_THREAD_ALLOCATION["DiskANN"]["total"] == 16
        assert TABLE2_THREAD_ALLOCATION["SPANN+"]["total"] == 6
        assert TABLE2_THREAD_ALLOCATION["SPFresh"]["total"] == 6

    def test_components_sum_to_total(self):
        for system, alloc in TABLE2_THREAD_ALLOCATION.items():
            components = sum(v for k, v in alloc.items() if k != "total")
            assert components == alloc["total"], system

    def test_spfresh_and_spann_plus_identical(self):
        a = {k: v for k, v in TABLE2_THREAD_ALLOCATION["SPFresh"].items()}
        b = {k: v for k, v in TABLE2_THREAD_ALLOCATION["SPANN+"].items()}
        assert a == b  # paper allocates them identically

    def test_diskann_background_heaviest(self):
        alloc = TABLE2_THREAD_ALLOCATION["DiskANN"]
        assert alloc["background"] == max(
            v for k, v in alloc.items() if k != "total"
        )


class TestTable3:
    def test_total(self):
        assert TABLE3_THREAD_ALLOCATION["total"] == 15

    def test_components_sum(self):
        components = sum(
            v for k, v in TABLE3_THREAD_ALLOCATION.items() if k != "total"
        )
        assert components == TABLE3_THREAD_ALLOCATION["total"]

    def test_search_dominates_stress_config(self):
        assert TABLE3_THREAD_ALLOCATION["search"] == 8
