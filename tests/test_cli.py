"""Smoke tests for the `python -m repro` CLI."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["overview"])
        assert args.base == 4000
        assert args.dim == 32
        assert not args.skewed

    def test_simulate_flags(self):
        args = build_parser().parse_args(
            ["simulate", "--days", "3", "--rate", "0.05", "--skewed"]
        )
        assert args.days == 3
        assert args.rate == 0.05
        assert args.skewed


class TestCommands:
    BASE = ["--base", "600", "--queries", "10"]

    def test_overview(self, capsys):
        assert main(["overview", *self.BASE]) == 0
        out = capsys.readouterr().out
        assert "postings:" in out and "replicas:" in out

    def test_sweep_nprobe(self, capsys):
        assert main(["sweep-nprobe", *self.BASE]) == 0
        out = capsys.readouterr().out
        assert "recall10@10" in out

    def test_simulate(self, capsys):
        assert main(
            ["simulate", *self.BASE, "--days", "2", "--rate", "0.02"]
        ) == 0
        out = capsys.readouterr().out
        assert "mean recall" in out

    def test_compare_without_diskann(self, capsys):
        assert main(
            [
                "compare",
                *self.BASE,
                "--days", "2",
                "--rate", "0.02",
                "--skip-diskann",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "SPFresh" in out and "SPANN+" in out
