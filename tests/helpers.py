"""Shared assertion helpers for LIRE-level invariants."""

from __future__ import annotations

import numpy as np

from repro.spann.postings import live_view
from repro.util.distance import sq_l2


def live_assignment(index) -> dict[int, set[int]]:
    """Map of live vector id -> set of postings holding a live replica."""
    out: dict[int, set[int]] = {}
    for pid in index.controller.posting_ids():
        data, _ = index.controller.get(pid)
        live = live_view(data, index.version_map)
        for vid in live.ids:
            out.setdefault(int(vid), set()).add(pid)
    return out


def live_vector_of(index, vector_id: int) -> np.ndarray:
    """Fetch one live vector's raw data from any posting holding it."""
    for pid in index.controller.posting_ids():
        data, _ = index.controller.get(pid)
        live = live_view(data, index.version_map)
        rows = np.nonzero(live.ids == vector_id)[0]
        if len(rows):
            return live.vectors[rows[0]]
    raise AssertionError(f"vector {vector_id} has no live replica")


def assert_no_vector_lost(index, expected_live_ids) -> None:
    """Every expected live id has at least one live on-disk replica."""
    assignment = live_assignment(index)
    missing = set(int(v) for v in expected_live_ids) - set(assignment)
    assert not missing, f"lost vectors: {sorted(missing)[:10]}"
    extra = set(assignment) - set(int(v) for v in expected_live_ids)
    assert not extra, f"ghost vectors: {sorted(extra)[:10]}"


def brute_force_topk(
    vectors_by_vid: dict[int, np.ndarray], query: np.ndarray, k: int
) -> list[int]:
    """Exact top-k ids by squared L2 over an explicit id->vector oracle."""
    ids = sorted(vectors_by_vid)
    matrix = np.stack([vectors_by_vid[vid] for vid in ids])
    dists = ((matrix - query) ** 2).sum(axis=1)
    order = np.argsort(dists, kind="stable")
    return [ids[int(i)] for i in order[:k]]


def assert_posting_size_bounds(index, slack: int = 0) -> None:
    """After drain, no posting exceeds the split limit (+slack)."""
    limit = index.config.max_posting_size + slack
    for pid in index.controller.posting_ids():
        assert index.controller.length(pid) <= limit, (
            f"posting {pid} has {index.controller.length(pid)} entries > {limit}"
        )


def npa_violations(index, tolerance: float = 1e-5) -> list[int]:
    """Live vectors whose *best* replica posting is not their nearest centroid.

    With boundary replication a vector satisfies NPA if ANY of its live
    replicas sits in the nearest posting.
    """
    assignment = live_assignment(index)
    violations = []
    for vid, postings in assignment.items():
        vector = live_vector_of(index, vid)
        hits = index.centroid_index.search(vector, 1)
        if len(hits) == 0:
            continue
        nearest = hits.nearest
        if nearest in postings:
            continue
        # Tie tolerance: equal-distance centroids are both "nearest".
        d_nearest = sq_l2(vector, index.centroid_index.get(nearest))
        best = min(
            sq_l2(vector, index.centroid_index.get(pid)) for pid in postings
        )
        if best > d_nearest * (1 + tolerance) + tolerance:
            violations.append(vid)
    return violations
