"""Tests for synthetic datasets, ground truth, and workloads."""

import numpy as np
import pytest

from repro.datasets import (
    GroundTruthTracker,
    exact_knn,
    make_sift_like,
    make_spacev_like,
    make_workload,
    workload_a,
    workload_b,
    workload_c,
)
from repro.datasets.synthetic import make_clustered


class TestGenerators:
    def test_shapes(self):
        ds = make_sift_like(500, 100, dim=16, n_clusters=8, seed=3)
        assert ds.base.shape == (500, 16)
        assert ds.pool.shape == (100, 16)
        assert ds.base.dtype == np.float32
        assert ds.dim == 16

    def test_deterministic_by_seed(self):
        a = make_sift_like(100, 10, dim=8, seed=5)
        b = make_sift_like(100, 10, dim=8, seed=5)
        np.testing.assert_array_equal(a.base, b.base)
        np.testing.assert_array_equal(a.pool, b.pool)

    def test_seeds_differ(self):
        a = make_sift_like(100, 0, dim=8, seed=1)
        b = make_sift_like(100, 0, dim=8, seed=2)
        assert not np.array_equal(a.base, b.base)

    def test_sift_like_is_roughly_uniform(self):
        ds = make_sift_like(4000, 0, dim=8, n_clusters=8, seed=0)
        counts = np.bincount(ds.base_cluster, minlength=8)
        assert counts.max() / counts.min() < 1.6

    def test_spacev_like_is_skewed(self):
        ds = make_spacev_like(4000, 0, dim=8, n_clusters=8, seed=0)
        counts = np.bincount(ds.base_cluster, minlength=8)
        assert counts.max() / max(counts.min(), 1) > 3.0

    def test_spacev_pool_distribution_shifts(self):
        ds = make_spacev_like(4000, 4000, dim=8, n_clusters=8, seed=0)
        base_counts = np.bincount(ds.base_cluster, minlength=8) / 4000
        pool_counts = np.bincount(ds.pool_cluster, minlength=8) / 4000
        # Total variation distance must be substantial (distribution shift).
        tv = 0.5 * np.abs(base_counts - pool_counts).sum()
        assert tv > 0.2

    def test_sift_pool_matches_base_distribution(self):
        ds = make_sift_like(4000, 4000, dim=8, n_clusters=8, seed=0)
        base_counts = np.bincount(ds.base_cluster, minlength=8) / 4000
        pool_counts = np.bincount(ds.pool_cluster, minlength=8) / 4000
        tv = 0.5 * np.abs(base_counts - pool_counts).sum()
        assert tv < 0.1

    def test_invalid_sizes(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            make_clustered(0, 0, 8, 4, rng)

    def test_zero_pool_allowed(self):
        ds = make_sift_like(100, 0, dim=8)
        assert len(ds.pool) == 0


class TestExactKnn:
    def test_self_is_nearest(self, rng):
        base = rng.normal(size=(100, 8)).astype(np.float32)
        gt = exact_knn(base, np.arange(100), base[:5], k=3)
        assert list(gt[:, 0]) == [0, 1, 2, 3, 4]

    def test_respects_custom_ids(self, rng):
        base = rng.normal(size=(20, 4)).astype(np.float32)
        ids = np.arange(100, 120)
        gt = exact_knn(base, ids, base[:2], k=1)
        assert gt[0, 0] == 100 and gt[1, 0] == 101

    def test_k_capped(self, rng):
        base = rng.normal(size=(3, 4)).astype(np.float32)
        gt = exact_knn(base, np.arange(3), base[:1], k=10)
        assert gt.shape == (1, 3)

    def test_chunked_matches_unchunked(self, rng):
        base = rng.normal(size=(50, 4)).astype(np.float32)
        queries = rng.normal(size=(10, 4)).astype(np.float32)
        a = exact_knn(base, np.arange(50), queries, 5, chunk_size=3)
        b = exact_knn(base, np.arange(50), queries, 5, chunk_size=1000)
        np.testing.assert_array_equal(a, b)


class TestGroundTruthTracker:
    def test_tracks_inserts_and_deletes(self, rng):
        base = rng.normal(size=(10, 4)).astype(np.float32)
        tracker = GroundTruthTracker(np.arange(10), base)
        assert tracker.live_count == 10
        tracker.delete(0)
        tracker.insert(50, base[0])
        assert tracker.live_count == 10
        gt = tracker.ground_truth(base[:1], 1)
        assert gt[0, 0] == 50  # the re-inserted copy of vector 0

    def test_empty_tracker(self):
        tracker = GroundTruthTracker(np.empty(0, np.int64), np.empty((0, 4), np.float32))
        gt = tracker.ground_truth(np.zeros((2, 4), dtype=np.float32), 3)
        assert gt.shape == (2, 0)

    def test_mismatched_lengths(self, rng):
        with pytest.raises(ValueError):
            GroundTruthTracker(np.arange(3), rng.normal(size=(2, 4)))


class TestWorkloads:
    def test_epoch_accounting(self):
        wl = workload_b(n_base=500, days=4, daily_rate=0.02, dim=8, num_queries=10)
        assert wl.days == 4
        per_day = round(500 * 0.02)
        for epoch in wl.epochs:
            assert len(epoch.delete_ids) == per_day
            assert len(epoch.insert_ids) == per_day
            assert epoch.num_updates == 2 * per_day

    def test_live_set_is_consistent(self):
        wl = workload_a(n_base=400, days=5, daily_rate=0.05, dim=8, num_queries=5)
        live = set(int(i) for i in wl.base_ids)
        for epoch in wl.epochs:
            for vid in epoch.delete_ids:
                assert int(vid) in live
                live.discard(int(vid))
            for vid in epoch.insert_ids:
                assert int(vid) not in live
                live.add(int(vid))
        assert len(live) == 400  # 1-in-1-out churn preserves cardinality

    def test_insert_ids_globally_unique(self):
        wl = workload_b(n_base=300, days=6, daily_rate=0.03, dim=8, num_queries=5)
        seen = set()
        for epoch in wl.epochs:
            for vid in epoch.insert_ids:
                assert vid not in seen
                seen.add(int(vid))

    def test_pool_exhaustion_rejected(self):
        ds = make_sift_like(100, 10, dim=8)
        with pytest.raises(ValueError):
            make_workload(ds, "x", days=100, daily_rate=0.5, num_queries=5)

    def test_workload_c_variants(self):
        uniform = workload_c(n_base=300, days=2, dim=8, num_queries=5)
        skew = workload_c(n_base=300, days=2, dim=8, num_queries=5, skewed=True)
        assert uniform.name == "workload-c-uniform"
        assert skew.name == "workload-c-skew"

    def test_queries_near_base(self):
        wl = workload_b(n_base=200, days=1, dim=8, num_queries=20)
        assert wl.queries.shape == (20, 8)
