"""Tests for the Block Controller: mapping, free pool, posting API."""

import numpy as np
import pytest

from repro.storage.controller import MAPPING_ENTRY_BYTES, BlockController
from repro.storage.layout import PostingData
from repro.storage.ssd import SimulatedSSD, SSDProfile
from repro.util.errors import OutOfSpaceError, StalePostingError, StorageError
from tests.conftest import DIM, make_posting


class TestPutGet:
    def test_roundtrip(self, controller, rng):
        data = make_posting(rng, 12)
        controller.put(0, data)
        out, latency = controller.get(0)
        np.testing.assert_array_equal(out.ids, data.ids)
        np.testing.assert_array_equal(out.vectors, data.vectors)
        assert latency > 0

    def test_get_missing_raises(self, controller):
        with pytest.raises(StalePostingError):
            controller.get(99)

    def test_create_requires_fresh_id(self, controller, rng):
        controller.create(1, make_posting(rng, 3))
        with pytest.raises(StorageError):
            controller.create(1, make_posting(rng, 3))

    def test_put_overwrites_and_frees_old_blocks(self, controller, rng):
        controller.put(0, make_posting(rng, 40))
        free_after_big = controller.free_block_count
        controller.put(0, make_posting(rng, 2))
        assert controller.free_block_count > free_after_big
        assert controller.length(0) == 2

    def test_empty_posting(self, controller):
        controller.put(5, PostingData.empty(DIM))
        out, _ = controller.get(5)
        assert len(out) == 0

    def test_length_and_exists(self, controller, rng):
        assert not controller.exists(3)
        controller.put(3, make_posting(rng, 7))
        assert controller.exists(3)
        assert controller.length(3) == 7
        with pytest.raises(StalePostingError):
            controller.length(4)


class TestParallelGet:
    def test_reads_many(self, controller, rng):
        for pid in range(5):
            controller.put(pid, make_posting(rng, pid + 1, id_start=pid * 100))
        out, latency = controller.parallel_get([0, 2, 4])
        assert set(out.keys()) == {0, 2, 4}
        assert len(out[4]) == 5
        assert latency > 0

    def test_skips_missing_postings(self, controller, rng):
        controller.put(0, make_posting(rng, 3))
        out, _ = controller.parallel_get([0, 77])
        assert set(out.keys()) == {0}

    def test_batched_latency_cheaper_than_serial(self, controller, rng):
        for pid in range(8):
            controller.put(pid, make_posting(rng, 4))
        _, batch_latency = controller.parallel_get(list(range(8)))
        serial = sum(controller.get(pid)[1] for pid in range(8))
        assert batch_latency < serial


class TestAppend:
    def test_append_extends(self, controller, rng):
        controller.put(0, make_posting(rng, 5))
        controller.append(0, make_posting(rng, 3, id_start=500))
        out, _ = controller.get(0)
        assert len(out) == 8
        assert out.ids[5] == 500

    def test_append_preserves_prefix(self, controller, rng):
        first = make_posting(rng, 9)
        controller.put(0, first)
        controller.append(0, make_posting(rng, 6, id_start=900))
        out, _ = controller.get(0)
        np.testing.assert_array_equal(out.ids[:9], first.ids)
        np.testing.assert_array_equal(out.vectors[:9], first.vectors)

    def test_append_missing_posting(self, controller, rng):
        with pytest.raises(StalePostingError):
            controller.append(42, make_posting(rng, 1))

    def test_append_empty_is_noop(self, controller, rng):
        controller.put(0, make_posting(rng, 2))
        assert controller.append(0, PostingData.empty(DIM)) == 0.0
        assert controller.length(0) == 2

    def test_append_only_rewrites_tail_block(self, controller, rng, ssd, codec):
        """APPEND writes O(1) blocks regardless of posting length."""
        controller.put(0, make_posting(rng, codec.entries_per_block * 6))
        before = ssd.stats.snapshot()
        controller.append(0, make_posting(rng, 1, id_start=10_000))
        window = ssd.stats.snapshot().delta(before)
        assert window.block_writes == 1  # full tail -> one fresh block
        assert window.block_reads == 0
        before2 = ssd.stats.snapshot()
        controller.append(0, make_posting(rng, 1, id_start=10_001))
        window2 = ssd.stats.snapshot().delta(before2)
        # Partial tail: read 1 + write 1, still independent of length.
        assert window2.block_reads == 1
        assert window2.block_writes == 1

    def test_many_appends_accumulate(self, controller, rng):
        controller.put(0, make_posting(rng, 1))
        for i in range(30):
            controller.append(0, make_posting(rng, 1, id_start=1000 + i))
        out, _ = controller.get(0)
        assert len(out) == 31
        assert list(out.ids[1:]) == list(range(1000, 1030))


class TestDeleteAndFreePool:
    def test_delete_releases_blocks(self, controller, rng, ssd):
        total = controller.free_block_count
        controller.put(0, make_posting(rng, 40))
        assert controller.free_block_count < total
        controller.delete(0)
        assert controller.free_block_count == total
        assert not controller.exists(0)

    def test_delete_missing(self, controller):
        with pytest.raises(StalePostingError):
            controller.delete(0)

    def test_out_of_space(self, codec, rng):
        tiny = SimulatedSSD(num_blocks=2, profile=SSDProfile(block_size=512))
        controller = BlockController(tiny, codec)
        with pytest.raises(OutOfSpaceError):
            controller.put(0, make_posting(rng, codec.entries_per_block * 3))

    def test_free_pool_and_mapping_partition_device(self, controller, rng, ssd):
        """Every block is either free or owned by exactly one posting."""
        for pid in range(6):
            controller.put(pid, make_posting(rng, 10 + pid))
        controller.delete(2)
        controller.put(3, make_posting(rng, 2))
        state = controller.state_dict()
        owned = [b for _, blocks in state["mapping"].values() for b in blocks]
        assert len(owned) == len(set(owned))
        assert sorted(owned + state["free"] + state["pre_release"]) == list(
            range(ssd.num_blocks)
        )


class TestDeferredRelease:
    def test_deferral_holds_blocks(self, controller, rng):
        controller.put(0, make_posting(rng, 20))
        controller.begin_defer_release()
        free_before = controller.free_block_count
        controller.delete(0)
        assert controller.free_block_count == free_before
        released = controller.end_defer_release()
        assert len(released) > 0
        assert controller.free_block_count == free_before + len(released)

    def test_deferred_blocks_still_readable(self, controller, rng, ssd):
        """Copy-on-write: a snapshot can still read superseded blocks."""
        data = make_posting(rng, 4)
        controller.put(0, data)
        old_blocks = controller.state_dict()["mapping"][0][1]
        controller.begin_defer_release()
        controller.put(0, make_posting(rng, 4, id_start=99))
        payloads, _ = ssd.read_blocks(list(old_blocks))
        decoded = controller.codec.decode(payloads, 4)
        np.testing.assert_array_equal(decoded.ids, data.ids)


class TestStateDict:
    def test_roundtrip(self, controller, rng, ssd, codec):
        for pid in range(4):
            controller.put(pid, make_posting(rng, 5 + pid, id_start=pid * 10))
        state = controller.state_dict()
        other = BlockController(ssd, codec)
        other.load_state_dict(state)
        for pid in range(4):
            a, _ = controller.get(pid)
            b, _ = other.get(pid)
            np.testing.assert_array_equal(a.ids, b.ids)

    def test_memory_model(self, controller, rng):
        for pid in range(3):
            controller.put(pid, make_posting(rng, 2))
        assert controller.mapping_memory_bytes() == 3 * MAPPING_ENTRY_BYTES

    def test_total_entries(self, controller, rng):
        controller.put(0, make_posting(rng, 5))
        controller.put(1, make_posting(rng, 7))
        assert controller.total_entries() == 12
