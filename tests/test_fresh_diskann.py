"""Tests for the FreshDiskANN baseline index."""

import numpy as np
import pytest

from repro.baselines.diskann import DiskANNConfig, FreshDiskANNIndex
from repro.datasets import GroundTruthTracker, exact_knn, make_sift_like
from repro.util.errors import IndexError_

DIM = 16


@pytest.fixture(scope="module")
def dataset():
    return make_sift_like(800, 300, dim=DIM, n_clusters=8, seed=4)


@pytest.fixture
def index(dataset):
    config = DiskANNConfig(dim=DIM, merge_threshold=100, ssd_blocks=1 << 12)
    return FreshDiskANNIndex.build(dataset.base, config=config)


class TestConfig:
    def test_node_must_fit_block(self):
        with pytest.raises(ValueError):
            DiskANNConfig(dim=2000, block_size=4096).validate()

    def test_node_bytes_formula(self):
        config = DiskANNConfig(dim=DIM)
        assert config.node_bytes() == 4 + 8 * config.node_capacity() + 4 * DIM


class TestSearch:
    def test_recall_reasonable(self, index, dataset):
        queries = dataset.base[:30] + 0.01
        gt = exact_knn(dataset.base, np.arange(800), queries, 10)
        recalls = []
        for i, q in enumerate(queries):
            r = index.search(q, 10)
            recalls.append(len(set(map(int, r.ids)) & set(map(int, gt[i]))) / 10)
        assert np.mean(recalls) > 0.6

    def test_latency_accounts_for_hops(self, index, dataset):
        r = index.search(dataset.base[0], 10)
        assert r.hops > 0
        assert r.latency_us >= r.hops * index.config.read_latency_us

    def test_results_sorted(self, index, dataset):
        r = index.search(dataset.base[0], 10)
        assert list(r.distances) == sorted(r.distances)

    def test_empty_index_search(self):
        index = FreshDiskANNIndex(DiskANNConfig(dim=DIM, ssd_blocks=64))
        r = index.search(np.zeros(DIM, dtype=np.float32), 5)
        assert len(r.ids) == 0


class TestInsertDelete:
    def test_insert_found_by_search(self, index, dataset):
        vec = dataset.pool[0]
        index.insert(10_000, vec)
        r = index.search(vec, 5)
        assert 10_000 in set(map(int, r.ids))

    def test_insert_duplicate_rejected(self, index, dataset):
        with pytest.raises(IndexError_):
            index.insert(0, dataset.base[0])

    def test_first_insert_into_empty(self):
        index = FreshDiskANNIndex(DiskANNConfig(dim=DIM, ssd_blocks=64))
        vec = np.ones(DIM, dtype=np.float32)
        index.insert(1, vec)
        assert index.search(vec, 1).ids[0] == 1

    def test_delete_hides_vector(self, index, dataset):
        index.delete(5)
        r = index.search(dataset.base[5], 10)
        assert 5 not in set(map(int, r.ids))

    def test_delete_unknown_noop(self, index):
        assert index.delete(999_999) >= 0

    def test_live_count(self, index):
        before = index.live_vector_count
        index.delete(0)
        assert index.live_vector_count == before - 1


class TestStreamingMerge:
    def test_merge_triggered_at_threshold(self, index):
        for vid in range(index.config.merge_threshold):
            index.delete(vid)
        assert index.merges_completed == 1
        assert index.last_merge_io_us > 0

    def test_merge_reclaims_slots(self, index):
        used_before = index.ssd.used_blocks()
        for vid in range(index.config.merge_threshold):
            index.delete(vid)
        assert index.ssd.used_blocks() < used_before

    def test_recall_survives_merge(self, index, dataset):
        tracker = GroundTruthTracker(np.arange(800), dataset.base)
        for vid in range(100):
            index.delete(vid)
            tracker.delete(vid)
        assert index.merges_completed >= 1
        # Burn off the interference window so we measure steady state.
        for _ in range(index.config.merge_interference_queries):
            index.search(dataset.base[200], 1)
        queries = dataset.base[200:220] + 0.01
        gt = tracker.ground_truth(queries, 10)
        recalls = []
        for i, q in enumerate(queries):
            r = index.search(q, 10)
            recalls.append(len(set(map(int, r.ids)) & set(map(int, gt[i]))) / 10)
        assert np.mean(recalls) > 0.55

    def test_interference_inflates_latency(self, index, dataset):
        baseline = index.search(dataset.base[200], 5).latency_us
        for vid in range(index.config.merge_threshold):
            index.delete(vid)
        spiked = index.search(dataset.base[200], 5).latency_us
        assert spiked > baseline + 0.3 * index.config.merge_blocking_us

    def test_merge_without_tombstones_is_noop(self, index):
        assert index.streaming_merge() == 0.0

    def test_medoid_survives_deletion(self, index, dataset):
        medoid = index._medoid
        index._tombstones.add(medoid)
        index.streaming_merge()
        assert index._medoid != medoid
        assert index.search(dataset.base[300], 3).ids.size > 0


class TestMemoryModel:
    def test_merge_spike(self, index):
        assert index.memory_bytes(during_merge=True) > index.memory_bytes()
