"""Crash-at-every-point recovery matrix + differential crash/resume oracle.

The fast tests sweep a reduced matrix on every CI run; the ``slow``-marked
full sweep is the acceptance gate for the durability contract: hundreds of
distinct crash points across insert/delete/split/snapshot phases with zero
invariant violations and zero lost acknowledged updates.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.crash_matrix import (
    CrashMatrixConfig,
    run_crash_matrix,
)
from repro.core.index import SPFreshIndex
from repro.storage import (
    FaultInjectingSSD,
    FaultPlan,
    SimulatedSSD,
    SnapshotManager,
    SSDProfile,
    WriteAheadLog,
)
from repro.util.errors import CrashPoint, RecoveryError

from .helpers import brute_force_topk, live_assignment

DIM = 8


def small_crashy_index(plan=None, n=64, seed=3):
    """An index on a fault-injectable device, checkpointed once."""
    from repro.core.config import SPFreshConfig

    cfg = SPFreshConfig(
        dim=DIM,
        max_posting_size=24,
        min_posting_size=2,
        build_target_posting_size=12,
        block_size=512,
        ssd_blocks=1 << 12,
        reassign_range=6,
        seed=seed,
        centroid_index_kind="brute",
    )
    rng = np.random.default_rng(seed)
    vectors = rng.normal(scale=2.0, size=(n, DIM)).astype(np.float32)
    inner = SimulatedSSD(cfg.ssd_blocks, SSDProfile(block_size=cfg.block_size))
    device = FaultInjectingSSD(inner, plan)
    wal = WriteAheadLog(faults=plan)
    snapshots = SnapshotManager(faults=plan)
    index = SPFreshIndex.build(
        vectors, config=cfg, wal=wal, snapshots=snapshots, device=device
    )
    index.checkpoint()
    oracle = {vid: vectors[vid] for vid in range(n)}
    return index, device, wal, snapshots, cfg, oracle, rng


class TestCrashMatrixReduced:
    """Fast, CI-per-commit breadth."""

    def test_every_sampled_crash_point_recovers(self):
        report = run_crash_matrix(
            CrashMatrixConfig(
                updates=60,
                device_stride=40,
                wal_stride=16,
                search_checks=2,
            )
        )
        assert report.ok, report.summary()
        assert report.num_points >= 20
        # Every non-control trial must actually have crashed: the workload
        # is deterministic, so each planned fault fires exactly where the
        # census said it would.
        for trial in report.trials:
            if trial.label != "control":
                assert trial.crashed, f"{trial.label} never hit its crash point"
        phases = report.phase_counts()
        assert phases.get("insert", 0) + phases.get("split", 0) > 0
        assert phases.get("snapshot", 0) > 0

    def test_control_trial_is_fault_free(self):
        report = run_crash_matrix(
            CrashMatrixConfig(updates=30, device_stride=10_000, wal_stride=10_000)
        )
        control = report.trials[0]
        assert control.label == "control"
        assert not control.crashed
        assert control.ok
        assert control.recall == 1.0

    def test_matrix_is_deterministic(self):
        config = CrashMatrixConfig(updates=40, device_stride=64, wal_stride=32)
        first = run_crash_matrix(config)
        second = run_crash_matrix(config)
        assert [t.label for t in first.trials] == [t.label for t in second.trials]
        assert [t.acked_ops for t in first.trials] == [
            t.acked_ops for t in second.trials
        ]
        assert first.device_ops == second.device_ops


class TestCrashMatrixFreshTier:
    """Flush-boundary crash points: the tier's durability contract.

    With the memory tier enabled, acked inserts reach disk only through
    batched flushes, so the WAL is the sole durable record until a flush
    lands. Every sampled crash point inside a flush span must recover all
    acked inserts (possibly back into the tier) with invariants intact.
    """

    def test_flush_interior_crash_points_recover(self):
        report = run_crash_matrix(
            CrashMatrixConfig(
                updates=36,
                device_stride=10_000,  # stride covers op 0 only; the rest
                flush_stride=4,  # come from explicit flush interiors
                wal_stride=12,
                search_checks=2,
                fresh_tier=True,
                fresh_flush_threshold=8,
            )
        )
        assert report.ok, report.summary()
        phases = report.phase_counts()
        assert phases.get("flush", 0) >= 5, report.summary()
        # WAL tears during buffered inserts are enumerated too.
        assert phases.get("insert", 0) > 0
        for trial in report.trials:
            if trial.label != "control":
                assert trial.crashed, f"{trial.label} never hit its crash point"

    def test_fresh_matrix_is_deterministic(self):
        config = CrashMatrixConfig(
            updates=24,
            device_stride=10_000,
            flush_stride=9,
            wal_stride=24,
            search_checks=1,
            fresh_tier=True,
            fresh_flush_threshold=8,
        )
        first = run_crash_matrix(config)
        second = run_crash_matrix(config)
        assert [t.label for t in first.trials] == [t.label for t in second.trials]
        assert first.device_ops == second.device_ops


@pytest.mark.slow
class TestCrashMatrixFull:
    """Acceptance sweep: >=200 crash points, all phases, zero losses."""

    def test_full_sweep(self):
        report = run_crash_matrix(
            CrashMatrixConfig(device_stride=6, wal_stride=2)
        )
        assert report.ok, report.summary()
        assert report.num_points >= 200, report.summary()
        phases = report.phase_counts()
        for phase in ("insert", "split", "delete", "snapshot"):
            assert phases.get(phase, 0) > 0, f"no {phase}-phase crash points"


class TestSnapshotBoundaryFaults:
    def test_torn_tmp_preserves_previous_snapshot(self):
        plan = FaultPlan(snapshot_fault="torn-tmp")
        plan.disarm()
        index, device, wal, snapshots, cfg, oracle, rng = small_crashy_index(plan)
        vec = rng.normal(size=DIM).astype(np.float32)
        index.insert(1000, vec)
        oracle[1000] = vec
        plan.arm()
        with pytest.raises(CrashPoint):
            index.checkpoint()
        plan.disarm()
        recovered = SPFreshIndex.recover(device, cfg, snapshots, wal=wal)
        # The old snapshot survived the torn temp write; the WAL (never
        # truncated) replays the insert on top of it.
        assert recovered.last_recovery.snapshot_generation == 1
        assert set(live_assignment(recovered)) == set(oracle)
        assert recovered.check_invariants().ok

    def test_crash_after_commit_recovers_from_new_snapshot(self):
        plan = FaultPlan(snapshot_fault="crash-after-commit")
        plan.disarm()
        index, device, wal, snapshots, cfg, oracle, rng = small_crashy_index(plan)
        vec = rng.normal(size=DIM).astype(np.float32)
        index.insert(1000, vec)
        oracle[1000] = vec
        plan.arm()
        with pytest.raises(CrashPoint):
            index.checkpoint()
        plan.disarm()
        recovered = SPFreshIndex.recover(device, cfg, snapshots, wal=wal)
        # The rename landed before the crash, so recovery starts from the
        # new generation; the stale WAL replays as skips, not duplicates.
        assert recovered.last_recovery.snapshot_generation == 2
        assert set(live_assignment(recovered)) == set(oracle)
        assert recovered.check_invariants().ok

    def test_corrupt_published_snapshot_is_detected_never_loaded(self):
        plan = FaultPlan(snapshot_fault="corrupt-published")
        plan.disarm()
        index, device, wal, snapshots, cfg, oracle, rng = small_crashy_index(plan)
        plan.arm()
        index.checkpoint()  # "succeeds" — but publishes a torn blob
        plan.disarm()
        with pytest.raises(RecoveryError):
            SPFreshIndex.recover(device, cfg, snapshots, wal=wal)


class TestDifferentialCrashResumeOracle:
    """Satellite: N random crash/recover/resume cycles vs a brute-force oracle.

    One device lineage survives the whole test; each cycle arms a fresh
    crash point mid-workload, recovers, and then the *recovered* index keeps
    going. After every recovery: all acked vectors present, invariants hold,
    and top-k search recall against brute force over survivors is 1.0.
    """

    CYCLES = 5
    OPS_PER_CYCLE = 18

    def test_crash_recover_resume_cycles(self):
        plan = FaultPlan()
        plan.disarm()
        index, device, wal, snapshots, cfg, oracle, rng = small_crashy_index(plan)
        expected = dict(oracle)  # acked-live ledger
        known = dict(oracle)  # every vector ever seen (for oracle queries)
        next_vid = 10_000

        for cycle in range(self.CYCLES):
            crash_plan = FaultPlan(
                seed=cycle, crash_at_op=device.op_index + int(rng.integers(2, 30))
            )
            device.plan = crash_plan
            wal.faults = crash_plan
            snapshots.faults = crash_plan
            inflight = None
            crashed = False
            for i in range(self.OPS_PER_CYCLE):
                do_delete = expected and rng.random() < 0.25
                try:
                    if i == self.OPS_PER_CYCLE // 2 and cycle % 2 == 0:
                        inflight = None
                        index.checkpoint()
                    elif do_delete:
                        vid = int(rng.choice(sorted(expected)))
                        inflight = ("delete", vid, None)
                        index.delete(vid)
                        del expected[vid]
                    else:
                        vid, next_vid = next_vid, next_vid + 1  # never reuse
                        vec = rng.normal(size=DIM).astype(np.float32)
                        inflight = ("insert", vid, vec)
                        known[vid] = vec
                        index.insert(vid, vec)
                        expected[vid] = vec
                    inflight = None
                except CrashPoint:
                    crashed = True
                    break
            assert crashed, f"cycle {cycle}: crash point never fired"

            crash_plan.disarm()
            index = SPFreshIndex.recover(device, cfg, snapshots, wal=wal)
            assert index.check_invariants(seed=cycle).ok

            present = set(live_assignment(index))
            if inflight is not None:
                # The op the crash interrupted may have reached the WAL or
                # not; resolve the ledger by what recovery actually decided
                # — that outcome is durable (the WAL record, if any, will
                # replay the same way until a checkpoint truncates it).
                kind, vid, vec = inflight
                if kind == "insert" and vid in present:
                    expected[vid] = vec
                elif kind == "delete" and vid not in present:
                    expected.pop(vid, None)
            assert present == set(expected), (
                f"cycle {cycle}: lost {sorted(set(expected) - present)[:5]}, "
                f"ghosts {sorted(present - set(expected))[:5]}"
            )

            # Differential oracle: full-breadth search == brute force.
            survivors = {vid: known[vid] for vid in present}
            queries = rng.choice(sorted(present), size=3, replace=False)
            for vid in queries:
                k = min(5, len(survivors))
                want = set(brute_force_topk(survivors, known[int(vid)], k))
                result = index.search(
                    known[int(vid)], k, nprobe=index.num_postings
                )
                got = set(int(x) for x in result.ids)
                assert got == want, (
                    f"cycle {cycle}: query {vid} recall "
                    f"{len(got & want) / k:.2f} < 1.0"
                )
        assert index.stats.recoveries == 1  # each recovery built a fresh object
