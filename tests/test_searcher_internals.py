"""Focused unit tests for searcher internals (budget prefix, latency math)."""

import numpy as np
import pytest

from repro.core.index import SPFreshIndex


class TestBudgetPrefix:
    def test_no_budget_keeps_everything(self, built_index):
        built_index.searcher.latency_budget_us = None
        pids = built_index.controller.posting_ids()[:6]
        kept, truncated = built_index.searcher._budget_prefix(pids)
        assert kept == pids and not truncated

    def test_always_keeps_first_posting(self, built_index):
        built_index.searcher.latency_budget_us = 1.0  # impossibly tight
        pids = built_index.controller.posting_ids()[:6]
        kept, truncated = built_index.searcher._budget_prefix(pids)
        assert len(kept) >= 1
        assert truncated

    def test_prefix_order_preserved(self, built_index):
        built_index.searcher.latency_budget_us = 500.0
        pids = built_index.controller.posting_ids()[:10]
        kept, _ = built_index.searcher._budget_prefix(pids)
        assert kept == pids[: len(kept)]

    def test_stale_pids_skipped(self, built_index):
        pids = [999_999] + built_index.controller.posting_ids()[:3]
        kept, _ = built_index.searcher._budget_prefix(pids)
        assert 999_999 not in kept


class TestLatencyMath:
    def test_latency_components_sum(self, built_index, vectors):
        built_index.searcher.latency_budget_us = None
        result = built_index.search(vectors[0], 5, nprobe=4)
        expected_cpu = (
            built_index.searcher.cpu_cost_per_query_us
            + built_index.searcher.cpu_cost_per_entry_us * result.entries_scanned
        )
        assert result.latency_us == pytest.approx(
            result.io_latency_us + expected_cpu, rel=1e-6
        )

    def test_hard_cut_caps_latency(self, vectors, small_config):
        config = small_config.with_overrides(search_latency_budget_us=200.0)
        index = SPFreshIndex.build(vectors, config=config)
        result = index.search(vectors[0], 5, nprobe=64)
        assert result.latency_us <= 200.0

    def test_io_latency_matches_device_model(self, built_index, vectors):
        result = built_index.search(vectors[0], 5, nprobe=4)
        profile = built_index.ssd.profile
        # io latency must be a whole number of read waves.
        waves = result.io_latency_us / profile.read_latency_us
        assert waves == pytest.approx(round(waves))

    def test_truncated_query_charged_exactly_budget(self, vectors, small_config):
        config = small_config.with_overrides(search_latency_budget_us=200.0)
        index = SPFreshIndex.build(vectors, config=config)
        result = index.search(vectors[0], 5, nprobe=64)
        assert result.truncated
        assert result.latency_us == pytest.approx(200.0)

    def test_untruncated_over_budget_query_reports_true_latency(
        self, vectors, small_config
    ):
        """Regression: the blanket min(latency, budget) clamp hid over-budget
        queries that were never truncated (a single too-large first posting),
        skewing Fig-2/Fig-7 style measurements."""
        index = SPFreshIndex.build(vectors, config=small_config)
        # One candidate posting only: the prefix always keeps the first, so
        # truncation can never trigger, however far over budget it runs.
        index.searcher.latency_budget_us = 1.0
        result = index.search(vectors[0], 5, nprobe=1)
        assert not result.truncated
        assert result.latency_us > 1.0
        expected_cpu = (
            index.searcher.cpu_cost_per_query_us
            + index.searcher.cpu_cost_per_entry_us * result.entries_scanned
        )
        assert result.latency_us == pytest.approx(
            result.io_latency_us + expected_cpu, rel=1e-6
        )

    def test_budget_prefix_accounts_cpu_scan_cost(self, built_index):
        """The truncation decision must include the per-entry CPU term it
        later charges, not just projected I/O."""
        searcher = built_index.searcher
        pids = built_index.controller.posting_ids()[:6]
        io_only_budget = 1e9  # I/O never the binding constraint
        searcher.latency_budget_us = io_only_budget
        kept, truncated = searcher._budget_prefix(pids)
        assert kept == pids and not truncated
        # Make the scan cost dominate: a budget the CPU term alone exceeds
        # after the first posting must truncate the prefix.
        first_len = built_index.controller.length(pids[0])
        searcher.cpu_cost_per_entry_us = 1e6
        searcher.latency_budget_us = (
            searcher.cpu_cost_per_query_us + 1e6 * (first_len + 0.5)
        )
        kept, truncated = searcher._budget_prefix(pids)
        assert truncated
        assert kept == pids[:1]


class TestBuildDeterminism:
    def test_same_seed_same_index(self, vectors, small_config):
        a = SPFreshIndex.build(vectors, config=small_config)
        b = SPFreshIndex.build(vectors, config=small_config)
        assert a.num_postings == b.num_postings
        np.testing.assert_array_equal(
            np.sort(a.posting_sizes()), np.sort(b.posting_sizes())
        )
        for q in vectors[:5]:
            ra = a.search(q, 5, nprobe=8)
            rb = b.search(q, 5, nprobe=8)
            np.testing.assert_array_equal(ra.ids, rb.ids)

    def test_different_seed_different_partitioning(self, vectors, small_config):
        a = SPFreshIndex.build(vectors, config=small_config)
        b = SPFreshIndex.build(
            vectors, config=small_config.with_overrides(seed=99)
        )
        # Same data, different clustering randomness: geometry may differ
        # but search answers at full probe must agree (correctness).
        for q in vectors[:5]:
            ra = a.search(q, 5, nprobe=a.num_postings)
            rb = b.search(q, 5, nprobe=b.num_postings)
            assert set(map(int, ra.ids)) == set(map(int, rb.ids))
