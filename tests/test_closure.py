"""Tests for closure assignment and replica selection (SPANN boundary rule)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spann.closure import closure_assign, select_replicas


class TestSelectReplicas:
    def test_always_includes_nearest(self):
        ids = np.array([5, 6, 7])
        dists = np.array([1.0, 1.1, 50.0], dtype=np.float32)
        chosen = select_replicas(ids, dists, replica_count=3, epsilon=0.0)
        assert chosen[0] == 5

    def test_epsilon_zero_allows_exact_ties_only(self):
        ids = np.array([1, 2, 3])
        dists = np.array([4.0, 4.0, 4.01], dtype=np.float32)
        chosen = select_replicas(ids, dists, replica_count=3, epsilon=0.0)
        assert chosen == [1, 2]

    def test_epsilon_widens_selection(self):
        ids = np.array([1, 2, 3])
        # squared distances: true distances 2, 2.2, 5
        dists = np.array([4.0, 4.84, 25.0], dtype=np.float32)
        assert select_replicas(ids, dists, 3, epsilon=0.15) == [1, 2]
        assert select_replicas(ids, dists, 3, epsilon=2.0) == [1, 2, 3]

    def test_replica_count_cap(self):
        ids = np.arange(10)
        dists = np.full(10, 1.0, dtype=np.float32)
        assert len(select_replicas(ids, dists, 4, epsilon=1.0)) == 4

    def test_empty_candidates(self):
        assert select_replicas(np.empty(0), np.empty(0), 3, 0.1) == []

    def test_rng_rule_skips_dominated(self):
        # Candidate 2 sits right next to candidate 1 (already chosen):
        # the vector gains nothing from replicating there.
        centroids = {
            1: np.array([0.0, 0.0], dtype=np.float32),
            2: np.array([0.1, 0.0], dtype=np.float32),
            3: np.array([0.0, 1.2], dtype=np.float32),
        }
        ids = np.array([1, 2, 3])
        dists = np.array([1.0, 1.1, 1.2], dtype=np.float32)
        chosen = select_replicas(
            ids, dists, 3, epsilon=1.0, centroid_getter=centroids.get
        )
        assert 2 not in chosen
        assert chosen == [1, 3]

    def test_missing_centroid_skipped(self):
        ids = np.array([1, 2])
        dists = np.array([1.0, 1.05], dtype=np.float32)
        chosen = select_replicas(
            ids, dists, 3, epsilon=1.0, centroid_getter=lambda pid: None
        )
        assert chosen == [1]


class TestClosureAssign:
    def make(self, rng, n=200, m=8, dim=6):
        centroids = rng.normal(scale=8.0, size=(m, dim)).astype(np.float32)
        assign = rng.integers(0, m, size=n)
        vectors = (centroids[assign] + rng.normal(scale=0.8, size=(n, dim))).astype(
            np.float32
        )
        return vectors, centroids

    def test_primary_is_nearest(self, rng):
        vectors, centroids = self.make(rng)
        _, primary = closure_assign(vectors, centroids, 4, 0.15)
        from repro.util.distance import pairwise_sq_l2

        expected = pairwise_sq_l2(vectors, centroids).argmin(axis=1)
        np.testing.assert_array_equal(primary, expected)

    def test_every_vector_in_primary_posting(self, rng):
        vectors, centroids = self.make(rng)
        members, primary = closure_assign(vectors, centroids, 4, 0.15)
        for row, p in enumerate(primary):
            assert row in members[p]

    def test_replica_bound(self, rng):
        vectors, centroids = self.make(rng)
        members, _ = closure_assign(vectors, centroids, 3, 1.0)
        counts = np.zeros(len(vectors), dtype=int)
        for rows in members:
            counts[rows] += 1
        assert counts.max() <= 3
        assert counts.min() >= 1

    def test_epsilon_zero_single_copy_mostly(self, rng):
        vectors, centroids = self.make(rng)
        members, _ = closure_assign(vectors, centroids, 4, 0.0)
        counts = np.zeros(len(vectors), dtype=int)
        for rows in members:
            counts[rows] += 1
        # With eps=0 only exact distance ties replicate; Gaussian data has
        # essentially none.
        assert counts.mean() < 1.05

    def test_chunking_invariance(self, rng):
        vectors, centroids = self.make(rng, n=100)
        a, pa = closure_assign(vectors, centroids, 4, 0.2, chunk_size=7)
        b, pb = closure_assign(vectors, centroids, 4, 0.2, chunk_size=1000)
        np.testing.assert_array_equal(pa, pb)
        for x, y in zip(a, b):
            assert x == y

    def test_single_centroid(self, rng):
        vectors, _ = self.make(rng, n=20)
        members, primary = closure_assign(
            vectors, vectors[:1].copy(), 4, 0.15
        )
        assert len(members[0]) == 20
        assert (primary == 0).all()

    def test_no_centroids_raises(self, rng):
        with pytest.raises(ValueError):
            closure_assign(
                rng.normal(size=(5, 4)).astype(np.float32),
                np.empty((0, 4), dtype=np.float32),
                4,
                0.15,
            )

    @given(st.integers(1, 6), st.floats(0.0, 1.0))
    @settings(max_examples=15, deadline=None)
    def test_property_bounds(self, replica_count, epsilon):
        rng = np.random.default_rng(replica_count)
        vectors, centroids = self.make(rng, n=60, m=5)
        members, primary = closure_assign(vectors, centroids, replica_count, epsilon)
        counts = np.zeros(len(vectors), dtype=int)
        for rows in members:
            counts[rows] += 1
        assert counts.min() >= 1
        assert counts.max() <= replica_count
        assert len(primary) == len(vectors)
