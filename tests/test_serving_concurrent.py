"""Concurrent serving tests: the K-worker pool, fairness, replay pools.

Covers the simulated K-worker engine pool in ``ServingFrontend.run``
(determinism, goodput scaling, worker-occupancy invariants), the DWRR
fairness path end to end (victim p99 protection on a skewed trace), the
degenerate inputs a report must survive (empty trace, shed-only
tenants), the wall-clock replay pools in ``repro.serving.engine_pool``
(thread/process parity against serial replay), and a hypothesis suite
for the batcher's two-trigger edges under the event loop. See the
"Concurrency model" section of docs/serving.md.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import make_arrival_trace
from repro.datasets.arrival import ArrivalTrace
from repro.distributed.executor import fork_available
from repro.metrics.profiling import Profiler
from repro.serving import (
    ProcessEnginePool,
    ServingFrontend,
    ThreadEnginePool,
    batch_jobs,
    count_mismatches,
    serial_replay,
)
from repro.serving.engine_pool import answer_batch
from tests.conftest import DIM

K = 4
SATURATING_QPS = 120_000.0  # ~7x one worker's drain rate at this scale


@pytest.fixture
def query_pool(vectors, rng):
    return (vectors[:48] + rng.normal(scale=0.05, size=(48, DIM))).astype(
        np.float32
    )


@pytest.fixture
def saturating_trace(query_pool):
    """Poisson load well past one worker's capacity (shedding at K=1)."""
    return make_arrival_trace(
        query_pool,
        500,
        SATURATING_QPS,
        "poisson",
        tenant_weights=4,
        seed=13,
        name="saturating",
    )


@pytest.fixture
def skewed_trace(query_pool):
    """Bursty multi-tenant load with one dominant (8x) aggressor tenant."""
    return make_arrival_trace(
        query_pool,
        600,
        60_000.0,
        "bursty",
        hot_key_skew=0.5,
        tenant_weights=(8.0, 1.0, 1.0, 1.0),
        seed=17,
        name="skewed",
    )


def _frontend(engine, **overrides):
    kwargs = dict(
        k=5, queue_capacity=64, max_batch=8, max_wait_us=300.0
    )
    kwargs.update(overrides)
    return ServingFrontend(engine, **kwargs)


def _max_concurrent_batches(report) -> int:
    """Peak number of simultaneously-executing batches in a report."""
    events = []
    for b in report.batches:
        # Completion at the same instant as a dispatch frees the worker
        # first (that is exactly how the event loop reuses it).
        events.append((b.dispatch_us + b.service_us, 0))
        events.append((b.dispatch_us, 1))
    events.sort()
    peak = live = 0
    for _, kind in events:
        live += 1 if kind else -1
        peak = max(peak, live)
    return peak


class TestWorkerPool:
    def test_k4_run_is_byte_deterministic(self, built_index, saturating_trace):
        def once():
            report = _frontend(built_index.searcher, num_workers=K).run(
                saturating_trace
            )
            payload = dict(report.metrics())
            payload["per_tenant"] = {
                str(t): m for t, m in report.per_tenant_metrics().items()
            }
            return json.dumps(payload, sort_keys=True)

        assert once() == once()

    def test_pool_beats_single_worker_goodput(
        self, built_index, saturating_trace
    ):
        single = _frontend(built_index.searcher, num_workers=1).run(
            saturating_trace
        )
        pooled = _frontend(built_index.searcher, num_workers=K).run(
            saturating_trace
        )
        assert single.metrics()["shed_rate"] > 0.0, "trace must saturate K=1"
        assert (
            pooled.metrics()["goodput_qps"] > single.metrics()["goodput_qps"]
        )
        assert pooled.metrics()["shed_rate"] < single.metrics()["shed_rate"]

    def test_at_most_k_batches_overlap(self, built_index, saturating_trace):
        for workers in (1, 2, K):
            report = _frontend(built_index.searcher, num_workers=workers).run(
                saturating_trace
            )
            assert _max_concurrent_batches(report) <= workers

    def test_per_worker_batches_never_overlap(
        self, built_index, saturating_trace
    ):
        report = _frontend(built_index.searcher, num_workers=K).run(
            saturating_trace
        )
        assert {b.worker for b in report.batches} <= set(range(K))
        by_worker: dict[int, list] = {}
        for b in report.batches:
            by_worker.setdefault(b.worker, []).append(b)
        for batches in by_worker.values():
            batches.sort(key=lambda b: b.dispatch_us)
            for prev, nxt in zip(batches, batches[1:]):
                assert nxt.dispatch_us >= prev.dispatch_us + prev.service_us

    def test_worker_busy_accounting_matches_batches(
        self, built_index, saturating_trace
    ):
        report = _frontend(built_index.searcher, num_workers=K).run(
            saturating_trace
        )
        busy = report.worker_busy_us()
        assert len(busy) == K
        assert sum(busy) == pytest.approx(
            sum(b.service_us for b in report.batches)
        )
        m = report.metrics()
        assert m["num_workers"] == float(K)
        assert (
            0.0
            <= m["worker_busy_frac_min"]
            <= m["worker_busy_frac_mean"]
            <= m["worker_busy_frac_max"]
            <= 1.0 + 1e-9
        )

    def test_single_worker_serves_on_worker_zero(
        self, built_index, saturating_trace
    ):
        report = _frontend(built_index.searcher, num_workers=1).run(
            saturating_trace
        )
        assert all(b.worker == 0 for b in report.batches)
        m = report.metrics()
        assert m["worker_busy_frac_min"] == m["worker_busy_frac_max"]

    def test_query_rows_replay_the_batch_composition(
        self, built_index, saturating_trace
    ):
        report = _frontend(built_index.searcher, num_workers=K).run(
            saturating_trace
        )
        by_batch: dict[int, list] = {}
        for o in report.answered:
            by_batch.setdefault(o.batch_id, []).append(o)
        for b in report.batches:
            members = sorted(by_batch[b.batch_id], key=lambda o: o.index)
            assert b.query_rows == [o.query_index for o in members]
            assert b.size == len(members)

    def test_tenant_quota_shed_path(self, built_index, saturating_trace):
        report = _frontend(
            built_index.searcher,
            num_workers=2,
            tenant_quota_fraction=0.05,  # 3 slots of the 64-deep queue
            admission_wait_budget_us=None,
        ).run(saturating_trace)
        quota_shed = [
            o for o in report.shed if o.shed_reason == "tenant_quota"
        ]
        assert quota_shed, "a saturating trace must trip the tenant quota"
        assert report.shed_tenant_quota == len(quota_shed)
        assert (
            report.shed_queue_full
            + report.shed_wait_budget
            + report.shed_tenant_quota
            == len(report.shed)
        )
        for o in quota_shed:
            assert o.result is None and o.retry_after_us > 0.0


class TestFairnessEndToEnd:
    def test_dwrr_protects_victim_tenants(self, built_index, skewed_trace):
        dominant = int(np.bincount(skewed_trace.tenant).argmax())

        def victim_p99(report):
            per = report.per_tenant_metrics()
            return max(
                m["e2e_latency_us_p99"]
                for t, m in per.items()
                if t != dominant and m["e2e_latency_us_p99"] > 0.0
            )

        fifo = _frontend(built_index.searcher, num_workers=2).run(skewed_trace)
        dwrr = _frontend(
            built_index.searcher,
            num_workers=2,
            fairness="dwrr",
            tenant_weights=(1.0, 1.0, 1.0, 1.0),
        ).run(skewed_trace)
        assert victim_p99(dwrr) <= victim_p99(fifo)
        # Seat reassignment must not invent or lose requests.
        assert len(dwrr.outcomes) == len(fifo.outcomes) == len(skewed_trace)
        assert len(dwrr.answered) + len(dwrr.shed) == len(skewed_trace)

    def test_spread_is_reported_but_not_a_fairness_score(
        self, built_index, skewed_trace
    ):
        # DWRR deliberately *increases* max/min p99 spread (victims get
        # fast, the aggressor bears its own backlog) — pin the direction
        # so nobody "fixes" the gate back to spread later.
        fifo = _frontend(built_index.searcher, num_workers=2).run(skewed_trace)
        dwrr = _frontend(
            built_index.searcher, num_workers=2, fairness="dwrr"
        ).run(skewed_trace)
        assert fifo.tenant_p99_spread() >= 1.0
        assert dwrr.tenant_p99_spread() >= fifo.tenant_p99_spread()


class TestDegenerateInputs:
    def test_empty_trace_yields_well_defined_report(
        self, built_index, query_pool
    ):
        empty = make_arrival_trace(query_pool, 0, 1000.0, seed=1)
        assert len(empty) == 0
        assert empty.num_tenants == 0
        assert empty.duration_us == 0.0
        assert empty.offered_qps == 0.0
        report = _frontend(built_index.searcher, num_workers=K).run(empty)
        assert report.outcomes == [] and report.batches == []
        m = report.metrics()
        assert m["offered_requests"] == 0.0
        assert m["shed_rate"] == 0.0
        assert m["goodput_qps"] == 0.0
        assert m["worker_busy_frac_mean"] == 0.0
        json.dumps(m)  # must serialize without NaN/inf surprises
        assert all(np.isfinite(v) for v in m.values())
        assert report.per_tenant_metrics() == {}
        assert report.tenant_p99_spread() == 1.0
        assert batch_jobs(empty, report) == []

    def test_shed_only_tenant_reports_cleanly(self, built_index, query_pool):
        # Tenant 0 fires first and occupies the only worker; tenant 1's
        # requests all land inside that service window against a 10us
        # wait budget, so every one of them sheds.
        trace = ArrivalTrace(
            name="shed-only",
            arrival_us=np.array([0.0, 1.0, 2.0, 3.0]),
            tenant=np.array([0, 1, 1, 1], dtype=np.int32),
            query_index=np.arange(4, dtype=np.int32),
            queries=query_pool[:4],
        )
        report = ServingFrontend(
            built_index.searcher,
            k=5,
            max_batch=1,
            max_wait_us=0.0,
            admission_wait_budget_us=10.0,
        ).run(trace)
        per = report.per_tenant_metrics()
        assert per[0]["shed_rate"] == 0.0
        assert per[1]["shed_rate"] == 1.0
        assert per[1]["e2e_latency_us_p99"] == 0.0
        assert all(
            o.shed_reason == "wait_budget"
            for o in report.shed
            if o.tenant == 1
        )
        # Only one tenant has answered latency: spread degenerates to 1.
        assert report.tenant_p99_spread() == 1.0
        json.dumps(report.metrics())

    def test_negative_request_count_rejected(self, query_pool):
        with pytest.raises(ValueError):
            make_arrival_trace(query_pool, -1, 1000.0)


# ----------------------------------------------------------------------
# wall-clock replay pools
# ----------------------------------------------------------------------
@pytest.fixture
def replay_setup(built_index, saturating_trace):
    report = _frontend(built_index.searcher, num_workers=2).run(
        saturating_trace
    )
    jobs = batch_jobs(saturating_trace, report)
    baseline = serial_replay(built_index.searcher, jobs, 5)
    return jobs, baseline


class TestEnginePools:
    def test_batch_jobs_match_recorded_composition(
        self, built_index, saturating_trace
    ):
        report = _frontend(built_index.searcher, num_workers=2).run(
            saturating_trace
        )
        jobs = batch_jobs(saturating_trace, report)
        assert len(jobs) == len(report.batches)
        for vectors, batch in zip(jobs, report.batches):
            assert vectors.shape == (batch.size, DIM)
            np.testing.assert_array_equal(
                vectors, saturating_trace.queries[batch.query_rows]
            )

    def test_thread_pool_parity_with_serial_replay(
        self, built_index, replay_setup
    ):
        jobs, baseline = replay_setup
        pooled = ThreadEnginePool(built_index.searcher, 3).run(jobs, 5)
        assert pooled.num_workers == 3
        assert count_mismatches(baseline, pooled) == 0

    def test_thread_pool_records_worker_stages(
        self, built_index, replay_setup
    ):
        jobs, _ = replay_setup
        profiler = Profiler(enabled=True)
        serial_replay(built_index.searcher, jobs, 5, profiler=profiler)
        ThreadEnginePool(built_index.searcher, 2, profiler=profiler).run(
            jobs, 5
        )
        snapshot = profiler.snapshot()
        assert "serve_replay_serial" in snapshot
        assert "serve_worker0" in snapshot and "serve_worker1" in snapshot

    @pytest.mark.skipif(
        not fork_available(), reason="needs the 'fork' start method"
    )
    def test_process_pool_parity_with_serial_replay(
        self, built_index, replay_setup
    ):
        jobs, baseline = replay_setup
        with ProcessEnginePool(built_index.searcher, 2) as pool:
            pooled = pool.run(jobs, 5)
            assert count_mismatches(baseline, pooled) == 0
            # Reusing the warm pool must stay bit-identical too.
            assert count_mismatches(baseline, pool.run(jobs, 5)) == 0
        pool.close()  # idempotent after context exit
        with pytest.raises(RuntimeError):
            pool.run(jobs, 5)

    @pytest.mark.skipif(
        not fork_available(), reason="needs the 'fork' start method"
    )
    def test_process_pool_refuses_background_engines(self):
        class _Bg:
            _background_running = True

            def search_many(self, vectors, k, nprobe=None):  # pragma: no cover
                return []

        with pytest.raises(RuntimeError, match="background"):
            ProcessEnginePool(_Bg(), 2)

    def test_empty_schedule_replays_to_nothing(self, built_index):
        baseline = serial_replay(built_index.searcher, [], 5)
        pooled = ThreadEnginePool(built_index.searcher, 2).run([], 5)
        assert baseline.batch_answers == [] and pooled.batch_answers == []
        assert count_mismatches(baseline, pooled) == 0

    def test_count_mismatches_detects_perturbation(
        self, built_index, replay_setup
    ):
        jobs, baseline = replay_setup
        other = serial_replay(built_index.searcher, jobs, 5)
        assert count_mismatches(baseline, other) == 0
        ids, distances = other.batch_answers[0][0]
        other.batch_answers[0][0] = (ids, distances + 1.0)
        assert count_mismatches(baseline, other) == 1

    def test_count_mismatches_rejects_shape_drift(
        self, built_index, replay_setup
    ):
        jobs, baseline = replay_setup
        short = serial_replay(built_index.searcher, jobs[:-1], 5)
        with pytest.raises(ValueError):
            count_mismatches(baseline, short)

    def test_thread_pool_surfaces_worker_errors(self):
        class _Boom:
            def search_many(self, vectors, k, nprobe=None):
                raise RuntimeError("engine exploded")

        with pytest.raises(RuntimeError, match="engine exploded"):
            ThreadEnginePool(_Boom(), 2).run([np.zeros((1, DIM))], 5)

    def test_answer_batch_rejects_surfaceless_engine(self):
        with pytest.raises(TypeError):
            answer_batch(object(), np.zeros((1, DIM)), 5, None)

    def test_pool_validation(self, built_index):
        with pytest.raises(ValueError):
            ThreadEnginePool(built_index.searcher, 0)


# ----------------------------------------------------------------------
# hypothesis: batcher two-trigger edges under the event loop
# ----------------------------------------------------------------------
class _StubResult:
    __slots__ = ("ids", "distances", "latency_us", "io_latency_us")

    def __init__(self, io_us: float, cpu_us: float) -> None:
        self.ids = np.zeros(1, dtype=np.int64)
        self.distances = np.zeros(1, dtype=np.float32)
        self.io_latency_us = io_us
        self.latency_us = io_us + cpu_us


class _StubEngine:
    """Constant-cost engine: every query costs the same io/cpu terms,
    so batch service depends only on batch *size* and the event loop's
    schedule is a pure function of arrivals and knobs — cheap enough for
    hypothesis to sweep the trigger edges."""

    def __init__(self, io_us: float = 120.0, cpu_us: float = 40.0) -> None:
        self.io_us = io_us
        self.cpu_us = cpu_us

    def search_many(self, vectors, k, nprobe=None):
        return [
            _StubResult(self.io_us, self.cpu_us) for _ in range(len(vectors))
        ]


_POOL = np.zeros((4, DIM), dtype=np.float32)


@st.composite
def _traces(draw):
    gaps = draw(
        st.lists(
            st.floats(0.0, 400.0, allow_nan=False, allow_infinity=False),
            min_size=1,
            max_size=50,
        )
    )
    tenants = draw(
        st.lists(
            st.integers(0, 3), min_size=len(gaps), max_size=len(gaps)
        )
    )
    return ArrivalTrace(
        name="hypothesis",
        arrival_us=np.cumsum(np.asarray(gaps, dtype=np.float64)),
        tenant=np.asarray(tenants, dtype=np.int32),
        query_index=np.zeros(len(gaps), dtype=np.int32),
        queries=_POOL,
    )


_KNOBS = dict(
    max_batch=st.integers(1, 6),
    max_wait_us=st.sampled_from([0.0, 50.0, 250.0]),
    num_workers=st.integers(1, 4),
)
_WEIGHTS = st.sampled_from(
    [
        None,
        (1.0, 1.0, 1.0, 1.0),
        (8.0, 1.0, 1.0, 1.0),
        (1e-6, 1.0),  # exercises the DWRR round fast-forward
        (1e-6, 1e-6, 1e-6, 1e-6),
        (100.0, 1e-3),
    ]
)


class TestBatcherProperties:
    @given(trace=_traces(), fairness=st.sampled_from(["fifo", "dwrr"]), **_KNOBS)
    @settings(max_examples=60, deadline=None)
    def test_every_request_resolved_exactly_once(
        self, trace, fairness, max_batch, max_wait_us, num_workers
    ):
        report = ServingFrontend(
            _StubEngine(),
            k=1,
            queue_capacity=8,
            max_batch=max_batch,
            max_wait_us=max_wait_us,
            num_workers=num_workers,
            fairness=fairness,
            admission_wait_budget_us=5000.0,
        ).run(trace)
        assert len(report.outcomes) == len(trace)
        assert len(report.answered) + len(report.shed) == len(trace)
        assert sorted(o.index for o in report.outcomes) == list(
            range(len(trace))
        )
        assert sum(b.size for b in report.batches) == len(report.answered)
        assert all(1 <= b.size <= max_batch for b in report.batches)
        assert _max_concurrent_batches(report) <= num_workers
        for o in report.answered:
            assert o.queue_wait_us >= 0.0
            assert o.assembly_wait_us >= 0.0
            assert o.e2e_us == pytest.approx(
                o.queue_wait_us + o.assembly_wait_us + o.engine_us
            )

    @given(trace=_traces(), weights=_WEIGHTS, **_KNOBS)
    @settings(max_examples=60, deadline=None)
    def test_dwrr_degenerates_to_fifo_with_one_tenant(
        self, trace, weights, max_batch, max_wait_us, num_workers
    ):
        # With a single tenant there is nothing to arbitrate: DWRR must
        # reproduce FIFO bit for bit whatever the weights — including
        # far-below-1 weights, which force the round fast-forward on
        # every contended batch.
        solo = ArrivalTrace(
            name=trace.name,
            arrival_us=trace.arrival_us,
            tenant=np.zeros(len(trace), dtype=np.int32),
            query_index=trace.query_index,
            queries=trace.queries,
        )

        def run(fairness, tenant_weights=None):
            report = ServingFrontend(
                _StubEngine(),
                k=1,
                queue_capacity=8,
                max_batch=max_batch,
                max_wait_us=max_wait_us,
                num_workers=num_workers,
                fairness=fairness,
                tenant_weights=tenant_weights,
                admission_wait_budget_us=5000.0,
            ).run(solo)
            return report

        fifo = run("fifo")
        dwrr = run("dwrr", weights)
        assert [
            (b.dispatch_us, b.size, b.worker, b.query_rows)
            for b in fifo.batches
        ] == [
            (b.dispatch_us, b.size, b.worker, b.query_rows)
            for b in dwrr.batches
        ]
        assert json.dumps(fifo.metrics(), sort_keys=True) == json.dumps(
            dwrr.metrics(), sort_keys=True
        )

    @given(trace=_traces(), fairness=st.sampled_from(["fifo", "dwrr"]), **_KNOBS)
    @settings(max_examples=40, deadline=None)
    def test_run_is_deterministic(
        self, trace, fairness, max_batch, max_wait_us, num_workers
    ):
        def once():
            report = ServingFrontend(
                _StubEngine(),
                k=1,
                queue_capacity=8,
                max_batch=max_batch,
                max_wait_us=max_wait_us,
                num_workers=num_workers,
                fairness=fairness,
                tenant_weights=(2.0, 1.0),
                admission_wait_budget_us=5000.0,
            ).run(trace)
            return json.dumps(report.metrics(), sort_keys=True)

        assert once() == once()

    def test_simultaneous_arrivals_fill_one_batch(self):
        # Five requests at the same instant, batch of 4: the size trigger
        # fires for the first four, the straggler rides the time trigger.
        trace = ArrivalTrace(
            name="tie",
            arrival_us=np.array([10.0] * 5),
            tenant=np.zeros(5, dtype=np.int32),
            query_index=np.zeros(5, dtype=np.int32),
            queries=_POOL,
        )
        report = ServingFrontend(
            _StubEngine(), k=1, max_batch=4, max_wait_us=100.0
        ).run(trace)
        assert [b.size for b in report.batches] == [4, 1]
        assert len(report.answered) == 5
