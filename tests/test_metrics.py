"""Tests for recall, latency tracking, and resource models."""

import numpy as np
import pytest

from repro.metrics import LatencyTracker, recall_at_k, recall_curve
from repro.metrics.resources import ResourceModel, index_memory_report


class TestRecall:
    def test_perfect(self):
        assert recall_at_k([[1, 2, 3]], [[3, 2, 1]]) == 1.0

    def test_partial(self):
        assert recall_at_k([[1, 2, 9]], [[1, 2, 3]]) == pytest.approx(2 / 3)

    def test_zero(self):
        assert recall_at_k([[7, 8]], [[1, 2]]) == 0.0

    def test_k_truncation(self):
        # Only the first k results and ground truths count.
        assert recall_at_k([[1, 9]], [[1, 2, 3]], k=1) == 1.0

    def test_mean_over_queries(self):
        result = recall_at_k([[1], [9]], [[1], [2]])
        assert result == pytest.approx(0.5)

    def test_empty_ground_truth_skipped(self):
        assert recall_at_k([[1], [2]], [[], [2]]) == 1.0

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            recall_at_k([[1]], [[1], [2]])

    def test_numpy_inputs(self):
        got = recall_at_k(np.array([[1, 2]]), np.array([[2, 3]]))
        assert got == pytest.approx(0.5)


class TestRecallCurve:
    def test_sweep_shape(self, built_index, vectors):
        from repro.api import QueryRequest
        from repro.datasets import exact_knn

        queries = vectors[:10]
        gt = exact_knn(vectors, np.arange(len(vectors)), queries, 5)

        def search_fn(query, k, nprobe):
            # recall_curve calls positionally from inside repro.metrics,
            # where the legacy facade signature is forbidden — adapt.
            return built_index.query(
                QueryRequest.single(query, k=k, nprobe=nprobe)
            ).result

        curve = recall_curve(search_fn, queries, gt, k=5, nprobes=[1, 4, 16])
        assert len(curve) == 3
        nprobes, recalls, latencies = zip(*curve)
        assert nprobes == (1, 4, 16)
        assert recalls[-1] >= recalls[0]  # more probes never hurt on average
        assert latencies[-1] >= latencies[0]


class TestLatencyTracker:
    def test_percentiles(self):
        tracker = LatencyTracker()
        tracker.extend(range(1, 101))
        assert tracker.percentile(50) == pytest.approx(50.5)
        assert tracker.percentile(99) == pytest.approx(99.01, abs=0.1)
        assert tracker.mean == pytest.approx(50.5)
        assert tracker.max == 100

    def test_empty(self):
        tracker = LatencyTracker()
        assert tracker.percentile(99) == 0.0
        assert tracker.mean == 0.0
        assert len(tracker) == 0

    def test_summary_keys(self):
        tracker = LatencyTracker()
        tracker.record(10.0)
        summary = tracker.summary()
        for key in ("p50", "p90", "p95", "p99", "p99.9", "mean", "max"):
            assert key in summary

    def test_qps(self):
        tracker = LatencyTracker()
        tracker.extend([1.0] * 50)
        assert tracker.qps(2.0) == 25.0
        assert tracker.qps(0.0) == 0.0

    def test_reset(self):
        tracker = LatencyTracker()
        tracker.record(5.0)
        tracker.reset()
        assert len(tracker) == 0


class TestResourceModel:
    def test_total(self):
        model = ResourceModel(
            vectors=100,
            postings=10,
            centroid_bytes=1000,
            version_map_bytes=100,
            block_mapping_bytes=400,
        )
        assert model.total_bytes == 1500

    def test_projection_linear(self):
        model = ResourceModel(
            vectors=100,
            postings=10,
            centroid_bytes=1000,
            version_map_bytes=100,
            block_mapping_bytes=400,
        )
        assert model.projected_bytes(200) == 2 * model.total_bytes

    def test_projection_zero_vectors(self):
        model = ResourceModel(0, 0, 0, 0, 0)
        assert model.projected_bytes(100) == 0

    def test_index_report(self, built_index):
        report = index_memory_report(built_index)
        assert report.vectors == built_index.live_vector_count
        assert report.postings == built_index.num_postings
        assert report.total_bytes == built_index.memory_bytes()
