"""Tests for the whole-index invariant checker (repro/core/invariants.py)."""

import numpy as np
import pytest

from repro.core.invariants import InvariantViolation, check_invariants
from repro.storage.layout import PostingData


def empty_posting(dim: int) -> PostingData:
    return PostingData.from_rows(
        np.empty(0, dtype=np.int64),
        np.empty(0, dtype=np.uint8),
        np.empty((0, dim), dtype=np.float32),
    )


class TestCleanIndex:
    def test_built_index_passes(self, built_index):
        report = check_invariants(built_index)
        assert report.ok, report.failures
        assert report.live_vectors == built_index.live_vector_count
        assert report.postings == built_index.num_postings
        assert report.npa_checked > 0

    def test_passes_after_churn_and_drain(self, built_index, rng):
        from tests.conftest import DIM

        for i in range(150):
            built_index.insert(50_000 + i, rng.normal(size=DIM).astype(np.float32))
        for i in range(0, 150, 3):
            built_index.delete(50_000 + i)
        built_index.drain()
        report = check_invariants(built_index)
        assert report.ok, report.failures

    def test_counter_incremented(self, built_index):
        assert built_index.stats.invariant_checks == 0
        built_index.check_invariants()
        assert built_index.stats.invariant_checks == 1

    def test_raise_if_failed_noop_when_ok(self, built_index):
        check_invariants(built_index).raise_if_failed()


class TestViolationDetection:
    def test_detects_lost_vector(self, built_index):
        """A live id in the version map with no live replica on disk."""
        ghost = 777_777
        built_index.version_map.register(ghost)
        report = check_invariants(built_index)
        assert ghost in report.lost_vectors
        assert not report.ok
        with pytest.raises(InvariantViolation):
            report.raise_if_failed()

    def test_detects_stale_only_vector(self, built_index):
        """Bumping a vector's version makes every on-disk copy stale."""
        vid = 0
        version = built_index.version_map.current_version(vid)
        built_index.version_map.cas_bump(vid, version)
        report = check_invariants(built_index)
        assert vid in report.lost_vectors

    def test_detects_oversized_posting(self, built_index, rng):
        from tests.conftest import DIM

        pid = built_index.controller.posting_ids()[0]
        n = built_index.config.max_posting_size + 5
        ids = np.arange(600_000, 600_000 + n)
        for vid in ids:
            built_index.version_map.register(int(vid))
        built_index.controller.append(
            pid,
            PostingData.from_rows(
                ids,
                np.zeros(n, dtype=np.uint8),
                rng.normal(size=(n, DIM)).astype(np.float32),
            ),
        )
        report = check_invariants(built_index, npa_sample=0)
        assert any(p == pid for p, _ in report.oversized_postings)
        ok_report = check_invariants(
            built_index, npa_sample=0, check_size_bounds=False
        )
        assert not ok_report.oversized_postings

    def test_detects_posting_without_centroid(self, built_index):
        pid = built_index.controller.posting_ids()[0]
        built_index.centroid_index.remove(pid)
        report = check_invariants(built_index, npa_sample=0)
        assert pid in report.postings_without_centroid

    def test_detects_centroid_without_posting(self, built_index):
        built_index.centroid_index.add(
            999, np.zeros(built_index.config.dim, dtype=np.float32)
        )
        report = check_invariants(built_index, npa_sample=0)
        assert 999 in report.centroids_without_posting

    def test_detects_npa_violation(self, built_index):
        """Planting an empty posting whose centroid sits exactly on a live
        vector makes that vector's nearest posting hold no copy of it."""
        from tests.helpers import live_vector_of

        vid = int(built_index.version_map.live_ids()[0])
        vector = live_vector_of(built_index, vid)
        fake_pid = built_index.posting_ids.next()
        built_index.controller.create(fake_pid, empty_posting(built_index.config.dim))
        built_index.centroid_index.add(fake_pid, vector.copy())
        report = check_invariants(
            built_index,
            npa_sample=built_index.live_vector_count,
            npa_allowance=0,
        )
        assert vid in report.npa_violations
        assert not report.ok
