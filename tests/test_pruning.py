"""Tests for query-aware dynamic pruning and per-job I/O accounting."""

import numpy as np
import pytest

from repro.core.index import SPFreshIndex
from tests.conftest import DIM


class TestQueryAwarePruning:
    def test_pruning_reduces_postings_probed(self, vectors, small_config):
        plain = SPFreshIndex.build(vectors, config=small_config)
        pruned = SPFreshIndex.build(
            vectors, config=small_config.with_overrides(search_prune_epsilon=0.3)
        )
        # A query dead-center in a cluster has one dominant posting; the
        # pruned searcher should skip the distant candidates.
        query = vectors[0]
        full = plain.search(query, 5, nprobe=16)
        cut = pruned.search(query, 5, nprobe=16)
        assert cut.postings_probed <= full.postings_probed
        assert cut.postings_probed >= 1

    def test_pruning_preserves_top_hit(self, vectors, small_config):
        pruned = SPFreshIndex.build(
            vectors, config=small_config.with_overrides(search_prune_epsilon=0.5)
        )
        for i in (0, 7, 42):
            result = pruned.search(vectors[i], 1, nprobe=8)
            assert result.ids[0] == i

    def test_disabled_by_default(self, built_index):
        assert built_index.searcher.prune_epsilon is None

    def test_large_epsilon_prunes_nothing(self, vectors, small_config):
        loose = SPFreshIndex.build(
            vectors, config=small_config.with_overrides(search_prune_epsilon=1e6)
        )
        plain = SPFreshIndex.build(vectors, config=small_config)
        q = vectors[3]
        assert (
            loose.search(q, 5, nprobe=8).postings_probed
            == plain.search(q, 5, nprobe=8).postings_probed
        )

    def test_recall_cost_is_small(self, vectors, small_config, rng):
        from repro.datasets import exact_knn
        from repro.metrics import recall_at_k

        queries = vectors[:30] + 0.01
        gt = exact_knn(vectors, np.arange(len(vectors)), queries, 5)
        plain = SPFreshIndex.build(vectors, config=small_config)
        pruned = SPFreshIndex.build(
            vectors, config=small_config.with_overrides(search_prune_epsilon=0.6)
        )
        r_plain = recall_at_k([plain.search(q, 5, nprobe=8).ids for q in queries], gt, 5)
        r_pruned = recall_at_k([pruned.search(q, 5, nprobe=8).ids for q in queries], gt, 5)
        assert r_pruned >= r_plain - 0.1


class TestIoByJob:
    def test_split_io_attributed(self, built_index, rng):
        centroid = built_index.centroid_index.get(
            built_index.controller.posting_ids()[0]
        )
        for i in range(built_index.config.max_posting_size + 10):
            built_index.insert(
                70_500 + i,
                (centroid + rng.normal(scale=0.05, size=DIM)).astype(np.float32),
            )
        built_index.drain()
        io = built_index.rebuilder.io_by_job
        assert io["split"] > 0
        total = sum(io.values())
        assert total == pytest.approx(built_index.rebuilder.background_io_us, rel=1e-6)

    def test_reassign_io_attributed(self, built_index, rng):
        centroid = built_index.centroid_index.get(
            built_index.controller.posting_ids()[0]
        )
        for i in range(built_index.config.max_posting_size * 2):
            built_index.insert(
                71_500 + i,
                (centroid + rng.normal(scale=0.2, size=DIM)).astype(np.float32),
            )
        built_index.drain()
        if built_index.stats.reassign_executed > 0:
            assert built_index.rebuilder.io_by_job["reassign"] > 0
