"""Tests for the typed query surface (repro.api)."""

import warnings

import numpy as np
import pytest

from repro.api import QueryRequest, SearchResponse, warn_legacy_query


class TestQueryRequest:
    def test_single_vector_normalized_to_row(self):
        req = QueryRequest(vectors=np.zeros(8))
        assert req.vectors.shape == (1, 8)
        assert req.vectors.dtype == np.float32
        assert req.is_single

    def test_batch_stays_batch(self):
        req = QueryRequest(vectors=np.zeros((5, 8)))
        assert req.vectors.shape == (5, 8)
        assert not req.is_single

    def test_explicit_empty_batch_is_well_defined(self):
        # A 2-D (0, dim) batch is a legal "no queries" request ...
        req = QueryRequest(vectors=np.zeros((0, 8)))
        assert req.vectors.shape == (0, 8)
        assert not req.is_single

    def test_rejects_empty_1d_and_3d(self):
        # ... but an empty 1-D vector is ambiguous, and 3-D is nonsense.
        with pytest.raises(ValueError):
            QueryRequest(vectors=np.zeros(0))
        with pytest.raises(ValueError):
            QueryRequest(vectors=np.zeros((2, 3, 4)))

    def test_knob_validation(self):
        with pytest.raises(ValueError):
            QueryRequest(vectors=np.zeros(4), k=0)
        with pytest.raises(ValueError):
            QueryRequest(vectors=np.zeros(4), nprobe=0)
        with pytest.raises(ValueError):
            QueryRequest(vectors=np.zeros(4), rerank_k=0)

    def test_single_constructor_rejects_matrix(self):
        with pytest.raises(ValueError):
            QueryRequest.single(np.zeros((2, 4)))

    def test_single_passes_knobs(self):
        req = QueryRequest.single(np.zeros(4), k=3, nprobe=2, rerank_k=5)
        assert (req.k, req.nprobe, req.rerank_k) == (3, 2, 5)

    def test_with_vectors_keeps_knobs(self):
        req = QueryRequest(vectors=np.zeros((4, 8)), k=7, nprobe=3, tenant=2)
        sliced = req.with_vectors(req.vectors[:2])
        assert sliced.vectors.shape == (2, 8)
        assert (sliced.k, sliced.nprobe, sliced.tenant) == (7, 3, 2)

    def test_frozen(self):
        req = QueryRequest(vectors=np.zeros(4))
        with pytest.raises(AttributeError):
            req.k = 5


class _FakeResult:
    def __init__(self, ids):
        self.ids = np.asarray(ids)
        self.distances = np.zeros(len(ids), dtype=np.float32)
        self.latency_us = 1.0


class TestSearchResponse:
    def test_sequence_protocol(self):
        resp = SearchResponse(results=[_FakeResult([1]), _FakeResult([2])])
        assert len(resp) == 2
        assert [r.ids[0] for r in resp] == [1, 2]
        assert resp[1].ids[0] == 2

    def test_single_accessors(self):
        resp = SearchResponse(results=[_FakeResult([4, 5])])
        assert list(resp.ids) == [4, 5]
        assert resp.latency_us == 1.0

    def test_single_accessors_raise_on_batch(self):
        resp = SearchResponse(results=[_FakeResult([1]), _FakeResult([2])])
        with pytest.raises(ValueError):
            _ = resp.ids
        with pytest.raises(ValueError):
            _ = resp.result


class TestLegacyWarning:
    def test_external_caller_gets_deprecation_warning(self):
        def external_facade():
            warn_legacy_query("Thing.search")

        with pytest.warns(DeprecationWarning, match="Thing.search"):
            external_facade()

    def test_internal_caller_raises(self, built_index, vectors):
        # Simulate a legacy positional call whose caller frame lives
        # inside repro.*: the deprecated surface is a hard error for
        # first-party code.
        namespace = {"__name__": "repro.fake_module", "index": built_index}
        exec(
            "def internal_call(vector):\n"
            "    return index.search(vector, 3, nprobe=2)\n",
            namespace,
        )
        with pytest.raises(TypeError, match="QueryRequest"):
            namespace["internal_call"](vectors[0])

    def test_index_legacy_search_warns(self, built_index, vectors):
        with pytest.warns(DeprecationWarning):
            result = built_index.search(vectors[0], 3, nprobe=2)
        assert len(result.ids) <= 3
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            resp = built_index.query(
                QueryRequest.single(vectors[0], k=3, nprobe=2)
            )
        assert np.array_equal(resp.ids, result.ids)
