"""Tests for the series-analysis helpers."""

import numpy as np
import pytest

from repro.analysis import (
    comparison_report,
    detect_spikes,
    series_stats,
    stability_verdict,
    to_arrays,
    trend_slope,
)
from repro.bench.harness import DayMetrics


def make_day(day, recall=0.9, p999=1000.0, insert=100.0, memory=1.0):
    return DayMetrics(
        day=day,
        recall=recall,
        search_p50_us=p999 / 2,
        search_p90_us=p999 * 0.8,
        search_p95_us=p999 * 0.9,
        search_p99_us=p999 * 0.95,
        search_p999_us=p999,
        insert_mean_us=insert,
        insert_p999_us=insert * 2,
        insert_wall_qps=1000,
        search_wall_qps=1000,
        memory_mb=memory,
        device_iops=10_000,
        live_vectors=5000,
    )


class TestTrendSlope:
    def test_flat(self):
        assert trend_slope([5.0, 5.0, 5.0, 5.0]) == pytest.approx(0.0)

    def test_growth(self):
        # +1 per day on mean 11.5: slope/mean ≈ 0.087
        slope = trend_slope(np.arange(10, 14, dtype=float))
        assert slope == pytest.approx(1 / 11.5, rel=1e-6)

    def test_decline_is_negative(self):
        assert trend_slope([10.0, 8.0, 6.0, 4.0]) < 0

    def test_short_series(self):
        assert trend_slope([3.0]) == 0.0

    def test_zero_mean(self):
        assert trend_slope([0.0, 0.0]) == 0.0


class TestSpikes:
    def test_finds_isolated_spike(self):
        values = [1.0, 1.0, 1.1, 9.0, 1.0, 0.9]
        assert detect_spikes(values) == [3]

    def test_no_spikes_on_flat(self):
        assert detect_spikes([2.0] * 10) == []

    def test_multiple_spikes_not_masked(self):
        values = [1.0, 10.0, 1.0, 10.0, 1.0, 1.0]
        assert detect_spikes(values) == [1, 3]

    def test_short_series(self):
        assert detect_spikes([1.0, 100.0]) == []


class TestSeriesStats:
    def test_stable_series(self):
        stats = series_stats([4.0, 4.1, 3.9, 4.0, 4.05])
        assert stats.is_stable
        assert stats.mean == pytest.approx(4.01, abs=0.01)

    def test_spiky_series_not_stable(self):
        stats = series_stats([1.0, 1.0, 20.0, 1.0, 1.0])
        assert not stats.is_stable
        assert stats.spike_days == (2,)

    def test_growing_series_not_stable(self):
        stats = series_stats(np.linspace(1, 3, 10))
        assert not stats.is_stable
        assert stats.slope_per_day > 0.02

    def test_empty(self):
        stats = series_stats([])
        assert stats.mean == 0.0 and stats.is_stable


class TestVerdicts:
    def test_stable(self):
        assert stability_verdict([5.0, 5.0, 5.1, 4.9]) == "stable"

    def test_spiky(self):
        assert "spiky" in stability_verdict([1, 1, 1, 30, 1, 1])

    def test_growing(self):
        assert "growing" in stability_verdict(np.linspace(1, 2, 8))

    def test_degrading(self):
        assert "degrading" in stability_verdict(np.linspace(2, 1, 8))


class TestReport:
    def test_to_arrays(self):
        series = [make_day(i, recall=0.9 + 0.001 * i) for i in range(5)]
        arrays = to_arrays(series, ["recall", "memory_mb"])
        assert arrays["recall"].shape == (5,)
        assert arrays["memory_mb"][0] == 1.0

    def test_comparison_report_renders(self):
        stable = [make_day(i) for i in range(6)]
        spiky = [
            make_day(i, p999=20_000.0 if i % 3 == 2 else 1000.0) for i in range(6)
        ]
        report = comparison_report({"SPFresh": stable, "DiskANN": spiky})
        assert "SPFresh" in report and "DiskANN" in report
        assert "stable" in report and "spiky" in report
