"""Tests for the two NPA necessary conditions (paper §3.3, Eq. 1 & 2)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.conditions import condition_one_mask, condition_two_mask
from repro.util.distance import sq_l2

DIM = 4
coords = st.floats(-50, 50, allow_nan=False, allow_infinity=False, width=32)


def points(n_max=20):
    return hnp.arrays(
        np.float32, st.tuples(st.integers(1, n_max), st.just(DIM)), elements=coords
    )


def vector():
    return hnp.arrays(np.float32, (DIM,), elements=coords)


class TestConditionOne:
    def test_paper_geometry(self):
        """The yellow dot of Figure 4: old centroid closer than both new."""
        old = np.array([0.0, 0.0, 0, 0], dtype=np.float32)
        new = np.array([[-3.0, 0, 0, 0], [3.0, 0, 0, 0]], dtype=np.float32)
        vectors = np.array(
            [
                [0.0, 1.0, 0, 0],  # nearer old than either new -> candidate
                [-3.0, 0.1, 0, 0],  # right next to new centroid 0 -> safe
            ],
            dtype=np.float32,
        )
        mask = condition_one_mask(vectors, old, new)
        assert list(mask) == [True, False]

    def test_empty(self):
        old = np.zeros(DIM, dtype=np.float32)
        new = np.zeros((2, DIM), dtype=np.float32)
        assert condition_one_mask(np.empty((0, DIM), np.float32), old, new).shape == (0,)

    @given(points(), vector(), points(3))
    @settings(max_examples=40)
    def test_matches_definition(self, vectors, old, new):
        mask = condition_one_mask(vectors, old, new)
        for i, v in enumerate(vectors):
            d_old = sq_l2(v, old)
            d_new = min(sq_l2(v, c) for c in new)
            # Allow fp slack at the boundary: equality cases may go either
            # way, but strict orderings must agree with the mask.
            if d_old < d_new * (1 - 1e-5) - 1e-4:
                assert mask[i]
            elif d_old > d_new * (1 + 1e-5) + 1e-4:
                assert not mask[i]


class TestConditionTwo:
    def test_paper_geometry(self):
        """The green dot of Figure 4: a new centroid moved closer than old."""
        old = np.array([0.0, 0.0, 0, 0], dtype=np.float32)
        new = np.array([[-3.0, 0, 0, 0], [3.0, 0, 0, 0]], dtype=np.float32)
        vectors = np.array(
            [
                [4.0, 0.5, 0, 0],  # new centroid A2 is closer than old -> check
                [0.0, 0.5, 0, 0],  # old was closest; new ones are worse -> skip
            ],
            dtype=np.float32,
        )
        mask = condition_two_mask(vectors, old, new)
        assert list(mask) == [True, False]

    @given(points(), vector(), points(3))
    @settings(max_examples=40)
    def test_matches_definition(self, vectors, old, new):
        mask = condition_two_mask(vectors, old, new)
        for i, v in enumerate(vectors):
            d_old = sq_l2(v, old)
            d_new = min(sq_l2(v, c) for c in new)
            if d_new < d_old * (1 - 1e-5) - 1e-4:
                assert mask[i]
            elif d_new > d_old * (1 + 1e-5) + 1e-4:
                assert not mask[i]


class TestConditionsComplementarity:
    @given(points(), vector(), points(3))
    @settings(max_examples=40)
    def test_union_covers_everything(self, vectors, old, new):
        """Every vector satisfies at least one condition (<= or >= covers all),
        which is why the pair is *necessary*: no NPA violation escapes both."""
        one = condition_one_mask(vectors, old, new)
        two = condition_two_mask(vectors, old, new)
        assert (one | two).all()

    def test_overlap_exactly_at_ties(self):
        old = np.zeros(DIM, dtype=np.float32)
        new = np.array([[2.0, 0, 0, 0], [-2.0, 0, 0, 0]], dtype=np.float32)
        tie = np.array([[1.0, 0, 0, 0]], dtype=np.float32)  # equidistant
        assert condition_one_mask(tie, old, new)[0]
        assert condition_two_mask(tie, old, new)[0]
