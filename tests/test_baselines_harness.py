"""Tests for the SPANN+ baseline and the bench harness."""

import numpy as np
import pytest

from repro.baselines import build_spann_plus
from repro.bench.cost_model import (
    RebuildCostModel,
    measure_diskann_build,
    measure_spfresh_build,
    table1_rows,
)
from repro.bench.harness import (
    DiskANNAdapter,
    SPFreshAdapter,
    run_update_simulation,
    summarize,
)
from repro.bench.reporting import format_series, format_table
from repro.core.config import SPFreshConfig
from repro.core.index import SPFreshIndex
from repro.datasets import workload_b
from tests.conftest import DIM


class TestSpannPlus:
    def test_lire_disabled(self, vectors, small_config):
        index = build_spann_plus(vectors, config=small_config)
        assert not index.config.enable_split
        assert not index.config.enable_merge
        assert not index.config.enable_reassign

    def test_kwargs_preset(self, vectors):
        index = build_spann_plus(
            vectors, dim=DIM, max_posting_size=64, ssd_blocks=1 << 13
        )
        assert index.config.max_posting_size == 64

    def test_postings_grow_without_splits(self, vectors, small_config, rng):
        index = build_spann_plus(vectors, config=small_config)
        centroid = index.centroid_index.get(0)
        for i in range(120):
            index.insert(
                10_000 + i,
                (centroid + rng.normal(scale=0.05, size=DIM)).astype(np.float32),
            )
        index.drain()
        assert index.stats.splits == 0
        assert index.posting_sizes().max() > small_config.max_posting_size

    def test_gc_pass_controls_garbage(self, vectors, small_config):
        index = build_spann_plus(vectors, config=small_config)
        for vid in range(150):
            index.delete(vid)
        before = index.controller.total_entries()
        index.gc_pass()
        assert index.controller.total_entries() < before


@pytest.fixture(scope="module")
def tiny_workload():
    return workload_b(n_base=600, days=3, daily_rate=0.02, dim=DIM, num_queries=15)


class TestHarness:
    def test_spfresh_day_series(self, tiny_workload):
        config = SPFreshConfig(
            dim=DIM, ssd_blocks=1 << 13, max_posting_size=48,
            build_target_posting_size=24,
        )
        index = SPFreshIndex.build(
            tiny_workload.base_vectors, ids=tiny_workload.base_ids, config=config
        )
        results = run_update_simulation(SPFreshAdapter(index), tiny_workload, k=5)
        assert len(results) == 3
        for day in results:
            assert 0.0 <= day.recall <= 1.0
            assert day.search_p999_us >= day.search_p50_us
            assert day.live_vectors == 600
            assert day.memory_mb > 0
        stats = summarize(results)
        assert stats["mean_recall"] > 0.7
        assert set(stats) >= {"mean_p999_ms", "peak_memory_mb", "mean_insert_us"}

    def test_diskann_adapter(self, tiny_workload):
        from repro.baselines.diskann import DiskANNConfig, FreshDiskANNIndex

        config = DiskANNConfig(dim=DIM, merge_threshold=30, ssd_blocks=1 << 12)
        index = FreshDiskANNIndex.build(
            tiny_workload.base_vectors, ids=tiny_workload.base_ids, config=config
        )
        results = run_update_simulation(DiskANNAdapter(index), tiny_workload, k=5)
        assert len(results) == 3
        assert all(r.recall > 0.2 for r in results)
        assert results[-1].extra["merges"] >= 0

    def test_summarize_empty(self):
        assert summarize([]) == {}


class TestReporting:
    def test_format_table(self):
        out = format_table(
            ["name", "value"], [["a", 1.23456], ["bb", 1234.5]], title="T"
        )
        assert "== T ==" in out
        assert "1.235" in out and "1,234" in out

    def test_format_series(self, tiny_workload):
        config = SPFreshConfig(dim=DIM, ssd_blocks=1 << 13)
        index = SPFreshIndex.build(
            tiny_workload.base_vectors, ids=tiny_workload.base_ids, config=config
        )
        results = run_update_simulation(
            SPFreshAdapter(index), tiny_workload, k=5, queries_per_day=5
        )
        out = format_series(results, every=2)
        assert "recall" in out and "day" in out


class TestCostModel:
    def test_projection_math(self):
        model = RebuildCostModel("x", 1000, 2.0, 10_000)
        assert model.projected_hours(1_000_000, speedup=1.0) == pytest.approx(
            2000 / 3600
        )
        assert model.projected_memory_gb(1_000_000) == pytest.approx(
            10_000_000 / 1024**3
        )

    def test_measured_builds(self, vectors, small_config):
        from repro.baselines.diskann import DiskANNConfig

        spann = measure_spfresh_build(vectors, small_config)
        diskann = measure_diskann_build(
            vectors, DiskANNConfig(dim=DIM, ssd_blocks=1 << 12)
        )
        assert spann.measured_seconds > 0
        assert diskann.measured_seconds > 0
        rows = table1_rows(spann, diskann, target_vectors=10**6)
        assert len(rows) == 2
        assert "DiskANN" in rows[0][0]
