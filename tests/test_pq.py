"""Tests for the product quantizer."""

import numpy as np
import pytest

from repro.baselines.diskann.pq import ProductQuantizer


@pytest.fixture
def fitted(rng):
    pq = ProductQuantizer(dim=16, num_subspaces=4, codebook_size=16)
    data = rng.normal(size=(500, 16)).astype(np.float32)
    pq.fit(data, rng)
    return pq, data


class TestConstruction:
    def test_dim_divisibility(self):
        with pytest.raises(ValueError):
            ProductQuantizer(dim=10, num_subspaces=4)

    def test_codebook_size_bounds(self):
        with pytest.raises(ValueError):
            ProductQuantizer(dim=8, num_subspaces=2, codebook_size=1)
        with pytest.raises(ValueError):
            ProductQuantizer(dim=8, num_subspaces=2, codebook_size=512)

    def test_unfitted_raises(self):
        pq = ProductQuantizer(dim=8, num_subspaces=2)
        with pytest.raises(RuntimeError):
            pq.encode(np.zeros((1, 8), dtype=np.float32))
        with pytest.raises(RuntimeError):
            pq.distance_table(np.zeros(8, dtype=np.float32))
        with pytest.raises(RuntimeError):
            pq.decode(np.zeros((1, 2), dtype=np.uint8))


class TestEncodeDecode:
    def test_codes_shape_and_dtype(self, fitted):
        pq, data = fitted
        codes = pq.encode(data[:10])
        assert codes.shape == (10, 4)
        assert codes.dtype == np.uint8

    def test_single_vector_encode(self, fitted):
        pq, data = fitted
        assert pq.encode(data[0]).shape == (1, 4)

    def test_reconstruction_reduces_error_vs_random(self, fitted, rng):
        pq, data = fitted
        decoded = pq.decode(pq.encode(data[:50]))
        err = np.linalg.norm(decoded - data[:50], axis=1).mean()
        random_err = np.linalg.norm(
            data[:50] - data[rng.permutation(50)], axis=1
        ).mean()
        assert err < random_err * 0.7

    def test_small_training_set(self, rng):
        pq = ProductQuantizer(dim=8, num_subspaces=2, codebook_size=16)
        tiny = rng.normal(size=(4, 8)).astype(np.float32)
        pq.fit(tiny, rng)
        codes = pq.encode(tiny)
        assert (codes < 16).all()


class TestADC:
    def test_adc_matches_decoded_distance(self, fitted):
        pq, data = fitted
        query = data[0]
        codes = pq.encode(data[:20])
        table = pq.distance_table(query)
        adc = pq.adc_distances(table, codes)
        decoded = pq.decode(codes)
        exact_to_decoded = ((decoded - query) ** 2).sum(axis=1)
        np.testing.assert_allclose(adc, exact_to_decoded, rtol=1e-3, atol=1e-2)

    def test_adc_preserves_rough_ordering(self, fitted, rng):
        pq, data = fitted
        query = rng.normal(size=16).astype(np.float32)
        codes = pq.encode(data)
        table = pq.distance_table(query)
        adc = pq.adc_distances(table, codes)
        exact = ((data - query) ** 2).sum(axis=1)
        # Top-10 by ADC should overlap strongly with top-50 exact.
        top_adc = set(np.argsort(adc)[:10].tolist())
        top_exact = set(np.argsort(exact)[:50].tolist())
        assert len(top_adc & top_exact) >= 7

    def test_single_code_row(self, fitted):
        pq, data = fitted
        table = pq.distance_table(data[0])
        single = pq.adc_distances(table, pq.encode(data[0])[0])
        assert single.shape == (1,)


class TestMemoryModel:
    def test_scales_with_vectors(self):
        pq = ProductQuantizer(dim=16, num_subspaces=4)
        assert pq.memory_bytes(2000) - pq.memory_bytes(1000) == 1000 * 4
