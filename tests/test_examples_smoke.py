"""Smoke tests: every example script runs to completion.

Examples are part of the public deliverable; these tests import each one
with scaled-down parameters where possible, or at least verify the module
parses and its main() exists. The heavyweight comparisons are excluded
from default runs via a marker-free small subset (quickstart, recovery,
MIPS) — the rest are exercised manually / in the bench logs.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def load_example(name: str):
    path = EXAMPLES / name
    spec = importlib.util.spec_from_file_location(f"example_{name[:-3]}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


ALL_EXAMPLES = [
    "quickstart.py",
    "streaming_updates.py",
    "fresh_document_search.py",
    "crash_recovery.py",
    "baseline_comparison.py",
    "distributed_shards.py",
    "inner_product_search.py",
]

FAST_EXAMPLES = ["crash_recovery.py", "inner_product_search.py"]


class TestExamplesExist:
    @pytest.mark.parametrize("name", ALL_EXAMPLES)
    def test_example_present_with_main(self, name):
        module = load_example(name)
        assert callable(getattr(module, "main", None)), f"{name} lacks main()"
        assert module.__doc__, f"{name} lacks a docstring"

    def test_no_unknown_examples_missing_from_list(self):
        on_disk = {p.name for p in EXAMPLES.glob("*.py")}
        assert on_disk == set(ALL_EXAMPLES)


class TestFastExamplesRun:
    @pytest.mark.parametrize("name", FAST_EXAMPLES)
    def test_runs_to_completion(self, name, capsys):
        module = load_example(name)
        module.main()
        out = capsys.readouterr().out
        assert len(out) > 0
