"""BKTree-specific tests (shared behaviour is covered in test_centroids)."""

import numpy as np
import pytest

from repro.centroids import BKTreeCentroidIndex, BruteForceCentroidIndex

DIM = 8


def fill(index, rng, n):
    centroids = rng.normal(size=(n, DIM)).astype(np.float32)
    for pid, c in enumerate(centroids):
        index.add(pid, c)
    return centroids


class TestStructure:
    def test_splits_create_depth(self, rng):
        tree = BKTreeCentroidIndex(DIM, leaf_size=8, branch_factor=4)
        fill(tree, rng, 200)
        assert tree.depth() >= 2

    def test_leaf_size_respected_after_split(self, rng):
        tree = BKTreeCentroidIndex(DIM, leaf_size=8, branch_factor=4)
        fill(tree, rng, 100)
        for pid, leaf in tree._leaf_of.items():
            assert len(leaf.entries) <= 8

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            BKTreeCentroidIndex(DIM, leaf_size=2, branch_factor=4)

    def test_identical_centroids_split_safely(self, rng):
        tree = BKTreeCentroidIndex(DIM, leaf_size=4, branch_factor=2)
        for pid in range(20):
            tree.add(pid, np.ones(DIM, dtype=np.float32))
        assert len(tree) == 20
        result = tree.search(np.ones(DIM, dtype=np.float32), 5)
        assert len(result) == 5


class TestQuality:
    def test_high_recall_vs_brute(self, rng):
        tree = BKTreeCentroidIndex(DIM, leaf_size=16)
        brute = BruteForceCentroidIndex(DIM)
        centroids = rng.normal(size=(400, DIM)).astype(np.float32)
        for pid, c in enumerate(centroids):
            tree.add(pid, c)
            brute.add(pid, c)
        hits = total = 0
        for query in rng.normal(size=(40, DIM)).astype(np.float32):
            t = set(int(p) for p in tree.search(query, 8).posting_ids)
            b = set(int(p) for p in brute.search(query, 8).posting_ids)
            hits += len(t & b)
            total += len(b)
        assert hits / total > 0.9

    def test_quality_survives_churn(self, rng):
        tree = BKTreeCentroidIndex(DIM, leaf_size=8)
        centroids = fill(tree, rng, 150)
        for pid in range(0, 150, 2):
            tree.remove(pid)
        for pid in range(150, 250):
            tree.add(pid, rng.normal(size=DIM).astype(np.float32))
        assert len(tree) == 175
        # Any surviving original centroid must be findable as its own NN.
        assert tree.search(centroids[1], 1).nearest == 1

    def test_empty_leaves_ignored_in_search(self, rng):
        tree = BKTreeCentroidIndex(DIM, leaf_size=4, branch_factor=2)
        fill(tree, rng, 30)
        for pid in range(25):
            tree.remove(pid)
        result = tree.search(np.zeros(DIM, dtype=np.float32), 5)
        assert len(result) == 5
        assert set(int(p) for p in result.posting_ids) <= set(range(25, 30))


class TestIntegrationWithIndex:
    def test_spfresh_runs_on_bkt(self, vectors, small_config, rng):
        from repro.core.index import SPFreshIndex

        config = small_config.with_overrides(centroid_index_kind="bkt")
        index = SPFreshIndex.build(vectors, config=config)
        result = index.search(vectors[0], 5, nprobe=8)
        assert len(result) == 5
        for i in range(60):
            index.insert(50_000 + i, rng.normal(size=16).astype(np.float32))
        index.drain()
        assert index.live_vector_count == len(vectors) + 60
