"""Tests for the batched multi-query search path."""

import numpy as np


class TestSearchBatch:
    def test_matches_single_query_results(self, built_index, vectors):
        queries = vectors[:10] + 0.01
        batch = built_index.search_batch(queries, 5, nprobe=8)
        singles = [built_index.search(q, 5, nprobe=8) for q in queries]
        assert len(batch) == 10
        for b, s in zip(batch, singles):
            assert set(map(int, b.ids)) == set(map(int, s.ids))
            np.testing.assert_allclose(b.distances, s.distances, rtol=1e-5)

    def test_shared_io_cheaper_than_serial(self, built_index, vectors):
        queries = vectors[:12] + 0.01
        batch = built_index.search_batch(queries, 5, nprobe=8)
        serial_io = sum(
            built_index.search(q, 5, nprobe=8).io_latency_us for q in queries
        )
        # Every batch result carries the single shared submission latency.
        shared_io = batch[0].io_latency_us
        assert all(r.io_latency_us == shared_io for r in batch)
        assert shared_io < serial_io

    def test_respects_tombstones(self, built_index, vectors):
        built_index.delete(2)
        results = built_index.search_batch(vectors[:4], 10, nprobe=built_index.num_postings)
        assert 2 not in set(map(int, results[2].ids))

    def test_empty_batch(self, built_index):
        assert built_index.search_batch(np.empty((0, 16), dtype=np.float32), 5) == []

    def test_single_query_batch(self, built_index, vectors):
        results = built_index.search_batch(vectors[:1], 3)
        assert len(results) == 1
        assert len(results[0]) == 3

    def test_latency_components(self, built_index, vectors):
        results = built_index.search_batch(vectors[:5], 5, nprobe=4)
        for r in results:
            assert r.latency_us >= r.io_latency_us
            assert r.entries_scanned > 0


class TestBatchSearchParity:
    """search_many must drive the same pruning and maintenance signals as
    search — batch-only workloads previously never triggered merges."""

    def test_prune_epsilon_respected(self, built_index, vectors):
        searcher = built_index.searcher
        searcher.latency_budget_us = None  # isolate pruning from the budget
        searcher.prune_epsilon = 0.05
        queries = vectors[:8] + 0.01
        batch = built_index.search_batch(queries, 5, nprobe=8)
        singles = [built_index.search(q, 5, nprobe=8) for q in queries]
        for b, s in zip(batch, singles):
            assert b.postings_probed == s.postings_probed
            assert set(map(int, b.ids)) == set(map(int, s.ids))

    def test_undersized_postings_reported(self, built_index, vectors):
        # Shrink one posting below the merge threshold by deleting all but
        # one of its live vectors, then look at it from both search paths.
        from repro.spann.postings import live_view

        pid = built_index.controller.posting_ids()[0]
        data, _ = built_index.controller.get(pid)
        live = live_view(data, built_index.version_map)
        for vid in list(map(int, live.ids))[:-1]:
            built_index.delete(vid)
        centroid = built_index.centroid_index.get(pid)
        single = built_index.searcher.search(centroid, 5, nprobe=4)
        batch = built_index.searcher.search_many(centroid[None, :], 5, nprobe=4)[0]
        assert pid in single.undersized_postings
        assert batch.undersized_postings == single.undersized_postings

    def test_batch_search_triggers_merges(self, built_index, vectors):
        """End to end: index.search_batch schedules (deduplicated) merge
        jobs and drains them in synchronous mode, like index.search."""
        from repro.spann.postings import live_view

        pid = built_index.controller.posting_ids()[0]
        data, _ = built_index.controller.get(pid)
        live = live_view(data, built_index.version_map)
        for vid in list(map(int, live.ids))[:-1]:
            built_index.delete(vid)
        centroid = built_index.centroid_index.get(pid)
        before = built_index.stats.merge_jobs
        built_index.search_batch(np.vstack([centroid, centroid]), 5, nprobe=4)
        assert built_index.stats.merge_jobs >= before + 1
