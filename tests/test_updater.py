"""Tests for the foreground Updater (insert/delete paths)."""

import numpy as np
import pytest

from repro.core.config import SPFreshConfig
from repro.core.index import SPFreshIndex
from repro.util.errors import IndexError_
from tests.conftest import DIM
from tests.helpers import live_assignment


class TestInsert:
    def test_insert_appends_to_nearest_posting(self, built_index, rng):
        pid = built_index.controller.posting_ids()[0]
        vec = built_index.centroid_index.get(pid) + 0.01  # at that centroid
        built_index.insert(9000, vec.astype(np.float32))
        hits = built_index.centroid_index.search(vec.astype(np.float32), 1)
        assignment = live_assignment(built_index)
        assert hits.nearest in assignment[9000]

    def test_insert_searchable_immediately(self, built_index, rng):
        vec = rng.normal(size=DIM).astype(np.float32)
        built_index.insert(5000, vec)
        result = built_index.search(vec, 1, nprobe=built_index.num_postings)
        assert result.ids[0] == 5000

    def test_insert_duplicate_live_id_rejected(self, built_index, rng):
        with pytest.raises(IndexError_):
            built_index.insert(0, rng.normal(size=DIM).astype(np.float32))

    def test_insert_after_delete_same_id(self, built_index, rng):
        built_index.delete(0)
        vec = rng.normal(size=DIM).astype(np.float32)
        built_index.insert(0, vec)
        result = built_index.search(vec, 1, nprobe=built_index.num_postings)
        assert result.ids[0] == 0

    def test_insert_returns_positive_latency(self, built_index, rng):
        latency = built_index.insert(7000, rng.normal(size=DIM).astype(np.float32))
        assert latency > 0

    def test_insert_counts(self, built_index, rng):
        before = built_index.stats.inserts
        for i in range(5):
            built_index.insert(8000 + i, rng.normal(size=DIM).astype(np.float32))
        assert built_index.stats.inserts == before + 5

    def test_insert_with_replicas(self, vectors, small_config, rng):
        config = small_config.with_overrides(insert_replicas=3, closure_epsilon=3.0)
        index = SPFreshIndex.build(vectors, config=config)
        # A vector exactly between clusters gets multiple replicas.
        vec = vectors[:64].mean(axis=0).astype(np.float32)
        index.insert(7777, vec)
        assignment = live_assignment(index)
        assert len(assignment[7777]) >= 1  # >=1 always; often >1 at boundary

    def test_bootstrap_from_empty(self, small_config, rng):
        """First insert into an empty index creates the first posting."""
        seed_vec = rng.normal(size=(1, DIM)).astype(np.float32)
        index = SPFreshIndex.build(seed_vec, config=small_config)
        # Delete the only vector and GC the posting away via merge-less GC.
        index.delete(0)
        index.gc_pass()
        # Now force-delete the empty posting to simulate a truly empty index.
        for pid in index.controller.posting_ids():
            index.controller.delete(pid)
            index.centroid_index.remove(pid)
        vec = rng.normal(size=DIM).astype(np.float32)
        index.insert(1, vec)
        assert index.num_postings == 1
        assert index.search(vec, 1).ids[0] == 1


class TestDelete:
    def test_delete_hides_from_search(self, built_index, vectors):
        built_index.delete(7)
        result = built_index.search(vectors[7], 10, nprobe=built_index.num_postings)
        assert 7 not in set(int(i) for i in result.ids)

    def test_delete_unknown_is_noop(self, built_index):
        before = built_index.stats.deletes
        built_index.delete(424242)
        assert built_index.stats.deletes == before

    def test_double_delete_counted_once(self, built_index):
        built_index.delete(3)
        built_index.delete(3)
        assert built_index.stats.deletes == 1

    def test_live_count_tracks_deletes(self, built_index, vectors):
        n = len(vectors)
        built_index.delete(0)
        built_index.delete(1)
        assert built_index.live_vector_count == n - 2


class TestSplitTrigger:
    def test_oversized_posting_queues_split(self, vectors, small_config, rng):
        config = small_config.with_overrides(synchronous_rebuild=False)
        index = SPFreshIndex.build(vectors, config=config)
        splits_at_build = index.stats.splits
        target_centroid = index.centroid_index.get(index.controller.posting_ids()[0])
        for i in range(small_config.max_posting_size + 5):
            index.insert(
                10_000 + i,
                (target_centroid + rng.normal(scale=0.05, size=DIM)).astype(
                    np.float32
                ),
            )
        assert index.job_queue.pending > 0
        assert index.stats.splits == splits_at_build  # not drained yet
        index.drain()
        assert index.stats.splits > splits_at_build

    def test_split_disabled_never_queues(self, vectors, rng):
        config = SPFreshConfig.spann_plus(
            dim=DIM,
            max_posting_size=32,
            build_target_posting_size=16,
            ssd_blocks=1 << 13,
        )
        index = SPFreshIndex.build(vectors, config=config)
        centroid = index.centroid_index.get(index.controller.posting_ids()[0])
        for i in range(50):
            index.insert(
                20_000 + i,
                (centroid + rng.normal(scale=0.05, size=DIM)).astype(np.float32),
            )
        index.drain()
        assert index.stats.splits == 0
        assert index.num_postings == len(index.controller.posting_ids())
