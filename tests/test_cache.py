"""Tests for the LRU posting cache."""

import numpy as np
import pytest

from repro.storage.cache import CachedBlockController
from tests.conftest import make_posting


@pytest.fixture
def cached(controller, rng):
    for pid in range(8):
        controller.put(pid, make_posting(rng, 5 + pid, id_start=pid * 100))
    return CachedBlockController(controller, capacity=4)


class TestReadPath:
    def test_miss_then_hit(self, cached):
        data1, lat1 = cached.get(0)
        data2, lat2 = cached.get(0)
        assert cached.hits == 1 and cached.misses == 1
        assert lat2 == cached.hit_latency_us
        assert lat2 < lat1
        np.testing.assert_array_equal(data1.ids, data2.ids)

    def test_parallel_get_mixed(self, cached):
        cached.get(1)
        out, latency = cached.parallel_get([1, 2, 3])
        assert set(out.keys()) == {1, 2, 3}
        assert cached.hits == 1  # pid 1 hit inside parallel_get
        assert latency > cached.hit_latency_us  # device fetch for 2, 3

    def test_parallel_get_overlaps_hits_with_device(self, cached):
        # Hits are served from DRAM while the device fetch for the misses
        # is in flight: a mixed batch costs max(hit, device), not the sum.
        cached.get(1)
        _, device_latency = cached.inner.parallel_get([2, 3])
        _, latency = cached.parallel_get([1, 2, 3])
        assert latency == max(cached.hit_latency_us, device_latency)
        assert latency == device_latency  # device path dominates DRAM hits

    def test_all_cached_parallel_get(self, cached):
        cached.parallel_get([1, 2])
        _, latency = cached.parallel_get([1, 2])
        assert latency == cached.hit_latency_us

    def test_hit_rate(self, cached):
        cached.get(0)
        cached.get(0)
        cached.get(0)
        assert cached.hit_rate == pytest.approx(2 / 3)

    def test_lru_eviction(self, cached):
        for pid in range(5):  # capacity 4: pid 0 evicted
            cached.get(pid)
        assert cached.cached_postings == 4
        cached.get(0)
        assert cached.misses == 6  # 5 initial + re-miss of evicted 0


class TestWriteInvalidation:
    def test_append_invalidates(self, cached, rng):
        cached.get(0)
        cached.append(0, make_posting(rng, 2, id_start=9000))
        data, _ = cached.get(0)
        assert 9000 in set(int(i) for i in data.ids)

    def test_put_invalidates(self, cached, rng):
        cached.get(1)
        fresh = make_posting(rng, 3, id_start=7000)
        cached.put(1, fresh)
        data, _ = cached.get(1)
        np.testing.assert_array_equal(data.ids, fresh.ids)

    def test_delete_invalidates(self, cached):
        cached.get(2)
        cached.delete(2)
        assert not cached.exists(2)
        out, _ = cached.parallel_get([2])
        assert out == {}


class TestArenaAliasing:
    """The cache must own its bytes, not alias the decode arena.

    ``BlockController.parallel_get`` decodes the whole batch into one
    shared arena and hands out zero-copy slices. Storing those slices in
    the cache means a caller mutating its (supposedly private) result —
    or a later decode reusing the arena — silently poisons every future
    hit. Regression tests for the copy-on-insert fix.
    """

    def test_caller_mutation_does_not_poison_cache(self, cached):
        # Multi-posting parallel_get takes the arena path.
        out, _ = cached.parallel_get([4, 5, 6])
        pristine_ids = out[4].ids.copy()
        pristine_vecs = out[4].vectors.copy()
        # Caller scribbles over everything it was handed.
        for data in out.values():
            data.ids[:] = -1
            data.versions[:] = 255
            data.vectors[:] = np.nan
        hit, _ = cached.parallel_get([4])
        np.testing.assert_array_equal(hit[4].ids, pristine_ids)
        np.testing.assert_array_equal(hit[4].vectors, pristine_vecs)

    def test_cached_entries_own_their_memory(self, cached):
        cached.parallel_get([0, 1, 2])
        for data in cached._cache.values():
            assert data.owns_memory()

    def test_single_get_not_needlessly_copied(self, cached):
        # The single-GET decode already returns owned columns; the
        # copy-on-insert must be a no-op there (owned() returns self).
        data, _ = cached.get(3)
        assert data.owns_memory()
        assert cached._cache[3] is data

    def test_memory_accounting_survives_source_mutation(self, cached):
        out, _ = cached.parallel_get([0, 1])
        before = cached.memory_bytes()
        out[0].vectors[:] = 0.0
        assert cached.memory_bytes() == before

    def test_clear(self, cached):
        cached.get(0)
        cached.clear()
        assert cached.cached_postings == 0


class TestDelegation:
    def test_metadata_passthrough(self, cached):
        assert cached.num_postings == 8
        assert cached.length(3) == 8
        assert cached.exists(7)

    def test_memory_model(self, cached):
        assert cached.memory_bytes() == 0
        cached.get(0)
        assert cached.memory_bytes() > 0

    def test_invalid_capacity(self, controller):
        with pytest.raises(ValueError):
            CachedBlockController(controller, capacity=0)


class TestWithSearcher:
    def test_cached_searches_reduce_device_reads(self, built_index, vectors):
        cached = CachedBlockController(built_index.controller, capacity=512)
        built_index.searcher.controller = cached
        io_before = built_index.ssd.stats.snapshot()
        for _ in range(5):
            built_index.search(vectors[0], 5, nprobe=8)
        window = built_index.ssd.stats.snapshot().delta(io_before)
        # Only the first query's postings hit the device.
        assert cached.hit_rate > 0.5
        assert window.block_reads <= window.block_reads  # sanity
        result = built_index.search(vectors[0], 5, nprobe=8)
        assert result.io_latency_us == cached.hit_latency_us
