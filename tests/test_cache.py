"""Tests for the LRU posting cache."""

import numpy as np
import pytest

from repro.storage.cache import CachedBlockController
from tests.conftest import make_posting


@pytest.fixture
def cached(controller, rng):
    for pid in range(8):
        controller.put(pid, make_posting(rng, 5 + pid, id_start=pid * 100))
    return CachedBlockController(controller, capacity=4)


class TestReadPath:
    def test_miss_then_hit(self, cached):
        data1, lat1 = cached.get(0)
        data2, lat2 = cached.get(0)
        assert cached.hits == 1 and cached.misses == 1
        assert lat2 == cached.hit_latency_us
        assert lat2 < lat1
        np.testing.assert_array_equal(data1.ids, data2.ids)

    def test_parallel_get_mixed(self, cached):
        cached.get(1)
        out, latency = cached.parallel_get([1, 2, 3])
        assert set(out.keys()) == {1, 2, 3}
        assert cached.hits == 1  # pid 1 hit inside parallel_get
        assert latency > cached.hit_latency_us  # device fetch for 2, 3

    def test_parallel_get_overlaps_hits_with_device(self, cached):
        # Hits are served from DRAM while the device fetch for the misses
        # is in flight: a mixed batch costs max(hit, device), not the sum.
        cached.get(1)
        _, device_latency = cached.inner.parallel_get([2, 3])
        _, latency = cached.parallel_get([1, 2, 3])
        assert latency == max(cached.hit_latency_us, device_latency)
        assert latency == device_latency  # device path dominates DRAM hits

    def test_all_cached_parallel_get(self, cached):
        cached.parallel_get([1, 2])
        _, latency = cached.parallel_get([1, 2])
        assert latency == cached.hit_latency_us

    def test_hit_rate(self, cached):
        cached.get(0)
        cached.get(0)
        cached.get(0)
        assert cached.hit_rate == pytest.approx(2 / 3)

    def test_lru_eviction(self, cached):
        for pid in range(5):  # capacity 4: pid 0 evicted
            cached.get(pid)
        assert cached.cached_postings == 4
        cached.get(0)
        assert cached.misses == 6  # 5 initial + re-miss of evicted 0


class TestWriteInvalidation:
    def test_append_invalidates(self, cached, rng):
        cached.get(0)
        cached.append(0, make_posting(rng, 2, id_start=9000))
        data, _ = cached.get(0)
        assert 9000 in set(int(i) for i in data.ids)

    def test_put_invalidates(self, cached, rng):
        cached.get(1)
        fresh = make_posting(rng, 3, id_start=7000)
        cached.put(1, fresh)
        data, _ = cached.get(1)
        np.testing.assert_array_equal(data.ids, fresh.ids)

    def test_delete_invalidates(self, cached):
        cached.get(2)
        cached.delete(2)
        assert not cached.exists(2)
        out, _ = cached.parallel_get([2])
        assert out == {}

    def test_clear(self, cached):
        cached.get(0)
        cached.clear()
        assert cached.cached_postings == 0


class TestDelegation:
    def test_metadata_passthrough(self, cached):
        assert cached.num_postings == 8
        assert cached.length(3) == 8
        assert cached.exists(7)

    def test_memory_model(self, cached):
        assert cached.memory_bytes() == 0
        cached.get(0)
        assert cached.memory_bytes() > 0

    def test_invalid_capacity(self, controller):
        with pytest.raises(ValueError):
            CachedBlockController(controller, capacity=0)


class TestWithSearcher:
    def test_cached_searches_reduce_device_reads(self, built_index, vectors):
        cached = CachedBlockController(built_index.controller, capacity=512)
        built_index.searcher.controller = cached
        io_before = built_index.ssd.stats.snapshot()
        for _ in range(5):
            built_index.search(vectors[0], 5, nprobe=8)
        window = built_index.ssd.stats.snapshot().delta(io_before)
        # Only the first query's postings hit the device.
        assert cached.hit_rate > 0.5
        assert window.block_reads <= window.block_reads  # sanity
        result = built_index.search(vectors[0], 5, nprobe=8)
        assert result.io_latency_us == cached.hit_latency_us
