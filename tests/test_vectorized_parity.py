"""Property tests for the vectorized hot-path engine's bit-identity contracts.

The batched kernels and search paths promise results *bit-identical* to
their scalar counterparts — not merely approximately equal. These tests
pin that contract with hypothesis-generated shapes and adversarial codec
layouts, so any future "optimization" that changes rounding or tie-break
order fails loudly instead of silently moving the perf gate's metrics.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.centroids.brute import BruteForceCentroidIndex
from repro.centroids.graph import GraphCentroidIndex
from repro.spann.postings import dedup_top_k
from repro.storage.layout import PostingCodec, PostingData
from repro.util.distance import pairwise_sq_l2_exact, sq_l2, sq_l2_batch

def _matrix(rng, n, dim):
    return (rng.normal(size=(n, dim)) * 10).astype(np.float32)


class TestKernelBitIdentity:
    @given(st.integers(1, 40), st.integers(1, 48), st.integers(0, 2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_sq_l2_batch_matches_scalar_loop(self, n, dim, seed):
        rng = np.random.default_rng(seed)
        points = _matrix(rng, n, dim)
        query = _matrix(rng, 1, dim)[0]
        batched = sq_l2_batch(query, points)
        looped = np.array([sq_l2(query, p) for p in points], dtype=np.float32)
        np.testing.assert_array_equal(batched, looped)

    @given(st.integers(1, 24), st.integers(1, 40), st.integers(1, 32),
           st.integers(0, 2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_pairwise_exact_rows_match_sq_l2_batch(self, nq, npts, dim, seed):
        rng = np.random.default_rng(seed)
        queries = _matrix(rng, nq, dim)
        points = _matrix(rng, npts, dim)
        pair = pairwise_sq_l2_exact(queries, points)
        assert pair.shape == (nq, npts) and pair.dtype == np.float32
        for q in range(nq):
            np.testing.assert_array_equal(pair[q], sq_l2_batch(queries[q], points))

    def test_pairwise_exact_chunked_path_identical(self):
        rng = np.random.default_rng(3)
        queries = _matrix(rng, 17, 8)
        points = _matrix(rng, 23, 8)
        full = pairwise_sq_l2_exact(queries, points)
        # chunk_elems small enough to force several query-axis chunks
        chunked = pairwise_sq_l2_exact(queries, points, chunk_elems=4 * 23 * 8)
        np.testing.assert_array_equal(full, chunked)

    def test_pairwise_exact_empty_shapes(self):
        empty_q = np.empty((0, 4), dtype=np.float32)
        pts = np.ones((3, 4), dtype=np.float32)
        assert pairwise_sq_l2_exact(empty_q, pts).shape == (0, 3)
        assert pairwise_sq_l2_exact(pts, np.empty((0, 4), np.float32)).shape == (3, 0)


@pytest.mark.parametrize("kind", [BruteForceCentroidIndex, GraphCentroidIndex])
class TestSearchBatchParity:
    def _build(self, kind, rng, n, dim):
        index = kind(dim)
        for pid, row in enumerate(_matrix(rng, n, dim)):
            index.add(pid + 10, row)
        return index

    @given(st.integers(1, 60), st.integers(1, 12), st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_batch_equals_single(self, kind, n, k, seed):
        rng = np.random.default_rng(seed)
        dim = 8
        index = self._build(kind, rng, n, dim)
        queries = _matrix(rng, 7, dim)
        batched = index.search_batch(queries, k)
        for query, hit in zip(queries, batched):
            single = index.search(query, k)
            np.testing.assert_array_equal(hit.posting_ids, single.posting_ids)
            np.testing.assert_array_equal(hit.distances, single.distances)

    def test_batch_parity_after_churn(self, kind):
        rng = np.random.default_rng(11)
        dim = 6
        index = self._build(kind, rng, 40, dim)
        for pid in range(10, 30):
            index.remove(pid)
        for pid, row in enumerate(_matrix(rng, 15, dim)):
            index.add(pid + 1000, row)
        queries = _matrix(rng, 9, dim)
        for query, hit in zip(queries, index.search_batch(queries, 5)):
            single = index.search(query, 5)
            np.testing.assert_array_equal(hit.posting_ids, single.posting_ids)
            np.testing.assert_array_equal(hit.distances, single.distances)

    def test_batch_on_empty_index(self, kind):
        index = kind(4)
        results = index.search_batch(np.ones((3, 4), dtype=np.float32), 2)
        assert len(results) == 3
        assert all(len(r) == 0 for r in results)


class TestBruteActiveRowShrink:
    def test_active_window_shrinks_under_churn(self):
        rng = np.random.default_rng(0)
        index = BruteForceCentroidIndex(4)
        for pid, row in enumerate(_matrix(rng, 200, 4)):
            index.add(pid, row)
        peak = index.active_rows
        assert peak >= 200
        # Remove the top 150 postings: the scan window must collapse with
        # them instead of scanning dead rows forever.
        for pid in range(50, 200):
            index.remove(pid)
        assert len(index) == 50
        assert index.active_rows == 50
        # Sustained add/remove churn stays bounded by the live count, not
        # by the historical peak.
        for round_ in range(20):
            for pid in range(1000 + round_ * 10, 1010 + round_ * 10):
                index.add(pid, rng.normal(size=4).astype(np.float32))
            for pid in range(1000 + round_ * 10, 1010 + round_ * 10):
                index.remove(pid)
        assert index.active_rows <= peak
        assert index.active_rows < 200

    def test_interior_hole_then_top_removal_shrinks_past_holes(self):
        rng = np.random.default_rng(1)
        index = BruteForceCentroidIndex(3)
        for pid in range(10):
            index.add(pid, rng.normal(size=3).astype(np.float32))
        for pid in (7, 8):  # interior holes just below the top row
            index.remove(pid)
        index.remove(9)  # top row frees: window must skip the holes too
        assert index.active_rows == 7


class TestDedupMaxDupEquivalence:
    @given(
        st.lists(st.integers(0, 30), min_size=1, max_size=120),
        st.integers(1, 15),
        st.integers(1, 10),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_prefilter_is_exact(self, id_list, k, max_dup, seed):
        rng = np.random.default_rng(seed)
        ids = np.array(id_list, dtype=np.int64)
        # Duplicated ids share one distance value, mirroring identical
        # replica vectors — the precondition the prefilter bound uses.
        value_of = {i: np.float32(v) for i, v in
                    zip(set(id_list), rng.random(len(set(id_list))))}
        dists = np.array([value_of[i] for i in id_list], dtype=np.float32)
        # Enforce the multiplicity bound by trimming surplus occurrences.
        keep, counts = [], {}
        for j, i in enumerate(id_list):
            counts[i] = counts.get(i, 0) + 1
            if counts[i] <= max_dup:
                keep.append(j)
        ids, dists = ids[keep], dists[keep]
        plain = dedup_top_k(ids, dists, k)
        fast = dedup_top_k(ids, dists, k, max_dup=max_dup)
        np.testing.assert_array_equal(plain[0], fast[0])
        np.testing.assert_array_equal(plain[1], fast[1])


class TestCodecAdversarialShapes:
    def _codec(self, dim=5, block_size=128):
        return PostingCodec(dim=dim, block_size=block_size)

    def _posting(self, rng, codec, n):
        return PostingData.from_rows(
            ids=rng.integers(0, 1 << 40, size=n),
            versions=rng.integers(0, 127, size=n),
            vectors=_matrix(rng, n, codec.dim),
        )

    def _device_pad(self, codec, payloads):
        """Payloads as the device returns them: padded to full blocks."""
        return [p + b"\x00" * (codec.block_size - len(p)) for p in payloads]

    @pytest.mark.parametrize("n", [0, 1])
    def test_empty_and_single_entry(self, n):
        rng = np.random.default_rng(n)
        codec = self._codec()
        data = self._posting(rng, codec, n)
        out = codec.decode(self._device_pad(codec, codec.encode(data)), n)
        np.testing.assert_array_equal(out.ids, data.ids)
        np.testing.assert_array_equal(out.versions, data.versions)
        np.testing.assert_array_equal(out.vectors, data.vectors)

    def test_exact_block_and_partial_tail(self):
        rng = np.random.default_rng(2)
        codec = self._codec()
        epb = codec.entries_per_block
        for n in (epb, epb + 1, 2 * epb, 2 * epb - 1, 3 * epb + epb // 2):
            data = self._posting(rng, codec, n)
            out = codec.decode(self._device_pad(codec, codec.encode(data)), n)
            np.testing.assert_array_equal(out.ids, data.ids)
            np.testing.assert_array_equal(out.versions, data.versions)
            np.testing.assert_array_equal(out.vectors, data.vectors)
            assert out.vectors.flags["C_CONTIGUOUS"]

    @given(st.lists(st.integers(0, 40), min_size=1, max_size=12),
           st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_decode_batch_matches_per_posting_decode(self, sizes, seed):
        rng = np.random.default_rng(seed)
        codec = self._codec(dim=3, block_size=64)
        postings = [self._posting(rng, codec, n) for n in sizes]
        flat = []
        for data in postings:
            flat.extend(self._device_pad(codec, codec.encode(data)))
        batch = codec.decode_batch(flat, sizes)
        cursor = 0
        for data, out, n in zip(postings, batch, sizes):
            nblocks = codec.blocks_needed(n)
            ref = codec.decode(flat[cursor : cursor + nblocks], n)
            cursor += nblocks
            for got in (out, ref):
                np.testing.assert_array_equal(got.ids, data.ids)
                np.testing.assert_array_equal(got.versions, data.versions)
                np.testing.assert_array_equal(got.vectors, data.vectors)

    def test_decode_batch_unpadded_fallback(self):
        rng = np.random.default_rng(9)
        codec = self._codec(dim=4, block_size=96)
        sizes = [3, codec.entries_per_block, 1]
        postings = [self._posting(rng, codec, n) for n in sizes]
        flat = []  # raw encode() output: tail payloads are NOT block-sized
        for data in postings:
            flat.extend(codec.encode(data))
        batch = codec.decode_batch(flat, sizes)
        for data, out in zip(postings, batch):
            np.testing.assert_array_equal(out.ids, data.ids)
            np.testing.assert_array_equal(out.vectors, data.vectors)

    def test_decode_batch_rejects_entries_without_blocks(self):
        codec = self._codec()
        from repro.util.errors import StorageError

        with pytest.raises(StorageError):
            codec.decode_batch([], [4])
