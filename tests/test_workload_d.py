"""Tests for the insert-only growth workload (Workload D)."""

import numpy as np

from repro.datasets import workload_d


class TestWorkloadD:
    def test_no_deletes(self):
        wl = workload_d(n_base=300, days=4, daily_growth=0.1, dim=8, num_queries=5)
        for epoch in wl.epochs:
            assert len(epoch.delete_ids) == 0
            assert len(epoch.insert_ids) == 30

    def test_ids_continue_from_base(self):
        wl = workload_d(n_base=100, days=2, daily_growth=0.1, dim=8, num_queries=5)
        assert wl.epochs[0].insert_ids[0] == 100
        assert wl.epochs[1].insert_ids[0] == 110

    def test_growth_accumulates(self):
        wl = workload_d(n_base=200, days=5, daily_growth=0.2, dim=8, num_queries=5)
        total_inserts = sum(len(e.insert_ids) for e in wl.epochs)
        assert total_inserts == 5 * 40

    def test_insert_vectors_match_ids(self):
        wl = workload_d(n_base=100, days=3, daily_growth=0.1, dim=8, num_queries=5)
        for epoch in wl.epochs:
            assert len(epoch.insert_vectors) == len(epoch.insert_ids)
            assert epoch.insert_vectors.shape[1] == 8

    def test_deterministic(self):
        a = workload_d(n_base=100, days=2, dim=8, num_queries=5, seed=4)
        b = workload_d(n_base=100, days=2, dim=8, num_queries=5, seed=4)
        np.testing.assert_array_equal(
            a.epochs[0].insert_vectors, b.epochs[0].insert_vectors
        )
        np.testing.assert_array_equal(a.queries, b.queries)

    def test_name(self):
        assert workload_d(n_base=50, days=1, dim=8, num_queries=2).name == (
            "workload-d-growth"
        )
