"""Tests for the write-ahead log and snapshot manager."""

import numpy as np
import pytest

from repro.storage.snapshot import SnapshotManager
from repro.storage.wal import OP_DELETE, OP_INSERT, WriteAheadLog
from repro.util.errors import RecoveryError


class TestWalInMemory:
    def test_replay_order(self):
        wal = WriteAheadLog()
        wal.log_insert(1, np.ones(4, dtype=np.float32))
        wal.log_delete(2)
        wal.log_insert(3, np.zeros(4, dtype=np.float32))
        records = list(wal.replay())
        assert [r.op for r in records] == [OP_INSERT, OP_DELETE, OP_INSERT]
        assert [r.vector_id for r in records] == [1, 2, 3]
        np.testing.assert_array_equal(records[0].vector, np.ones(4))
        assert records[1].vector is None

    def test_truncate(self):
        wal = WriteAheadLog()
        wal.log_delete(1)
        wal.truncate()
        assert list(wal.replay()) == []
        assert wal.record_count == 0

    def test_record_count(self):
        wal = WriteAheadLog()
        for i in range(5):
            wal.log_delete(i)
        assert wal.record_count == 5

    def test_replay_is_repeatable(self):
        wal = WriteAheadLog()
        wal.log_insert(7, np.arange(3, dtype=np.float32))
        assert len(list(wal.replay())) == 1
        assert len(list(wal.replay())) == 1


class TestWalFileBacked:
    def test_survives_reopen(self, tmp_path):
        path = str(tmp_path / "updates.wal")
        wal = WriteAheadLog(path)
        wal.log_insert(10, np.full(4, 2.5, dtype=np.float32))
        wal.log_delete(11)
        wal.close()
        reopened = WriteAheadLog(path)
        records = list(reopened.replay())
        assert len(records) == 2
        assert reopened.record_count == 2
        np.testing.assert_array_equal(records[0].vector, np.full(4, 2.5))
        reopened.close()

    def test_torn_tail_record_dropped(self, tmp_path):
        path = str(tmp_path / "torn.wal")
        wal = WriteAheadLog(path)
        wal.log_insert(1, np.ones(4, dtype=np.float32))
        wal.log_insert(2, np.ones(4, dtype=np.float32))
        wal.close()
        # Simulate a crash mid-write: chop bytes off the tail.
        with open(path, "r+b") as fh:
            fh.truncate(wal_size_minus(path, 5))
        recovered = WriteAheadLog(path)
        records = list(recovered.replay())
        assert [r.vector_id for r in records] == [1]
        recovered.close()

    def test_truncate_persists(self, tmp_path):
        path = str(tmp_path / "t.wal")
        wal = WriteAheadLog(path)
        wal.log_delete(3)
        wal.truncate()
        wal.close()
        assert list(WriteAheadLog(path).replay()) == []

    def test_sync_flag(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "s.wal"), sync=True)
        wal.log_delete(1)
        assert wal.record_count == 1
        wal.close()


def wal_size_minus(path: str, n: int) -> int:
    import os

    return os.path.getsize(path) - n


class TestWalCorruptionQuarantine:
    """CRC framing: damaged records are quarantined, the rest resync."""

    def make_wal_bytes(self, n=5):
        wal = WriteAheadLog()
        for i in range(n):
            wal.log_insert(i, np.full(4, float(i), dtype=np.float32))
        return wal.to_bytes()

    def test_midlog_flip_quarantines_one_record_and_resyncs(self):
        from repro.storage.wal import WalReplayReport

        stream = bytearray(self.make_wal_bytes(5))
        frame = len(stream) // 5
        stream[frame + frame // 2] ^= 0xFF  # damage record 1's payload
        wal = WriteAheadLog()
        wal.load_bytes(bytes(stream))
        report = WalReplayReport()
        records = list(wal.replay(report=report))
        assert [r.vector_id for r in records] == [0, 2, 3, 4]
        assert report.records_quarantined == 1
        assert report.bytes_quarantined > 0
        assert report.torn_tail_bytes == 0
        assert not report.clean

    def test_corrupt_length_field_does_not_truncate_rest_of_log(self):
        # A flipped length field makes the payload appear to run past the
        # next frame; replay must treat that as corruption (resync to the
        # frames behind it), not as a torn tail ending the log.
        from repro.storage.wal import WalReplayReport

        stream = bytearray(self.make_wal_bytes(4))
        # Frame layout is <BBqII>: length lives at bytes 10..13.
        stream[10] ^= 0x04  # grow record 0's claimed payload
        wal = WriteAheadLog()
        wal.load_bytes(bytes(stream))
        report = WalReplayReport()
        records = list(wal.replay(report=report))
        assert [r.vector_id for r in records] == [1, 2, 3]
        assert report.records_quarantined == 1

    def test_faultplan_wal_corrupt_hook(self):
        from repro.storage.faults import FaultPlan
        from repro.storage.wal import WalReplayReport

        plan = FaultPlan(wal_corrupt_at=(1, 5))
        wal = WriteAheadLog(faults=plan)
        for i in range(3):
            wal.log_insert(i, np.ones(4, dtype=np.float32))
        report = WalReplayReport()
        records = list(wal.replay(report=report))
        assert [r.vector_id for r in records] == [0, 2]
        assert report.records_quarantined == 1

    def test_faultplan_wal_tear_crashes_and_keeps_prefix(self):
        from repro.storage.faults import FaultPlan
        from repro.storage.wal import WalReplayReport
        from repro.util.errors import CrashPoint

        plan = FaultPlan(wal_tear_at=(2, None))  # tear the 3rd append mid-frame
        wal = WriteAheadLog(faults=plan)
        wal.log_insert(0, np.ones(4, dtype=np.float32))
        wal.log_delete(1)
        with pytest.raises(CrashPoint):
            wal.log_insert(2, np.ones(4, dtype=np.float32))
        report = WalReplayReport()
        records = list(wal.replay(report=report))
        assert [r.vector_id for r in records] == [0, 1]
        assert report.torn_tail_bytes > 0

    def test_wal_append_index_is_lifetime_not_per_epoch(self):
        from repro.storage.faults import FaultPlan
        from repro.util.errors import CrashPoint

        plan = FaultPlan(wal_tear_at=(3, 0))
        wal = WriteAheadLog(faults=plan)
        wal.log_delete(0)  # append 0
        wal.log_delete(1)  # append 1
        wal.truncate()  # resets contents, NOT the lifetime counter
        wal.log_delete(2)  # append 2
        with pytest.raises(CrashPoint):
            wal.log_delete(3)  # append 3 — the targeted one
        assert [r.vector_id for r in wal.replay()] == [2]


class TestSnapshotManager:
    def test_memory_roundtrip(self):
        mgr = SnapshotManager()
        assert mgr.load() is None
        assert not mgr.has_snapshot
        gen = mgr.save({"x": np.arange(3)})
        assert gen == 1
        assert mgr.has_snapshot
        state = mgr.load()
        np.testing.assert_array_equal(state["x"], np.arange(3))

    def test_generations_increase(self):
        mgr = SnapshotManager()
        assert mgr.save({}) == 1
        assert mgr.save({}) == 2

    def test_file_roundtrip(self, tmp_path):
        mgr = SnapshotManager(str(tmp_path))
        mgr.save({"value": 42})
        fresh = SnapshotManager(str(tmp_path))
        assert fresh.load()["value"] == 42
        assert fresh.generation == 1

    def test_latest_wins(self, tmp_path):
        mgr = SnapshotManager(str(tmp_path))
        mgr.save({"v": 1})
        mgr.save({"v": 2})
        assert SnapshotManager(str(tmp_path)).load()["v"] == 2

    def test_corrupt_snapshot_raises(self, tmp_path):
        mgr = SnapshotManager(str(tmp_path))
        mgr.save({"v": 1})
        snapshot_file = tmp_path / "index.snapshot"
        snapshot_file.write_bytes(b"not a pickle")
        with pytest.raises(RecoveryError):
            SnapshotManager(str(tmp_path))


class TestSnapshotIntegrityFooter:
    def test_single_flipped_bit_is_detected(self, tmp_path):
        mgr = SnapshotManager(str(tmp_path))
        mgr.save({"v": 1})
        path = tmp_path / "index.snapshot"
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 3] ^= 0x01
        path.write_bytes(bytes(raw))
        # Both the reopen path (generation probe) and an explicit load on a
        # surviving manager must refuse the flipped blob.
        with pytest.raises(RecoveryError, match="integrity"):
            SnapshotManager(str(tmp_path))
        with pytest.raises(RecoveryError, match="integrity"):
            mgr.load()

    def test_truncated_blob_is_detected(self):
        mgr = SnapshotManager()
        mgr.save({"v": 2})
        blob = mgr.export_blob()
        mgr.import_blob(blob[: len(blob) // 2])
        with pytest.raises(RecoveryError):
            mgr.load()

    def test_missing_footer_is_detected(self):
        import pickle

        mgr = SnapshotManager()
        # A valid pickle without the footer (e.g. pre-footer format).
        mgr.import_blob(pickle.dumps({"generation": 1, "state": {}}))
        with pytest.raises(RecoveryError):
            mgr.load()

    def test_export_import_blob_roundtrip(self, tmp_path):
        source = SnapshotManager()
        source.save({"v": 7})
        blob = source.export_blob()
        target = SnapshotManager(str(tmp_path))
        target.import_blob(blob)
        assert target.load()["v"] == 7
        assert target.generation == 1
        target.import_blob(None)
        assert not target.has_snapshot
