"""Tests for the write-ahead log and snapshot manager."""

import numpy as np
import pytest

from repro.storage.snapshot import SnapshotManager
from repro.storage.wal import OP_DELETE, OP_INSERT, WriteAheadLog
from repro.util.errors import RecoveryError


class TestWalInMemory:
    def test_replay_order(self):
        wal = WriteAheadLog()
        wal.log_insert(1, np.ones(4, dtype=np.float32))
        wal.log_delete(2)
        wal.log_insert(3, np.zeros(4, dtype=np.float32))
        records = list(wal.replay())
        assert [r.op for r in records] == [OP_INSERT, OP_DELETE, OP_INSERT]
        assert [r.vector_id for r in records] == [1, 2, 3]
        np.testing.assert_array_equal(records[0].vector, np.ones(4))
        assert records[1].vector is None

    def test_truncate(self):
        wal = WriteAheadLog()
        wal.log_delete(1)
        wal.truncate()
        assert list(wal.replay()) == []
        assert wal.record_count == 0

    def test_record_count(self):
        wal = WriteAheadLog()
        for i in range(5):
            wal.log_delete(i)
        assert wal.record_count == 5

    def test_replay_is_repeatable(self):
        wal = WriteAheadLog()
        wal.log_insert(7, np.arange(3, dtype=np.float32))
        assert len(list(wal.replay())) == 1
        assert len(list(wal.replay())) == 1


class TestWalFileBacked:
    def test_survives_reopen(self, tmp_path):
        path = str(tmp_path / "updates.wal")
        wal = WriteAheadLog(path)
        wal.log_insert(10, np.full(4, 2.5, dtype=np.float32))
        wal.log_delete(11)
        wal.close()
        reopened = WriteAheadLog(path)
        records = list(reopened.replay())
        assert len(records) == 2
        assert reopened.record_count == 2
        np.testing.assert_array_equal(records[0].vector, np.full(4, 2.5))
        reopened.close()

    def test_torn_tail_record_dropped(self, tmp_path):
        path = str(tmp_path / "torn.wal")
        wal = WriteAheadLog(path)
        wal.log_insert(1, np.ones(4, dtype=np.float32))
        wal.log_insert(2, np.ones(4, dtype=np.float32))
        wal.close()
        # Simulate a crash mid-write: chop bytes off the tail.
        with open(path, "r+b") as fh:
            fh.truncate(wal_size_minus(path, 5))
        recovered = WriteAheadLog(path)
        records = list(recovered.replay())
        assert [r.vector_id for r in records] == [1]
        recovered.close()

    def test_truncate_persists(self, tmp_path):
        path = str(tmp_path / "t.wal")
        wal = WriteAheadLog(path)
        wal.log_delete(3)
        wal.truncate()
        wal.close()
        assert list(WriteAheadLog(path).replay()) == []

    def test_sync_flag(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "s.wal"), sync=True)
        wal.log_delete(1)
        assert wal.record_count == 1
        wal.close()


def wal_size_minus(path: str, n: int) -> int:
    import os

    return os.path.getsize(path) - n


class TestSnapshotManager:
    def test_memory_roundtrip(self):
        mgr = SnapshotManager()
        assert mgr.load() is None
        assert not mgr.has_snapshot
        gen = mgr.save({"x": np.arange(3)})
        assert gen == 1
        assert mgr.has_snapshot
        state = mgr.load()
        np.testing.assert_array_equal(state["x"], np.arange(3))

    def test_generations_increase(self):
        mgr = SnapshotManager()
        assert mgr.save({}) == 1
        assert mgr.save({}) == 2

    def test_file_roundtrip(self, tmp_path):
        mgr = SnapshotManager(str(tmp_path))
        mgr.save({"value": 42})
        fresh = SnapshotManager(str(tmp_path))
        assert fresh.load()["value"] == 42
        assert fresh.generation == 1

    def test_latest_wins(self, tmp_path):
        mgr = SnapshotManager(str(tmp_path))
        mgr.save({"v": 1})
        mgr.save({"v": 2})
        assert SnapshotManager(str(tmp_path)).load()["v"] == 2

    def test_corrupt_snapshot_raises(self, tmp_path):
        mgr = SnapshotManager(str(tmp_path))
        mgr.save({"v": 1})
        snapshot_file = tmp_path / "index.snapshot"
        snapshot_file.write_bytes(b"not a pickle")
        with pytest.raises(RecoveryError):
            SnapshotManager(str(tmp_path))
