"""Tests for the sharded (distributed) SPFresh extension."""

import numpy as np
import pytest

from repro.core.index import SPFreshIndex
from repro.datasets import GroundTruthTracker, exact_knn
from repro.distributed import ShardRouter, ShardedSPFresh
from tests.conftest import DIM


@pytest.fixture
def sharded(vectors, small_config):
    index = ShardedSPFresh.build(vectors, num_shards=3, config=small_config)
    yield index
    index.close()


class TestRouter:
    def test_deterministic(self):
        router = ShardRouter(4)
        assert router.shard_of(123) == router.shard_of(123)

    def test_range(self):
        router = ShardRouter(5)
        shards = {router.shard_of(i) for i in range(1000)}
        assert shards == {0, 1, 2, 3, 4}

    def test_balance(self):
        router = ShardRouter(4)
        counts = np.bincount(
            [router.shard_of(i) for i in range(4000)], minlength=4
        )
        assert counts.max() / counts.min() < 1.3

    def test_partition_covers_all(self):
        router = ShardRouter(3)
        ids = np.arange(100, dtype=np.int64)
        parts = router.partition(ids)
        assert sorted(np.concatenate(parts)) == list(range(100))

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            ShardRouter(0)


class TestBuild:
    def test_all_vectors_distributed(self, sharded, vectors):
        assert sharded.live_vector_count == len(vectors)
        assert sharded.num_shards == 3
        assert sum(sharded.shard_sizes()) == len(vectors)

    def test_shards_roughly_balanced(self, sharded):
        sizes = sharded.shard_sizes()
        assert max(sizes) / max(min(sizes), 1) < 2.0

    def test_mismatched_router_rejected(self, vectors, small_config):
        single = SPFreshIndex.build(vectors, config=small_config)
        with pytest.raises(ValueError):
            ShardedSPFresh([single], ShardRouter(2))

    def test_too_many_shards_for_tiny_data(self, small_config, rng):
        few = rng.normal(size=(3, DIM)).astype(np.float32)
        with pytest.raises(ValueError):
            ShardedSPFresh.build(few, num_shards=64, config=small_config)


class TestSearch:
    def test_matches_exact_with_full_probe(self, sharded, vectors):
        queries = vectors[:10] + 0.01
        gt = exact_knn(vectors, np.arange(len(vectors)), queries, 5)
        for i, q in enumerate(queries):
            result = sharded.search(q, 5, nprobe=10**6)
            assert set(map(int, result.ids)) == set(map(int, gt[i]))

    def test_latency_is_max_plus_merge(self, sharded, vectors):
        result = sharded.search(vectors[0], 5, nprobe=4)
        per_shard = [s.search(vectors[0], 5, nprobe=4) for s in sharded.shards]
        assert result.latency_us >= max(r.latency_us for r in per_shard)

    def test_parallel_mode_same_results(self, sharded, vectors):
        serial = sharded.search(vectors[0], 8, nprobe=8)
        parallel = sharded.search(vectors[0], 8, nprobe=8, parallel=True)
        assert set(map(int, serial.ids)) == set(map(int, parallel.ids))

    def test_dedup_across_shards(self, sharded, vectors):
        result = sharded.search(vectors[0], 20, nprobe=16)
        assert len(set(map(int, result.ids))) == len(result.ids)


class TestUpdates:
    def test_insert_routes_to_one_shard(self, sharded, rng):
        before = sharded.shard_sizes()
        sharded.insert(99_999, rng.normal(size=DIM).astype(np.float32))
        after = sharded.shard_sizes()
        assert sum(after) == sum(before) + 1
        changed = [i for i in range(3) if after[i] != before[i]]
        assert len(changed) == 1
        assert changed[0] == sharded.router.shard_of(99_999)

    def test_inserted_vector_found(self, sharded, rng):
        vec = rng.normal(size=DIM).astype(np.float32)
        sharded.insert(77_777, vec)
        result = sharded.search(vec, 1, nprobe=10**6)
        assert result.ids[0] == 77_777

    def test_delete_hides_everywhere(self, sharded, vectors):
        sharded.delete(5)
        result = sharded.search(vectors[5], 10, nprobe=10**6)
        assert 5 not in set(map(int, result.ids))

    def test_churn_preserves_recall(self, sharded, vectors, rng):
        tracker = GroundTruthTracker(np.arange(len(vectors)), vectors)
        for i in range(150):
            vid = 10_000 + i
            vec = rng.normal(size=DIM).astype(np.float32)
            sharded.insert(vid, vec)
            tracker.insert(vid, vec)
            sharded.delete(i)
            tracker.delete(i)
        sharded.drain()
        queries = vectors[200:220]
        gt = tracker.ground_truth(queries, 5)
        hits = total = 0
        for i, q in enumerate(queries):
            result = sharded.search(q, 5, nprobe=8)
            hits += len(set(map(int, result.ids)) & set(map(int, gt[i])))
            total += 5
        assert hits / total > 0.8

    def test_maintenance_fans_out(self, sharded):
        for vid in range(30):
            sharded.delete(vid)
        assert sharded.gc_pass() >= 1
        assert sharded.drain() >= 0

    def test_memory_is_sum_of_shards(self, sharded):
        assert sharded.memory_bytes() == sum(
            s.memory_bytes() for s in sharded.shards
        )
