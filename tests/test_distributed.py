"""Tests for the sharded (distributed) SPFresh extension."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.index import SPFreshIndex
from repro.datasets import GroundTruthTracker, exact_knn
from repro.distributed import ShardRouter, ShardedSPFresh
from tests.conftest import DIM


@pytest.fixture
def sharded(vectors, small_config):
    with ShardedSPFresh.build(vectors, num_shards=3, config=small_config) as index:
        yield index


@pytest.fixture(params=["disk", "fresh", "pq", "fresh-pq"])
def facade(request, vectors, small_config):
    """Sharded facade across the write-path x scan-path matrix.

    ``fresh`` variants enable the LSM-style memory tier on every shard
    (threshold high enough that nothing auto-flushes) and buffer a batch
    of extra inserts, so the scatter-gather paths are exercised with
    tier-resident vectors on the shards. ``pq`` variants store postings
    quantized, so the merge paths run over reranked compressed scans.
    """
    overrides = {}
    if "fresh" in request.param:
        overrides.update(
            enable_fresh_tier=True,
            fresh_flush_threshold=10_000,
            search_latency_budget_us=None,
        )
    if "pq" in request.param:
        overrides.update(
            quant_enabled=True,
            quant_kind="pq",
            quant_subspaces=8,
            quant_codebook_size=16,
        )
    config = small_config.with_overrides(**overrides) if overrides else small_config
    with ShardedSPFresh.build(vectors, num_shards=3, config=config) as index:
        if "fresh" in request.param:
            rng = np.random.default_rng(99)
            for i in range(40):
                index.insert(50_000 + i, rng.normal(size=DIM).astype(np.float32))
            assert any(len(s.fresh_tier) > 0 for s in index.shards)
        yield index


class TestRouter:
    def test_deterministic(self):
        router = ShardRouter(4)
        assert router.shard_of(123) == router.shard_of(123)

    def test_range(self):
        router = ShardRouter(5)
        shards = {router.shard_of(i) for i in range(1000)}
        assert shards == {0, 1, 2, 3, 4}

    def test_balance(self):
        router = ShardRouter(4)
        counts = np.bincount(
            [router.shard_of(i) for i in range(4000)], minlength=4
        )
        assert counts.max() / counts.min() < 1.3

    def test_partition_covers_all(self):
        router = ShardRouter(3)
        ids = np.arange(100, dtype=np.int64)
        parts = router.partition(ids)
        assert sorted(np.concatenate(parts)) == list(range(100))

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            ShardRouter(0)

    @given(
        ids=st.lists(
            st.integers(min_value=-(2**63), max_value=2**63 - 1),
            min_size=1,
            max_size=64,
        ),
        num_shards=st.integers(min_value=1, max_value=17),
    )
    @settings(max_examples=60, deadline=None)
    def test_batch_hash_bit_identical_to_scalar(self, ids, num_shards):
        # The vectorized uint64 path must agree with the scalar oracle on
        # the FULL int64 range, including negatives (two's-complement
        # reinterpretation) and values whose product wraps mod 2**64.
        router = ShardRouter(num_shards)
        id_arr = np.asarray(ids, dtype=np.int64)
        expected = np.asarray(
            [router.shard_of(int(i)) for i in ids], dtype=np.int64
        )
        np.testing.assert_array_equal(router.shard_of_batch(id_arr), expected)
        parts = router.partition(id_arr)
        for shard, rows in enumerate(parts):
            assert all(expected[r] == shard for r in rows)
        assert sum(len(p) for p in parts) == len(ids)

    def test_batch_hash_accepts_non_contiguous_input(self):
        router = ShardRouter(5)
        ids = np.arange(0, 200, dtype=np.int64)[::2]  # strided view
        expected = [router.shard_of(int(i)) for i in ids]
        np.testing.assert_array_equal(router.shard_of_batch(ids), expected)


class TestBuild:
    def test_all_vectors_distributed(self, sharded, vectors):
        assert sharded.live_vector_count == len(vectors)
        assert sharded.num_shards == 3
        assert sum(sharded.shard_sizes()) == len(vectors)

    def test_shards_roughly_balanced(self, sharded):
        sizes = sharded.shard_sizes()
        assert max(sizes) / max(min(sizes), 1) < 2.0

    def test_mismatched_router_rejected(self, vectors, small_config):
        single = SPFreshIndex.build(vectors, config=small_config)
        with pytest.raises(ValueError):
            ShardedSPFresh([single], ShardRouter(2))

    def test_too_many_shards_for_tiny_data(self, small_config, rng):
        few = rng.normal(size=(3, DIM)).astype(np.float32)
        with pytest.raises(ValueError):
            ShardedSPFresh.build(few, num_shards=64, config=small_config)


class TestSearch:
    def test_matches_exact_with_full_probe(self, sharded, vectors):
        queries = vectors[:10] + 0.01
        gt = exact_knn(vectors, np.arange(len(vectors)), queries, 5)
        for i, q in enumerate(queries):
            result = sharded.search(q, 5, nprobe=10**6)
            assert set(map(int, result.ids)) == set(map(int, gt[i]))

    def test_latency_is_max_plus_merge(self, sharded, vectors):
        result = sharded.search(vectors[0], 5, nprobe=4)
        per_shard = [s.search(vectors[0], 5, nprobe=4) for s in sharded.shards]
        assert result.latency_us >= max(r.latency_us for r in per_shard)

    def test_parallel_mode_same_results(self, sharded, vectors):
        serial = sharded.search(vectors[0], 8, nprobe=8)
        parallel = sharded.search(vectors[0], 8, nprobe=8, parallel=True)
        assert set(map(int, serial.ids)) == set(map(int, parallel.ids))

    def test_dedup_across_shards(self, sharded, vectors):
        result = sharded.search(vectors[0], 20, nprobe=16)
        assert len(set(map(int, result.ids))) == len(result.ids)


class TestUpdates:
    def test_insert_routes_to_one_shard(self, sharded, rng):
        before = sharded.shard_sizes()
        sharded.insert(99_999, rng.normal(size=DIM).astype(np.float32))
        after = sharded.shard_sizes()
        assert sum(after) == sum(before) + 1
        changed = [i for i in range(3) if after[i] != before[i]]
        assert len(changed) == 1
        assert changed[0] == sharded.router.shard_of(99_999)

    def test_inserted_vector_found(self, sharded, rng):
        vec = rng.normal(size=DIM).astype(np.float32)
        sharded.insert(77_777, vec)
        result = sharded.search(vec, 1, nprobe=10**6)
        assert result.ids[0] == 77_777

    def test_delete_hides_everywhere(self, sharded, vectors):
        sharded.delete(5)
        result = sharded.search(vectors[5], 10, nprobe=10**6)
        assert 5 not in set(map(int, result.ids))

    def test_churn_preserves_recall(self, sharded, vectors, rng):
        tracker = GroundTruthTracker(np.arange(len(vectors)), vectors)
        for i in range(150):
            vid = 10_000 + i
            vec = rng.normal(size=DIM).astype(np.float32)
            sharded.insert(vid, vec)
            tracker.insert(vid, vec)
            sharded.delete(i)
            tracker.delete(i)
        sharded.drain()
        queries = vectors[200:220]
        gt = tracker.ground_truth(queries, 5)
        hits = total = 0
        for i, q in enumerate(queries):
            result = sharded.search(q, 5, nprobe=8)
            hits += len(set(map(int, result.ids)) & set(map(int, gt[i])))
            total += 5
        assert hits / total > 0.8

    def test_maintenance_fans_out(self, sharded):
        for vid in range(30):
            sharded.delete(vid)
        assert sharded.gc_pass() >= 1
        assert sharded.drain() >= 0

    def test_memory_is_sum_of_shards(self, sharded):
        assert sharded.memory_bytes() == sum(
            s.memory_bytes() for s in sharded.shards
        )


class TestBatchedFacade:
    def test_search_many_matches_search_per_query(self, facade, vectors):
        queries = vectors[:12] + 0.01
        batched = facade.search_many(queries, 5, nprobe=8)
        assert len(batched) == len(queries)
        for q, b in zip(queries, batched):
            single = facade.search(q, 5, nprobe=8)
            np.testing.assert_array_equal(b.ids, single.ids)
            np.testing.assert_array_equal(b.distances, single.distances)

    def test_search_many_parallel_matches_serial(self, facade, vectors):
        queries = vectors[:8] + 0.01
        serial = facade.search_many(queries, 5, nprobe=8)
        parallel = facade.search_many(queries, 5, nprobe=8, parallel=True)
        for s, p in zip(serial, parallel):
            np.testing.assert_array_equal(s.ids, p.ids)
            np.testing.assert_array_equal(s.distances, p.distances)

    def test_search_batch_alias(self, sharded, vectors):
        assert sharded.search_batch == sharded.search_many

    def test_empty_batch(self, sharded):
        assert sharded.search_many(np.empty((0, DIM), dtype=np.float32), 5) == []

    def test_latency_model_matches_single_facade(self, facade, vectors):
        queries = vectors[:4] + 0.01
        for result in facade.search_many(queries, 5, nprobe=8):
            assert result.latency_us > ShardedSPFresh.MERGE_COST_US
            assert result.io_latency_us <= result.latency_us


class TestShardedFreshTierParity:
    """Sharding must not change what a fresh-tier search returns."""

    def test_sharded_matches_unsharded_with_resident_tiers(
        self, vectors, small_config
    ):
        config = small_config.with_overrides(
            enable_fresh_tier=True,
            fresh_flush_threshold=10_000,
            search_latency_budget_us=None,
        )
        rng = np.random.default_rng(5)
        extra = rng.normal(size=(40, DIM)).astype(np.float32)
        single = SPFreshIndex.build(vectors, config=config)
        with ShardedSPFresh.build(
            vectors, num_shards=3, config=config
        ) as sharded_index:
            for i, vec in enumerate(extra):
                single.insert(60_000 + i, vec)
                sharded_index.insert(60_000 + i, vec)
            assert len(single.fresh_tier) == len(extra)
            assert any(len(s.fresh_tier) > 0 for s in sharded_index.shards)
            queries = np.concatenate([vectors[:8] + 0.01, extra[:8] + 0.01])
            for q in queries:
                want = single.search(q, 5, nprobe=10**6)
                got = sharded_index.search(q, 5, nprobe=10**6)
                np.testing.assert_array_equal(got.ids, want.ids)
                np.testing.assert_array_equal(got.distances, want.distances)


class TestLifecycle:
    def test_context_manager_shuts_down_pool(self, vectors, small_config):
        with ShardedSPFresh.build(
            vectors, num_shards=3, config=small_config
        ) as index:
            index.search(vectors[0], 5, nprobe=4, parallel=True)
            assert index._pool is not None
            pool = index._pool
        # __exit__ drained and released the executor.
        assert index._pool is None
        assert pool._shutdown

    def test_close_is_idempotent(self, vectors, small_config):
        index = ShardedSPFresh.build(vectors, num_shards=3, config=small_config)
        index.search(vectors[0], 5, parallel=True)
        index.close()
        index.close()
        assert index._pool is None

    def test_no_pool_until_parallel_use(self, vectors, small_config):
        with ShardedSPFresh.build(
            vectors, num_shards=3, config=small_config
        ) as index:
            index.search(vectors[0], 5)
            assert index._pool is None
