"""Tests for Vamana graph construction and greedy search."""

import numpy as np
import pytest

from repro.baselines.diskann.vamana import (
    _components,
    build_vamana,
    greedy_search,
    robust_prune,
)
from repro.datasets import exact_knn, make_sift_like


@pytest.fixture(scope="module")
def dataset():
    return make_sift_like(1200, 0, dim=16, n_clusters=12, seed=2)


@pytest.fixture(scope="module")
def graph(dataset):
    adjacency, medoid = build_vamana(dataset.base, degree_limit=12)
    return adjacency, medoid


class TestRobustPrune:
    def test_degree_limit_respected(self, rng):
        point = np.zeros(8, dtype=np.float32)
        cands = rng.normal(size=(50, 8)).astype(np.float32)
        kept = robust_prune(point, np.arange(50), cands, alpha=1.2, degree_limit=10)
        assert len(kept) <= 10

    def test_nearest_always_kept(self, rng):
        point = np.zeros(8, dtype=np.float32)
        cands = rng.normal(size=(20, 8)).astype(np.float32)
        dists = ((cands - point) ** 2).sum(axis=1)
        kept = robust_prune(point, np.arange(20), cands, 1.2, 5)
        assert int(dists.argmin()) in kept

    def test_clustered_candidates_deduplicated(self):
        """Many candidates in the same direction collapse to ~one edge."""
        point = np.zeros(2, dtype=np.float32)
        tight = np.array(
            [[1.0, 0.0], [1.05, 0.0], [1.1, 0.0], [0.0, 1.0]], dtype=np.float32
        )
        kept = robust_prune(point, np.arange(4), tight, alpha=1.2, degree_limit=4)
        assert 0 in kept and 3 in kept
        assert len(kept) <= 3

    def test_empty_candidates(self):
        kept = robust_prune(
            np.zeros(4, np.float32), np.empty(0), np.empty((0, 4), np.float32), 1.2, 5
        )
        assert kept == []


class TestBuild:
    def test_degrees_bounded(self, graph):
        adjacency, _ = graph
        # fast build adds up to 3 long edges + 1 connectivity bridge.
        assert max(len(a) for a in adjacency) <= 12 + 4 + 1

    def test_no_self_edges(self, graph):
        adjacency, _ = graph
        for i, nbrs in enumerate(adjacency):
            assert i not in set(int(n) for n in nbrs)

    def test_graph_is_connected(self, graph):
        adjacency, medoid = graph
        labels = _components([list(a) for a in adjacency], len(adjacency))
        assert len(np.unique(labels)) == 1

    def test_medoid_is_central(self, dataset, graph):
        _, medoid = graph
        mean = dataset.base.mean(axis=0)
        d_medoid = np.linalg.norm(dataset.base[medoid] - mean)
        d_all = np.linalg.norm(dataset.base - mean, axis=1)
        assert d_medoid == pytest.approx(d_all.min())

    def test_single_point(self):
        adjacency, medoid = build_vamana(np.zeros((1, 4), dtype=np.float32))
        assert medoid == 0
        assert len(adjacency) == 1 and len(adjacency[0]) == 0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            build_vamana(np.empty((0, 4), dtype=np.float32))

    def test_slow_path_also_connected(self):
        ds = make_sift_like(300, 0, dim=8, n_clusters=6, seed=3)
        adjacency, medoid = build_vamana(ds.base, degree_limit=8, fast=False)
        labels = _components([list(a) for a in adjacency], len(adjacency))
        assert len(np.unique(labels)) == 1


class TestGreedySearch:
    def test_high_recall(self, dataset, graph):
        adjacency, medoid = graph
        queries = dataset.base[:30] + 0.01
        gt = exact_knn(dataset.base, np.arange(len(dataset.base)), queries, 10)
        hits = 0
        for i, q in enumerate(queries):
            res, _ = greedy_search(
                q, medoid, adjacency, lambda nid: dataset.base[nid], 48
            )
            hits += len(set(res[:10]) & set(int(x) for x in gt[i]))
        assert hits / 300 > 0.9

    def test_visited_contains_expansions(self, dataset, graph):
        adjacency, medoid = graph
        res, visited = greedy_search(
            dataset.base[0], medoid, adjacency, lambda nid: dataset.base[nid], 16
        )
        assert medoid in visited
        assert len(res) <= 16

    def test_visit_callback_fires(self, dataset, graph):
        adjacency, medoid = graph
        calls = []
        greedy_search(
            dataset.base[0],
            medoid,
            adjacency,
            lambda nid: dataset.base[nid],
            16,
            visit_callback=calls.append,
        )
        assert len(calls) >= 1
