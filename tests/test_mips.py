"""Tests for the MIPS→L2 reduction and the inner-product index facade."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.config import SPFreshConfig
from repro.util.mips import MipsSPFreshIndex, MipsTransform

DIM = 12
coords = st.floats(-5, 5, allow_nan=False, allow_infinity=False, width=32)


class TestTransform:
    def test_fit_bounds_all_norms(self, rng):
        vectors = rng.normal(size=(100, DIM)).astype(np.float32)
        transform = MipsTransform.fit(vectors)
        augmented = transform.transform_data(vectors)
        norms = np.linalg.norm(augmented, axis=1)
        np.testing.assert_allclose(norms, transform.norm_bound, rtol=1e-4)

    def test_augmented_dim(self, rng):
        transform = MipsTransform(DIM, 10.0)
        assert transform.augmented_dim == DIM + 1
        q = transform.transform_query(np.ones(DIM, dtype=np.float32))
        assert q.shape == (DIM + 1,)
        assert q[-1] == 0.0

    def test_over_norm_rejected(self):
        transform = MipsTransform(DIM, 1.0)
        with pytest.raises(ValueError):
            transform.transform_data(np.full((1, DIM), 10.0, dtype=np.float32))

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            MipsTransform(0, 1.0)
        with pytest.raises(ValueError):
            MipsTransform(DIM, 0.0)

    @given(
        hnp.arrays(np.float32, (8, DIM), elements=coords),
        hnp.arrays(np.float32, (DIM,), elements=coords),
    )
    @settings(max_examples=30)
    def test_order_preservation(self, vectors, query):
        """L2 order in the augmented space == inner-product order."""
        transform = MipsTransform.fit(vectors, headroom=1.5)
        augmented = transform.transform_data(vectors)
        aug_query = transform.transform_query(query)
        l2 = ((augmented - aug_query) ** 2).sum(axis=1)
        ip = vectors @ query
        # Walking vectors in ascending-L2 order, inner products must be
        # non-increasing (up to float32 rounding on near-ties).
        ordered_ip = ip[np.argsort(l2, kind="stable")]
        tolerance = 1e-3 * (1.0 + np.abs(ip).max())
        assert (np.diff(ordered_ip) <= tolerance).all()

    def test_inner_product_recovery(self, rng):
        vectors = rng.normal(size=(20, DIM)).astype(np.float32)
        query = rng.normal(size=DIM).astype(np.float32)
        transform = MipsTransform.fit(vectors)
        augmented = transform.transform_data(vectors)
        aug_query = transform.transform_query(query)
        l2 = ((augmented - aug_query) ** 2).sum(axis=1)
        recovered = transform.inner_products_from_sq_l2(query, l2)
        np.testing.assert_allclose(recovered, vectors @ query, rtol=1e-3, atol=1e-2)


class TestMipsIndex:
    @pytest.fixture
    def corpus(self, rng):
        return rng.normal(size=(600, DIM)).astype(np.float32)

    @pytest.fixture
    def index(self, corpus):
        config = SPFreshConfig(
            dim=DIM + 1, ssd_blocks=1 << 13, max_posting_size=48,
            build_target_posting_size=8,
        )
        return MipsSPFreshIndex.build(corpus, config=config)

    def test_top1_matches_exact_mips(self, index, corpus, rng):
        for _ in range(10):
            query = rng.normal(size=DIM).astype(np.float32)
            result = index.search(query, 1, nprobe=index.num_postings)
            exact = int((corpus @ query).argmax())
            assert int(result.ids[0]) == exact

    def test_scores_are_inner_products(self, index, corpus, rng):
        query = rng.normal(size=DIM).astype(np.float32)
        result = index.search(query, 5, nprobe=index.num_postings)
        for vid, score in zip(result.ids, result.distances):
            assert score == pytest.approx(
                float(corpus[int(vid)] @ query), rel=1e-3, abs=1e-2
            )

    def test_scores_descending(self, index, rng):
        query = rng.normal(size=DIM).astype(np.float32)
        result = index.search(query, 10, nprobe=8)
        scores = list(result.distances)
        assert scores == sorted(scores, reverse=True)

    def test_insert_and_delete(self, index, rng):
        strong = rng.normal(size=DIM).astype(np.float32)
        strong /= np.linalg.norm(strong)
        # A vector aligned with the query and within the norm bound wins.
        new_vec = (strong * index.transform.norm_bound * 0.95).astype(np.float32)
        index.insert(50_000, new_vec)
        result = index.search(strong, 1, nprobe=index.num_postings)
        assert int(result.ids[0]) == 50_000
        index.delete(50_000)
        result = index.search(strong, 5, nprobe=index.num_postings)
        assert 50_000 not in set(map(int, result.ids))

    def test_delegates_attributes(self, index):
        assert index.num_postings > 0
        assert index.live_vector_count == 600
