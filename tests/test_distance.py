"""Unit + property tests for the distance kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.util.distance import (
    as_matrix,
    as_vector,
    pairwise_sq_l2,
    sq_l2,
    sq_l2_batch,
    top_k_smallest,
)

finite_floats = st.floats(
    min_value=-100, max_value=100, allow_nan=False, allow_infinity=False, width=32
)


def vec_strategy(dim=8):
    return hnp.arrays(np.float32, (dim,), elements=finite_floats)


def mat_strategy(max_rows=12, dim=8):
    return hnp.arrays(
        np.float32,
        st.tuples(st.integers(1, max_rows), st.just(dim)),
        elements=finite_floats,
    )


class TestSqL2:
    def test_zero_for_identical(self):
        v = np.ones(4, dtype=np.float32)
        assert sq_l2(v, v) == 0.0

    def test_known_value(self):
        a = np.array([0.0, 0.0], dtype=np.float32)
        b = np.array([3.0, 4.0], dtype=np.float32)
        assert sq_l2(a, b) == pytest.approx(25.0)

    @given(vec_strategy(), vec_strategy())
    def test_symmetry(self, a, b):
        assert sq_l2(a, b) == pytest.approx(sq_l2(b, a), rel=1e-4, abs=1e-4)

    @given(vec_strategy(), vec_strategy())
    def test_non_negative(self, a, b):
        assert sq_l2(a, b) >= 0.0


class TestSqL2Batch:
    def test_matches_scalar(self, rng):
        q = rng.normal(size=8).astype(np.float32)
        pts = rng.normal(size=(20, 8)).astype(np.float32)
        batch = sq_l2_batch(q, pts)
        for i in range(20):
            assert batch[i] == pytest.approx(sq_l2(q, pts[i]), rel=1e-4, abs=1e-4)

    def test_empty_points(self):
        out = sq_l2_batch(np.zeros(4, dtype=np.float32), np.empty((0, 4), np.float32))
        assert out.shape == (0,)


class TestPairwise:
    @given(mat_strategy(), mat_strategy())
    @settings(max_examples=30)
    def test_matches_batch(self, a, b):
        full = pairwise_sq_l2(a, b)
        assert full.shape == (len(a), len(b))
        for i in range(len(a)):
            row = sq_l2_batch(a[i], b)
            np.testing.assert_allclose(full[i], row, rtol=1e-2, atol=1e-2)

    @given(mat_strategy())
    @settings(max_examples=30)
    def test_self_diagonal_near_zero(self, a):
        # The expanded |a|^2 - 2ab + |b|^2 form cancels; the self-distance
        # error is bounded relative to the vector magnitude, not absolutely.
        d = pairwise_sq_l2(a, a)
        tolerance = 1e-4 * (1.0 + (a.astype(np.float64) ** 2).sum(axis=1))
        assert (np.diag(d) <= tolerance).all()

    def test_never_negative_under_cancellation(self):
        # Large identical values exercise the clamp against fp cancellation.
        a = np.full((3, 4), 1e4, dtype=np.float32)
        assert (pairwise_sq_l2(a, a) >= 0).all()

    def test_empty_inputs(self):
        a = np.empty((0, 4), dtype=np.float32)
        b = np.ones((2, 4), dtype=np.float32)
        assert pairwise_sq_l2(a, b).shape == (0, 2)
        assert pairwise_sq_l2(b, a).shape == (2, 0)


class TestTopK:
    def test_sorted_ascending(self, rng):
        values = rng.normal(size=50).astype(np.float32)
        idx = top_k_smallest(values, 10)
        assert list(values[idx]) == sorted(values)[:10]

    def test_k_larger_than_n(self):
        values = np.array([3.0, 1.0, 2.0], dtype=np.float32)
        idx = top_k_smallest(values, 10)
        assert list(idx) == [1, 2, 0]

    def test_k_zero_or_empty(self):
        assert len(top_k_smallest(np.array([1.0]), 0)) == 0
        assert len(top_k_smallest(np.empty(0, np.float32), 5)) == 0

    @given(
        hnp.arrays(np.float32, st.integers(1, 40), elements=finite_floats),
        st.integers(1, 45),
    )
    def test_property_matches_sort(self, values, k):
        idx = top_k_smallest(values, k)
        expected = np.sort(values)[: min(k, len(values))]
        np.testing.assert_array_equal(np.sort(values[idx]), expected)

    def test_deterministic_tie_break(self):
        values = np.zeros(8, dtype=np.float32)
        idx = top_k_smallest(values, 3)
        assert list(idx) == [0, 1, 2]


class TestCasting:
    def test_as_vector_validates_dim(self):
        with pytest.raises(ValueError):
            as_vector([1.0, 2.0], dim=3)

    def test_as_vector_rejects_matrix(self):
        with pytest.raises(ValueError):
            as_vector(np.zeros((2, 2)))

    def test_as_matrix_promotes_vector(self):
        m = as_matrix([1.0, 2.0, 3.0])
        assert m.shape == (1, 3)
        assert m.dtype == np.float32

    def test_as_matrix_validates_dim(self):
        with pytest.raises(ValueError):
            as_matrix(np.zeros((2, 2)), dim=3)
