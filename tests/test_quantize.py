"""Parity suite for the quantized hot path (repro.quantize).

Property-based (hypothesis) checks pin the fused ADC kernel against the
brute-force oracle, bound the encode/decode round-trip error, and assert
the engine-level contracts: rerank-everything is bit-identical to the
exact index, and the LIRE lifecycle keeps the code column coherent with
the vectors it summarizes.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import QueryRequest
from repro.core.config import SPFreshConfig
from repro.core.index import SPFreshIndex
from repro.core.invariants import check_invariants
from repro.quantize import (
    ProductQuantizer,
    ScalarQuantizer,
    adc_scan,
    adc_scan_brute,
    make_quantizer,
    quantizer_from_state,
)
from repro.storage.layout import PostingData, QuantizedPostingCodec


def _tables_and_codes(draw):
    nq = draw(st.integers(1, 5))
    m = draw(st.integers(1, 6))
    table_size = draw(st.sampled_from([4, 16, 256]))
    n = draw(st.integers(0, 40))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    tables = rng.normal(size=(nq, m, table_size)).astype(np.float32)
    codes = rng.integers(0, table_size, size=(n, m)).astype(np.uint8)
    return tables, codes, rng


@st.composite
def adc_cases(draw):
    return _tables_and_codes(draw)


class TestAdcKernel:
    @given(adc_cases())
    @settings(max_examples=80, deadline=None)
    def test_fused_matches_brute(self, case):
        tables, codes, _ = case
        fused = adc_scan(tables, codes)
        brute = adc_scan_brute(tables, codes)
        assert fused.shape == brute.shape == (len(tables), len(codes))
        assert np.array_equal(fused, brute)

    @given(adc_cases())
    @settings(max_examples=80, deadline=None)
    def test_query_rows_matches_dense_slice(self, case):
        # The batched searcher's per-posting subset branch must be
        # bit-identical to slicing the dense result.
        tables, codes, rng = case
        nq = len(tables)
        rows = rng.choice(nq, size=rng.integers(1, nq + 1), replace=False)
        subset = adc_scan(tables, codes, query_rows=rows)
        dense = adc_scan(tables, codes)
        assert np.array_equal(subset, dense[rows])

    def test_subspace_mismatch_raises(self):
        tables = np.zeros((1, 4, 16), dtype=np.float32)
        with pytest.raises(ValueError):
            adc_scan(tables, np.zeros((3, 2), dtype=np.uint8))

    def test_empty_codes(self):
        tables = np.zeros((3, 4, 16), dtype=np.float32)
        out = adc_scan(tables, np.zeros((0, 4), dtype=np.uint8))
        assert out.shape == (3, 0)
        out = adc_scan(tables, np.zeros((0, 4), dtype=np.uint8), query_rows=[1])
        assert out.shape == (1, 0)


@st.composite
def training_sets(draw):
    dim = draw(st.sampled_from([8, 16, 32]))
    n = draw(st.integers(40, 200))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    vectors = rng.normal(scale=draw(st.sampled_from([0.5, 2.0])), size=(n, dim))
    return vectors.astype(np.float32), dim, rng


class TestProductQuantizerProperties:
    @given(training_sets())
    @settings(max_examples=25, deadline=None)
    def test_adc_equals_distance_to_reconstruction(self, case):
        vectors, dim, rng = case
        pq = ProductQuantizer(dim, num_subspaces=4, codebook_size=16)
        pq.fit(vectors, rng)
        codes = pq.encode(vectors[:20])
        decoded = pq.decode(codes)
        queries = vectors[:3]
        adc = adc_scan(pq.distance_tables(queries), codes)
        exact_to_decoded = ((queries[:, None, :] - decoded[None, :, :]) ** 2).sum(
            axis=2
        )
        np.testing.assert_allclose(adc, exact_to_decoded, rtol=1e-4, atol=1e-3)

    @given(training_sets())
    @settings(max_examples=25, deadline=None)
    def test_encode_deterministic(self, case):
        # LIRE rewrite paths (split/merge/flush/GC) recompute codes freely
        # and must land on byte-identical results.
        vectors, dim, rng = case
        pq = ProductQuantizer(dim, num_subspaces=4, codebook_size=16)
        pq.fit(vectors, rng)
        assert np.array_equal(pq.encode(vectors), pq.encode(vectors))
        clone = quantizer_from_state(pq.state_dict())
        assert np.array_equal(pq.encode(vectors), clone.encode(vectors))


class TestScalarQuantizerProperties:
    @given(training_sets())
    @settings(max_examples=25, deadline=None)
    def test_round_trip_bound(self, case):
        # Per-dimension reconstruction error is bounded by scale/2 for
        # in-range inputs (training points are in range by construction).
        vectors, dim, rng = case
        sq = ScalarQuantizer(dim)
        sq.fit(vectors, rng)
        decoded = sq.decode(sq.encode(vectors))
        bound = sq.scale.astype(np.float64) / 2.0
        err = np.abs(decoded.astype(np.float64) - vectors.astype(np.float64))
        assert np.all(err <= bound + 1e-5)

    @given(training_sets())
    @settings(max_examples=15, deadline=None)
    def test_out_of_range_clamps(self, case):
        vectors, dim, rng = case
        sq = ScalarQuantizer(dim)
        sq.fit(vectors, rng)
        far = vectors[:5] + 100.0
        decoded = sq.decode(sq.encode(far))
        hi = sq.lo + sq.scale * 255
        assert np.all(decoded <= hi + 1e-4)


class TestQuantizedCodecRoundTrip:
    @given(training_sets())
    @settings(max_examples=15, deadline=None)
    def test_sectioned_round_trip(self, case):
        vectors, dim, rng = case
        quantizer = make_quantizer("pq", dim, subspaces=4, codebook_size=16)
        quantizer.fit(vectors, rng)
        codec = QuantizedPostingCodec(dim, block_size=4096, quantizer=quantizer)
        n = min(len(vectors), 37)
        data = PostingData.from_rows(
            ids=np.arange(n, dtype=np.int64),
            versions=np.ones(n, dtype=np.uint8),
            vectors=vectors[:n],
        )
        payloads = codec.encode(data)
        out = codec.decode(payloads, n)
        assert np.array_equal(out.ids, data.ids)
        assert np.array_equal(out.versions, data.versions)
        assert np.array_equal(out.vectors, data.vectors)
        assert np.array_equal(out.codes, quantizer.encode(data.vectors))


DIM = 16


def _build(vectors, **overrides):
    config = SPFreshConfig(
        dim=DIM,
        max_posting_size=32,
        min_posting_size=3,
        build_target_posting_size=16,
        ssd_blocks=1 << 13,
        reassign_range=8,
        seed=7,
        search_latency_budget_us=None,
        **overrides,
    ).validate()
    return SPFreshIndex.build(vectors, config=config)


@pytest.fixture(scope="module")
def blobs():
    rng = np.random.default_rng(1234)
    centers = rng.normal(scale=6.0, size=(4, DIM)).astype(np.float32)
    assignment = rng.integers(0, 4, size=400)
    return (
        centers[assignment] + rng.normal(scale=0.5, size=(400, DIM))
    ).astype(np.float32)


@pytest.fixture(scope="module")
def quant_index(blobs):
    return _build(
        blobs,
        quant_enabled=True,
        quant_kind="pq",
        quant_subspaces=4,
        quant_rerank_k=8,
    )


class TestEngineParity:
    def test_rerank_everything_is_exact(self, blobs):
        # With rerank_k covering every scanned candidate, the quantized
        # path degenerates to exact search and must match bit for bit.
        exact = _build(blobs)
        quant = _build(
            blobs,
            quant_enabled=True,
            quant_kind="pq",
            quant_subspaces=4,
            quant_rerank_k=10**6,
        )
        rng = np.random.default_rng(5)
        queries = blobs[rng.integers(0, len(blobs), size=16)]
        for q in queries:
            a = exact.query(QueryRequest.single(q, k=10, nprobe=4)).result
            b = quant.query(QueryRequest.single(q, k=10, nprobe=4)).result
            assert np.array_equal(a.ids, b.ids)
            assert np.array_equal(a.distances, b.distances)

    def test_batched_matches_single(self, blobs, quant_index):
        rng = np.random.default_rng(6)
        queries = blobs[rng.integers(0, len(blobs), size=24)]
        batched = quant_index.search(QueryRequest(vectors=queries, k=5, nprobe=4))
        for q, br in zip(queries, batched.results):
            sr = quant_index.query(QueryRequest.single(q, k=5, nprobe=4)).result
            assert np.array_equal(sr.ids, br.ids)
            assert np.array_equal(sr.distances, br.distances)

    def test_results_deduplicate_closure_replicas(self, blobs, quant_index):
        # Closure assignment replicates boundary vectors into several
        # postings; replicas share one code, so the selection stage must
        # rank only one copy per id and results must never repeat an id.
        rng = np.random.default_rng(8)
        queries = blobs[rng.integers(0, len(blobs), size=16)]
        for q in queries:
            r = quant_index.query(
                QueryRequest.single(q, k=10, nprobe=quant_index.num_postings)
            ).result
            assert len(np.unique(r.ids)) == len(r.ids)
            assert r.reranked_entries > 0

    def test_snapshot_restores_fitted_quantizer(self, quant_index):
        state = quant_index.quantizer.state_dict()
        clone = quantizer_from_state(state)
        probe = np.arange(DIM, dtype=np.float32).reshape(1, -1)
        assert np.array_equal(
            quant_index.quantizer.encode(probe), clone.encode(probe)
        )


class TestLifecycleCoherence:
    def test_churn_keeps_codes_coherent(self, blobs):
        # Inserts, deletes, splits, and the maintenance drain must keep
        # the stored code column byte-identical to re-encoding the
        # stored vectors (LIRE keeps codes fresh).
        index = _build(
            blobs,
            quant_enabled=True,
            quant_kind="pq",
            quant_subspaces=4,
            quant_rerank_k=8,
        )
        rng = np.random.default_rng(11)
        for i in range(120):
            if i % 3 == 2:
                index.delete(int(rng.integers(len(blobs))))
            else:
                pick = int(rng.integers(len(blobs)))
                vec = (blobs[pick] + rng.normal(scale=0.2, size=DIM)).astype(
                    np.float32
                )
                index.insert(10_000 + i, vec)
        index.drain()
        report = check_invariants(index)
        assert report.code_mismatches == []
        assert report.lost_vectors == []
