"""Tests for k-means, balanced clustering, and the hierarchical build."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clustering.balanced import balanced_kmeans, split_in_two
from repro.clustering.hierarchical import hierarchical_balanced_clustering
from repro.clustering.kmeans import kmeans, kmeans_plus_plus_init


def blobs(rng, n_per=50, k=4, dim=8, spread=10.0):
    centers = rng.normal(scale=spread, size=(k, dim)).astype(np.float32)
    points = np.vstack(
        [c + rng.normal(scale=0.5, size=(n_per, dim)) for c in centers]
    ).astype(np.float32)
    return points, centers


class TestKMeansInit:
    def test_returns_k_rows(self, rng):
        points, _ = blobs(rng)
        init = kmeans_plus_plus_init(points, 4, rng)
        assert init.shape == (4, 8)

    def test_k_capped_at_n(self, rng):
        points = rng.normal(size=(3, 8)).astype(np.float32)
        init = kmeans_plus_plus_init(points, 10, rng)
        assert init.shape == (3, 8)

    def test_duplicate_points_ok(self, rng):
        points = np.ones((10, 4), dtype=np.float32)
        init = kmeans_plus_plus_init(points, 3, rng)
        assert init.shape == (3, 4)

    def test_empty_raises(self, rng):
        with pytest.raises(ValueError):
            kmeans_plus_plus_init(np.empty((0, 4), np.float32), 2, rng)


class TestKMeans:
    def test_recovers_separated_blobs(self, rng):
        points, centers = blobs(rng, spread=20.0)
        fitted, assignments = kmeans(points, 4, rng)
        # Each fitted centroid should be near one true center.
        for c in fitted:
            nearest = np.min(np.linalg.norm(centers - c, axis=1))
            assert nearest < 2.0
        assert len(np.unique(assignments)) == 4

    def test_all_clusters_nonempty(self, rng):
        points, _ = blobs(rng)
        _, assignments = kmeans(points, 7, rng)
        assert len(np.unique(assignments)) == 7

    def test_k_zero(self, rng):
        c, a = kmeans(np.empty((0, 4), np.float32), 3, rng)
        assert len(c) == 0 and len(a) == 0

    def test_assignment_is_nearest_centroid(self, rng):
        points, _ = blobs(rng, spread=15.0)
        centroids, assignments = kmeans(points, 4, rng)
        dists = np.linalg.norm(points[:, None] - centroids[None], axis=2)
        np.testing.assert_array_equal(assignments, dists.argmin(axis=1))


class TestBalancedKMeans:
    def test_balance_beats_plain_on_skewed_data(self, rng):
        # 90% of mass in one blob: plain k-means gives wildly uneven sizes.
        a = rng.normal(size=(450, 8)).astype(np.float32)
        b = rng.normal(loc=20.0, size=(50, 8)).astype(np.float32)
        points = np.vstack([a, b])
        _, balanced = balanced_kmeans(points, 5, rng, balance_weight=8.0)
        counts = np.bincount(balanced, minlength=5)
        assert counts.max() / max(counts.min(), 1) < 4.0

    def test_zero_weight_degenerates_gracefully(self, rng):
        points, _ = blobs(rng)
        centroids, assignments = balanced_kmeans(points, 4, rng, balance_weight=0.0)
        assert centroids.shape == (4, 8)
        assert len(assignments) == len(points)

    def test_deterministic_given_rng_seed(self):
        points, _ = blobs(np.random.default_rng(0))
        c1, a1 = balanced_kmeans(points, 4, np.random.default_rng(5))
        c2, a2 = balanced_kmeans(points, 4, np.random.default_rng(5))
        np.testing.assert_array_equal(a1, a2)
        np.testing.assert_array_equal(c1, c2)


class TestSplitInTwo:
    def test_two_nonempty_balanced_halves(self, rng):
        points, _ = blobs(rng, n_per=40, k=2, spread=15.0)
        centroids, assignments = split_in_two(points, rng)
        counts = np.bincount(assignments, minlength=2)
        assert counts.min() > 0
        assert centroids.shape == (2, 8)
        # Well-separated blobs should split nearly evenly.
        assert counts.max() / counts.min() < 1.6

    def test_identical_points_force_even_split(self, rng):
        points = np.ones((10, 4), dtype=np.float32)
        centroids, assignments = split_in_two(points, rng)
        counts = np.bincount(assignments, minlength=2)
        assert counts.min() == 5

    def test_too_few_points(self, rng):
        with pytest.raises(ValueError):
            split_in_two(np.ones((1, 4), dtype=np.float32), rng)

    @given(st.integers(2, 60))
    @settings(max_examples=20, deadline=None)
    def test_split_always_makes_progress(self, n):
        """Both halves non-empty for any input: required for LIRE's
        convergence argument (every split grows |C| by one)."""
        rng = np.random.default_rng(n)
        points = rng.normal(size=(n, 4)).astype(np.float32)
        _, assignments = split_in_two(points, rng)
        counts = np.bincount(assignments, minlength=2)
        assert counts.min() >= 1


class TestHierarchical:
    def test_leaf_size_bound(self, rng):
        points, _ = blobs(rng, n_per=100)
        leaves = hierarchical_balanced_clustering(points, 25, rng)
        assert all(len(leaf.member_indices) <= 25 for leaf in leaves)

    def test_partition_exact(self, rng):
        points, _ = blobs(rng, n_per=60)
        leaves = hierarchical_balanced_clustering(points, 30, rng)
        all_members = np.concatenate([leaf.member_indices for leaf in leaves])
        assert sorted(all_members) == list(range(len(points)))

    def test_centroid_is_member_mean(self, rng):
        points, _ = blobs(rng, n_per=30)
        leaves = hierarchical_balanced_clustering(points, 20, rng)
        for leaf in leaves[:5]:
            np.testing.assert_allclose(
                leaf.centroid,
                points[leaf.member_indices].mean(axis=0),
                rtol=1e-4,
                atol=1e-4,
            )

    def test_duplicate_heavy_data_terminates(self, rng):
        points = np.ones((200, 4), dtype=np.float32)
        leaves = hierarchical_balanced_clustering(points, 16, rng)
        assert sum(len(leaf.member_indices) for leaf in leaves) == 200
        assert all(len(leaf.member_indices) <= 16 for leaf in leaves)

    def test_small_input_single_leaf(self, rng):
        points = rng.normal(size=(5, 4)).astype(np.float32)
        leaves = hierarchical_balanced_clustering(points, 16, rng)
        assert len(leaves) == 1

    def test_invalid_params(self, rng):
        points = rng.normal(size=(5, 4)).astype(np.float32)
        with pytest.raises(ValueError):
            hierarchical_balanced_clustering(points, 0, rng)
        with pytest.raises(ValueError):
            hierarchical_balanced_clustering(points, 4, rng, branch_factor=1)
