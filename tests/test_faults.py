"""FaultPlan / FaultInjectingSSD semantics: determinism, taxonomy, accounting.

The fault layer is only useful if it is *boringly* deterministic — a crash
found in CI must replay identically from its seed — and if its accounting
contract holds: acknowledged ops record stats, failed/crashed ops record
nothing. These tests pin both down, plus the SimulatedSSD trim/used_blocks
accounting the free pool depends on.
"""

import pytest

from repro.storage import (
    FaultInjectingSSD,
    FaultPlan,
    SimulatedSSD,
    SSDProfile,
)
from repro.util.errors import CrashPoint, InjectedFaultError, StorageError

BS = 64  # small blocks keep payload literals readable


def make_device(plan=None, num_blocks=64):
    inner = SimulatedSSD(num_blocks, SSDProfile(block_size=BS, queue_depth=4))
    return FaultInjectingSSD(inner, plan)


def payload(tag: int) -> bytes:
    return bytes([tag % 256]) * BS


def run_sequence(device):
    """A fixed op sequence; returns outcomes so runs can be compared."""
    outcomes = []
    for i in range(30):
        try:
            if i % 3 == 2:
                data, _ = device.read_blocks([i % 8, (i + 1) % 8])
                outcomes.append(("read", [bytes(d) for d in data]))
            else:
                device.write_blocks([i % 8, (i + 3) % 8], [payload(i), payload(i + 1)])
                outcomes.append(("write", i))
        except InjectedFaultError:
            outcomes.append(("read-error", i))
        except CrashPoint:
            outcomes.append(("crash", i))
    return outcomes


class TestFaultPlanValidation:
    def test_rates_must_be_probabilities(self):
        with pytest.raises(ValueError):
            FaultPlan(read_error_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(torn_write_rate=-0.1)

    def test_write_rates_must_sum_to_at_most_one(self):
        with pytest.raises(ValueError):
            FaultPlan(torn_write_rate=0.6, dropped_write_rate=0.6)

    def test_unknown_snapshot_fault_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(snapshot_fault="meteor-strike")

    def test_decisions_are_pure_functions_of_op_index(self):
        plan = FaultPlan(7, read_error_rate=0.5, corrupt_write_rate=0.5)
        # Querying out of order or repeatedly never changes an answer.
        first = [plan.read_error(i) for i in range(50)]
        again = [plan.read_error(i) for i in reversed(range(50))]
        assert first == list(reversed(again))
        assert plan.corrupt_site(9, 4, BS) == plan.corrupt_site(9, 4, BS)


class TestDeterminism:
    def test_identical_runs_inject_identical_faults_and_stats(self):
        results = []
        for _ in range(2):
            plan = FaultPlan(
                11,
                read_error_rate=0.3,
                dropped_write_rate=0.2,
                corrupt_write_rate=0.2,
            )
            device = make_device(plan)
            outcomes = run_sequence(device)
            results.append((outcomes, device.events, device.stats.snapshot()))
        assert results[0][0] == results[1][0]  # same outcomes, same bytes read
        assert results[0][1] == results[1][1]  # same FaultEvents
        assert results[0][2] == results[1][2]  # same IOStats to the microsecond

    def test_different_seeds_differ(self):
        events = []
        for seed in (0, 1):
            plan = FaultPlan(seed, read_error_rate=0.4)
            device = make_device(plan)
            run_sequence(device)
            events.append([e.op_index for e in device.events])
        assert events[0] != events[1]


class TestReadErrors:
    def test_read_error_raises_and_records_no_stats(self):
        device = make_device(FaultPlan(read_error_rate=1.0))
        device.write_blocks([0], [payload(1)])  # writes unaffected
        before = device.stats.snapshot()
        with pytest.raises(InjectedFaultError):
            device.read_blocks([0])
        delta = device.stats.snapshot().delta(before)
        assert delta.read_ops == 0
        assert delta.block_reads == 0
        assert delta.bytes_read == 0
        assert delta.busy_us == 0.0

    def test_disarm_restores_clean_reads(self):
        plan = FaultPlan(read_error_rate=1.0)
        device = make_device(plan)
        device.write_blocks([3], [payload(9)])
        plan.disarm()
        data, _ = device.read_blocks([3])
        assert data[0] == payload(9)
        assert device.stats.read_ops == 1
        plan.arm()
        with pytest.raises(InjectedFaultError):
            device.read_blocks([3])


class TestWriteFaults:
    def test_torn_write_commits_prefix_then_crashes_without_stats(self):
        plan = FaultPlan(3, torn_write_rate=1.0)
        device = make_device(plan)
        ids = [0, 1, 2, 3]
        data = [payload(10 + i) for i in ids]
        with pytest.raises(CrashPoint):
            device.write_blocks(ids, data)
        keep, partial = plan.torn_shape(0, len(ids), BS)
        for position in range(keep):
            assert device.peek_block(ids[position]) == data[position]
        if partial:
            torn = device.peek_block(ids[keep])
            assert torn[:partial] == data[keep][:partial]
            assert torn[partial:] == b"\x00" * (BS - partial)
        for position in range(keep + 1, len(ids)):
            assert device.peek_block(ids[position]) == b"\x00" * BS
        assert device.stats.write_ops == 0  # never acknowledged

    def test_dropped_write_acks_full_batch_but_loses_blocks(self):
        plan = FaultPlan(5, dropped_write_rate=1.0)
        device = make_device(plan)
        ids = [4, 5, 6, 7]
        data = [payload(20 + i) for i in ids]
        latency = device.write_blocks(ids, data)
        # Host-visible accounting covers the whole batch: the loss is silent.
        assert latency == device.profile.write_batch_latency_us(len(ids))
        assert device.stats.write_ops == 1
        assert device.stats.block_writes == len(ids)
        assert device.stats.bytes_written == len(ids) * BS
        dropped = plan.dropped_blocks(0, len(ids))
        assert dropped  # at least one block lost
        for position, bid in enumerate(ids):
            want = b"\x00" * BS if position in dropped else data[position]
            assert device.peek_block(bid) == want

    def test_corrupt_write_flips_exactly_one_bit(self):
        plan = FaultPlan(9, corrupt_write_rate=1.0)
        device = make_device(plan)
        ids = [1, 2]
        data = [payload(30), payload(31)]
        device.write_blocks(ids, data)
        position, offset, mask = plan.corrupt_site(0, len(ids), BS)
        diffs = []
        for p, bid in enumerate(ids):
            stored = device.peek_block(bid)
            diffs.extend(
                (p, o) for o in range(BS) if stored[o] != data[p][o]
            )
        assert diffs == [(position, offset)]
        stored = device.peek_block(ids[position])
        assert stored[offset] == data[position][offset] ^ mask
        assert device.stats.write_ops == 1  # corruption is a silent success


class TestCrashPoints:
    def test_crash_at_read_op(self):
        device = make_device(FaultPlan(crash_at_op=1))
        device.write_blocks([0], [payload(1)])  # op 0
        with pytest.raises(CrashPoint):
            device.read_blocks([0])  # op 1
        assert device.stats.read_ops == 0

    def test_crash_at_trim_op(self):
        device = make_device(FaultPlan(crash_at_op=1))
        device.write_blocks([0, 1], [payload(1), payload(2)])  # op 0
        with pytest.raises(CrashPoint):
            device.trim([0])  # op 1
        assert device.used_blocks() == 2  # trim never happened

    def test_op_index_counts_reads_writes_and_trims(self):
        device = make_device(FaultPlan())
        device.write_blocks([0], [payload(1)])
        device.read_blocks([0])
        device.trim([0])
        assert device.op_index == 3


class TestTrimAccounting:
    """SimulatedSSD.trim / used_blocks, incl. under injected read errors."""

    def test_trim_releases_and_zeroes_blocks(self):
        ssd = SimulatedSSD(16, SSDProfile(block_size=BS))
        ssd.write_blocks(list(range(10)), [payload(i) for i in range(10)])
        assert ssd.used_blocks() == 10
        ssd.trim([2, 3, 4])
        assert ssd.used_blocks() == 7
        data, _ = ssd.read_blocks([2])
        assert data[0] == b"\x00" * BS  # trimmed blocks read back as zeroes
        ssd.trim([2])  # double-trim is a no-op
        assert ssd.used_blocks() == 7
        with pytest.raises(StorageError):
            ssd.trim([16])

    def test_read_errors_do_not_skew_trim_or_counters(self):
        plan = FaultPlan(read_error_rate=1.0)
        device = make_device(plan, num_blocks=16)
        device.write_blocks(list(range(8)), [payload(i) for i in range(8)])
        writes_before = device.stats.snapshot()
        for bid in range(8):
            with pytest.raises(InjectedFaultError):
                device.read_blocks([bid])
        device.trim([0, 1])
        assert device.used_blocks() == 6
        delta = device.stats.snapshot().delta(writes_before)
        # Eight failed reads and one trim: zero new stats of any kind.
        assert delta.read_ops == 0
        assert delta.write_ops == 0
        assert delta.block_ios == 0
        assert delta.busy_us == 0.0
        plan.disarm()
        data, _ = device.read_blocks([5])
        assert data[0] == payload(5)
        assert device.stats.read_ops == 1


class TestWalAndSnapshotHooks:
    def test_wal_action_targets_one_append(self):
        plan = FaultPlan(wal_tear_at=(3, 10))
        assert plan.wal_action(2) is None
        assert plan.wal_action(3) == ("tear", 10)
        plan.disarm()
        assert plan.wal_action(3) is None

    def test_snapshot_action_respects_generation_filter(self):
        plan = FaultPlan(snapshot_fault="torn-tmp", snapshot_fault_generation=4)
        assert plan.snapshot_action(3) is None
        assert plan.snapshot_action(4) == "torn-tmp"
        unfiltered = FaultPlan(snapshot_fault="crash-after-commit")
        assert unfiltered.snapshot_action(1) == "crash-after-commit"
        assert unfiltered.snapshot_action(99) == "crash-after-commit"
