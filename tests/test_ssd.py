"""Tests for the simulated SSD device and its latency model."""

import threading

import pytest

from repro.storage.ssd import SimulatedSSD, SSDProfile
from repro.util.errors import StorageError


class TestProfile:
    def test_batch_latency_waves(self):
        profile = SSDProfile(read_latency_us=100.0, queue_depth=8)
        assert profile.read_batch_latency_us(0) == 0.0
        assert profile.read_batch_latency_us(1) == 100.0
        assert profile.read_batch_latency_us(8) == 100.0
        assert profile.read_batch_latency_us(9) == 200.0
        assert profile.read_batch_latency_us(24) == 300.0

    def test_write_latency_waves(self):
        profile = SSDProfile(write_latency_us=20.0, queue_depth=4)
        assert profile.write_batch_latency_us(5) == 40.0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            SSDProfile(block_size=0)
        with pytest.raises(ValueError):
            SSDProfile(queue_depth=0)
        with pytest.raises(ValueError):
            SSDProfile(read_latency_us=-1)


class TestReadWrite:
    def test_roundtrip(self, ssd):
        payload = b"hello world"
        ssd.write_block(3, payload)
        data, _ = ssd.read_block(3)
        assert data[: len(payload)] == payload
        assert len(data) == ssd.block_size

    def test_unwritten_blocks_read_zero(self, ssd):
        data, _ = ssd.read_block(7)
        assert data == b"\x00" * ssd.block_size

    def test_overwrite(self, ssd):
        ssd.write_block(0, b"first")
        ssd.write_block(0, b"second")
        data, _ = ssd.read_block(0)
        assert data.startswith(b"second")

    def test_batch_roundtrip(self, ssd):
        ssd.write_blocks([1, 2, 3], [b"a", b"b", b"c"])
        data, _ = ssd.read_blocks([3, 1, 2])
        assert [d[:1] for d in data] == [b"c", b"a", b"b"]

    def test_out_of_range_block(self, ssd):
        with pytest.raises(StorageError):
            ssd.read_block(ssd.num_blocks)
        with pytest.raises(StorageError):
            ssd.write_block(-1, b"x")

    def test_oversized_payload_rejected(self, ssd):
        with pytest.raises(StorageError):
            ssd.write_block(0, b"x" * (ssd.block_size + 1))

    def test_mismatched_batch_rejected(self, ssd):
        with pytest.raises(StorageError):
            ssd.write_blocks([1, 2], [b"only-one"])

    def test_trim_zeroes_content(self, ssd):
        ssd.write_block(5, b"data")
        ssd.trim([5])
        data, _ = ssd.read_block(5)
        assert data == b"\x00" * ssd.block_size
        assert ssd.used_blocks() == 0


class TestAccounting:
    def test_stats_accumulate(self, ssd):
        ssd.write_blocks([0, 1], [b"a", b"b"])
        ssd.read_blocks([0, 1, 1])
        assert ssd.stats.block_writes == 2
        assert ssd.stats.block_reads == 3
        assert ssd.stats.bytes_read == 3 * ssd.block_size

    def test_latency_returned_matches_profile(self, ssd):
        latency = ssd.write_blocks([0], [b"x"])
        assert latency == ssd.profile.write_batch_latency_us(1)
        _, rlat = ssd.read_blocks(list(range(40)))
        assert rlat == ssd.profile.read_batch_latency_us(40)

    def test_window_delta(self, ssd):
        before = ssd.stats.snapshot()
        ssd.write_block(0, b"x")
        ssd.read_block(0)
        window = ssd.stats.snapshot().delta(before)
        assert window.block_reads == 1
        assert window.block_writes == 1
        assert window.block_ios == 2
        assert window.iops(2.0) == 1.0

    def test_iops_zero_wall(self, ssd):
        window = ssd.stats.snapshot()
        assert window.iops(0.0) == 0.0


class TestConcurrency:
    def test_parallel_writers_distinct_blocks(self):
        ssd = SimulatedSSD(num_blocks=64, profile=SSDProfile(block_size=64))

        def writer(start):
            for i in range(start, 64, 4):
                ssd.write_block(i, bytes([i]) * 8)

        threads = [threading.Thread(target=writer, args=(s,)) for s in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for i in range(64):
            data, _ = ssd.read_block(i)
            assert data[0] == i

    def test_capacity_properties(self):
        ssd = SimulatedSSD(num_blocks=10, profile=SSDProfile(block_size=128))
        assert ssd.capacity_bytes == 1280
        with pytest.raises(ValueError):
            SimulatedSSD(num_blocks=0)
