"""Model-based testing of the Block Controller against a dict oracle.

A hypothesis state machine drives random put/append/delete/defer cycles
against the controller and an in-memory oracle of posting contents. The
invariants checked after every step are the storage-correctness core of
the system: contents round-trip exactly, and the block accounting never
leaks or double-allocates.
"""

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.storage.controller import BlockController
from repro.storage.layout import PostingCodec, PostingData
from repro.storage.ssd import SimulatedSSD, SSDProfile

DIM = 4
NUM_BLOCKS = 256


def _make_posting(rng: np.random.Generator, n: int, tag: int) -> PostingData:
    return PostingData.from_rows(
        ids=np.arange(tag, tag + n, dtype=np.int64),
        versions=rng.integers(0, 100, size=n).astype(np.uint8),
        vectors=rng.normal(size=(n, DIM)).astype(np.float32),
    )


class ControllerMachine(RuleBasedStateMachine):
    def __init__(self) -> None:
        super().__init__()
        self.rng = np.random.default_rng(7)
        self.ssd = SimulatedSSD(NUM_BLOCKS, SSDProfile(block_size=256))
        self.codec = PostingCodec(DIM, 256)
        self.controller = BlockController(self.ssd, self.codec)
        self.oracle: dict[int, PostingData] = {}
        self.next_pid = 0
        self.tag = 0

    @initialize()
    def setup(self) -> None:
        pass

    def _fresh_posting(self, n: int) -> PostingData:
        data = _make_posting(self.rng, n, self.tag)
        self.tag += n + 1
        return data

    @rule(n=st.integers(0, 12))
    def put_new(self, n: int) -> None:
        if self.controller.free_block_count < self.codec.blocks_needed(n) + 4:
            return  # stay clear of ENOSPC; space exhaustion tested elsewhere
        data = self._fresh_posting(n)
        pid = self.next_pid
        self.next_pid += 1
        self.controller.put(pid, data)
        self.oracle[pid] = data

    @precondition(lambda self: self.oracle)
    @rule(n=st.integers(0, 10), pick=st.integers(0, 10**6))
    def overwrite(self, n: int, pick: int) -> None:
        if self.controller.free_block_count < self.codec.blocks_needed(n) + 4:
            return
        pid = sorted(self.oracle)[pick % len(self.oracle)]
        data = self._fresh_posting(n)
        self.controller.put(pid, data)
        self.oracle[pid] = data

    @precondition(lambda self: self.oracle)
    @rule(n=st.integers(1, 6), pick=st.integers(0, 10**6))
    def append(self, n: int, pick: int) -> None:
        if self.controller.free_block_count < self.codec.blocks_needed(n) + 4:
            return
        pid = sorted(self.oracle)[pick % len(self.oracle)]
        data = self._fresh_posting(n)
        self.controller.append(pid, data)
        self.oracle[pid] = self.oracle[pid].concat(data)

    @precondition(lambda self: self.oracle)
    @rule(pick=st.integers(0, 10**6))
    def delete(self, pick: int) -> None:
        pid = sorted(self.oracle)[pick % len(self.oracle)]
        self.controller.delete(pid)
        del self.oracle[pid]

    @rule()
    def toggle_deferral(self) -> None:
        if self.controller._defer_release:
            self.controller.end_defer_release()
        else:
            self.controller.begin_defer_release()

    # ------------------------------------------------------------------
    @invariant()
    def contents_match_oracle(self) -> None:
        assert self.controller.num_postings == len(self.oracle)
        for pid, expected in self.oracle.items():
            actual, _ = self.controller.get(pid)
            np.testing.assert_array_equal(actual.ids, expected.ids)
            np.testing.assert_array_equal(actual.versions, expected.versions)
            np.testing.assert_array_equal(actual.vectors, expected.vectors)

    @invariant()
    def blocks_partition_device(self) -> None:
        state = self.controller.state_dict()
        owned = [b for _, blocks in state["mapping"].values() for b in blocks]
        everything = owned + state["free"] + state["pre_release"]
        assert len(everything) == NUM_BLOCKS
        assert len(set(everything)) == NUM_BLOCKS

    @invariant()
    def lengths_match(self) -> None:
        for pid, expected in self.oracle.items():
            assert self.controller.length(pid) == len(expected)


TestBlockControllerModel = ControllerMachine.TestCase
TestBlockControllerModel.settings = settings(
    max_examples=20, stateful_step_count=40, deadline=None
)
