"""Model-based testing: SPFreshIndex vs a brute-force oracle.

A hypothesis state machine drives random interleaved inserts, deletes,
rebuild drains, GC passes, and checkpoints against both the real index and
a trivially correct in-memory oracle. After every step, exhaustive-probe
search results must match the oracle's exact answer — the strongest
end-to-end statement that no LIRE operation loses, duplicates, or
resurrects a vector.
"""

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.core.config import SPFreshConfig
from repro.core.index import SPFreshIndex
from repro.datasets import exact_knn
from repro.storage.snapshot import SnapshotManager
from repro.storage.wal import WriteAheadLog

DIM = 8


def _tiny_config() -> SPFreshConfig:
    return SPFreshConfig(
        dim=DIM,
        max_posting_size=16,
        min_posting_size=2,
        build_target_posting_size=4,
        replica_count=3,
        reassign_replicas=3,
        reassign_range=4,
        ssd_blocks=1 << 12,
        seed=3,
    )


class SPFreshOracleMachine(RuleBasedStateMachine):
    """Random ops on the index, verified against an exact oracle."""

    def __init__(self) -> None:
        super().__init__()
        self.rng = np.random.default_rng(99)
        self.oracle: dict[int, np.ndarray] = {}
        self.next_id = 0
        self.index: SPFreshIndex | None = None

    @initialize(n=st.integers(8, 40))
    def build(self, n: int) -> None:
        vectors = self.rng.normal(size=(n, DIM)).astype(np.float32)
        self.index = SPFreshIndex.build(
            vectors,
            config=_tiny_config(),
            wal=WriteAheadLog(),
            snapshots=SnapshotManager(),
        )
        for i in range(n):
            self.oracle[i] = vectors[i]
        self.next_id = n

    @rule(cluster=st.floats(-3, 3))
    def insert(self, cluster: float) -> None:
        vector = (
            self.rng.normal(size=DIM) + cluster
        ).astype(np.float32)
        self.index.insert(self.next_id, vector)
        self.oracle[self.next_id] = vector
        self.next_id += 1

    @precondition(lambda self: len(self.oracle) > 1)
    @rule(pick=st.integers(0, 10**6))
    def delete(self, pick: int) -> None:
        victim = sorted(self.oracle)[pick % len(self.oracle)]
        self.index.delete(victim)
        del self.oracle[victim]

    @rule()
    def drain(self) -> None:
        self.index.drain()

    @rule()
    def gc(self) -> None:
        self.index.gc_pass()

    @rule()
    def checkpoint_and_recover(self) -> None:
        self.index.checkpoint()
        self.index = SPFreshIndex.recover(
            self.index.ssd, self.index.config, self.index.snapshots,
            wal=self.index.wal,
        )

    @invariant()
    def live_count_matches(self) -> None:
        if self.index is None:
            return
        assert self.index.live_vector_count == len(self.oracle)

    @invariant()
    def exhaustive_search_matches_oracle(self) -> None:
        if self.index is None or not self.oracle:
            return
        ids = np.array(sorted(self.oracle), dtype=np.int64)
        vectors = np.vstack([self.oracle[int(v)] for v in ids])
        query = vectors[0] + 0.01
        truth = exact_knn(vectors, ids, query.reshape(1, -1), k=5)[0]
        result = self.index.search(query, 5, nprobe=10**6)
        assert set(map(int, result.ids)) == set(map(int, truth))


TestSPFreshOracle = SPFreshOracleMachine.TestCase
TestSPFreshOracle.settings = settings(
    max_examples=12, stateful_step_count=30, deadline=None
)
