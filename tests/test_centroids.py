"""Tests for the centroid indexes: brute-force and NSW graph."""

import numpy as np
import pytest

from repro.centroids import (
    BruteForceCentroidIndex,
    GraphCentroidIndex,
    make_centroid_index,
)
from repro.util.distance import pairwise_sq_l2
from repro.util.errors import IndexError_

DIM = 8


def fill(index, rng, n=50):
    centroids = rng.normal(size=(n, DIM)).astype(np.float32)
    for pid, c in enumerate(centroids):
        index.add(pid, c)
    return centroids


@pytest.fixture(params=["brute", "graph", "bkt"])
def index(request):
    return make_centroid_index(request.param, DIM)


class TestCommonBehaviour:
    def test_add_contains_len(self, index, rng):
        fill(index, rng, 10)
        assert len(index) == 10
        assert 3 in index
        assert 99 not in index

    def test_duplicate_add_rejected(self, index, rng):
        index.add(1, rng.normal(size=DIM).astype(np.float32))
        with pytest.raises(IndexError_):
            index.add(1, rng.normal(size=DIM).astype(np.float32))

    def test_get_roundtrip(self, index, rng):
        c = rng.normal(size=DIM).astype(np.float32)
        index.add(7, c)
        np.testing.assert_array_equal(index.get(7), c)

    def test_get_missing(self, index):
        with pytest.raises(IndexError_):
            index.get(0)

    def test_remove(self, index, rng):
        fill(index, rng, 5)
        index.remove(2)
        assert 2 not in index
        assert len(index) == 4
        with pytest.raises(IndexError_):
            index.remove(2)

    def test_search_empty(self, index):
        result = index.search(np.zeros(DIM, dtype=np.float32), 5)
        assert len(result) == 0

    def test_search_k_zero(self, index, rng):
        fill(index, rng, 5)
        assert len(index.search(np.zeros(DIM, dtype=np.float32), 0)) == 0

    def test_search_returns_ascending_distances(self, index, rng):
        fill(index, rng, 30)
        result = index.search(rng.normal(size=DIM).astype(np.float32), 10)
        assert list(result.distances) == sorted(result.distances)

    def test_nearest_property(self, index, rng):
        centroids = fill(index, rng, 20)
        result = index.search(centroids[4], 3)
        assert result.nearest == 4

    def test_items_and_state_roundtrip(self, index, rng):
        centroids = fill(index, rng, 12)
        state = index.state_dict()
        fresh = type(index)(DIM)
        fresh.load_state_dict(state)
        assert len(fresh) == 12
        np.testing.assert_array_equal(fresh.get(5), centroids[5])

    def test_memory_positive(self, index, rng):
        fill(index, rng, 8)
        assert index.memory_bytes() > 0


class TestBruteForceExactness:
    def test_matches_exhaustive(self, rng):
        index = BruteForceCentroidIndex(DIM)
        centroids = fill(index, rng, 64)
        query = rng.normal(size=DIM).astype(np.float32)
        result = index.search(query, 8)
        exact = pairwise_sq_l2(query.reshape(1, -1), centroids).ravel()
        expected = np.argsort(exact, kind="stable")[:8]
        np.testing.assert_array_equal(result.posting_ids, expected)

    def test_row_recycling(self, rng):
        index = BruteForceCentroidIndex(DIM)
        fill(index, rng, 10)
        for pid in range(10):
            index.remove(pid)
        # Re-adding reuses freed rows; matrix should not grow.
        cap_before = index.memory_bytes()
        for pid in range(10, 20):
            index.add(pid, rng.normal(size=DIM).astype(np.float32))
        assert index.memory_bytes() == cap_before

    def test_growth_beyond_initial_capacity(self, rng):
        index = BruteForceCentroidIndex(DIM)
        fill(index, rng, 200)  # > initial 64 rows
        assert len(index) == 200
        assert index.search(index.get(150), 1).nearest == 150


class TestGraphQuality:
    def test_high_recall_vs_brute(self, rng):
        graph = GraphCentroidIndex(DIM, m=12, ef_search=64)
        brute = BruteForceCentroidIndex(DIM)
        centroids = rng.normal(size=(300, DIM)).astype(np.float32)
        for pid, c in enumerate(centroids):
            graph.add(pid, c)
            brute.add(pid, c)
        hits = total = 0
        for query in rng.normal(size=(30, DIM)).astype(np.float32):
            g = set(int(p) for p in graph.search(query, 10).posting_ids)
            b = set(int(p) for p in brute.search(query, 10).posting_ids)
            hits += len(g & b)
            total += len(b)
        assert hits / total > 0.85

    def test_survives_heavy_churn(self, rng):
        graph = GraphCentroidIndex(DIM, m=8)
        centroids = fill(graph, rng, 100)
        for pid in range(0, 100, 2):
            graph.remove(pid)
        for pid in range(100, 150):
            graph.add(pid, rng.normal(size=DIM).astype(np.float32))
        assert len(graph) == 100
        result = graph.search(centroids[1], 5)
        assert len(result) == 5

    def test_remove_entry_point(self, rng):
        graph = GraphCentroidIndex(DIM)
        fill(graph, rng, 5)
        graph.remove(0)  # 0 was the entry point
        assert len(graph.search(np.zeros(DIM, dtype=np.float32), 3)) == 3

    def test_remove_all_then_reuse(self, rng):
        graph = GraphCentroidIndex(DIM)
        fill(graph, rng, 5)
        for pid in range(5):
            graph.remove(pid)
        assert len(graph) == 0
        graph.add(9, np.ones(DIM, dtype=np.float32))
        assert graph.search(np.ones(DIM, dtype=np.float32), 1).nearest == 9

    def test_degree_bounded(self, rng):
        graph = GraphCentroidIndex(DIM, m=6)
        fill(graph, rng, 200)
        assert graph.edge_count() <= 200 * 12  # 2m slack cap

    def test_invalid_m(self):
        with pytest.raises(ValueError):
            GraphCentroidIndex(DIM, m=1)


def test_factory_rejects_unknown_kind():
    with pytest.raises(ValueError):
        make_centroid_index("fancy", DIM)
