"""Crash-recovery tests: snapshot + WAL replay reproduce the live set."""

import numpy as np
import pytest

from repro.core.index import SPFreshIndex
from repro.storage.snapshot import SnapshotManager
from repro.storage.wal import WriteAheadLog
from repro.util.errors import RecoveryError
from tests.conftest import DIM
from tests.helpers import live_assignment


def build_with_recovery(vectors, config, tmp_path=None):
    wal = WriteAheadLog(None if tmp_path is None else str(tmp_path / "u.wal"))
    snapshots = SnapshotManager(None if tmp_path is None else str(tmp_path))
    index = SPFreshIndex.build(vectors, config=config, wal=wal, snapshots=snapshots)
    return index, wal, snapshots


def crash_and_recover(index, wal, snapshots):
    """Simulate a crash: drop every in-memory structure, keep the device."""
    return SPFreshIndex.recover(index.ssd, index.config, snapshots, wal=wal)


class TestBasicRecovery:
    def test_snapshot_then_recover_identical(self, vectors, small_config):
        index, wal, snaps = build_with_recovery(vectors, small_config)
        index.checkpoint()
        recovered = crash_and_recover(index, wal, snaps)
        assert recovered.live_vector_count == index.live_vector_count
        assert recovered.num_postings == index.num_postings
        assert live_assignment(recovered) == live_assignment(index)

    def test_recover_without_snapshot_fails(self, vectors, small_config):
        index, wal, snaps = build_with_recovery(vectors, small_config)
        with pytest.raises(RecoveryError):
            crash_and_recover(index, wal, snaps)

    def test_dim_mismatch_rejected(self, vectors, small_config):
        index, wal, snaps = build_with_recovery(vectors, small_config)
        index.checkpoint()
        bad_config = small_config.with_overrides(dim=DIM + 1)
        with pytest.raises(RecoveryError):
            SPFreshIndex.recover(index.ssd, bad_config, snaps, wal=wal)


class TestWalReplay:
    def test_updates_after_snapshot_replayed(self, vectors, small_config, rng):
        index, wal, snaps = build_with_recovery(vectors, small_config)
        index.checkpoint()
        inserted = {}
        for i in range(20):
            vid = 40_000 + i
            vec = rng.normal(size=DIM).astype(np.float32)
            index.insert(vid, vec)
            inserted[vid] = vec
        for vid in range(5):
            index.delete(vid)

        recovered = crash_and_recover(index, wal, snaps)
        assert recovered.live_vector_count == index.live_vector_count
        for vid, vec in inserted.items():
            result = recovered.search(vec, 1, nprobe=recovered.num_postings)
            assert result.ids[0] == vid
        for vid in range(5):
            assert recovered.version_map.is_deleted(vid)

    def test_search_results_match_after_recovery(self, vectors, small_config, rng):
        index, wal, snaps = build_with_recovery(vectors, small_config)
        index.checkpoint()
        for i in range(30):
            index.insert(41_000 + i, rng.normal(size=DIM).astype(np.float32))
        index.delete(3)
        # Capture expected answers BEFORE recovery: replay writes to the
        # shared device, so the pre-crash object is dead afterwards (as a
        # crashed process's in-memory index would be).
        expected = [
            set(map(int, index.search(q, 10, nprobe=index.num_postings).ids))
            for q in vectors[:10]
        ]
        recovered = crash_and_recover(index, wal, snaps)
        for q, want in zip(vectors[:10], expected):
            got = recovered.search(q, 10, nprobe=recovered.num_postings)
            assert set(map(int, got.ids)) == want

    def test_checkpoint_truncates_wal(self, vectors, small_config, rng):
        index, wal, snaps = build_with_recovery(vectors, small_config)
        index.insert(50_000, rng.normal(size=DIM).astype(np.float32))
        assert wal.record_count == 1
        index.checkpoint()
        assert wal.record_count == 0

    def test_recovery_with_splits_in_window(self, vectors, small_config, rng):
        """Splits between snapshot and crash are re-derived by replay."""
        index, wal, snaps = build_with_recovery(vectors, small_config)
        index.checkpoint()
        centroid = index.centroid_index.get(index.controller.posting_ids()[0])
        for i in range(small_config.max_posting_size + 20):
            index.insert(
                60_000 + i,
                (centroid + rng.normal(scale=0.05, size=DIM)).astype(np.float32),
            )
        assert index.stats.splits > 0
        # Capture the expected live set BEFORE recovery mutates the shared
        # device (the crashed process's in-memory index is gone afterwards).
        expected = sorted(live_assignment(index))
        live_count = index.live_vector_count
        recovered = crash_and_recover(index, wal, snaps)
        assert recovered.live_vector_count == live_count
        # Posting geometry need not be identical, but nothing may be lost.
        from tests.helpers import assert_no_vector_lost

        assert_no_vector_lost(recovered, expected)


class TestRecoveryReport:
    """`index.last_recovery` and the mirrored stats counters."""

    def test_clean_recovery_report(self, vectors, small_config, rng):
        index, wal, snaps = build_with_recovery(vectors, small_config)
        index.checkpoint()
        for i in range(6):
            index.insert(45_000 + i, rng.normal(size=DIM).astype(np.float32))
        index.delete(0)
        recovered = crash_and_recover(index, wal, snaps)
        report = recovered.last_recovery
        assert report is not None
        assert report.clean
        assert report.snapshot_generation == 1
        assert report.records_replayed == 7
        assert report.records_quarantined == 0
        assert "7 WAL records replayed" in report.summary()
        assert recovered.stats.recoveries == 1
        assert recovered.stats.wal_records_replayed == 7
        assert recovered.stats.wal_records_quarantined == 0

    def test_fresh_index_has_no_recovery_report(self, vectors, small_config):
        index, _, _ = build_with_recovery(vectors, small_config)
        assert index.last_recovery is None
        assert index.stats.recoveries == 0

    def test_quarantined_records_surface_in_report(self, vectors, small_config, rng):
        index, wal, snaps = build_with_recovery(vectors, small_config)
        index.checkpoint()
        for i in range(4):
            index.insert(46_000 + i, rng.normal(size=DIM).astype(np.float32))
        # Corrupt the second logged record in place, as a bad sector would.
        stream = bytearray(wal.to_bytes())
        frame = len(stream) // 4
        stream[frame + frame // 2] ^= 0x10
        wal.load_bytes(bytes(stream))

        recovered = crash_and_recover(index, wal, snaps)
        report = recovered.last_recovery
        assert not report.clean
        assert report.records_replayed == 3
        assert report.records_quarantined == 1
        assert report.bytes_quarantined > 0
        assert recovered.stats.wal_records_quarantined == 1
        # The three undamaged inserts survived.
        live = set(live_assignment(recovered))
        assert len({46_000, 46_001, 46_002, 46_003} & live) == 3

    def test_snapshot_live_inserts_counted_as_skips(self, vectors, small_config, rng):
        index, wal, snaps = build_with_recovery(vectors, small_config)
        index.insert(47_000, rng.normal(size=DIM).astype(np.float32))
        index.checkpoint()
        # Stale WAL scenario: the record was logged before the checkpoint
        # but the truncate was lost (e.g. crash-after-commit). Replaying it
        # against the snapshot that already contains it must skip, not dup.
        wal.log_insert(47_000, rng.normal(size=DIM).astype(np.float32))
        recovered = crash_and_recover(index, wal, snaps)
        assert recovered.last_recovery.records_skipped == 1
        assert recovered.last_recovery.records_replayed == 0
        assert recovered.stats.wal_records_skipped == 1

    def test_torn_tail_reported(self, vectors, small_config, rng):
        index, wal, snaps = build_with_recovery(vectors, small_config)
        index.checkpoint()
        index.insert(48_000, rng.normal(size=DIM).astype(np.float32))
        index.insert(48_001, rng.normal(size=DIM).astype(np.float32))
        stream = wal.to_bytes()
        wal.load_bytes(stream[: len(stream) - 7])  # crash mid-append
        recovered = crash_and_recover(index, wal, snaps)
        assert recovered.last_recovery.torn_tail_bytes > 0
        assert recovered.last_recovery.records_replayed == 1
        live = set(live_assignment(recovered))
        assert 48_000 in live
        assert 48_001 not in live  # never acknowledged durably


class TestFileBackedRecovery:
    def test_full_cycle_on_disk(self, vectors, small_config, tmp_path, rng):
        index, wal, snaps = build_with_recovery(vectors, small_config, tmp_path)
        index.checkpoint()
        index.insert(70_000, rng.normal(size=DIM).astype(np.float32))
        wal.close()

        # Reopen persistence from disk, as a restarted process would.
        wal2 = WriteAheadLog(str(tmp_path / "u.wal"))
        snaps2 = SnapshotManager(str(tmp_path))
        recovered = SPFreshIndex.recover(index.ssd, index.config, snaps2, wal=wal2)
        assert recovered.version_map.is_registered(70_000)
        assert recovered.live_vector_count == index.live_vector_count

    def test_second_checkpoint_supersedes_first(self, vectors, small_config, tmp_path, rng):
        index, wal, snaps = build_with_recovery(vectors, small_config, tmp_path)
        index.checkpoint()
        index.insert(71_000, rng.normal(size=DIM).astype(np.float32))
        index.checkpoint()
        recovered = crash_and_recover(index, wal, snaps)
        assert recovered.version_map.is_registered(71_000)
