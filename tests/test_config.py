"""Tests for configuration validation and presets."""

import pytest

from repro.core.config import SPFreshConfig
from repro.util.errors import ConfigError


class TestValidation:
    def test_default_is_valid(self):
        SPFreshConfig().validate()

    def test_bad_dim(self):
        with pytest.raises(ConfigError):
            SPFreshConfig(dim=0).validate()

    def test_min_must_be_below_max(self):
        with pytest.raises(ConfigError):
            SPFreshConfig(min_posting_size=100, max_posting_size=50).validate()

    def test_replica_counts_positive(self):
        with pytest.raises(ConfigError):
            SPFreshConfig(replica_count=0).validate()
        with pytest.raises(ConfigError):
            SPFreshConfig(insert_replicas=0).validate()
        with pytest.raises(ConfigError):
            SPFreshConfig(reassign_replicas=0).validate()

    def test_negative_epsilon(self):
        with pytest.raises(ConfigError):
            SPFreshConfig(closure_epsilon=-0.1).validate()

    def test_build_target_below_split_limit(self):
        with pytest.raises(ConfigError):
            SPFreshConfig(
                build_target_posting_size=200, max_posting_size=100
            ).validate()

    def test_reassign_requires_split(self):
        with pytest.raises(ConfigError):
            SPFreshConfig(enable_split=False, enable_reassign=True).validate()

    def test_unknown_centroid_kind(self):
        with pytest.raises(ConfigError):
            SPFreshConfig(centroid_index_kind="octree").validate()

    def test_nprobe_positive(self):
        with pytest.raises(ConfigError):
            SPFreshConfig(default_nprobe=0).validate()

    def test_background_workers_positive(self):
        with pytest.raises(ConfigError):
            SPFreshConfig(background_workers=0).validate()


class TestOverridesAndPresets:
    def test_with_overrides_returns_new_object(self):
        base = SPFreshConfig()
        other = base.with_overrides(max_posting_size=200)
        assert other.max_posting_size == 200
        assert base.max_posting_size != 200

    def test_with_overrides_validates(self):
        with pytest.raises(ConfigError):
            SPFreshConfig().with_overrides(dim=-1)

    def test_spann_plus_preset_disables_lire(self):
        config = SPFreshConfig.spann_plus(dim=8)
        assert not config.enable_split
        assert not config.enable_merge
        assert not config.enable_reassign

    def test_spann_plus_accepts_overrides(self):
        config = SPFreshConfig.spann_plus(dim=8, max_posting_size=500)
        assert config.max_posting_size == 500

    def test_ablation_lattice_expressible(self):
        """The Figure-10 variants are all valid configurations."""
        SPFreshConfig.spann_plus()  # in-place only
        SPFreshConfig(enable_split=True, enable_merge=False, enable_reassign=False).validate()
        SPFreshConfig(enable_split=True, enable_merge=True, enable_reassign=True).validate()
