"""Tests for the seeded open-loop arrival-trace generators."""

import numpy as np
import pytest

from repro.datasets import make_arrival_trace
from repro.datasets.arrival import PATTERNS, ArrivalTrace


@pytest.fixture
def pool(rng):
    return rng.normal(size=(64, 8)).astype(np.float32)


class TestGeneration:
    @pytest.mark.parametrize("pattern", PATTERNS)
    def test_basic_shape(self, pool, pattern):
        trace = make_arrival_trace(pool, 500, 2000.0, pattern, seed=3)
        assert len(trace) == 500
        assert trace.dim == 8
        assert np.all(np.diff(trace.arrival_us) >= 0)
        assert trace.arrival_us[0] > 0
        assert trace.query_matrix().shape == (500, 8)

    @pytest.mark.parametrize("pattern", PATTERNS)
    def test_deterministic_under_seed(self, pool, pattern):
        a = make_arrival_trace(pool, 300, 1500.0, pattern, seed=9)
        b = make_arrival_trace(pool, 300, 1500.0, pattern, seed=9)
        np.testing.assert_array_equal(a.arrival_us, b.arrival_us)
        np.testing.assert_array_equal(a.query_index, b.query_index)
        np.testing.assert_array_equal(a.tenant, b.tenant)

    def test_seed_changes_trace(self, pool):
        a = make_arrival_trace(pool, 300, 1500.0, seed=1)
        b = make_arrival_trace(pool, 300, 1500.0, seed=2)
        assert not np.array_equal(a.arrival_us, b.arrival_us)

    def test_mean_rate_near_target(self, pool):
        trace = make_arrival_trace(pool, 20_000, 5000.0, "poisson", seed=0)
        assert trace.offered_qps == pytest.approx(5000.0, rel=0.05)

    def test_bursty_rate_stays_near_target(self, pool):
        trace = make_arrival_trace(pool, 20_000, 5000.0, "bursty", seed=0)
        assert trace.offered_qps == pytest.approx(5000.0, rel=0.35)

    def test_bursty_has_heavier_short_gap_tail_than_poisson(self, pool):
        poisson = make_arrival_trace(pool, 10_000, 4000.0, "poisson", seed=4)
        bursty = make_arrival_trace(
            pool, 10_000, 4000.0, "bursty", burst_factor=10.0, seed=4
        )
        # During bursts the instantaneous rate is 10x, so the fraction of
        # very short gaps must exceed the memoryless baseline.
        threshold = 1e6 / 4000.0 / 10.0
        frac = lambda t: float(np.mean(np.diff(t.arrival_us) < threshold))  # noqa: E731
        assert frac(bursty) > frac(poisson)

    def test_diurnal_rate_oscillates(self, pool):
        trace = make_arrival_trace(
            pool,
            20_000,
            5000.0,
            "diurnal",
            diurnal_period_s=1.0,
            diurnal_depth=0.9,
            seed=6,
        )
        # Count arrivals in each quarter-period bucket: peaks and troughs
        # must differ by well over the Poisson noise floor.
        edges = np.arange(0, trace.duration_us, 0.25e6)
        counts, _ = np.histogram(trace.arrival_us, bins=edges)
        assert counts.max() > 2.0 * max(counts.min(), 1)


class TestSkewAndTenants:
    def test_hot_key_skew_concentrates_mass(self, pool):
        uniform = make_arrival_trace(pool, 8000, 1000.0, seed=11)
        skewed = make_arrival_trace(
            pool, 8000, 1000.0, hot_key_skew=1.2, seed=11
        )
        top_share = lambda t: (  # noqa: E731
            np.sort(np.bincount(t.query_index, minlength=len(pool)))[-4:].sum()
            / len(t)
        )
        assert top_share(skewed) > 2.0 * top_share(uniform)

    def test_tenant_weights(self, pool):
        trace = make_arrival_trace(
            pool, 6000, 1000.0, tenant_weights=[0.7, 0.2, 0.1], seed=12
        )
        counts = np.bincount(trace.tenant, minlength=3)
        assert counts[0] > counts[1] > counts[2]
        assert trace.num_tenants == 3

    def test_int_tenant_weights(self, pool):
        trace = make_arrival_trace(pool, 2000, 1000.0, tenant_weights=4, seed=13)
        assert trace.num_tenants == 4

    def test_single_tenant_default(self, pool):
        trace = make_arrival_trace(pool, 100, 1000.0, seed=0)
        assert trace.num_tenants == 1
        assert np.all(trace.tenant == 0)


class TestValidation:
    def test_bad_pattern(self, pool):
        with pytest.raises(ValueError):
            make_arrival_trace(pool, 10, 100.0, "weekly")

    def test_bad_rate(self, pool):
        with pytest.raises(ValueError):
            make_arrival_trace(pool, 10, 0.0)

    def test_bad_requests(self, pool):
        with pytest.raises(ValueError):
            make_arrival_trace(pool, -1, 100.0)

    def test_zero_requests_is_a_valid_empty_trace(self, pool):
        # The serving layer must survive an empty schedule (see
        # tests/test_serving_concurrent.py), so zero is not an error.
        trace = make_arrival_trace(pool, 0, 100.0)
        assert len(trace) == 0
        assert trace.num_tenants == 0
        assert trace.duration_us == 0.0
        assert trace.offered_qps == 0.0
        assert trace.query_matrix().shape == (0, pool.shape[1])

    def test_bad_skew(self, pool):
        with pytest.raises(ValueError):
            make_arrival_trace(pool, 10, 100.0, hot_key_skew=-1.0)

    def test_bad_burst_fraction(self, pool):
        with pytest.raises(ValueError):
            make_arrival_trace(pool, 10, 100.0, "bursty", burst_fraction=1.5)

    def test_empty_pool(self):
        with pytest.raises(ValueError):
            make_arrival_trace(np.empty((0, 4), dtype=np.float32), 10, 100.0)

    def test_unsorted_rejected(self, pool):
        with pytest.raises(ValueError):
            ArrivalTrace(
                name="bad",
                arrival_us=np.array([2.0, 1.0]),
                tenant=np.zeros(2, dtype=np.int32),
                query_index=np.zeros(2, dtype=np.int32),
                queries=pool,
            )

    def test_query_index_range_checked(self, pool):
        with pytest.raises(ValueError):
            ArrivalTrace(
                name="bad",
                arrival_us=np.array([1.0, 2.0]),
                tenant=np.zeros(2, dtype=np.int32),
                query_index=np.array([0, len(pool)], dtype=np.int32),
                queries=pool,
            )
