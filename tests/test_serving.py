"""Tests for the serving front-end: admission, batcher, event loop."""

import json
import math
from collections import deque

import numpy as np
import pytest

from repro.core.config import ConfigError, SPFreshConfig
from repro.core.index import SPFreshIndex
from repro.datasets import make_arrival_trace
from repro.serving import (
    AdmissionController,
    DwrrBatcher,
    DynamicBatcher,
    ServingFrontend,
)
from tests.conftest import DIM


class _Req:
    def __init__(self, arrival_us, tenant=0, index=0):
        self.arrival_us = arrival_us
        self.tenant = tenant
        self.index = index


def _queue(*times):
    return deque(_Req(t) for t in times)


def _tenant_queue(*tenants):
    """A queue of one request per tenant id, in arrival (= index) order."""
    return deque(
        _Req(float(i), tenant=t, index=i) for i, t in enumerate(tenants)
    )


class TestBatcher:
    def test_empty_queue_never_ready(self):
        b = DynamicBatcher(max_batch=4, max_wait_us=100.0)
        assert b.ready_at(deque()) == math.inf

    def test_full_batch_ready_at_last_member_arrival(self):
        b = DynamicBatcher(max_batch=3, max_wait_us=1000.0)
        assert b.ready_at(_queue(10.0, 20.0, 30.0, 40.0)) == 30.0

    def test_partial_batch_waits_on_oldest(self):
        b = DynamicBatcher(max_batch=8, max_wait_us=100.0)
        assert b.ready_at(_queue(10.0, 50.0)) == 110.0

    def test_zero_wait_dispatches_immediately(self):
        b = DynamicBatcher(max_batch=8, max_wait_us=0.0)
        assert b.ready_at(_queue(42.0)) == 42.0

    def test_take_pops_oldest_up_to_max_batch(self):
        b = DynamicBatcher(max_batch=2, max_wait_us=0.0)
        q = _queue(1.0, 2.0, 3.0)
        batch = b.take(q)
        assert [r.arrival_us for r in batch] == [1.0, 2.0]
        assert len(q) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            DynamicBatcher(max_batch=0, max_wait_us=10.0)
        with pytest.raises(ValueError):
            DynamicBatcher(max_batch=1, max_wait_us=-1.0)


class TestDwrrBatcher:
    def test_timing_triggers_identical_to_fifo(self):
        fifo = DynamicBatcher(max_batch=3, max_wait_us=100.0)
        dwrr = DwrrBatcher(max_batch=3, max_wait_us=100.0)
        for queue in (
            deque(),
            _queue(10.0, 50.0),
            _queue(10.0, 20.0, 30.0, 40.0),
        ):
            assert dwrr.ready_at(queue) == fifo.ready_at(queue)

    def test_everything_fits_is_fifo(self):
        b = DwrrBatcher(max_batch=8, max_wait_us=0.0)
        q = _tenant_queue(0, 0, 1, 0)
        batch = b.take(q)
        assert [r.index for r in batch] == [0, 1, 2, 3]
        assert not q

    def test_equal_weights_split_contended_seats(self):
        # 6 requests of tenant 0 ahead of 2 of tenant 1; FIFO would give
        # all 4 seats to tenant 0, DWRR alternates rounds.
        b = DwrrBatcher(max_batch=4, max_wait_us=0.0)
        q = _tenant_queue(0, 0, 0, 0, 0, 0, 1, 1)
        batch = b.take(q)
        took = [r.tenant for r in batch]
        assert took.count(0) == 2 and took.count(1) == 2
        # Seats come out in arrival order regardless of visit order.
        assert [r.index for r in batch] == sorted(r.index for r in batch)
        assert len(q) == 4

    def test_weights_set_per_batch_shares(self):
        b = DwrrBatcher(max_batch=4, max_wait_us=0.0, tenant_weights=(3.0, 1.0))
        q = _tenant_queue(*([0] * 8 + [1] * 8))
        took = [r.tenant for r in b.take(q)]
        assert took.count(0) == 3 and took.count(1) == 1

    def test_deficit_carries_across_batches(self):
        # Weight 0.5 vs 1.0: over two contended batches of 3 seats the
        # light tenant gets 2 seats and the heavy one 4 — the exact 1:2
        # share even though no single batch splits 1:2 evenly.
        b = DwrrBatcher(max_batch=3, max_wait_us=0.0, tenant_weights=(0.5, 1.0))
        q = _tenant_queue(*([0, 1] * 8))
        took = [r.tenant for r in b.take(q)] + [r.tenant for r in b.take(q)]
        assert took.count(0) == 2 and took.count(1) == 4

    def test_drained_tenant_forfeits_credit(self):
        b = DwrrBatcher(max_batch=2, max_wait_us=0.0, tenant_weights=(5.0, 1.0))
        # Tenant 0 drains in the first batch; its leftover credit must
        # not survive into the next contention.
        q = _tenant_queue(0, 1, 1, 1)
        first = b.take(q)
        assert [r.tenant for r in first] == [0, 1]
        assert 0 not in b._deficit
        q2 = _tenant_queue(*([0] * 4 + [1] * 4))
        took = [r.tenant for r in b.take(q2)]
        # Fresh contention: weight 5 vs 1 gives tenant 0 both seats... no
        # banked bonus beyond its configured weight is in play.
        assert took.count(0) == 2

    def test_tiny_weights_terminate_fast(self):
        # Far-below-1 weights exercise the round fast-forward; the take
        # must terminate and still fill every seat.
        b = DwrrBatcher(
            max_batch=4, max_wait_us=0.0, tenant_weights=(1e-9, 1e-9, 1e-9)
        )
        q = _tenant_queue(*([0, 1, 2] * 4))
        batch = b.take(q)
        assert len(batch) == 4
        assert len(q) == 8

    def test_weight_of_defaults_beyond_sequence(self):
        b = DwrrBatcher(max_batch=2, max_wait_us=0.0, tenant_weights=(2.0,))
        assert b.weight_of(0) == 2.0
        assert b.weight_of(7) == 1.0
        assert DwrrBatcher(max_batch=2, max_wait_us=0.0).weight_of(3) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            DwrrBatcher(max_batch=1, max_wait_us=0.0, tenant_weights=())
        with pytest.raises(ValueError):
            DwrrBatcher(max_batch=1, max_wait_us=0.0, tenant_weights=(1.0, 0.0))
        with pytest.raises(ValueError):
            DwrrBatcher(max_batch=1, max_wait_us=0.0, tenant_weights=(-1.0,))


class TestAdmission:
    def test_admits_when_idle(self):
        ctl = AdmissionController(queue_capacity=4, wait_budget_us=1000.0, max_batch=2)
        d = ctl.admit(0.0, 0, 0.0)
        assert d.admitted and d.reason == "" and d.retry_after_us == 0.0

    def test_sheds_on_full_queue(self):
        ctl = AdmissionController(queue_capacity=2, wait_budget_us=None, max_batch=2)
        d = ctl.admit(0.0, 2, 0.0)
        assert not d.admitted
        assert d.reason == "queue_full"
        assert d.retry_after_us > 0.0
        assert ctl.shed_queue_full == 1

    def test_sheds_on_wait_budget(self):
        ctl = AdmissionController(queue_capacity=100, wait_budget_us=50.0, max_batch=4)
        # Engine busy for another 200us: modelled wait blows the budget.
        d = ctl.admit(0.0, 0, 200.0)
        assert not d.admitted
        assert d.reason == "wait_budget"
        assert d.modelled_wait_us == 200.0
        assert d.retry_after_us > 0.0
        assert ctl.shed_wait_budget == 1

    def test_no_wait_budget_disables_wait_shedding(self):
        ctl = AdmissionController(queue_capacity=100, wait_budget_us=None, max_batch=4)
        assert ctl.admit(0.0, 0, 10_000_000.0).admitted

    def test_modelled_wait_prices_queued_batches(self):
        ctl = AdmissionController(
            queue_capacity=100,
            wait_budget_us=None,
            max_batch=4,
            initial_batch_service_us=100.0,
        )
        # 9 queued ahead = 2 whole batches at the EWMA price, engine busy 50.
        assert ctl.modelled_wait_us(0.0, 9, 50.0) == 50.0 + 2 * 100.0

    def test_ewma_tracks_observations(self):
        ctl = AdmissionController(
            queue_capacity=4,
            wait_budget_us=None,
            max_batch=2,
            initial_batch_service_us=100.0,
            ewma_alpha=0.5,
        )
        ctl.observe_batch(300.0)
        assert ctl.batch_service_estimate_us == pytest.approx(200.0)

    def test_modelled_wait_divides_by_workers(self):
        ctl = AdmissionController(
            queue_capacity=100,
            wait_budget_us=None,
            max_batch=4,
            initial_batch_service_us=100.0,
            num_workers=4,
        )
        # 2 whole batches ahead drain on 4 concurrent workers.
        assert ctl.modelled_wait_us(0.0, 9, 50.0) == 50.0 + 2 * 100.0 / 4

    def test_single_worker_wait_model_unchanged(self):
        serial = AdmissionController(
            queue_capacity=100,
            wait_budget_us=None,
            max_batch=4,
            initial_batch_service_us=100.0,
        )
        pooled = AdmissionController(
            queue_capacity=100,
            wait_budget_us=None,
            max_batch=4,
            initial_batch_service_us=100.0,
            num_workers=1,
        )
        for depth in (0, 3, 9, 40):
            assert serial.modelled_wait_us(
                0.0, depth, 75.0
            ) == pooled.modelled_wait_us(0.0, depth, 75.0)

    def test_tenant_quota_sheds_over_share(self):
        ctl = AdmissionController(
            queue_capacity=8,
            wait_budget_us=None,
            max_batch=2,
            tenant_quota_fraction=0.25,
        )
        assert ctl.tenant_quota == 2
        assert ctl.admit(0.0, 3, 0.0, tenant_depth=1).admitted
        d = ctl.admit(0.0, 3, 0.0, tenant_depth=2)
        assert not d.admitted
        assert d.reason == "tenant_quota"
        assert d.retry_after_us > 0.0
        assert ctl.shed_tenant_quota == 1

    def test_tenant_quota_floor_is_one_slot(self):
        # A microscopic fraction still leaves every tenant one slot, so a
        # lone tenant on an empty queue is never quota-shed.
        ctl = AdmissionController(
            queue_capacity=4,
            wait_budget_us=None,
            max_batch=2,
            tenant_quota_fraction=0.01,
        )
        assert ctl.tenant_quota == 1
        assert ctl.admit(0.0, 0, 0.0, tenant_depth=0).admitted

    def test_quota_disabled_by_default(self):
        ctl = AdmissionController(queue_capacity=4, wait_budget_us=None, max_batch=2)
        assert ctl.tenant_quota is None
        assert ctl.admit(0.0, 3, 0.0, tenant_depth=3).admitted

    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(queue_capacity=0, wait_budget_us=None, max_batch=1)
        with pytest.raises(ValueError):
            AdmissionController(queue_capacity=1, wait_budget_us=-5.0, max_batch=1)
        with pytest.raises(ValueError):
            AdmissionController(queue_capacity=1, wait_budget_us=None, max_batch=0)
        with pytest.raises(ValueError):
            AdmissionController(
                queue_capacity=1, wait_budget_us=None, max_batch=1, num_workers=0
            )
        with pytest.raises(ValueError):
            AdmissionController(
                queue_capacity=1,
                wait_budget_us=None,
                max_batch=1,
                tenant_quota_fraction=0.0,
            )
        with pytest.raises(ValueError):
            AdmissionController(
                queue_capacity=1,
                wait_budget_us=None,
                max_batch=1,
                tenant_quota_fraction=1.5,
            )


@pytest.fixture
def query_pool(vectors, rng):
    return (vectors[:48] + rng.normal(scale=0.05, size=(48, DIM))).astype(np.float32)


@pytest.fixture
def trace(query_pool):
    return make_arrival_trace(
        query_pool,
        400,
        8000.0,
        "bursty",
        hot_key_skew=0.8,
        tenant_weights=3,
        seed=21,
        name="test-trace",
    )


class TestFrontendCorrectness:
    def test_every_admitted_request_answered_exactly_once(self, built_index, trace):
        fe = ServingFrontend(built_index.searcher, k=5, queue_capacity=64)
        report = fe.run(trace)
        assert len(report.outcomes) == len(trace)
        answered = report.answered
        shed = report.shed
        assert len(answered) + len(shed) == len(trace)
        # No request appears in two batches, none is dropped silently.
        assert len({o.index for o in answered}) == len(answered)
        assert sum(b.size for b in report.batches) == len(answered)
        for o in answered:
            assert o.batch_id >= 0
            assert o.completion_us > o.arrival_us

    def test_answers_bit_identical_to_direct_search(self, built_index, trace):
        fe = ServingFrontend(
            built_index.searcher, k=5, queue_capacity=64, keep_results=True
        )
        report = fe.run(trace)
        pool = trace.queries
        for o in report.answered[:60]:
            direct = built_index.searcher.search(pool[o.query_index], 5)
            np.testing.assert_array_equal(o.result.ids, direct.ids)
            np.testing.assert_array_equal(o.result.distances, direct.distances)

    def test_shed_requests_never_answered(self, built_index, query_pool):
        # Tiny queue + tight budget under heavy load: shedding must occur,
        # and shed requests must carry a retry signal and no result.
        overload = make_arrival_trace(query_pool, 400, 100_000.0, seed=3)
        fe = ServingFrontend(
            built_index.searcher,
            k=5,
            queue_capacity=8,
            max_batch=4,
            max_wait_us=200.0,
            admission_wait_budget_us=2000.0,
            keep_results=True,
        )
        report = fe.run(overload)
        shed = report.shed
        assert shed, "overload trace should shed"
        for o in shed:
            assert o.result is None
            assert o.batch_id == -1
            assert o.completion_us == 0.0
            assert o.retry_after_us > 0.0
            assert o.shed_reason in ("queue_full", "wait_budget")
        assert (
            report.shed_queue_full + report.shed_wait_budget == len(shed)
        )

    def test_latency_decomposition(self, built_index, trace):
        fe = ServingFrontend(built_index.searcher, k=5)
        report = fe.run(trace)
        for o in report.answered:
            assert o.queue_wait_us >= 0.0
            assert o.assembly_wait_us >= 0.0
            assert o.engine_us > 0.0
            assert o.e2e_us == pytest.approx(
                o.queue_wait_us + o.assembly_wait_us + o.engine_us
            )

    def test_assembly_wait_bounded_by_max_wait(self, built_index, trace):
        max_wait = 500.0
        fe = ServingFrontend(built_index.searcher, k=5, max_wait_us=max_wait)
        report = fe.run(trace)
        for o in report.answered:
            assert o.assembly_wait_us <= max_wait + 1e-6

    def test_batch_size_respects_max_batch(self, built_index, trace):
        fe = ServingFrontend(built_index.searcher, k=5, max_batch=6)
        report = fe.run(trace)
        assert max(b.size for b in report.batches) <= 6

    def test_unbatched_mode_all_singletons(self, built_index, trace):
        fe = ServingFrontend(
            built_index.searcher, k=5, max_batch=1, max_wait_us=0.0
        )
        report = fe.run(trace)
        assert all(b.size == 1 for b in report.batches)

    def test_engine_without_batch_api_rejected(self):
        with pytest.raises(TypeError):
            ServingFrontend(object(), k=5)


class TestFrontendMetrics:
    def test_metrics_consistent(self, built_index, trace):
        fe = ServingFrontend(built_index.searcher, k=5)
        report = fe.run(trace)
        m = report.metrics()
        assert m["offered_requests"] == len(trace)
        assert m["answered_requests"] + m["shed_requests"] == len(trace)
        assert 0.0 <= m["shed_rate"] <= 1.0
        assert 0.0 <= m["slo_violation_rate"] <= 1.0
        assert m["goodput_qps"] <= m["answered_qps"] <= m["offered_qps"]
        assert m["batch_size_mean"] >= 1.0

    def test_per_tenant_metrics_cover_all_tenants(self, built_index, trace):
        fe = ServingFrontend(built_index.searcher, k=5)
        report = fe.run(trace)
        per_tenant = report.per_tenant_metrics()
        assert set(per_tenant) == set(range(trace.num_tenants))
        assert sum(t["offered"] for t in per_tenant.values()) == len(trace)

    def test_batching_beats_unbatched_goodput_under_load(
        self, built_index, query_pool
    ):
        heavy = make_arrival_trace(
            query_pool, 600, 30_000.0, "bursty", hot_key_skew=0.8, seed=9
        )
        batched = ServingFrontend(
            built_index.searcher, k=5, max_batch=32, max_wait_us=1500.0
        ).run(heavy)
        unbatched = ServingFrontend(
            built_index.searcher, k=5, max_batch=1, max_wait_us=0.0
        ).run(heavy)
        assert (
            batched.metrics()["goodput_qps"]
            > unbatched.metrics()["goodput_qps"]
        )


class TestDeterminismAndConfig:
    def _run_once(self):
        rng = np.random.default_rng(77)
        centers = rng.normal(scale=6.0, size=(4, DIM)).astype(np.float32)
        assign = rng.integers(0, 4, size=300)
        base = (
            centers[assign] + rng.normal(scale=0.5, size=(300, DIM))
        ).astype(np.float32)
        config = SPFreshConfig(
            dim=DIM,
            max_posting_size=32,
            min_posting_size=3,
            build_target_posting_size=16,
            ssd_blocks=1 << 13,
            seed=7,
        )
        index = SPFreshIndex.build(base, config=config)
        pool = (base[:32] + 0.01).astype(np.float32)
        trace = make_arrival_trace(
            pool, 300, 10_000.0, "bursty", hot_key_skew=0.6, seed=5
        )
        report = ServingFrontend.from_config(
            index.searcher, config, k=5
        ).run(trace)
        payload = dict(report.metrics())
        payload["per_tenant"] = {
            str(t): m for t, m in report.per_tenant_metrics().items()
        }
        return json.dumps(payload, sort_keys=True)

    def test_run_is_byte_deterministic(self):
        assert self._run_once() == self._run_once()

    def test_from_config_reads_serving_knobs(self, built_index):
        config = SPFreshConfig(
            dim=DIM,
            serve_queue_capacity=17,
            serve_max_batch=9,
            serve_max_wait_us=123.0,
            serve_slo_us=9999.0,
            serve_admission_wait_budget_us=4567.0,
        )
        fe = ServingFrontend.from_config(built_index.searcher, config, k=5)
        assert fe.admission.queue_capacity == 17
        assert fe.batcher.max_batch == 9
        assert fe.batcher.max_wait_us == 123.0
        assert fe.slo_us == 9999.0
        assert fe.admission.wait_budget_us == 4567.0

    def test_from_config_overrides_win(self, built_index, small_config):
        fe = ServingFrontend.from_config(
            built_index.searcher, small_config, k=5, max_batch=3
        )
        assert fe.batcher.max_batch == 3

    def test_from_config_reads_concurrency_knobs(self, built_index):
        config = SPFreshConfig(
            dim=DIM,
            serve_queue_capacity=16,
            serve_num_workers=3,
            serve_fairness="dwrr",
            serve_tenant_weights=(2.0, 1.0),
            serve_tenant_quota_fraction=0.5,
        )
        fe = ServingFrontend.from_config(built_index.searcher, config, k=5)
        assert fe.num_workers == 3
        assert fe.fairness == "dwrr"
        assert isinstance(fe.batcher, DwrrBatcher)
        assert fe.batcher.tenant_weights == (2.0, 1.0)
        assert fe.admission.num_workers == 3
        assert fe.admission.tenant_quota == 8

    def test_fifo_default_uses_plain_batcher(self, built_index):
        fe = ServingFrontend(built_index.searcher, k=5)
        assert fe.num_workers == 1
        assert fe.fairness == "fifo"
        assert not isinstance(fe.batcher, DwrrBatcher)
        assert fe.admission.tenant_quota is None

    def test_frontend_validation(self, built_index):
        with pytest.raises(ValueError):
            ServingFrontend(built_index.searcher, k=5, num_workers=0)
        with pytest.raises(ValueError):
            ServingFrontend(built_index.searcher, k=5, fairness="lifo")

    @pytest.mark.parametrize(
        "bad",
        [
            {"serve_queue_capacity": 0},
            {"serve_max_batch": 0},
            {"serve_max_wait_us": -1.0},
            {"serve_slo_us": 0.0},
            {"serve_admission_wait_budget_us": 0.0},
            {"serve_num_workers": 0},
            {"serve_fairness": "lifo"},
            {"serve_tenant_weights": ()},
            {"serve_tenant_weights": (1.0, 0.0)},
            {"serve_tenant_quota_fraction": 0.0},
            {"serve_tenant_quota_fraction": 1.5},
            {"fresh_max_age_ops": 0},
        ],
    )
    def test_config_validation(self, bad):
        with pytest.raises(ConfigError):
            SPFreshConfig(dim=DIM, **bad).validate()
