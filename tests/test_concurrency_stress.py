"""Deterministic race/invariant stress tests for the background pipeline.

These drive the full LIRE pipeline — background rebuild workers plus
concurrent foreground inserts/deletes/searches — under seeded chaos
schedules that force yields at lock-acquisition and job-dequeue
boundaries, then audit the quiesced index with ``check_invariants``.

The default lane runs one quick configuration; the seed/worker sweep is
marked ``slow`` (deselect with ``-m "not slow"``).
"""

import pytest

from repro.bench.stress import ChaosSchedule, StressConfig, run_stress


class TestChaosSchedule:
    def test_same_seed_same_decision_stream(self):
        def decisions(seed):
            chaos = ChaosSchedule(seed=seed, max_sleep_us=0.0)
            out = []
            for i in range(300):
                before = chaos.yields
                chaos("lock.acquire", i)
                out.append(chaos.yields - before)
            return out

        assert decisions(42) == decisions(42)
        assert decisions(42) != decisions(43)

    def test_yield_rate_tracks_probabilities(self):
        chaos = ChaosSchedule(
            seed=1, yield_probability=0.5, sleep_probability=0.0, max_sleep_us=0.0
        )
        for i in range(1000):
            chaos("queue.get", None)
        assert chaos.calls == 1000
        assert 350 < chaos.yields < 650

    def test_install_wires_index_hooks(self, built_index):
        chaos = ChaosSchedule(seed=0)
        chaos.install(built_index)
        assert built_index.locks.chaos is chaos
        assert built_index.job_queue.chaos is chaos
        assert chaos.stats is built_index.stats

    def test_yields_counted_in_stats(self, built_index):
        chaos = ChaosSchedule(
            seed=0, yield_probability=1.0, sleep_probability=0.0, max_sleep_us=0.0
        ).install(built_index)
        with built_index.locks.hold(built_index.controller.posting_ids()[0]):
            pass
        assert chaos.yields >= 1
        assert built_index.stats.chaos_yields == chaos.yields


class TestStressHarness:
    def test_quick_chaos_run_holds_invariants(self):
        """Acceptance: background pipeline (2 workers) under a seeded chaos
        schedule passes check_invariants after stop()."""
        report = run_stress(
            StressConfig(
                seed=0,
                foreground_threads=2,
                background_workers=2,
                ops_per_thread=80,
            )
        )
        assert report.ok, report.summary()
        assert report.inserts > 0 and report.searches > 0
        assert report.chaos_yields > 0  # the schedule actually interfered
        assert not report.worker_errors
        assert report.invariants is not None and report.invariants.ok

    def test_report_summary_readable(self):
        report = run_stress(
            StressConfig(seed=5, foreground_threads=2, ops_per_thread=40)
        )
        text = report.summary()
        assert "stress seed=5" in text
        assert "self-recall" in text

    @pytest.mark.slow
    @pytest.mark.parametrize(
        "seed,threads,workers",
        [(1, 3, 2), (2, 4, 4), (3, 2, 8), (4, 6, 3)],
    )
    def test_seeded_sweep(self, seed, threads, workers):
        report = run_stress(
            StressConfig(
                seed=seed,
                foreground_threads=threads,
                background_workers=workers,
                ops_per_thread=150,
            )
        )
        assert report.ok, report.summary()

    @pytest.mark.slow
    def test_heavy_chaos_still_converges(self):
        """Maximum interference: yields at every boundary plus long sleeps."""
        report = run_stress(
            StressConfig(
                seed=9,
                foreground_threads=3,
                background_workers=4,
                ops_per_thread=100,
                chaos_yield_probability=0.9,
                chaos_sleep_probability=0.1,
                chaos_max_sleep_us=1000.0,
            )
        )
        assert report.ok, report.summary()
