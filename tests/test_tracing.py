"""Tests for the tracing module."""

import threading

import numpy as np
import pytest

from repro.metrics.tracing import TraceLog, TracedIndex
from tests.conftest import DIM


class TestTraceLog:
    def test_record_and_query(self):
        log = TraceLog()
        log.record("search", 100.0)
        log.record("insert", 50.0)
        log.record("search", 200.0)
        assert len(log) == 3
        assert log.kinds() == {"search", "insert"}
        assert len(log.events("search")) == 2

    def test_summary(self):
        log = TraceLog()
        for latency in (10.0, 20.0, 30.0):
            log.record("op", latency)
        summary = log.summary("op")
        assert summary["count"] == 3
        assert summary["mean"] == pytest.approx(20.0)
        assert summary["max"] == 30.0

    def test_summary_empty_kind(self):
        assert TraceLog().summary("nothing")["count"] == 0

    def test_bounded_capacity(self):
        log = TraceLog(capacity=5)
        for i in range(8):
            log.record("x", float(i))
        assert len(log) == 5
        assert log.dropped == 3
        assert [e.latency_us for e in log.events()] == [3.0, 4.0, 5.0, 6.0, 7.0]

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            TraceLog(capacity=0)

    def test_timeline_buckets(self):
        log = TraceLog()
        for t, latency in ((0.0, 10.0), (0.4, 30.0), (1.2, 100.0)):
            log.record("search", latency, timestamp=t)
        timeline = log.timeline(1.0)
        assert len(timeline) == 2
        first_start, first_count, first_mean = timeline[0]
        assert first_count == 2
        assert first_mean == pytest.approx(20.0)

    def test_timeline_invalid_bucket(self):
        with pytest.raises(ValueError):
            TraceLog().timeline(0.0)

    def test_clear(self):
        log = TraceLog(capacity=2)
        log.record("a", 1.0)
        log.record("a", 1.0)
        log.record("a", 1.0)
        log.clear()
        assert len(log) == 0 and log.dropped == 0

    def test_thread_safety(self):
        log = TraceLog(capacity=10_000)

        def writer():
            for i in range(1000):
                log.record("w", float(i))

        threads = [threading.Thread(target=writer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(log) == 4000


class TestTracedIndex:
    def test_wraps_operations(self, built_index, rng):
        traced = TracedIndex(built_index)
        traced.insert(90_001, rng.normal(size=DIM).astype(np.float32))
        traced.delete(0)
        result = traced.search(rng.normal(size=DIM).astype(np.float32), 5)
        assert len(result) == 5
        assert traced.trace.summary("insert")["count"] == 1
        assert traced.trace.summary("delete")["count"] == 1
        assert traced.trace.summary("search")["count"] == 1

    def test_delegates_attributes(self, built_index):
        traced = TracedIndex(built_index)
        assert traced.num_postings == built_index.num_postings
        assert traced.live_vector_count == built_index.live_vector_count

    def test_search_detail_recorded(self, built_index, vectors):
        traced = TracedIndex(built_index)
        traced.search(vectors[0], 5, nprobe=4)
        event = traced.trace.events("search")[0]
        assert event.detail["postings"] >= 1
