"""Figure 10 — Update-technique ablation under a skewed shift.

Paper: starting from the naive in-place system and adding LIRE components
one at a time — in-place only (SPANN+), +split, +split/reassign (SPFresh)
— each addition moves the recall-vs-latency curve toward the Static
reference (northwest). We replay the §2.3 setting with the same lattice
and sweep nprobe to trace each system's curve.
"""

import numpy as np

from benchmarks.conftest import DIM, run_once, spfresh_config
from repro.bench.reporting import format_table
from repro.core.index import SPFreshIndex
from repro.datasets import GroundTruthTracker, make_spacev_like
from repro.metrics import recall_curve

NPROBES = [2, 4, 8, 16, 32]

VARIANTS = {
    "in-place only": dict(enable_split=False, enable_merge=False, enable_reassign=False),
    "+split": dict(enable_split=True, enable_merge=True, enable_reassign=False),
    "+split/reassign": dict(enable_split=True, enable_merge=True, enable_reassign=True),
}


def test_fig10_ablation(benchmark, scale):
    total = scale.base_vectors
    churn = total // 3
    dataset = make_spacev_like(total, churn, dim=DIM, seed=10, drift=0.8)
    queries = dataset.base[: scale.queries] + 0.01
    base_config = spfresh_config(search_latency_budget_us=None)

    def churn_into(index, tracker):
        for i in range(churn):
            vid = total + i
            index.insert(vid, dataset.pool[i])
            tracker.insert(vid, dataset.pool[i])
            index.delete(i)
            tracker.delete(i)
        index.drain()

    def experiment():
        curves = {}
        # Static reference: the final live set indexed from scratch.
        final_live = np.vstack([dataset.base[churn:], dataset.pool])
        final_ids = np.concatenate(
            [np.arange(churn, total), np.arange(total, total + churn)]
        )
        static = SPFreshIndex.build(final_live, ids=final_ids, config=base_config)
        tracker = GroundTruthTracker(final_ids, final_live)
        gt = tracker.ground_truth(queries, 10)
        curves["static"] = recall_curve(static.search, queries, gt, 10, NPROBES)

        for name, flags in VARIANTS.items():
            config = base_config.with_overrides(**flags)
            index = SPFreshIndex.build(dataset.base, config=config)
            live = GroundTruthTracker(np.arange(total), dataset.base)
            churn_into(index, live)
            gt_v = live.ground_truth(queries, 10)
            curves[name] = recall_curve(index.search, queries, gt_v, 10, NPROBES)
        return curves

    curves = run_once(benchmark, experiment)

    print()
    rows = [
        (name, nprobe, recall, latency_us / 1000)
        for name, curve in curves.items()
        for nprobe, recall, latency_us in curve
    ]
    print(
        format_table(
            ["system", "nprobe", "recall10@10", "mean latency ms"],
            rows,
            title="Figure 10 (reproduction): recall-latency trade-off",
        )
    )

    def mean_latency(name):
        return np.mean([lat for _, _, lat in curves[name]])

    def mean_recall(name):
        return np.mean([rec for _, rec, _ in curves[name]])

    # Shape: each added component moves the curve toward static (same or
    # better recall at lower latency).
    assert mean_latency("+split") < mean_latency("in-place only")
    assert mean_latency("+split/reassign") <= mean_latency("+split") * 1.1
    assert mean_recall("+split/reassign") >= mean_recall("+split") - 0.02
    # Full SPFresh is the closest to static in latency terms.
    gaps = {
        name: abs(mean_latency(name) - mean_latency("static"))
        for name in VARIANTS
    }
    assert gaps["+split/reassign"] == min(gaps.values())
