"""Figure 8 — Search throughput / device IOPS vs number of search threads.

Paper: on the Azure lsv3 NVMe device, QPS and IOPS grow with search
threads and saturate around 8 threads at ~400K IOPS. Our device model has
no global throttle, so saturation here comes from the compute side (the
GIL plays the role of the CPU ceiling); the shape to reproduce is
*monotonic growth flattening out*, with IOPS tracking QPS linearly
(blocks/query is constant).
"""

import threading
import time

from benchmarks.conftest import DIM, run_once, spfresh_config
from repro.bench.reporting import format_table
from repro.core.index import SPFreshIndex
from repro.datasets import make_sift_like

THREAD_COUNTS = (1, 2, 4, 8)
WINDOW_S = 1.0


def test_fig8_search_thread_scaling(benchmark, scale):
    dataset = make_sift_like(scale.base_vectors, 0, dim=DIM, seed=5)
    queries = dataset.base[: scale.queries] + 0.01
    index = SPFreshIndex.build(dataset.base, config=spfresh_config())

    def measure(num_threads: int):
        stop = threading.Event()
        counts = [0] * num_threads

        def worker(slot: int):
            i = slot
            while not stop.is_set():
                index.search(queries[i % len(queries)], 10, nprobe=8)
                counts[slot] += 1
                i += num_threads

        io_before = index.ssd.stats.snapshot()
        threads = [
            threading.Thread(target=worker, args=(slot,))
            for slot in range(num_threads)
        ]
        start = time.perf_counter()
        for t in threads:
            t.start()
        time.sleep(WINDOW_S)
        stop.set()
        for t in threads:
            t.join()
        wall = time.perf_counter() - start
        window = index.ssd.stats.snapshot().delta(io_before)
        qps = sum(counts) / wall
        return qps, window.iops(wall)

    def experiment():
        return {n: measure(n) for n in THREAD_COUNTS}

    results = run_once(benchmark, experiment)

    rows = [
        (n, qps, iops, iops / qps if qps else 0.0)
        for n, (qps, iops) in results.items()
    ]
    print()
    print(
        format_table(
            ["search threads", "QPS (wall)", "device IOPS", "blocks/query"],
            rows,
            title="Figure 8 (reproduction): thread scaling",
        )
    )
    qps_by_n = {n: qps for n, (qps, _) in results.items()}
    # Shape: more threads never collapse throughput; IOPS tracks QPS.
    # (Wall-clock QPS on a shared machine is noisy — the factor is loose
    # enough to tolerate background load, tight enough to catch collapse.)
    assert qps_by_n[max(THREAD_COUNTS)] >= qps_by_n[1] * 0.55
    for n, (qps, iops) in results.items():
        assert iops >= qps  # every query reads at least one block
