"""Shared scaffolding for the figure/table benches.

Every bench prints the series the corresponding paper figure plots, so the
numbers land in bench logs (and EXPERIMENTS.md quotes them from there).
Scale definitions are shared with the perf-regression harness via
:mod:`repro.bench.scales`; export ``REPRO_BENCH_SCALE=large`` for a slower,
higher-fidelity run.
"""

from __future__ import annotations

import os

import pytest

from repro.bench.scales import SCALES, BenchScale
from repro.core.config import SPFreshConfig

__all__ = ["BenchScale", "SCALES", "DIM", "scale", "spfresh_config", "run_once"]

DIM = 32


@pytest.fixture(scope="session")
def scale() -> BenchScale:
    return SCALES[os.environ.get("REPRO_BENCH_SCALE", "small")]


def spfresh_config(**overrides) -> SPFreshConfig:
    base = dict(
        dim=DIM,
        ssd_blocks=1 << 16,
        max_posting_size=96,
        min_posting_size=6,
        build_target_posting_size=48,
        reassign_range=16,
        seed=0,
    )
    base.update(overrides)
    return SPFreshConfig(**base).validate()


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
