"""Shared scaffolding for the figure/table benches.

Every bench prints the series the corresponding paper figure plots, so the
numbers land in bench logs (and EXPERIMENTS.md quotes them from there).
Scale knobs live here; export ``REPRO_BENCH_SCALE=large`` for a slower,
higher-fidelity run.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import pytest

from repro.core.config import SPFreshConfig

DIM = 32


@dataclass(frozen=True)
class BenchScale:
    base_vectors: int
    days: int
    daily_rate: float
    queries: int
    stress_base: int
    stress_days: int


SCALES = {
    "small": BenchScale(
        base_vectors=4000, days=12, daily_rate=0.015, queries=50,
        stress_base=12000, stress_days=6,
    ),
    "large": BenchScale(
        base_vectors=10000, days=30, daily_rate=0.01, queries=100,
        stress_base=40000, stress_days=10,
    ),
}


@pytest.fixture(scope="session")
def scale() -> BenchScale:
    return SCALES[os.environ.get("REPRO_BENCH_SCALE", "small")]


def spfresh_config(**overrides) -> SPFreshConfig:
    base = dict(
        dim=DIM,
        ssd_blocks=1 << 16,
        max_posting_size=96,
        min_posting_size=6,
        build_target_posting_size=48,
        reassign_range=16,
        seed=0,
    )
    base.update(overrides)
    return SPFreshConfig(**base).validate()


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
