"""Figure 2 — Naive in-place updates degrade recall and tail latency.

Paper setup: a *static* SPANN index over 2M vectors versus an index built
from 1.5M vectors plus 0.5M naive in-place updates (Vearch-style appends,
no rebalancing). Updating one third of the vectors costs >1 recall point
and 4x tail latency. We replay the same 3:1 ratio at reproduction scale
with SPANN+ (the append-only variant) and report recall / P99 latency at
matched nprobe settings.
"""

import numpy as np

from benchmarks.conftest import DIM, run_once, spfresh_config
from repro.baselines import build_spann_plus
from repro.bench.reporting import format_table
from repro.core.index import SPFreshIndex
from repro.datasets import GroundTruthTracker, make_spacev_like
from repro.metrics import LatencyTracker, recall_at_k


def test_fig2_inplace_degradation(benchmark, scale):
    total = scale.base_vectors
    base_n = total * 3 // 4
    churn_n = total - base_n
    dataset = make_spacev_like(total, churn_n, dim=DIM, seed=1)
    queries = dataset.base[: scale.queries] + 0.01
    config = spfresh_config(search_latency_budget_us=None)

    def experiment():
        # Static reference: all vectors indexed at build time.
        static = SPFreshIndex.build(dataset.base, config=config)
        # In-place: build on a prefix, churn in pool + delete base suffix.
        inplace = build_spann_plus(dataset.base[:base_n], config=config)
        tracker = GroundTruthTracker(np.arange(base_n), dataset.base[:base_n])
        for i in range(churn_n):
            vid = total + i
            inplace.insert(vid, dataset.pool[i])
            tracker.insert(vid, dataset.pool[i])
            victim = i  # delete the oldest base vectors
            inplace.delete(victim)
            tracker.delete(victim)
        return static, inplace, tracker

    static, inplace, tracker = run_once(benchmark, experiment)

    static_gt = GroundTruthTracker(
        np.arange(len(dataset.base)), dataset.base
    ).ground_truth(queries, 10)
    inplace_gt = tracker.ground_truth(queries, 10)

    rows = []
    for nprobe in (4, 8, 16):
        for name, index, gt in (
            ("static", static, static_gt),
            ("in-place update", inplace, inplace_gt),
        ):
            lat = LatencyTracker()
            ids = []
            for q in queries:
                r = index.search(q, 10, nprobe=nprobe)
                lat.record(r.latency_us)
                ids.append(r.ids)
            rows.append(
                (
                    name,
                    nprobe,
                    recall_at_k(ids, gt, 10),
                    lat.percentile(99) / 1000,
                    lat.percentile(99.9) / 1000,
                )
            )
    print()
    print(
        format_table(
            ["system", "nprobe", "recall10@10", "p99 ms", "p99.9 ms"],
            rows,
            title="Figure 2 (reproduction): static vs naive in-place",
        )
    )
    # Shape check: at the matched nprobe, in-place is never better and its
    # tail latency is strictly worse (posting growth → more blocks read).
    static_rows = [r for r in rows if r[0] == "static"]
    inplace_rows = [r for r in rows if r[0] != "static"]
    assert np.mean([r[3] for r in inplace_rows]) > np.mean(
        [r[3] for r in static_rows]
    )
