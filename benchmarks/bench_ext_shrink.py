"""Extension bench — delete-heavy shrinkage: the merge path under load.

Figure 7's 1-in-1-out churn exercises splits far more than merges. This
bench drives the opposite regime: a corpus that *halves* through a
delete-heavy stream. LIRE's merge + GC must shrink the posting table and
keep per-query I/O proportional to the live data; the SPANN+ comparison
shows what happens without the rebuilder — the posting table stays at its
high-water mark and queries keep paying for dead entries until GC runs.
"""

import numpy as np

from benchmarks.conftest import DIM, run_once, spfresh_config
from repro.baselines import build_spann_plus
from repro.bench.reporting import format_table
from repro.core.index import SPFreshIndex
from repro.core.maintenance import MaintenanceScanner
from repro.datasets import GroundTruthTracker, make_sift_like
from repro.metrics import recall_at_k


def test_ext_delete_heavy_shrink(benchmark, scale):
    total = scale.base_vectors
    dataset = make_sift_like(total, 0, dim=DIM, seed=29)
    queries = dataset.base[total // 2 :][: scale.queries] + 0.01
    delete_ids = np.arange(total // 2)  # the first half dies

    def run(index, use_scanner):
        tracker = GroundTruthTracker(np.arange(total), dataset.base)
        before_entries = index.controller.total_entries()
        for vid in delete_ids:
            index.delete(int(vid))
            tracker.delete(int(vid))
        if use_scanner:
            MaintenanceScanner(index, garbage_threshold=0.3).scan()
        index.drain()
        gt = tracker.ground_truth(queries, 10)
        ids, latencies = [], []
        for q in queries:
            r = index.search(q, 10, nprobe=8)
            ids.append(r.ids)
            latencies.append(r.latency_us)
        snap = index.stats.snapshot()
        return {
            "recall": recall_at_k(ids, gt, 10),
            "latency": float(np.mean(latencies)),
            "postings": index.num_postings,
            "entries_before": before_entries,
            "entries_after": index.controller.total_entries(),
            "merges": snap.merges,
        }

    def experiment():
        spfresh = SPFreshIndex.build(dataset.base, config=spfresh_config())
        spf = run(spfresh, use_scanner=True)
        spann_plus = build_spann_plus(dataset.base, config=spfresh_config())
        spp = run(spann_plus, use_scanner=False)
        return spf, spp

    spf, spp = run_once(benchmark, experiment)

    rows = [
        (
            name,
            r["recall"],
            r["latency"],
            r["postings"],
            r["entries_before"],
            r["entries_after"],
            r["merges"],
        )
        for name, r in (("SPFresh + scanner", spf), ("SPANN+ (no rebuilder)", spp))
    ]
    print()
    print(
        format_table(
            ["system", "recall", "latency us", "postings", "entries before", "entries after", "merges"],
            rows,
            title="Extension: corpus halves via deletes",
        )
    )
    # SPFresh reclaims: merges ran, on-disk entries shrink toward the live set.
    assert spf["merges"] > 0
    assert spf["entries_after"] < spf["entries_before"] * 0.7
    # SPANN+ keeps its high-water mark (no merges; GC not run here).
    assert spp["merges"] == 0
    assert spp["entries_after"] == spp["entries_before"]
    # Both still answer correctly over the surviving half.
    assert spf["recall"] > 0.85 and spp["recall"] > 0.85
