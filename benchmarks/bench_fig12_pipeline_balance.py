"""Figure 12 — Fore/background update pipeline resource balance.

Paper: a single background Local Rebuilder thread keeps up with up to 2
foreground updater threads; with 8 foreground threads, at least 4
background threads are needed — the balanced pipeline runs at a 2:1
foreground:background thread ratio. We measure the same two sweeps:
update completion time (insert stream + full rebuild drain) as foreground
threads grow with one background worker, and as background workers grow
under a heavy foreground stream.
"""

import threading
import time


from benchmarks.conftest import DIM, run_once, spfresh_config
from repro.bench.reporting import format_table
from repro.core.index import SPFreshIndex
from repro.datasets import make_spacev_like

FOREGROUND_SWEEP = (1, 2, 4)
BACKGROUND_SWEEP = (1, 2, 4)


def drive_updates(index, pool, num_threads, id_base):
    """Insert the pool with N foreground threads; returns wall seconds."""
    chunk = len(pool) // num_threads

    def worker(slot):
        lo = slot * chunk
        hi = lo + chunk if slot < num_threads - 1 else len(pool)
        for i in range(lo, hi):
            index.insert(id_base + i, pool[i])

    threads = [threading.Thread(target=worker, args=(s,)) for s in range(num_threads)]
    start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    insert_wall = time.perf_counter() - start
    drain_start = time.perf_counter()
    index.rebuilder.wait_idle()
    return insert_wall, time.perf_counter() - drain_start


def test_fig12_pipeline_balance(benchmark, scale):
    n = scale.base_vectors
    updates = max(600, n // 4)
    dataset = make_spacev_like(n, updates * (len(FOREGROUND_SWEEP) + len(BACKGROUND_SWEEP)), dim=DIM, seed=12)

    def measure(fg_threads, bg_threads, pool, id_base):
        config = spfresh_config(
            synchronous_rebuild=False, background_workers=bg_threads
        )
        index = SPFreshIndex.build(dataset.base, config=config)
        index.start()
        try:
            insert_wall, drain_wall = drive_updates(index, pool, fg_threads, id_base)
        finally:
            index.stop()
        throughput = len(pool) / (insert_wall + drain_wall)
        return insert_wall, drain_wall, throughput

    def experiment():
        fg_rows, bg_rows = [], []
        cursor = 0
        for fg in FOREGROUND_SWEEP:
            pool = dataset.pool[cursor : cursor + updates]
            fg_rows.append((fg, 1) + measure(fg, 1, pool, 10**6 + cursor))
            cursor += updates
        for bg in BACKGROUND_SWEEP:
            pool = dataset.pool[cursor : cursor + updates]
            bg_rows.append((4, bg) + measure(4, bg, pool, 10**6 + cursor))
            cursor += updates
        return fg_rows, bg_rows

    fg_rows, bg_rows = run_once(benchmark, experiment)

    headers = ["fg threads", "bg threads", "insert wall s", "drain wall s", "updates/s"]
    print()
    print(format_table(headers, fg_rows, title="Figure 12a: foreground sweep (bg=1)"))
    print()
    print(format_table(headers, bg_rows, title="Figure 12b: background sweep (fg=4)"))

    # Shape: with a fixed single background worker, piling on foreground
    # threads leaves residual drain work (the pipeline backs up), while
    # adding background workers shrinks the post-stream drain time.
    drain_bg = {row[1]: row[3] for row in bg_rows}
    assert drain_bg[max(BACKGROUND_SWEEP)] <= drain_bg[1] * 1.5 + 0.2
    # Throughput must not collapse as threads increase.
    tp = [row[4] for row in fg_rows]
    assert min(tp) > 0
