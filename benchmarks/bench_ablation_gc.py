"""Ablation (DESIGN.md #3) — version-map deferred GC vs eager deletion I/O.

SPFresh deletes are one in-memory tombstone byte; dead entries are dropped
in bulk when a split/GC rewrites the posting anyway. The eager alternative
rewrites the posting at every delete. The metric is device writes per
delete and the residual garbage both strategies leave.
"""


from benchmarks.conftest import DIM, run_once, spfresh_config
from repro.bench.reporting import format_table
from repro.core.index import SPFreshIndex
from repro.datasets import make_sift_like

DELETES = 400


def test_ablation_deferred_gc(benchmark, scale):
    dataset = make_sift_like(scale.base_vectors, 0, dim=DIM, seed=6)

    def deferred():
        index = SPFreshIndex.build(dataset.base, config=spfresh_config())
        before = index.ssd.stats.snapshot()
        for vid in range(DELETES):
            index.delete(vid)
        tombstone_window = index.ssd.stats.snapshot().delta(before)
        before_gc = index.ssd.stats.snapshot()
        index.gc_pass()
        gc_window = index.ssd.stats.snapshot().delta(before_gc)
        dead = index.controller.total_entries()
        return tombstone_window.block_writes, gc_window.block_writes, dead

    def eager():
        index = SPFreshIndex.build(dataset.base, config=spfresh_config())
        before = index.ssd.stats.snapshot()
        for vid in range(DELETES):
            index.delete(vid)
            index.gc_pass()  # rewrite affected postings immediately
        window = index.ssd.stats.snapshot().delta(before)
        return window.block_writes, 0, index.controller.total_entries()

    def experiment():
        return deferred(), eager()

    (d_del, d_gc, d_entries), (e_del, e_gc, e_entries) = run_once(
        benchmark, experiment
    )

    print()
    print(
        format_table(
            ["strategy", "writes during deletes", "writes during GC", "total writes"],
            [
                ("deferred (version map)", d_del, d_gc, d_del + d_gc),
                ("eager (rewrite per delete)", e_del, e_gc, e_del + e_gc),
            ],
            title="Ablation: delete-path write I/O",
        )
    )
    # Deferred deletes cost zero device writes; total I/O is far lower.
    assert d_del == 0
    assert (d_del + d_gc) * 2.5 < (e_del + e_gc)
    # Both strategies end with the same live data.
    assert abs(d_entries - e_entries) <= d_entries * 0.05 + 10
