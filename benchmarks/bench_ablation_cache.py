"""Ablation — posting cache in front of the device (page-cache effect).

Disk ANNS deployments serve repeat probes from DRAM; the device only sees
cache misses. This bench runs a Zipf-skewed query stream (hot queries
repeat, as production traffic does) with and without the LRU posting
cache and measures device reads, hit rate, and simulated latency.
"""

import numpy as np

from benchmarks.conftest import DIM, run_once, spfresh_config
from repro.bench.reporting import format_table
from repro.core.index import SPFreshIndex
from repro.datasets import make_spacev_like
from repro.storage.cache import CachedBlockController

QUERY_STREAM = 600


def test_ablation_posting_cache(benchmark, scale):
    dataset = make_spacev_like(scale.base_vectors, 0, dim=DIM, seed=31)
    rng = np.random.default_rng(31)
    # Zipf-repeating query stream over a small hot set + random tail.
    hot = dataset.base[rng.choice(scale.base_vectors, 20, replace=False)]
    stream = []
    for _ in range(QUERY_STREAM):
        if rng.random() < 0.8:
            stream.append(hot[int(rng.integers(len(hot)))])
        else:
            stream.append(dataset.base[int(rng.integers(scale.base_vectors))])

    def run(cache_capacity):
        index = SPFreshIndex.build(dataset.base, config=spfresh_config())
        cache = None
        if cache_capacity:
            cache = CachedBlockController(
                index.controller, capacity=cache_capacity
            )
            index.searcher.controller = cache
        io_before = index.ssd.stats.snapshot()
        latencies = [
            index.search(q + np.float32(0.01), 10, nprobe=8).latency_us
            for q in stream
        ]
        window = index.ssd.stats.snapshot().delta(io_before)
        return {
            "latency": float(np.mean(latencies)),
            "p99": float(np.percentile(latencies, 99)),
            "device_reads": window.block_reads,
            "hit_rate": cache.hit_rate if cache else 0.0,
            "cache_mb": (cache.memory_bytes() / 2**20) if cache else 0.0,
        }

    def experiment():
        return {cap: run(cap) for cap in (0, 64, 256, 1024)}

    results = run_once(benchmark, experiment)

    rows = [
        (
            "off" if cap == 0 else cap,
            r["latency"],
            r["p99"],
            r["device_reads"],
            r["hit_rate"],
            r["cache_mb"],
        )
        for cap, r in results.items()
    ]
    print()
    print(
        format_table(
            ["cache postings", "mean lat us", "p99 us", "device block reads", "hit rate", "cache MB"],
            rows,
            title="Ablation: LRU posting cache under a hot query stream",
        )
    )
    off = results[0]
    big = results[1024]
    assert big["device_reads"] < off["device_reads"] * 0.5
    assert big["latency"] < off["latency"]
    assert big["hit_rate"] > 0.5
