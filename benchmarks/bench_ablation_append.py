"""Ablation (DESIGN.md #2) — append-only layout vs whole-posting rewrite.

The Block Controller's APPEND rewrites only the posting's tail block; the
naive alternative (and what generic KV stores do) rewrites the whole
posting per insert. The metric is device blocks written per appended
vector as the posting grows — APPEND stays O(1), rewrite grows linearly.
"""

from benchmarks.conftest import DIM, run_once
from repro.bench.reporting import format_table
from repro.storage.controller import BlockController
from repro.storage.layout import PostingCodec, PostingData
from repro.storage.ssd import SimulatedSSD, SSDProfile

import numpy as np

GROW_TO = 400


def fill_one_by_one(append_mode: bool):
    ssd = SimulatedSSD(1 << 12, SSDProfile())
    codec = PostingCodec(DIM, ssd.block_size)
    controller = BlockController(ssd, codec)
    rng = np.random.default_rng(0)
    controller.put(0, PostingData.empty(DIM))
    checkpoints = {}
    for i in range(GROW_TO):
        entry = PostingData.from_rows(
            [i], [0], rng.normal(size=DIM).astype(np.float32)
        )
        before = ssd.stats.snapshot()
        if append_mode:
            controller.append(0, entry)
        else:
            whole, _ = controller.get(0)
            controller.put(0, whole.concat(entry))
        window = ssd.stats.snapshot().delta(before)
        if (i + 1) in (50, 100, 200, 400):
            checkpoints[i + 1] = (window.block_writes, window.block_reads)
    total_writes = ssd.stats.block_writes
    return checkpoints, total_writes


def test_ablation_append_only_layout(benchmark):
    def experiment():
        return fill_one_by_one(True), fill_one_by_one(False)

    (append_ckpt, append_total), (rewrite_ckpt, rewrite_total) = run_once(
        benchmark, experiment
    )

    rows = [
        (
            size,
            append_ckpt[size][0],
            rewrite_ckpt[size][0],
        )
        for size in sorted(append_ckpt)
    ]
    print()
    print(
        format_table(
            ["posting size", "APPEND writes/op", "rewrite writes/op"],
            rows,
            title="Ablation: write amplification per inserted vector",
        )
    )
    print(f"total blocks written: APPEND={append_total}, rewrite={rewrite_total}")
    # APPEND is O(1) per op regardless of size; rewrite grows with size.
    assert max(w for w, _ in append_ckpt.values()) <= 2
    assert rewrite_ckpt[400][0] > rewrite_ckpt[50][0]
    assert rewrite_total > append_total * 5
