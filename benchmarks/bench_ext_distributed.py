"""Extension bench — distributed SPFresh (the paper's future work).

The paper's conclusion positions single-node SPFresh as "a strong
foundation for the future distributed version". This bench measures the
sharded scatter-gather extension: recall parity with the single-node
index, per-shard balance under hash routing, and how the simulated query
latency (max over shards + merge) and aggregate update throughput behave
as the shard count grows.
"""

import time
from contextlib import nullcontext

import numpy as np

from benchmarks.conftest import DIM, run_once, spfresh_config
from repro.bench.reporting import format_table
from repro.core.index import SPFreshIndex
from repro.datasets import exact_knn, make_sift_like
from repro.distributed import ShardedSPFresh
from repro.metrics import recall_at_k

SHARD_COUNTS = (1, 2, 4, 8)


def test_ext_distributed_scaling(benchmark, scale):
    dataset = make_sift_like(scale.base_vectors, 600, dim=DIM, seed=13)
    queries = dataset.base[: scale.queries] + 0.01
    truth = exact_knn(
        dataset.base, np.arange(scale.base_vectors), queries, 10
    )
    config = spfresh_config()

    def measure(num_shards: int):
        # The sharded facade owns a thread pool; the context manager
        # releases it (a bare build here used to leak the executor).
        cm = (
            nullcontext(SPFreshIndex.build(dataset.base, config=config))
            if num_shards == 1
            else ShardedSPFresh.build(
                dataset.base, num_shards=num_shards, config=config
            )
        )
        with cm as index:
            shard_sizes = (
                index.shard_sizes()
                if isinstance(index, ShardedSPFresh)
                else [index.live_vector_count]
            )
            ids, latencies = [], []
            for q in queries:
                r = index.search(q, 10, 8)
                ids.append(r.ids)
                latencies.append(r.latency_us)
            recall = recall_at_k(ids, truth, 10)
            start = time.perf_counter()
            for i, vec in enumerate(dataset.pool):
                index.insert(1_000_000 * num_shards + i, vec)
            update_qps = len(dataset.pool) / (time.perf_counter() - start)
            balance = max(shard_sizes) / max(min(shard_sizes), 1)
        return recall, float(np.mean(latencies)), update_qps, balance

    def experiment():
        return {n: measure(n) for n in SHARD_COUNTS}

    results = run_once(benchmark, experiment)

    rows = [
        (n, recall, lat, qps, balance)
        for n, (recall, lat, qps, balance) in results.items()
    ]
    print()
    print(
        format_table(
            ["shards", "recall10@10", "latency us", "update QPS (wall)", "shard max/min"],
            rows,
            title="Extension: sharded SPFresh scaling",
        )
    )
    recalls = [v[0] for v in results.values()]
    balances = [v[3] for v in results.values()]
    # Recall parity: scatter-gather over shards loses nothing vs one node.
    assert max(recalls) - min(recalls) < 0.03
    # Hash routing keeps shards balanced.
    assert all(b < 1.5 for b in balances)
