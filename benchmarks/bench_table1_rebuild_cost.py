"""Table 1 — Global rebuild costs of disk-based ANNS indices.

Paper: DiskANN needs 1100 GB / 32 cores / 2 days (or 64 GB / 16 cores /
5 days), SPANN 260 GB / 45 cores / 4 days, to rebuild a 1B-vector index.
We measure both builds at reproduction scale, fit per-vector costs, and
project to 1e9 vectors — the *contrast* to check is that global rebuilds
cost hours-to-days and hundreds of GB while SPFresh's incremental work
(also printed) is orders of magnitude smaller per day.
"""


from benchmarks.conftest import DIM, run_once, spfresh_config
from repro.baselines.diskann import DiskANNConfig
from repro.bench.cost_model import (
    PAPER_TABLE1,
    measure_diskann_build,
    measure_spfresh_build,
    table1_rows,
)
from repro.bench.reporting import format_table
from repro.datasets import make_sift_like


def test_table1_rebuild_cost(benchmark, scale):
    dataset = make_sift_like(scale.base_vectors, 0, dim=DIM, seed=0)

    def experiment():
        spann_model = measure_spfresh_build(dataset.base, spfresh_config())
        diskann_model = measure_diskann_build(
            dataset.base, DiskANNConfig(dim=DIM, ssd_blocks=1 << 16)
        )
        return spann_model, diskann_model

    spann_model, diskann_model = run_once(benchmark, experiment)

    print()
    print(
        format_table(
            ["system", "memory", "cpu", "time"],
            PAPER_TABLE1,
            title="Table 1 (paper, 1B vectors)",
        )
    )
    print(
        format_table(
            ["system", "memory @1B", "measured", "time @1B"],
            table1_rows(spann_model, diskann_model),
            title="Table 1 (reproduction, projected)",
        )
    )
    # Contrast: SPFresh never pays this; its daily incremental work at the
    # same scale is a few percent of one rebuild (measured in fig7 bench).
    assert spann_model.projected_memory_gb(10**9) > 10
    assert diskann_model.projected_memory_gb(10**9) > spann_model.projected_memory_gb(
        10**9
    ) * 0.5
