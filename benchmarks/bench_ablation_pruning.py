"""Ablation — SPANN's query-aware dynamic pruning (DESIGN.md add-on).

SPANN prunes candidate postings whose centroid distance exceeds
(1 + eps) x the nearest centroid's distance, so easy queries read fewer
postings. The trade-off measured here: I/O (postings probed, simulated
latency) vs recall, across pruning strengths.
"""

import numpy as np

from benchmarks.conftest import DIM, run_once, spfresh_config
from repro.bench.reporting import format_table
from repro.core.index import SPFreshIndex
from repro.datasets import exact_knn, make_spacev_like
from repro.metrics import recall_at_k

EPSILONS = [None, 1.0, 0.6, 0.3, 0.15]


def test_ablation_query_aware_pruning(benchmark, scale):
    dataset = make_spacev_like(scale.base_vectors, 0, dim=DIM, seed=19)
    queries = dataset.base[: scale.queries] + 0.01
    truth = exact_knn(
        dataset.base, np.arange(scale.base_vectors), queries, 10
    )

    def measure(epsilon):
        config = spfresh_config(search_prune_epsilon=epsilon)
        index = SPFreshIndex.build(dataset.base, config=config)
        ids, latencies, probed = [], [], []
        for q in queries:
            r = index.search(q, 10, nprobe=16)
            ids.append(r.ids)
            latencies.append(r.latency_us)
            probed.append(r.postings_probed)
        return (
            recall_at_k(ids, truth, 10),
            float(np.mean(latencies)),
            float(np.mean(probed)),
        )

    def experiment():
        return {eps: measure(eps) for eps in EPSILONS}

    results = run_once(benchmark, experiment)

    rows = [
        ("off" if eps is None else eps, recall, latency, probed)
        for eps, (recall, latency, probed) in results.items()
    ]
    print()
    print(
        format_table(
            ["prune eps", "recall10@10", "mean latency us", "mean postings probed"],
            rows,
            title="Ablation: query-aware dynamic pruning (nprobe=16)",
        )
    )
    off = results[None]
    tightest = results[EPSILONS[-1]]
    # Tighter pruning reads strictly fewer postings...
    assert tightest[2] < off[2]
    # ...at a bounded recall cost.
    assert tightest[0] >= off[0] - 0.1
    # Latency is monotone-ish with probed postings.
    assert tightest[1] <= off[1]
