"""Extension bench — insert-only growth (the paper's §2.3 freshness demand).

The paper motivates SPFresh with services whose corpora only grow
(retrieval plugins, JD's 1B new images/day). This bench doubles the index
size through insert-only epochs on drifted data and checks the properties
a growing service needs: fresh inserts recallable immediately, tail
latency flat while the dataset doubles, and memory growing linearly (no
rebuild-style spikes).
"""

import numpy as np

from benchmarks.conftest import DIM, run_once, spfresh_config
from repro.bench.harness import SPFreshAdapter, run_update_simulation
from repro.bench.reporting import format_series
from repro.core.index import SPFreshIndex
from repro.datasets import workload_d
from repro.metrics import recall_at_k


def test_ext_insert_only_growth(benchmark, scale):
    workload = workload_d(
        n_base=scale.base_vectors,
        days=scale.days,
        daily_growth=1.0 / scale.days,  # double the corpus over the run
        dim=DIM,
        num_queries=scale.queries,
        seed=17,
    )
    config = spfresh_config()

    def experiment():
        index = SPFreshIndex.build(
            workload.base_vectors, ids=workload.base_ids, config=config
        )
        series = run_update_simulation(SPFreshAdapter(index), workload, k=10)
        # Freshness probe: the final epoch's inserts must be recallable now.
        last = workload.epochs[-1]
        probes = last.insert_vectors[:40] + np.float32(0.01)
        ids = [index.search(q, 10).ids for q in probes]
        truth = [[vid] for vid in last.insert_ids[:40]]
        fresh_recall = recall_at_k(ids, truth, 1)
        return series, fresh_recall, index

    series, fresh_recall, index = run_once(benchmark, experiment)

    print()
    print(
        format_series(
            series,
            fields=("day", "recall", "search_p999_us", "memory_mb", "live_vectors", "postings"),
            every=max(1, scale.days // 8),
            title="Extension: insert-only growth (corpus doubles)",
        )
    )
    print(f"freshness: last-epoch inserts recalled at {fresh_recall:.2f}")

    first, last = series[0], series[-1]
    assert last.live_vectors >= int(first.live_vectors * 1.8)
    # Tail latency stays flat while the corpus doubles (LIRE splits keep
    # postings bounded, so per-query I/O is unchanged).
    assert last.search_p999_us <= first.search_p999_us * 2.0 + 500
    # Recall holds up and the newest data is immediately visible.
    assert last.recall >= first.recall - 0.05
    assert fresh_recall > 0.9
    # Memory grows roughly linearly with postings, not in rebuild spikes.
    memories = np.array([d.memory_mb for d in series])
    assert memories.max() <= memories[-1] * 1.05 + 0.01
