"""Figure 11 — Parameter study: reassign range.

Paper: widening the reassign scan from 0 nearby postings to 128 improves
accuracy at a fixed search budget, with diminishing returns past 64
(their default). The mechanism behind the accuracy gain is NPA repair:
more nearby postings checked → more boundary vectors put back into their
true nearest posting.

At reproduction scale the recall gain is masked by boundary replication
and a proportionally generous nprobe (a misplaced vector usually still
sits in *some* probed posting), so this bench reports the mechanism
directly alongside recall: the count of residual NPA violations after the
churn, which must fall as the range widens and then saturate — the same
diminishing-returns shape as the paper's accuracy curve. To make NPA
placement matter at all, the sweep runs with minimal replication.
"""

import numpy as np

from benchmarks.conftest import DIM, run_once, spfresh_config
from repro.bench.reporting import format_table
from repro.core.index import SPFreshIndex
from repro.datasets import GroundTruthTracker, make_spacev_like
from repro.metrics import recall_at_k
from repro.spann.postings import live_view
from repro.util.distance import sq_l2

RANGES = [0, 2, 4, 8, 16, 32]


def count_npa_violations(index, tolerance: float = 1e-5) -> int:
    """Live vectors none of whose replicas sit in their nearest posting."""
    assignment: dict[int, set[int]] = {}
    vectors: dict[int, np.ndarray] = {}
    for pid in index.controller.posting_ids():
        data, _ = index.controller.get(pid)
        live = live_view(data, index.version_map)
        for row, vid in enumerate(live.ids):
            assignment.setdefault(int(vid), set()).add(pid)
            vectors[int(vid)] = live.vectors[row]
    violations = 0
    for vid, postings in assignment.items():
        hits = index.centroid_index.search(vectors[vid], 1)
        if len(hits) == 0 or hits.nearest in postings:
            continue
        d_nearest = sq_l2(vectors[vid], index.centroid_index.get(hits.nearest))
        best = min(
            sq_l2(vectors[vid], index.centroid_index.get(pid)) for pid in postings
        )
        if best > d_nearest * (1 + tolerance) + tolerance:
            violations += 1
    return violations


def test_fig11_reassign_range(benchmark, scale):
    total = scale.base_vectors
    churn = total // 3
    dataset = make_spacev_like(total, churn, dim=DIM, seed=11, drift=0.8)
    queries = dataset.base[: scale.queries] + 0.01

    def run_with_range(reassign_range: int):
        # Minimal replication so posting placement (NPA) is load-bearing.
        config = spfresh_config(
            reassign_range=reassign_range,
            replica_count=2,
            closure_epsilon=0.1,
            reassign_replicas=2,
        )
        index = SPFreshIndex.build(dataset.base, config=config)
        tracker = GroundTruthTracker(np.arange(total), dataset.base)
        for i in range(churn):
            vid = total + i
            index.insert(vid, dataset.pool[i])
            tracker.insert(vid, dataset.pool[i])
            index.delete(i)
            tracker.delete(i)
        index.drain()
        gt = tracker.ground_truth(queries, 10)
        ids = [index.search(q, 10, nprobe=4).ids for q in queries]
        snap = index.stats.snapshot()
        return (
            recall_at_k(ids, gt, 10),
            count_npa_violations(index),
            snap.reassign_evaluated,
            snap.reassign_executed,
        )

    def experiment():
        return {r: run_with_range(r) for r in RANGES}

    results = run_once(benchmark, experiment)

    rows = [
        (r, recall, violations, evaluated, executed)
        for r, (recall, violations, evaluated, executed) in results.items()
    ]
    print()
    print(
        format_table(
            ["reassign range", "recall10@10", "NPA violations", "evaluated", "executed"],
            rows,
            title="Figure 11 (reproduction): reassign range sweep",
        )
    )
    violations = {r: v[1] for r, v in results.items()}
    recalls = {r: v[0] for r, v in results.items()}
    # Shape: quality improves with range (violations repaired)...
    assert violations[max(RANGES)] < violations[0]
    # ...with diminishing returns: the top of the sweep has flattened.
    assert violations[RANGES[-1]] >= violations[RANGES[-2]] * 0.5
    # Recall never degrades beyond noise as the range widens.
    assert recalls[max(RANGES)] >= recalls[0] - 0.03
    # Work scales with the range (more candidates evaluated).
    assert results[max(RANGES)][2] > results[0][2]
