"""Ablation (DESIGN.md #5) — graph vs brute-force centroid navigation.

SPANN keeps centroids in SPTAG because brute-force navigation is linear in
the posting count. This bench measures wall-clock centroid search time for
both implementations as the centroid count grows, plus the graph's recall
against the exact answer.
"""

import time

import numpy as np

from benchmarks.conftest import DIM, run_once
from repro.bench.reporting import format_table
from repro.centroids import BruteForceCentroidIndex, GraphCentroidIndex

COUNTS = (500, 2000, 8000)
QUERIES = 200


def test_ablation_centroid_index(benchmark):
    rng = np.random.default_rng(0)
    centroids = rng.normal(size=(max(COUNTS), DIM)).astype(np.float32)
    queries = rng.normal(size=(QUERIES, DIM)).astype(np.float32)

    def measure(index_cls, count):
        index = index_cls(DIM)
        for pid in range(count):
            index.add(pid, centroids[pid])
        start = time.perf_counter()
        results = [index.search(q, 8) for q in queries]
        wall_us = (time.perf_counter() - start) * 1e6 / QUERIES
        return wall_us, results

    def experiment():
        rows = []
        for count in COUNTS:
            brute_us, brute_res = measure(BruteForceCentroidIndex, count)
            graph_us, graph_res = measure(GraphCentroidIndex, count)
            overlap = np.mean(
                [
                    len(
                        set(map(int, g.posting_ids)) & set(map(int, b.posting_ids))
                    )
                    / max(len(b.posting_ids), 1)
                    for g, b in zip(graph_res, brute_res)
                ]
            )
            rows.append((count, brute_us, graph_us, overlap))
        return rows

    rows = run_once(benchmark, experiment)

    print()
    print(
        format_table(
            ["centroids", "brute us/query", "graph us/query", "graph recall@8"],
            rows,
            title="Ablation: centroid index (SPTAG stand-in)",
        )
    )
    # The graph's search cost grows sublinearly while staying accurate.
    by_count = {r[0]: r for r in rows}
    brute_growth = by_count[COUNTS[-1]][1] / by_count[COUNTS[0]][1]
    graph_growth = by_count[COUNTS[-1]][2] / by_count[COUNTS[0]][2]
    assert graph_growth < brute_growth
    assert all(r[3] > 0.8 for r in rows)
