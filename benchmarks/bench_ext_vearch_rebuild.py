"""Extension bench — the §2.3 Vearch story: in-place updates need rebuilds.

The paper's motivating observation: Vearch-style in-place updates (insert
to nearest partition, tombstone deletes, frozen centroids) survive only
because of *weekly global rebuilds* — without them, distribution shift
skews partitions and recall/latency decay. This bench replays that story
on the in-memory baseline: churn shifted data in, measure the decay, run
the global rebuild, measure the restoration — and contrast with SPFresh
absorbing the same stream with no rebuild at all.
"""

import numpy as np

from benchmarks.conftest import DIM, run_once, spfresh_config
from repro.baselines.vearch import VearchLikeIndex
from repro.bench.reporting import format_table
from repro.core.index import SPFreshIndex
from repro.datasets import GroundTruthTracker, make_spacev_like
from repro.metrics import recall_at_k


def test_ext_vearch_rebuild_story(benchmark, scale):
    total = scale.base_vectors
    churn = total // 2
    dataset = make_spacev_like(total, churn, dim=DIM, seed=23, drift=0.9)
    queries = dataset.base[: scale.queries] + 0.01

    def run_system(system, tracker, nprobe=8):
        gt = tracker.ground_truth(queries, 10)
        ids, latencies = [], []
        for q in queries:
            r = system.search(q, 10, nprobe)
            ids.append(r.ids)
            latencies.append(r.latency_us)
        return recall_at_k(ids, gt, 10), float(np.mean(latencies))

    def experiment():
        vearch = VearchLikeIndex.build(dataset.base, num_partitions=64, seed=2)
        spfresh = SPFreshIndex.build(dataset.base, config=spfresh_config())
        tracker = GroundTruthTracker(np.arange(total), dataset.base)
        before = {
            "vearch": run_system(vearch, tracker),
            "spfresh": run_system(spfresh, tracker),
        }
        for i in range(churn):
            vid = total + i
            vearch.insert(vid, dataset.pool[i])
            spfresh.insert(vid, dataset.pool[i])
            tracker.insert(vid, dataset.pool[i])
            vearch.delete(i)
            spfresh.delete(i)
            tracker.delete(i)
        spfresh.drain()
        after_churn = {
            "vearch": run_system(vearch, tracker),
            "spfresh": run_system(spfresh, tracker),
        }
        skew_before_rebuild = float(
            vearch.partition_sizes().max() / max(vearch.partition_sizes().mean(), 1)
        )
        rebuild_seconds = vearch.rebuild()
        after_rebuild = run_system(vearch, tracker)
        skew_after_rebuild = float(
            vearch.partition_sizes().max() / max(vearch.partition_sizes().mean(), 1)
        )
        return (
            before,
            after_churn,
            after_rebuild,
            rebuild_seconds,
            skew_before_rebuild,
            skew_after_rebuild,
        )

    (
        before,
        after_churn,
        after_rebuild,
        rebuild_seconds,
        skew_before,
        skew_after,
    ) = run_once(benchmark, experiment)

    rows = [
        ("Vearch-like (fresh build)", before["vearch"][0], before["vearch"][1]),
        ("Vearch-like (after 50% shifted churn)", after_churn["vearch"][0], after_churn["vearch"][1]),
        ("Vearch-like (after global rebuild)", after_rebuild[0], after_rebuild[1]),
        ("SPFresh (fresh build)", before["spfresh"][0], before["spfresh"][1]),
        ("SPFresh (after same churn, no rebuild)", after_churn["spfresh"][0], after_churn["spfresh"][1]),
    ]
    print()
    print(
        format_table(
            ["state", "recall10@10", "mean latency us"],
            rows,
            title="§2.3 reproduction: why in-place-only systems rebuild weekly",
        )
    )
    print(
        f"vearch partition skew {skew_before:.2f}x -> {skew_after:.2f}x after a "
        f"{rebuild_seconds:.2f}s global rebuild"
    )

    # Shapes: shifted churn inflates the hot partitions, so Vearch's scan
    # cost degrades; the global rebuild restores the latency profile.
    # SPFresh absorbs the same stream with no rebuild and no degradation.
    # (Partition max/mean skew is reported but not asserted: plain k-means
    # over Zipf-weighted data is inherently uneven, before AND after.)
    assert after_churn["vearch"][1] > before["vearch"][1] * 1.05
    assert after_rebuild[1] <= after_churn["vearch"][1] * 1.05
    assert after_rebuild[1] <= before["vearch"][1] * 1.15
    assert after_churn["spfresh"][0] >= before["spfresh"][0] - 0.05
    assert after_churn["spfresh"][1] <= before["spfresh"][1] * 1.5
