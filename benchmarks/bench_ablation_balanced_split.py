"""Ablation (DESIGN.md #4) — balanced vs plain k-means for posting splits.

SPANN/SPFresh use multi-constraint *balanced* clustering so postings stay
even and tail latency bounded. This bench splits skewed postings with both
clusterers and compares the split-size imbalance each produces.
"""

import numpy as np

from benchmarks.conftest import DIM, run_once
from repro.bench.reporting import format_table
from repro.clustering.balanced import split_in_two
from repro.clustering.kmeans import kmeans

TRIALS = 60
POSTING_SIZE = 120


def skewed_posting(rng):
    """A posting whose contents are 85/15 split across two micro-clusters."""
    heavy = rng.normal(size=(int(POSTING_SIZE * 0.85), DIM))
    light = rng.normal(loc=3.0, size=(POSTING_SIZE - len(heavy), DIM))
    return np.vstack([heavy, light]).astype(np.float32)


def imbalance(assignments):
    counts = np.bincount(assignments, minlength=2)
    return counts.max() / max(counts.min(), 1)


def test_ablation_balanced_split(benchmark):
    rng = np.random.default_rng(0)
    postings = [skewed_posting(rng) for _ in range(TRIALS)]

    def experiment():
        balanced, plain = [], []
        for points in postings:
            _, a = split_in_two(points, np.random.default_rng(1), balance_weight=16.0)
            balanced.append(imbalance(a))
            _, b = kmeans(points, 2, np.random.default_rng(1))
            plain.append(imbalance(b))
        return np.array(balanced), np.array(plain)

    balanced, plain = run_once(benchmark, experiment)

    print()
    print(
        format_table(
            ["clusterer", "mean max/min", "p90 max/min", "worst"],
            [
                ("balanced 2-means", balanced.mean(), np.percentile(balanced, 90), balanced.max()),
                ("plain 2-means", plain.mean(), np.percentile(plain, 90), plain.max()),
            ],
            title="Ablation: split balance (lower is better)",
        )
    )
    # Balanced splits must be meaningfully more even on skewed postings.
    assert balanced.mean() < plain.mean()
    assert np.percentile(balanced, 90) < np.percentile(plain, 90)
