"""Figure 7, Workload B — SIFT-like (uniform, stationary) churn.

Paper: on the almost uniformly distributed SIFT dataset, SPANN+ with
background GC achieves nearly the same index quality as SPFresh because
posting distributions barely shift — only DiskANN still lags. The check
here is the *convergence* of SPFresh and SPANN+ on uniform data, the
counterpoint to their divergence on Workload A.
"""

from benchmarks.conftest import DIM, run_once, spfresh_config
from repro.baselines import build_spann_plus
from repro.bench.harness import SPFreshAdapter, run_update_simulation, summarize
from repro.bench.reporting import format_series, format_table
from repro.core.index import SPFreshIndex
from repro.datasets import workload_b


def test_fig7b_sift_uniform(benchmark, scale):
    workload = workload_b(
        n_base=scale.base_vectors,
        days=scale.days,
        daily_rate=scale.daily_rate,
        dim=DIM,
        num_queries=scale.queries,
        seed=3,
    )
    config = spfresh_config()

    def experiment():
        spfresh = SPFreshIndex.build(
            workload.base_vectors, ids=workload.base_ids, config=config
        )
        sp_series = run_update_simulation(SPFreshAdapter(spfresh), workload, k=10)
        spann_plus = build_spann_plus(
            workload.base_vectors, ids=workload.base_ids, config=config
        )
        spp_series = run_update_simulation(
            SPFreshAdapter(spann_plus, name="SPANN+", gc_every=5), workload, k=10
        )
        return sp_series, spp_series

    sp_series, spp_series = run_once(benchmark, experiment)

    print()
    print(format_series(sp_series, every=max(1, scale.days // 6), title="Fig 7B: SPFresh (SIFT-like)"))
    print()
    print(format_series(spp_series, every=max(1, scale.days // 6), title="Fig 7B: SPANN+ (SIFT-like)"))
    sp, spp = summarize(sp_series), summarize(spp_series)
    print()
    print(
        format_table(
            ["system", "mean recall", "mean p99.9 ms"],
            [
                ("SPFresh", sp["mean_recall"], sp["mean_p999_ms"]),
                ("SPANN+", spp["mean_recall"], spp["mean_p999_ms"]),
            ],
            title="Fig 7B summary (uniform data: the two should converge)",
        )
    )
    # Paper's claim: on uniform data SPANN+ ~= SPFresh.
    assert abs(sp["mean_recall"] - spp["mean_recall"]) < 0.05
    assert sp["mean_p999_ms"] <= spp["mean_p999_ms"] * 1.25
