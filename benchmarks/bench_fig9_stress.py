"""Figure 9 — Billion-scale stress test (scaled): uniform and skew datasets.

Paper: at 1B vectors with 1% daily churn, SPFresh saturates device IOPS
with stable P99.9 latency, accuracy above 0.862 (uniform) / 0.807 (skew)
probing the nearest 64 postings, and flat memory/CPU. At reproduction
scale we run the largest local workload (Workload C) on both regimes and
check stability: flat P99.9, flat accuracy above a floor, flat memory.
"""

import numpy as np

from benchmarks.conftest import DIM, run_once, spfresh_config
from repro.bench.harness import SPFreshAdapter, run_update_simulation
from repro.bench.reporting import format_series
from repro.core.index import SPFreshIndex
from repro.datasets import workload_c


def run_stress(workload, nprobe):
    config = spfresh_config()
    index = SPFreshIndex.build(
        workload.base_vectors, ids=workload.base_ids, config=config
    )
    return run_update_simulation(
        SPFreshAdapter(index), workload, k=10, nprobe=nprobe
    )


def test_fig9_stress(benchmark, scale):
    uniform = workload_c(
        n_base=scale.stress_base, days=scale.stress_days, dim=DIM,
        num_queries=scale.queries, seed=9, skewed=False,
    )
    skew = workload_c(
        n_base=scale.stress_base, days=scale.stress_days, dim=DIM,
        num_queries=scale.queries, seed=9, skewed=True,
    )
    # Paper probes the nearest 64 of ~0.1B postings; proportionally our
    # indexes have ~hundreds of postings, so a mid-size nprobe matches.
    nprobe = 16

    def experiment():
        return run_stress(uniform, nprobe), run_stress(skew, nprobe)

    uniform_series, skew_series = run_once(benchmark, experiment)

    print()
    fields = (
        "day", "recall", "search_p999_us", "insert_wall_qps",
        "search_wall_qps", "device_iops", "memory_mb",
    )
    print(format_series(uniform_series, fields=fields, title="Figure 9: uniform"))
    print()
    print(format_series(skew_series, fields=fields, title="Figure 9: skew"))

    for name, series, floor in (
        ("uniform", uniform_series, 0.85),
        ("skew", skew_series, 0.78),
    ):
        recalls = np.array([d.recall for d in series])
        p999 = np.array([d.search_p999_us for d in series])
        memory = np.array([d.memory_mb for d in series])
        assert recalls.min() > floor, f"{name}: recall dipped to {recalls.min():.3f}"
        # Stability: no runaway trends across the run.
        assert p999.max() <= max(p999.mean() * 2.5, p999.mean() + 2000)
        assert memory[-1] <= memory[0] * 1.5 + 1.0
