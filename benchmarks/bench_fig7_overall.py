"""Figure 7 — Overall performance on Workload A (SPACEV-like, shifting).

Paper: over 100 days of 1% daily churn on data whose distribution shifts,
SPFresh keeps P99.9 latency low and flat (~4 ms), accuracy stable/rising,
insert latency ~1.5 ms, memory ~20 GB; SPANN+'s tail latency climbs past
10 ms as postings grow; DiskANN shows 20 ms+ latency spikes during global
merges, decaying accuracy, slower inserts, and 5x memory.

We replay the same protocol at reproduction scale and check the *shape*:
SPFresh flat and best on every panel; SPANN+ tail grows; DiskANN spikes.
Also prints the §5.2.2 micro-stats (rebalance frequency, reassign counts).
"""


from benchmarks.conftest import DIM, run_once, spfresh_config
from repro.baselines import DiskANNConfig, FreshDiskANNIndex, build_spann_plus
from repro.bench.harness import (
    DiskANNAdapter,
    SPFreshAdapter,
    run_update_simulation,
    summarize,
)
from repro.bench.reporting import format_series, format_table
from repro.core.index import SPFreshIndex
from repro.datasets import workload_a


def test_fig7_overall_performance(benchmark, scale):
    workload = workload_a(
        n_base=scale.base_vectors,
        days=scale.days,
        daily_rate=scale.daily_rate,
        dim=DIM,
        num_queries=scale.queries,
        seed=0,
    )
    config = spfresh_config()

    def experiment():
        results = {}
        spfresh = SPFreshIndex.build(
            workload.base_vectors, ids=workload.base_ids, config=config
        )
        build_snap = spfresh.stats.snapshot()
        results["SPFresh"] = run_update_simulation(
            SPFreshAdapter(spfresh), workload, k=10
        )
        results["_build_snap"] = build_snap
        spann_plus = build_spann_plus(
            workload.base_vectors, ids=workload.base_ids, config=config
        )
        results["SPANN+"] = run_update_simulation(
            SPFreshAdapter(spann_plus, name="SPANN+", gc_every=7), workload, k=10
        )
        per_day = max(1, round(scale.base_vectors * scale.daily_rate))
        diskann = FreshDiskANNIndex.build(
            workload.base_vectors,
            ids=workload.base_ids,
            config=DiskANNConfig(
                dim=DIM,
                ssd_blocks=1 << 17,
                merge_threshold=per_day * 3,  # paper: merge every ~3 epochs
            ),
        )
        results["DiskANN"] = run_update_simulation(
            DiskANNAdapter(diskann), workload, k=10
        )
        return results, spfresh

    results, spfresh = run_once(benchmark, experiment)
    build_snap = results.pop("_build_snap")

    print()
    from repro.analysis import comparison_report
    from repro.bench.figgen import day_series_chart

    print(comparison_report(results))
    print()
    print(day_series_chart(results, "search_p999_us", title="Figure 7: P99.9 latency (us)"))
    print()
    print(day_series_chart(results, "recall", title="Figure 7: recall"))
    print()
    for name, series in results.items():
        print(format_series(series, every=max(1, scale.days // 8), title=f"Figure 7: {name}"))
        print()
    summary_rows = [
        (
            name,
            s["mean_recall"],
            s["final_recall"],
            s["mean_p999_ms"],
            s["max_p999_ms"],
            s["mean_insert_us"],
            s["peak_memory_mb"],
        )
        for name, s in ((n, summarize(r)) for n, r in results.items())
    ]
    print(
        format_table(
            [
                "system",
                "mean recall",
                "final recall",
                "mean p99.9 ms",
                "max p99.9 ms",
                "insert us",
                "peak mem MB",
            ],
            summary_rows,
            title="Figure 7 summary",
        )
    )

    # §5.2.2 micro-stats for SPFresh: deltas over the update phase only
    # (the build-normalization splits are construction work, not updates).
    snap = spfresh.stats.snapshot().delta(build_snap)
    total_inserts = max(snap.inserts, 1)
    histogram = spfresh.replica_histogram()
    total_vec = sum(histogram.values())
    multi = sum(c for r, c in histogram.items() if r > 1)
    mean_replicas = (
        sum(r * c for r, c in histogram.items()) / total_vec if total_vec else 0
    )
    print(
        format_table(
            ["stat", "paper", "measured"],
            [
                ("% inserts causing rebalance", "0.4%", f"{100 * snap.splits / total_inserts:.2f}%"),
                ("max split cascade depth", "3", snap.split_cascade_max_depth),
                ("merge/update frequency", "0.1%", f"{100 * snap.merges / max(snap.inserts + snap.deletes, 1):.2f}%"),
                ("reassigns evaluated : executed", "5094 : 79", f"{snap.reassign_evaluated} : {snap.reassign_executed}"),
                ("% vectors with >1 replica", "86%", f"{100 * multi / max(total_vec, 1):.0f}%"),
                ("mean replicas per vector", "5.47", f"{mean_replicas:.2f}"),
            ],
            title="§5.2.2 micro-stats",
        )
    )

    sp = summarize(results["SPFresh"])
    spp = summarize(results["SPANN+"])
    da = summarize(results["DiskANN"])
    # Shape assertions (who wins):
    assert sp["mean_recall"] >= da["mean_recall"]  # SPFresh beats DiskANN accuracy
    assert sp["max_p999_ms"] <= da["max_p999_ms"]  # no global-merge spikes
    assert sp["mean_insert_us"] < da["mean_insert_us"]  # cheap cluster inserts
    assert sp["peak_memory_mb"] <= da["peak_memory_mb"]  # no merge memory spike
    # SPANN+ postings grow unboundedly; SPFresh tail must not exceed it.
    assert sp["mean_p999_ms"] <= spp["mean_p999_ms"] * 1.05
