"""Shared quantizer interface + the fused ADC lookup-table kernel.

Both quantizers (:class:`~repro.quantize.pq.ProductQuantizer`,
:class:`~repro.quantize.sq.ScalarQuantizer`) expose the same contract so
the codec, searcher, and snapshot layers never branch on the kind:

* ``fit(vectors, rng)`` — learn the codebooks / ranges at build time;
* ``encode(vectors) -> (n, code_bytes) uint8`` — compact posting codes;
* ``decode(codes) -> (n, dim) float32`` — approximate reconstruction;
* ``distance_tables(queries) -> (nq, m, table_size) float32`` — per-query
  asymmetric-distance lookup tables;
* ``scan(queries, codes) -> (nq, n) float32`` — approximate squared-L2,
  implemented as one fused gather over the flattened tables;
* ``state_dict()`` / ``load_state_dict()`` — snapshot persistence.

Encoding is deterministic (a pure function of the fitted state), which is
the property the LIRE lifecycle leans on: splits, merges, flushes, and
GC rewrites may drop or recompute the code column freely and always land
on byte-identical codes — the invariant auditor's coherence check
(:mod:`repro.core.invariants`) verifies exactly that.
"""

from __future__ import annotations

import abc

import numpy as np


def adc_scan(
    tables: np.ndarray, codes: np.ndarray, query_rows=None
) -> np.ndarray:
    """Fused ADC: ``(nq, m, K)`` tables x ``(n, m)`` codes → ``(nq, n)``.

    The per-query tables are flattened to ``(nq, m*K)`` and the codes
    become flat offsets ``code + subspace*K``, so one advanced-index
    gather produces the ``(nq, n, m)`` contribution cube and a single
    float32 reduction over the subspace axis yields every approximate
    distance — no per-query or per-posting Python loop.

    ``query_rows`` selects a subset of table rows without materializing
    ``tables[query_rows]`` first (the batched searcher scans each posting
    against only the queries probing it; slicing the tables per posting
    would copy ``m*K`` floats per query per posting). The result then has
    ``len(query_rows)`` rows, ordered like ``query_rows``.
    """
    codes = np.asarray(codes, dtype=np.uint8)
    if codes.ndim == 1:
        codes = codes.reshape(1, -1)
    nq, m, k = tables.shape
    if codes.shape[1] != m:
        raise ValueError(
            f"codes have {codes.shape[1]} subspaces, tables have {m}"
        )
    rows = (
        None if query_rows is None else np.asarray(query_rows, dtype=np.intp)
    )
    if len(codes) == 0:
        out_rows = nq if rows is None else len(rows)
        return np.zeros((out_rows, 0), dtype=np.float32)
    flat = np.ascontiguousarray(tables).reshape(nq, m * k)
    offsets = codes.astype(np.intp) + np.arange(m, dtype=np.intp) * k
    if rows is None:
        return flat[:, offsets].sum(axis=2, dtype=np.float32)
    # Copy the few selected table rows first, then gather against the
    # small contiguous copy — for the per-posting shapes the batched
    # scan produces (~10 queries x ~50 codes) this keeps the working
    # set in cache and beats both a flat 1-D take over a fused index
    # cube and advanced indexing on the full table. Values and subspace
    # sum order match the dense branch, so distances stay bit-identical
    # either way.
    return flat[rows][:, offsets].sum(axis=2, dtype=np.float32)


def adc_scan_brute(tables: np.ndarray, codes: np.ndarray) -> np.ndarray:
    """Reference ADC: per-query table lookups, one row at a time.

    Semantically identical to :func:`adc_scan`; kept as the oracle the
    hypothesis parity suite pins the fused kernel against.
    """
    codes = np.asarray(codes, dtype=np.uint8)
    if codes.ndim == 1:
        codes = codes.reshape(1, -1)
    nq = len(tables)
    cols = np.arange(codes.shape[1])
    out = np.zeros((nq, len(codes)), dtype=np.float32)
    for q in range(nq):
        out[q] = tables[q][cols, codes].sum(axis=1, dtype=np.float32)
    return out


class VectorQuantizer(abc.ABC):
    """Abstract base for posting-code quantizers."""

    kind: str = "abstract"
    dim: int
    code_bytes: int

    @property
    @abc.abstractmethod
    def is_fitted(self) -> bool: ...

    @abc.abstractmethod
    def fit(
        self, vectors: np.ndarray, rng: np.random.Generator | None = None
    ) -> "VectorQuantizer": ...

    @abc.abstractmethod
    def encode(self, vectors: np.ndarray) -> np.ndarray: ...

    @abc.abstractmethod
    def decode(self, codes: np.ndarray) -> np.ndarray: ...

    @abc.abstractmethod
    def distance_tables(self, queries: np.ndarray) -> np.ndarray: ...

    @abc.abstractmethod
    def state_dict(self) -> dict: ...

    @abc.abstractmethod
    def load_state_dict(self, state: dict) -> None: ...

    def scan(self, queries: np.ndarray, codes: np.ndarray) -> np.ndarray:
        """Approximate squared L2 from each query to each coded vector."""
        queries = np.ascontiguousarray(queries, dtype=np.float32)
        if queries.ndim == 1:
            queries = queries.reshape(1, -1)
        return adc_scan(self.distance_tables(queries), codes)

    def distance_table(self, query: np.ndarray) -> np.ndarray:
        """Single-query ``(m, table_size)`` table (legacy DiskANN shape)."""
        query = np.ascontiguousarray(query, dtype=np.float32).reshape(1, -1)
        return self.distance_tables(query)[0]

    def memory_bytes(self, num_vectors: int) -> int:
        """DRAM model: codes for every vector plus the fitted state."""
        return num_vectors * self.code_bytes + self.state_bytes()

    def state_bytes(self) -> int:
        """Bytes of fitted state (codebooks / ranges)."""
        return 0


def make_quantizer(
    kind: str,
    dim: int,
    *,
    subspaces: int = 8,
    codebook_size: int = 256,
) -> VectorQuantizer:
    """Factory keyed by ``SPFreshConfig.quantize.kind``."""
    from repro.quantize.pq import ProductQuantizer
    from repro.quantize.sq import ScalarQuantizer

    if kind == "pq":
        return ProductQuantizer(
            dim, num_subspaces=subspaces, codebook_size=codebook_size
        )
    if kind == "sq8":
        return ScalarQuantizer(dim)
    raise ValueError(f"unknown quantizer kind {kind!r} (choose 'pq' or 'sq8')")


def quantizer_from_state(state: dict) -> VectorQuantizer:
    """Rebuild a fitted quantizer from its ``state_dict`` (snapshot restore)."""
    from repro.quantize.pq import ProductQuantizer
    from repro.quantize.sq import ScalarQuantizer

    kind = state.get("kind")
    if kind == "pq":
        quantizer: VectorQuantizer = ProductQuantizer(
            int(state["dim"]),
            num_subspaces=int(state["num_subspaces"]),
            codebook_size=int(state["codebook_size"]),
        )
    elif kind == "sq8":
        quantizer = ScalarQuantizer(int(state["dim"]))
    else:
        raise ValueError(f"unknown quantizer state kind {kind!r}")
    quantizer.load_state_dict(state)
    return quantizer
