"""Vector quantization for compact posting scans (PQ + scalar SQ).

See docs/quantization.md for the layout, the fused ADC kernel, and the
scan-compressed / rerank-exact discipline the searcher follows.
"""

from repro.quantize.base import (
    VectorQuantizer,
    adc_scan,
    adc_scan_brute,
    make_quantizer,
    quantizer_from_state,
)
from repro.quantize.pq import ProductQuantizer
from repro.quantize.sq import ScalarQuantizer

__all__ = [
    "VectorQuantizer",
    "ProductQuantizer",
    "ScalarQuantizer",
    "adc_scan",
    "adc_scan_brute",
    "make_quantizer",
    "quantizer_from_state",
]
