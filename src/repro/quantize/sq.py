"""Per-dimension affine scalar quantization (int8-style, stored as uint8).

The cheap alternative to PQ: each dimension d gets an affine range
``[lo[d], hi[d]]`` learned from the training sample, and a vector is
stored as one uint8 per dimension — ``code = round((v - lo) / scale)``
with ``scale = (hi - lo) / 255``. The reconstruction error per dimension
is bounded by ``scale / 2`` for in-range inputs (out-of-range values
clamp to the range edge), which the hypothesis round-trip suite pins.

ADC works through the exact same fused kernel as PQ by treating every
dimension as a one-dimensional subspace with a 256-entry "codebook" of
reconstruction levels: ``table[q, d, c] = (query[q, d] - (lo[d] +
c * scale[d]))**2``. That keeps the searcher quantizer-agnostic.
"""

from __future__ import annotations

import numpy as np

from repro.quantize.base import VectorQuantizer

_LEVELS = 256


class ScalarQuantizer(VectorQuantizer):
    """Uint8 affine scalar quantizer with per-dimension ranges."""

    kind = "sq8"

    def __init__(self, dim: int) -> None:
        if dim <= 0:
            raise ValueError("dim must be positive")
        self.dim = dim
        self.code_bytes = dim
        self.lo: np.ndarray | None = None  # (dim,) float32
        self.scale: np.ndarray | None = None  # (dim,) float32, always > 0

    @property
    def is_fitted(self) -> bool:
        return self.lo is not None

    def fit(
        self, vectors: np.ndarray, rng: np.random.Generator | None = None
    ) -> "ScalarQuantizer":
        """Learn per-dimension [lo, hi] ranges from the training data."""
        vectors = np.ascontiguousarray(vectors, dtype=np.float32)
        if vectors.ndim == 1:
            vectors = vectors.reshape(1, -1)
        if vectors.shape[1] != self.dim:
            raise ValueError(f"vectors have dim {vectors.shape[1]}, expected {self.dim}")
        if len(vectors) == 0:
            raise ValueError("cannot fit ScalarQuantizer on an empty training set")
        lo = vectors.min(axis=0).astype(np.float32)
        hi = vectors.max(axis=0).astype(np.float32)
        span = (hi - lo).astype(np.float64)
        # Degenerate (constant) dimensions get scale 1 so encode/decode
        # stay well-defined: every value maps to code 0 → exact round-trip.
        scale = np.where(span > 0.0, span / (_LEVELS - 1), 1.0)
        self.lo = lo
        self.scale = scale.astype(np.float32)
        return self

    def _require_fitted(self) -> None:
        if not self.is_fitted:
            raise RuntimeError("ScalarQuantizer.fit must be called first")

    def encode(self, vectors: np.ndarray) -> np.ndarray:
        """Quantize vectors to (n, dim) uint8 codes."""
        self._require_fitted()
        vectors = np.ascontiguousarray(vectors, dtype=np.float32)
        if vectors.ndim == 1:
            vectors = vectors.reshape(1, -1)
        steps = (vectors - self.lo) / self.scale
        return np.clip(np.rint(steps), 0, _LEVELS - 1).astype(np.uint8)

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Reconstruct approximate vectors from codes."""
        self._require_fitted()
        codes = np.asarray(codes, dtype=np.uint8)
        if codes.ndim == 1:
            codes = codes.reshape(1, -1)
        return (codes.astype(np.float32) * self.scale + self.lo).astype(
            np.float32, copy=False
        )

    def distance_tables(self, queries: np.ndarray) -> np.ndarray:
        """Per-query ADC tables: ``(nq, dim, 256)`` squared residuals."""
        self._require_fitted()
        queries = np.ascontiguousarray(queries, dtype=np.float32)
        if queries.ndim == 1:
            queries = queries.reshape(1, -1)
        levels = (
            np.arange(_LEVELS, dtype=np.float32)[None, :] * self.scale[:, None]
            + self.lo[:, None]
        )  # (dim, 256) reconstruction levels
        diff = queries[:, :, None] - levels[None, :, :]
        return np.square(diff, out=diff)

    def state_dict(self) -> dict:
        state: dict = {"kind": self.kind, "dim": self.dim}
        if self.lo is not None:
            state["lo"] = np.array(self.lo, copy=True)
            state["scale"] = np.array(self.scale, copy=True)
        return state

    def load_state_dict(self, state: dict) -> None:
        if int(state["dim"]) != self.dim:
            raise ValueError("SQ state dim does not match this quantizer")
        lo = state.get("lo")
        scale = state.get("scale")
        if (lo is None) != (scale is None):
            raise ValueError("SQ state must carry both lo and scale or neither")
        if lo is not None:
            lo = np.ascontiguousarray(lo, dtype=np.float32)
            scale = np.ascontiguousarray(scale, dtype=np.float32)
            if lo.shape != (self.dim,) or scale.shape != (self.dim,):
                raise ValueError("SQ state arrays have the wrong shape")
        self.lo = lo
        self.scale = scale

    def state_bytes(self) -> int:
        return 2 * self.dim * 4
