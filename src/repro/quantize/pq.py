"""Product quantization (Jégou et al.), generalized for the main engine.

Lifted from the DiskANN baseline (``repro/baselines/diskann/pq.py``, now a
re-export of this class) and extended with the :class:`VectorQuantizer`
contract: batched distance tables, the fused :func:`adc_scan` kernel, and
snapshot-ready ``state_dict``. The classic layout is unchanged — the
vector is cut into ``num_subspaces`` chunks, each chunk quantized against
a ≤256-entry codebook learned with k-means, one uint8 code per chunk.
"""

from __future__ import annotations

import numpy as np

from repro.clustering.kmeans import kmeans
from repro.quantize.base import VectorQuantizer
from repro.util.distance import pairwise_sq_l2


class ProductQuantizer(VectorQuantizer):
    """Classic PQ with asymmetric distance computation (ADC)."""

    kind = "pq"

    def __init__(self, dim: int, num_subspaces: int = 4, codebook_size: int = 256) -> None:
        if dim % num_subspaces != 0:
            raise ValueError(
                f"dim {dim} must be divisible by num_subspaces {num_subspaces}"
            )
        if not 2 <= codebook_size <= 256:
            raise ValueError("codebook_size must fit in one byte (2..256)")
        self.dim = dim
        self.num_subspaces = num_subspaces
        self.sub_dim = dim // num_subspaces
        self.codebook_size = codebook_size
        self.code_bytes = num_subspaces
        self.codebooks: np.ndarray | None = None  # (m, codebook_size, sub_dim)

    @property
    def is_fitted(self) -> bool:
        return self.codebooks is not None

    def fit(
        self,
        vectors: np.ndarray,
        rng: np.random.Generator | None = None,
        max_iters: int = 8,
        sample_size: int = 4096,
    ) -> "ProductQuantizer":
        """Learn one k-means codebook per subspace from a training sample."""
        vectors = np.ascontiguousarray(vectors, dtype=np.float32)
        rng = rng or np.random.default_rng(0)
        if len(vectors) > sample_size:
            sample = vectors[rng.choice(len(vectors), sample_size, replace=False)]
        else:
            sample = vectors
        books = np.zeros(
            (self.num_subspaces, self.codebook_size, self.sub_dim), dtype=np.float32
        )
        for m in range(self.num_subspaces):
            chunk = sample[:, m * self.sub_dim : (m + 1) * self.sub_dim]
            k = min(self.codebook_size, len(chunk))
            centroids, _ = kmeans(chunk, k, rng, max_iters=max_iters)
            books[m, : len(centroids)] = centroids
            if len(centroids) < self.codebook_size:
                # Pad unused codewords far away so they are never selected.
                books[m, len(centroids) :] = centroids[0] + 1e6
        self.codebooks = books
        return self

    def encode(self, vectors: np.ndarray) -> np.ndarray:
        """Quantize vectors to (n, num_subspaces) uint8 codes."""
        if not self.is_fitted:
            raise RuntimeError("ProductQuantizer.fit must be called first")
        vectors = np.ascontiguousarray(vectors, dtype=np.float32)
        if vectors.ndim == 1:
            vectors = vectors.reshape(1, -1)
        codes = np.zeros((len(vectors), self.num_subspaces), dtype=np.uint8)
        for m in range(self.num_subspaces):
            chunk = vectors[:, m * self.sub_dim : (m + 1) * self.sub_dim]
            dists = pairwise_sq_l2(chunk, self.codebooks[m])
            codes[:, m] = dists.argmin(axis=1).astype(np.uint8)
        return codes

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Reconstruct approximate vectors from codes."""
        if not self.is_fitted:
            raise RuntimeError("ProductQuantizer.fit must be called first")
        codes = np.asarray(codes, dtype=np.uint8)
        if codes.ndim == 1:
            codes = codes.reshape(1, -1)
        out = np.zeros((len(codes), self.dim), dtype=np.float32)
        for m in range(self.num_subspaces):
            out[:, m * self.sub_dim : (m + 1) * self.sub_dim] = self.codebooks[m][
                codes[:, m]
            ]
        return out

    def distance_tables(self, queries: np.ndarray) -> np.ndarray:
        """Per-query ADC tables: ``(nq, num_subspaces, codebook_size)``."""
        if not self.is_fitted:
            raise RuntimeError("ProductQuantizer.fit must be called first")
        queries = np.ascontiguousarray(queries, dtype=np.float32)
        if queries.ndim == 1:
            queries = queries.reshape(1, -1)
        tables = np.zeros(
            (len(queries), self.num_subspaces, self.codebook_size), dtype=np.float32
        )
        for m in range(self.num_subspaces):
            chunk = queries[:, m * self.sub_dim : (m + 1) * self.sub_dim]
            tables[:, m, :] = pairwise_sq_l2(chunk, self.codebooks[m])
        return tables

    @staticmethod
    def adc_distances(table: np.ndarray, codes: np.ndarray) -> np.ndarray:
        """Approximate squared distances via table lookups (vectorized)."""
        codes = np.asarray(codes, dtype=np.uint8)
        if codes.ndim == 1:
            codes = codes.reshape(1, -1)
        cols = np.arange(codes.shape[1])
        return table[cols, codes].sum(axis=1)

    def state_dict(self) -> dict:
        state = {
            "kind": self.kind,
            "dim": self.dim,
            "num_subspaces": self.num_subspaces,
            "codebook_size": self.codebook_size,
        }
        if self.codebooks is not None:
            state["codebooks"] = np.array(self.codebooks, copy=True)
        return state

    def load_state_dict(self, state: dict) -> None:
        if (
            int(state["dim"]) != self.dim
            or int(state["num_subspaces"]) != self.num_subspaces
            or int(state["codebook_size"]) != self.codebook_size
        ):
            raise ValueError("PQ state geometry does not match this quantizer")
        books = state.get("codebooks")
        if books is not None:
            books = np.ascontiguousarray(books, dtype=np.float32)
            expected = (self.num_subspaces, self.codebook_size, self.sub_dim)
            if books.shape != expected:
                raise ValueError(
                    f"PQ codebooks shape {books.shape} != expected {expected}"
                )
        self.codebooks = books

    def state_bytes(self) -> int:
        return self.num_subspaces * self.codebook_size * self.sub_dim * 4

    def memory_bytes(self, num_vectors: int) -> int:
        """DRAM model: codes for every vector plus the codebooks."""
        return num_vectors * self.num_subspaces + self.state_bytes()
