"""Command-line driver: run reproduction experiments without pytest.

Usage::

    python -m repro --help                   # every subcommand, one parser
    python -m repro overview                 # build + quick stats
    python -m repro simulate --days 10       # Figure-7-style day series
    python -m repro compare --days 7         # SPFresh vs SPANN+ vs DiskANN
    python -m repro sweep-nprobe             # recall/latency trade-off
    python -m repro cluster --storm 500      # centroid-routed sharding
    python -m repro profile --scale quick    # wall-clock stage profile
    python -m repro serve-bench --report f   # open-loop serving bench
    python -m repro perf --quick             # BENCH_*.json perf harness

All subcommands hang off one argparse tree. ``--seed`` is shared by every
subcommand; the benchmark-shaped ones (``perf``, ``profile``,
``serve-bench``) additionally share ``--scale`` (the
``repro.bench.scales.PERF_SCALES`` presets) and ``--report`` (write the
subcommand's tables/summary to a file as well as stdout).

Every subcommand prints the same ASCII tables the benches emit, so the
CLI is the interactive way to poke at the system; `benchmarks/` remains
the reproducible record.
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.api import QueryRequest
from repro.bench.scales import PERF_SCALES
from repro.core.config import SPFreshConfig
from repro.core.index import SPFreshIndex


def _add_common(parser: argparse.ArgumentParser, *, scale_defaults: bool = False) -> None:
    """Dataset-shape flags. With ``scale_defaults`` the sizes default to
    ``None`` and are filled from the subcommand's ``--scale`` preset."""
    base, dim, queries = (None, None, None) if scale_defaults else (4000, 32, 50)
    parser.add_argument("--base", type=int, default=base, help="base vectors")
    parser.add_argument("--dim", type=int, default=dim, help="dimensionality")
    parser.add_argument("--queries", type=int, default=queries, help="query count")
    parser.add_argument(
        "--skewed", action="store_true", help="SPACEV-like skew + drift"
    )


def _resolve_scale(args) -> None:
    """Fill dataset-shape flags left at ``None`` from the --scale preset."""
    scale = PERF_SCALES[args.scale]
    if args.base is None:
        args.base = scale.base_vectors
    if args.dim is None:
        args.dim = scale.dim
    if args.queries is None:
        args.queries = min(scale.queries, 400)


def _dataset(args, pool: int = 0):
    from repro.datasets import make_sift_like, make_spacev_like

    maker = make_spacev_like if args.skewed else make_sift_like
    return maker(args.base, pool, dim=args.dim, seed=args.seed)


def cmd_overview(args) -> int:
    """Build an index over synthetic data and print its shape/stats."""
    dataset = _dataset(args)
    index = SPFreshIndex.build(
        dataset.base, config=SPFreshConfig(dim=args.dim, seed=args.seed)
    )
    sizes = index.posting_sizes()
    print(f"vectors:   {index.live_vector_count}")
    print(f"postings:  {index.num_postings} "
          f"(sizes min/mean/max {sizes.min()}/{sizes.mean():.0f}/{sizes.max()})")
    print(f"DRAM:      {index.memory_bytes() / 1024:.1f} KiB")
    result = index.query(
        QueryRequest.single(dataset.base[0] + 0.01, k=10)
    ).result
    print(f"probe:     {result.latency_us:.0f} us simulated "
          f"({result.postings_probed} postings, "
          f"{result.entries_scanned} entries)")
    histogram = index.replica_histogram()
    total = sum(histogram.values())
    mean_r = sum(k * v for k, v in histogram.items()) / total
    print(f"replicas:  mean {mean_r:.2f}, "
          f"{sum(v for k, v in histogram.items() if k > 1) / total:.0%} "
          f"of vectors have >1 copy")
    return 0


def cmd_simulate(args) -> int:
    """Run a Figure-7-style multi-day churn simulation on SPFresh."""
    from repro.bench.harness import SPFreshAdapter, run_update_simulation, summarize
    from repro.bench.reporting import format_series
    from repro.datasets import workload_a, workload_b

    maker = workload_a if args.skewed else workload_b
    workload = maker(
        n_base=args.base,
        days=args.days,
        daily_rate=args.rate,
        dim=args.dim,
        num_queries=args.queries,
        seed=args.seed,
    )
    index = SPFreshIndex.build(
        workload.base_vectors,
        ids=workload.base_ids,
        config=SPFreshConfig(dim=args.dim, seed=args.seed),
    )
    series = run_update_simulation(
        SPFreshAdapter(index), workload, k=10, progress=True
    )
    print()
    print(format_series(series, every=max(1, args.days // 10)))
    stats = summarize(series)
    print(f"\nmean recall {stats['mean_recall']:.3f}  "
          f"mean P99.9 {stats['mean_p999_ms']:.2f} ms  "
          f"peak DRAM {stats['peak_memory_mb']:.2f} MB")
    return 0


def cmd_compare(args) -> int:
    """Run SPFresh vs SPANN+ (and optionally DiskANN) on one workload."""
    from repro.baselines import (
        DiskANNConfig,
        FreshDiskANNIndex,
        build_spann_plus,
    )
    from repro.bench.harness import (
        DiskANNAdapter,
        SPFreshAdapter,
        run_update_simulation,
        summarize,
    )
    from repro.bench.reporting import format_table
    from repro.datasets import workload_a, workload_b

    maker = workload_a if args.skewed else workload_b
    workload = maker(
        n_base=args.base,
        days=args.days,
        daily_rate=args.rate,
        dim=args.dim,
        num_queries=args.queries,
        seed=args.seed,
    )
    config = SPFreshConfig(dim=args.dim, seed=args.seed)
    adapters = [
        SPFreshAdapter(
            SPFreshIndex.build(
                workload.base_vectors, ids=workload.base_ids, config=config
            )
        ),
        SPFreshAdapter(
            build_spann_plus(
                workload.base_vectors, ids=workload.base_ids, config=config
            ),
            name="SPANN+",
            gc_every=5,
        ),
    ]
    if not args.skip_diskann:
        adapters.append(
            DiskANNAdapter(
                FreshDiskANNIndex.build(
                    workload.base_vectors,
                    ids=workload.base_ids,
                    config=DiskANNConfig(
                        dim=args.dim,
                        merge_threshold=max(
                            60, int(args.base * args.rate * 3)
                        ),
                    ),
                )
            )
        )
    rows = []
    for adapter in adapters:
        print(f"running {adapter.name}...")
        stats = summarize(run_update_simulation(adapter, workload, k=10))
        rows.append(
            (
                adapter.name,
                stats["mean_recall"],
                stats["mean_p999_ms"],
                stats["max_p999_ms"],
                stats["mean_insert_us"],
                stats["peak_memory_mb"],
            )
        )
    print()
    print(
        format_table(
            ["system", "recall", "p99.9 ms", "max p99.9", "insert us", "mem MB"],
            rows,
            title=f"{args.days} days of {args.rate:.0%} daily churn",
        )
    )
    return 0


def cmd_perf(args) -> int:
    """Run the deterministic perf-regression harness (BENCH_*.json)."""
    from repro.bench.perf import run_cli as perf_run

    if args.report and not args.summary:
        args.summary = args.report
    return perf_run(args, args._parser)


def cmd_profile(args) -> int:
    """Build an index, drive a mixed workload, print the wall-clock profile.

    Exercises the whole engine — batched + single search, inserts, deletes
    and the rebuild jobs they trigger — with the profiler enabled, then
    renders the per-stage table (``--json`` for machine-readable output).
    """
    import json

    _resolve_scale(args)
    dataset = _dataset(args)
    rng = np.random.default_rng(args.seed)
    index = SPFreshIndex.build(
        dataset.base,
        config=SPFreshConfig(dim=args.dim, seed=args.seed, enable_profiling=True),
    )
    queries = (
        dataset.base[rng.integers(0, args.base, size=args.queries)]
        + rng.normal(scale=0.05, size=(args.queries, args.dim)).astype(np.float32)
    ).astype(np.float32)
    for start in range(0, len(queries), 32):
        index.query(QueryRequest(vectors=queries[start : start + 32], k=10))
    for query in queries:
        index.query(QueryRequest.single(query, k=10))
    churn = max(1, args.base // 20)
    new_vectors = dataset.base[rng.integers(0, args.base, size=churn)] + 0.01
    for i, vector in enumerate(new_vectors):
        index.insert(args.base + i, vector)
    for vid in rng.choice(args.base, size=churn // 2, replace=False):
        index.delete(int(vid))
    index.drain()
    if args.json:
        output = json.dumps(index.profile_snapshot(), indent=2)
    else:
        output = index.profile_report(title="wall-clock profile (mixed workload)")
    print(output)
    if args.report:
        with open(args.report, "w") as fh:
            fh.write(output + "\n")
        print(f"\nwrote {args.report}")
    return 0


def cmd_serve_bench(args) -> int:
    """Drive the open-loop serving front-end and print/report its metrics.

    Builds the requested engine backend (``--backend single`` is a bare
    searcher, ``sharded``/``cluster`` the distributed facades), generates
    a seeded arrival trace (pattern, rate, hot-key skew, tenants all
    flags), then serves it twice: through the dynamic batcher at
    ``--workers``/``--fairness`` and — unless ``--no-baseline`` —
    unbatched (``max_batch=1``), printing the side-by-side table the CI
    lane uploads as ``SERVING.md``. With ``--workers > 1`` a
    goodput-vs-workers table sweeps the pool size from 1 to the flag.
    """
    from repro.bench.reporting import format_markdown_table
    from repro.datasets import make_arrival_trace
    from repro.serving import ServingFrontend

    _resolve_scale(args)
    dataset = _dataset(args)
    config = SPFreshConfig(
        dim=args.dim,
        seed=args.seed,
        serve_max_batch=args.max_batch,
        serve_max_wait_us=args.max_wait_us,
        serve_slo_us=args.slo_us,
        serve_queue_capacity=args.queue_capacity,
        serve_num_workers=args.workers,
        serve_fairness=args.fairness,
        serve_tenant_quota_fraction=args.tenant_quota,
    ).validate()
    engine, closer = _serve_engine(args, dataset, config)
    try:
        rng = np.random.default_rng(args.seed + 1)
        pool = (
            dataset.base[rng.integers(0, args.base, size=max(args.queries, 1))]
            + rng.normal(scale=0.05, size=(max(args.queries, 1), args.dim))
        ).astype(np.float32)
        trace = make_arrival_trace(
            pool,
            n_requests=args.requests,
            mean_rate_qps=args.rate_qps,
            pattern=args.pattern,
            hot_key_skew=args.hot_key_skew,
            tenant_weights=args.tenants if args.tenants > 1 else None,
            seed=args.seed + 5,
        )
        runs = [
            (
                "batched",
                ServingFrontend.from_config(engine, config, k=10),
            )
        ]
        if not args.no_baseline:
            runs.append(
                (
                    "unbatched",
                    ServingFrontend.from_config(
                        engine, config, k=10, max_batch=1, max_wait_us=0.0
                    ),
                )
            )
        headline = (
            "goodput_qps",
            "answered_qps",
            "e2e_latency_us_p50",
            "e2e_latency_us_p99",
            "e2e_latency_us_p99.9",
            "slo_violation_rate",
            "shed_rate",
            "batch_size_mean",
            "queue_wait_us_mean",
            "assembly_wait_us_mean",
            "engine_us_mean",
        )
        rows = []
        tenant_rows = []
        for label, frontend in runs:
            report = frontend.run(trace)
            metrics = report.metrics()
            rows.append(
                [label, str(frontend.num_workers), frontend.fairness]
                + [f"{metrics[k]:.3f}" for k in headline]
            )
            for tenant, tm in report.per_tenant_metrics().items():
                tenant_rows.append(
                    (
                        label,
                        tenant,
                        int(tm["offered"]),
                        f"{tm['shed_rate']:.3f}",
                        f"{tm['e2e_latency_us_p99']:.0f}",
                    )
                )
        table = format_markdown_table(
            ["mode", "workers", "fairness", *headline],
            rows,
            title=(
                f"serving: {trace.name} — {len(trace)} requests, "
                f"{trace.offered_qps:.0f} offered qps, SLO "
                f"{config.serve_slo_us:g} us, backend {args.backend}"
            ),
        )
        tenant_table = format_markdown_table(
            ["mode", "tenant", "offered", "shed_rate", "e2e_p99_us"],
            tenant_rows,
            title="per-tenant breakdown",
        )
        output = table + "\n\n" + tenant_table
        if args.workers > 1:
            sweep_rows = []
            base_goodput = None
            for workers in _worker_sweep(args.workers):
                sweep = ServingFrontend.from_config(
                    engine, config, k=10, num_workers=workers
                ).run(trace)
                sm = sweep.metrics()
                if base_goodput is None:
                    base_goodput = sm["goodput_qps"] or 1.0
                sweep_rows.append(
                    (
                        workers,
                        f"{sm['goodput_qps']:.1f}",
                        f"{sm['goodput_qps'] / base_goodput:.2f}x",
                        f"{sm['shed_rate']:.3f}",
                        f"{sm['e2e_latency_us_p99']:.0f}",
                    )
                )
            output += "\n\n" + format_markdown_table(
                ["workers", "goodput_qps", "speedup", "shed_rate", "e2e_p99_us"],
                sweep_rows,
                title="goodput vs workers (simulated K-worker pool)",
            )
        print(output)
        if args.report:
            with open(args.report, "w") as fh:
                fh.write(output + "\n")
            print(f"\nwrote {args.report}")
    finally:
        closer()
    return 0


def _worker_sweep(max_workers: int) -> list[int]:
    """1, 2, 4, ... doubling up to (and always including) ``max_workers``."""
    ks = [1]
    while ks[-1] * 2 < max_workers:
        ks.append(ks[-1] * 2)
    ks.append(max_workers)
    return ks


def _serve_engine(args, dataset, config):
    """Build the serve-bench engine for ``--backend``; returns (engine, close)."""
    if args.backend == "single":
        index = SPFreshIndex.build(dataset.base, config=config)
        return index.searcher, lambda: None
    if args.backend == "sharded":
        from repro.distributed import ShardedSPFresh

        sharded = ShardedSPFresh.build(
            dataset.base, num_shards=args.shards, config=config
        )
        return sharded, sharded.close
    from repro.distributed import ClusterSPFresh

    cluster = ClusterSPFresh.build(
        dataset.base, num_shards=args.shards, config=config
    )
    return cluster, cluster.close


def cmd_cluster(args) -> int:
    """Build a centroid-routed cluster and print routing/split/replica stats.

    Compares routed search (``cluster_nprobe`` shards probed) against the
    broadcast oracle on the same queries, optionally drives a hot-region
    insert storm through the shard-split path, and audits the cross-shard
    conservation invariants (docs/distributed.md).
    """
    from repro.bench.reporting import format_table
    from repro.datasets import exact_knn
    from repro.distributed import ClusterSPFresh
    from repro.metrics import recall_at_k

    _resolve_scale(args)
    dataset = _dataset(args)
    config = SPFreshConfig(
        dim=args.dim,
        seed=args.seed,
        cluster_nprobe=args.cluster_nprobe,
        cluster_replication_factor=args.replicas,
        cluster_split_threshold=args.split_threshold,
        cluster_executor=args.executor,
    ).validate()
    rng = np.random.default_rng(args.seed + 1)
    queries = (
        dataset.base[rng.integers(0, args.base, size=args.queries)]
        + rng.normal(scale=0.05, size=(args.queries, args.dim))
    ).astype(np.float32)
    truth = exact_knn(dataset.base, np.arange(args.base), queries, 10)
    with ClusterSPFresh.build(
        dataset.base, num_shards=args.shards, config=config
    ) as cluster:
        parallel = args.executor == "thread"
        request = QueryRequest(vectors=queries, k=10)
        routed = cluster.query(request, parallel=parallel)
        probed = cluster.shards_probed_fraction()
        broadcast = cluster.query(request, broadcast=True, parallel=parallel)
        routed_recall = recall_at_k([r.ids for r in routed], truth, 10)
        oracle_recall = recall_at_k([r.ids for r in broadcast], truth, 10)
        rows = [
            (
                "routed",
                f"{routed_recall:.4f}",
                f"{probed:.2f}",
                f"{np.mean([r.latency_us for r in routed]):.1f}",
            ),
            (
                "broadcast",
                f"{oracle_recall:.4f}",
                "1.00",
                f"{np.mean([r.latency_us for r in broadcast]):.1f}",
            ),
        ]
        print(
            format_table(
                ["path", "recall10@10", "shards probed", "mean sim us"],
                rows,
                title=(
                    f"cluster: {args.shards} shards x {args.replicas} "
                    f"replicas, cluster_nprobe={config.cluster.nprobe}"
                ),
            )
        )
        if args.executor == "process":
            import time

            from repro.distributed import ProcessShardPool, fork_available

            if not fork_available():
                print("\nprocess executor unavailable (no fork); skipped")
            else:
                plan = cluster.placement.shards_for_queries(
                    queries, config.cluster.nprobe
                )
                rows_by_shard: dict[int, list[int]] = {}
                for qi, shards in enumerate(plan):
                    for s in shards:
                        rows_by_shard.setdefault(int(s), []).append(qi)
                jobs = {
                    s: (queries[r], 10, None)
                    for s, r in rows_by_shard.items()
                }
                with ProcessShardPool(
                    [g.replicas[0] for g in cluster.groups]
                ) as pool:
                    pool.query_shards(jobs)  # warm copy-on-write pages
                    start = time.perf_counter()
                    pool.query_shards(jobs)
                    wall = time.perf_counter() - start
                print(
                    f"\nprocess executor: {len(jobs)} workers answered the "
                    f"routed fan-out in {wall * 1e3:.1f} ms wall "
                    f"(informational; simulated metrics above are the "
                    f"gated ones)"
                )
        if args.storm:
            hot = dataset.cluster_centers[0]
            for i in range(args.storm):
                vector = (
                    hot + rng.normal(scale=0.2, size=args.dim)
                ).astype(np.float32)
                cluster.insert(7_000_000 + i, vector)
            splits = cluster.maybe_split()
            cluster.drain()
            print(
                f"\nstorm: {args.storm} hot inserts -> {splits} shard "
                f"splits, {cluster.stats.migrated_vectors} vectors "
                f"migrated, {cluster.num_shards} shards now "
                f"(sizes {cluster.shard_sizes()})"
            )
        audit = cluster.check_invariants()
        status = "OK" if audit.ok else "; ".join(audit.failures)
        print(
            f"invariants: {audit.conservation_violations} violations "
            f"({status}) over {audit.cluster_live_vectors} live vectors"
        )
        return 0 if audit.ok else 1


def cmd_sweep_nprobe(args) -> int:
    """Trace the recall/latency trade-off across nprobe settings."""
    from repro.bench.reporting import format_table
    from repro.datasets import exact_knn
    from repro.metrics import recall_curve

    dataset = _dataset(args)
    index = SPFreshIndex.build(
        dataset.base, config=SPFreshConfig(dim=args.dim, seed=args.seed)
    )
    queries = dataset.base[: args.queries] + 0.01
    truth = exact_knn(dataset.base, np.arange(args.base), queries, 10)

    def search_fn(query, k, nprobe):
        return index.query(QueryRequest.single(query, k=k, nprobe=nprobe)).result

    curve = recall_curve(search_fn, queries, truth, 10, [1, 2, 4, 8, 16, 32])
    print(
        format_table(
            ["nprobe", "recall10@10", "mean latency us"],
            curve,
            title="recall/latency trade-off",
        )
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Assemble the argparse tree for `python -m repro`.

    One shared parent supplies ``--seed`` everywhere; a second parent
    supplies ``--scale``/``--report`` to the benchmark-shaped subcommands
    (``perf``, ``profile``, ``serve-bench``) so the flags mean the same
    thing on each.
    """
    from repro.bench.perf import add_perf_arguments

    seeded = argparse.ArgumentParser(add_help=False)
    seeded.add_argument("--seed", type=int, default=0)

    scaled = argparse.ArgumentParser(add_help=False)
    scaled.add_argument(
        "--scale", choices=sorted(PERF_SCALES), default="quick",
        help="workload scale preset (see repro.bench.scales.PERF_SCALES)",
    )
    scaled.add_argument(
        "--report", metavar="PATH", default=None,
        help="also write the subcommand's tables/summary to this file",
    )

    parser = argparse.ArgumentParser(
        prog="repro", description="SPFresh reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    overview = sub.add_parser(
        "overview", parents=[seeded], help="build an index, print stats"
    )
    _add_common(overview)
    overview.set_defaults(func=cmd_overview)

    simulate = sub.add_parser(
        "simulate", parents=[seeded], help="multi-day churn simulation"
    )
    _add_common(simulate)
    simulate.add_argument("--days", type=int, default=10)
    simulate.add_argument("--rate", type=float, default=0.01)
    simulate.set_defaults(func=cmd_simulate)

    compare = sub.add_parser(
        "compare", parents=[seeded], help="SPFresh vs baselines"
    )
    _add_common(compare)
    compare.add_argument("--days", type=int, default=7)
    compare.add_argument("--rate", type=float, default=0.02)
    compare.add_argument("--skip-diskann", action="store_true")
    compare.set_defaults(func=cmd_compare)

    sweep = sub.add_parser(
        "sweep-nprobe", parents=[seeded], help="recall/latency curve"
    )
    _add_common(sweep)
    sweep.set_defaults(func=cmd_sweep_nprobe)

    serve = sub.add_parser(
        "serve-bench",
        parents=[seeded, scaled],
        help="open-loop serving bench: admission + dynamic batching",
    )
    _add_common(serve, scale_defaults=True)
    serve.add_argument("--requests", type=int, default=6000)
    serve.add_argument("--rate-qps", type=float, default=6000.0)
    serve.add_argument(
        "--pattern",
        choices=("poisson", "bursty", "diurnal"),
        default="bursty",
    )
    serve.add_argument("--hot-key-skew", type=float, default=0.8)
    serve.add_argument("--tenants", type=int, default=4)
    serve.add_argument("--max-batch", type=int, default=32)
    serve.add_argument("--max-wait-us", type=float, default=1500.0)
    serve.add_argument("--slo-us", type=float, default=15000.0)
    serve.add_argument("--queue-capacity", type=int, default=256)
    serve.add_argument(
        "--workers", type=int, default=1,
        help="simulated engine-pool size; >1 adds a goodput-vs-workers table",
    )
    serve.add_argument(
        "--fairness", choices=("fifo", "dwrr"), default="fifo",
        help="batch-seat scheduling across tenants",
    )
    serve.add_argument(
        "--tenant-quota", type=float, default=None,
        help="max fraction of the queue one tenant may occupy (0, 1]",
    )
    serve.add_argument(
        "--backend", choices=("single", "sharded", "cluster"), default="single",
        help="engine under the frontend: bare searcher or a distributed facade",
    )
    serve.add_argument(
        "--shards", type=int, default=4,
        help="shard count for the sharded/cluster backends",
    )
    serve.add_argument(
        "--no-baseline",
        action="store_true",
        help="skip the unbatched comparison run",
    )
    serve.set_defaults(func=cmd_serve_bench)

    cluster = sub.add_parser(
        "cluster",
        parents=[seeded, scaled],
        help="centroid-routed sharding: routing vs broadcast + audit",
    )
    _add_common(cluster, scale_defaults=True)
    cluster.add_argument("--shards", type=int, default=4)
    cluster.add_argument(
        "--cluster-nprobe", type=int, default=2,
        help="shards probed per routed query",
    )
    cluster.add_argument("--replicas", type=int, default=1)
    cluster.add_argument(
        "--split-threshold", type=int, default=None,
        help="live vectors per shard before maybe_split() carves it",
    )
    cluster.add_argument(
        "--executor", choices=("thread", "process"), default="thread",
    )
    cluster.add_argument(
        "--storm", type=int, default=0,
        help="hot-region inserts to drive before the split/audit phase",
    )
    cluster.set_defaults(func=cmd_cluster)

    profile = sub.add_parser(
        "profile",
        parents=[seeded, scaled],
        help="wall-clock stage profile of a mixed workload",
    )
    _add_common(profile, scale_defaults=True)
    profile.add_argument(
        "--json", action="store_true", help="emit the snapshot as JSON"
    )
    profile.set_defaults(func=cmd_profile)

    perf = sub.add_parser(
        "perf",
        parents=[seeded, scaled],
        help="perf-regression harness (BENCH_*.json)",
    )
    add_perf_arguments(perf, include_shared=False)
    perf.set_defaults(func=cmd_perf, _parser=perf)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
