"""Cluster-scale SPFresh: centroid-routed shards, splits, replicas.

:class:`ClusterSPFresh` is the cluster model ROADMAP item 2 asks for,
replacing blind hash-routed scatter-gather with the three mechanisms a
real deployment needs:

* **accuracy-preserving routing** — vectors are placed by clustered
  centroid groups (:mod:`repro.distributed.placement`); the router keeps
  a shard-level centroid summary and probes only the
  ``cluster_nprobe`` closest shards per query instead of broadcasting.
  ``broadcast=True`` keeps every-shard fan-out as the exactness oracle
  the routed path is gated against (CI asserts routed recall >= 0.95x
  broadcast while probing < 100% of shards);
* **shard lifecycle under growth** — :meth:`maybe_split` carves an
  oversized shard's centroid group in two and migrates the rerouted
  vectors to a freshly built shard: LIRE's split/reassign discipline at
  cluster granularity, audited by
  :func:`repro.core.invariants.check_cluster_invariants` (conservation
  extended across shards: every directory id live in exactly its home
  shard, replicas converged);
* **replica groups with failure/recovery** — each shard is a
  :class:`ShardGroup` of ``cluster_replication_factor`` bit-identical
  replicas. Reads pick one replica deterministically (seeded, so runs
  reproduce); a replica whose device fails (the
  :mod:`repro.storage.faults` layer, or an explicit :meth:`fail_replica`)
  is marked down and the read fails over to a live peer.
  :meth:`recover_replica` resyncs a downed replica from a healthy peer's
  live rows.

Two clocks, as everywhere in this repo: the *simulated* query latency is
``max(probed shard latencies) + route cost + merge cost`` (shards run in
parallel in the model) and is what CI gates; wall-clock fan-out can run
on real threads (``parallel=True``) or escape the GIL entirely via the
:class:`~repro.distributed.executor.ProcessShardPool` worker processes
(informational only). See docs/distributed.md.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro.api import QueryRequest, SearchResponse, warn_legacy_query
from repro.core.config import SPFreshConfig
from repro.core.index import SPFreshIndex
from repro.distributed.placement import CentroidPlacement
from repro.spann.postings import dedup_top_k, live_view
from repro.spann.searcher import SearchResult
from repro.util.distance import as_matrix, as_vector
from repro.util.errors import IndexError_, StorageError


class ClusterUnavailableError(IndexError_):
    """Every replica of a probed shard is down (or failed the read)."""


@dataclass
class ClusterStats:
    """Cluster-level counters (shard counters live on each shard)."""

    queries: int = 0
    shards_probed: int = 0  # sum over queries of shards fanned out to
    broadcasts: int = 0  # queries answered by every shard
    shard_splits: int = 0
    migrated_vectors: int = 0
    replica_failovers: int = 0  # reads re-routed off a failed replica
    replica_resyncs: int = 0
    rerouted_updates: int = 0  # re-inserts that moved an id across shards

    def as_dict(self) -> dict[str, int]:
        return {k: int(v) for k, v in self.__dict__.items()}


@dataclass
class ShardGroup:
    """One shard's replica set: bit-identical indexes behind one id."""

    shard_id: int
    replicas: list[SPFreshIndex]
    down: list[bool] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.replicas:
            raise ValueError("a shard group needs at least one replica")
        if not self.down:
            self.down = [False] * len(self.replicas)

    @property
    def primary(self) -> SPFreshIndex:
        """First live replica (authoritative for accounting/audits)."""
        for replica, is_down in zip(self.replicas, self.down):
            if not is_down:
                return replica
        raise ClusterUnavailableError(
            f"shard {self.shard_id}: all {len(self.replicas)} replicas down"
        )

    def live_indices(self) -> list[int]:
        return [i for i, is_down in enumerate(self.down) if not is_down]


def live_rows(index: SPFreshIndex) -> tuple[np.ndarray, np.ndarray]:
    """Deduplicated (ids, vectors) of every live row in one shard index.

    Sweeps postings (closure replicas collapse to one row per id) and the
    fresh tier, through the controller so the read cost is accounted.
    Used by shard splits (migration source) and replica resync.
    """
    from repro.util.errors import StalePostingError

    ids_parts: list[np.ndarray] = []
    vec_parts: list[np.ndarray] = []
    for pid in index.controller.posting_ids():
        try:
            data, _ = index.controller.get(pid)
        except StalePostingError:
            continue
        live = live_view(data, index.version_map)
        if len(live.ids):
            ids_parts.append(live.ids)
            vec_parts.append(live.vectors)
    if index.fresh_tier is not None and len(index.fresh_tier) > 0:
        t_ids, t_vectors = index.fresh_tier.live_snapshot()
        if len(t_ids):
            ids_parts.append(t_ids)
            vec_parts.append(t_vectors)
    if not ids_parts:
        return (
            np.empty(0, dtype=np.int64),
            np.empty((0, index.config.dim), dtype=np.float32),
        )
    all_ids = np.concatenate(ids_parts)
    all_vecs = np.concatenate(vec_parts)
    _, first = np.unique(all_ids, return_index=True)
    first.sort()
    return all_ids[first], all_vecs[first]


class ClusterSPFresh:
    """Centroid-routed cluster of replicated single-node SPFresh shards."""

    MERGE_COST_US = 10.0  # modelled cost of merging shard result lists

    def __init__(
        self,
        groups: list[ShardGroup],
        placement: CentroidPlacement,
        directory: dict[int, int],
        config: SPFreshConfig,
        device_factory=None,
    ) -> None:
        if placement.num_shards != len(groups):
            raise ValueError("placement and shard groups disagree on count")
        self.groups = groups
        self.placement = placement
        self.directory = directory
        self.config = config
        self.stats = ClusterStats()
        self._device_factory = device_factory
        self._pool: ThreadPoolExecutor | None = None
        # Deterministic replica fan-out: a counter mixed with the seed
        # picks the replica, so a fixed seed reproduces the exact read
        # schedule (and therefore the exact failover sequence).
        self._read_counter = 0
        self._rng = np.random.default_rng(config.seed + 0x5EED)

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        vectors: np.ndarray,
        ids: np.ndarray | None = None,
        num_shards: int = 4,
        config: SPFreshConfig | None = None,
        device_factory=None,
    ) -> "ClusterSPFresh":
        """Fit the placement, partition the base set, build every replica.

        ``device_factory(shard_id, replica_id, config)`` optionally
        supplies each replica's block device — the hook the fault tests
        use to wrap a replica in a
        :class:`~repro.storage.faults.FaultInjectingSSD`.
        """
        vectors = as_matrix(vectors)
        if ids is None:
            ids = np.arange(len(vectors), dtype=np.int64)
        ids = np.asarray(ids, dtype=np.int64)
        if len(ids) != len(vectors):
            raise ValueError("ids and vectors must have the same length")
        config = (config or SPFreshConfig(dim=vectors.shape[1])).validate()
        placement = CentroidPlacement.fit(
            vectors,
            num_shards,
            centroids_per_shard=config.cluster.centroids_per_shard,
            seed=config.seed,
        )
        homes = placement.route_vectors(vectors)
        groups: list[ShardGroup] = []
        directory: dict[int, int] = {}
        for shard_id in range(num_shards):
            rows = np.nonzero(homes == shard_id)[0]
            if len(rows) == 0:
                raise ValueError(
                    f"shard {shard_id} would start empty; use fewer shards"
                )
            groups.append(
                cls._build_group(
                    shard_id,
                    vectors[rows],
                    ids[rows],
                    config,
                    device_factory,
                )
            )
            for vid in ids[rows]:
                directory[int(vid)] = shard_id
        return cls(groups, placement, directory, config, device_factory)

    @staticmethod
    def _shard_config(config: SPFreshConfig, shard_id: int) -> SPFreshConfig:
        # Every replica of a group shares one seed, so replica builds are
        # bit-identical; shards differ so their LIRE schedules decorrelate.
        return config.with_overrides(seed=config.seed + 101 * (shard_id + 1))

    @classmethod
    def _build_group(
        cls,
        shard_id: int,
        vectors: np.ndarray,
        ids: np.ndarray,
        config: SPFreshConfig,
        device_factory,
    ) -> ShardGroup:
        shard_config = cls._shard_config(config, shard_id)
        replicas = []
        for replica_id in range(config.cluster.replication_factor):
            device = (
                device_factory(shard_id, replica_id, shard_config)
                if device_factory is not None
                else None
            )
            replicas.append(
                SPFreshIndex.build(
                    vectors, ids=ids, config=shard_config, device=device
                )
            )
        return ShardGroup(shard_id=shard_id, replicas=replicas)

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------
    def query(
        self,
        request: QueryRequest,
        *,
        broadcast: bool = False,
        parallel: bool = False,
    ) -> SearchResponse:
        """Answer a typed request through centroid-aware routing.

        Each query probes the ``cluster_nprobe`` shards whose centroid
        summaries rank closest (``broadcast=True`` forces every shard —
        the exactness oracle). Per-shard work is batched: one engine call
        per probed shard covers all the queries routed to it. Simulated
        latency per query is ``max(probed shard latencies) + route cost +
        merge cost``. ``parallel=True`` fans shards out on real threads
        for the wall-clock path; the simulated model is identical.
        """
        if not isinstance(request, QueryRequest):
            raise TypeError(
                f"query() wants a repro.api.QueryRequest, got "
                f"{type(request).__name__}"
            )
        request = request.with_vectors(
            as_matrix(request.vectors, self.config.dim)
        )
        n = len(request.vectors)
        if n == 0:
            # An empty batch is well-defined: nothing probed, no results.
            return SearchResponse(results=(), request=request)
        nprobe = None if broadcast else self.config.cluster.nprobe
        plan = self.placement.shards_for_queries(request.vectors, nprobe)
        self.stats.queries += n
        self.stats.shards_probed += sum(len(p) for p in plan)
        self.stats.broadcasts += sum(
            1 for p in plan if len(p) == len(self.groups)
        )
        shard_batches = self._per_shard_batches(plan)
        replica_picks = {
            shard_id: self._next_replica(shard_id)
            for shard_id in shard_batches
        }
        per_shard = self._run_shards(
            request, shard_batches, replica_picks, parallel
        )
        return SearchResponse(
            results=tuple(self._merge(request, plan, shard_batches, per_shard)),
            request=request,
        )

    def _per_shard_batches(self, plan: list[np.ndarray]) -> dict[int, list[int]]:
        """Invert the routing plan: shard id -> query rows probing it."""
        batches: dict[int, list[int]] = {}
        for qi, shards in enumerate(plan):
            for shard_id in shards:
                batches.setdefault(int(shard_id), []).append(qi)
        return dict(sorted(batches.items()))

    def _run_shards(
        self,
        request: QueryRequest,
        shard_batches: dict[int, list[int]],
        replica_picks: dict[int, int],
        parallel: bool,
    ) -> dict[int, list[SearchResult]]:
        def one(shard_id: int) -> list[SearchResult]:
            rows = shard_batches[shard_id]
            sub = request.with_vectors(request.vectors[rows])
            return self._query_with_failover(
                shard_id, sub, replica_picks[shard_id]
            )

        if parallel and len(shard_batches) > 1:
            pool = self._ensure_pool()
            results = list(pool.map(one, shard_batches))
        else:
            results = [one(shard_id) for shard_id in shard_batches]
        return dict(zip(shard_batches, results))

    def _query_with_failover(
        self, shard_id: int, sub_request: QueryRequest, first_choice: int
    ) -> list[SearchResult]:
        """Run one shard's sub-batch, failing over across its replicas.

        The deterministic first choice is tried first; a replica that is
        marked down is skipped, and one whose device errors mid-read
        (:class:`~repro.util.errors.StorageError`, e.g. an injected fault)
        is marked down and the next live replica takes the read.
        """
        group = self.groups[shard_id]
        order = [
            (first_choice + i) % len(group.replicas)
            for i in range(len(group.replicas))
        ]
        last_error: Exception | None = None
        for attempt, replica_id in enumerate(order):
            if group.down[replica_id]:
                continue
            try:
                results = list(group.replicas[replica_id].query(sub_request))
            except StorageError as exc:
                group.down[replica_id] = True
                self.stats.replica_failovers += 1
                last_error = exc
                continue
            if attempt > 0:
                self.stats.replica_failovers += 1
            self.last_replica_read[shard_id] = replica_id
            return results
        raise ClusterUnavailableError(
            f"shard {shard_id}: no live replica could answer"
        ) from last_error

    def _merge(
        self,
        request: QueryRequest,
        plan: list[np.ndarray],
        shard_batches: dict[int, list[int]],
        per_shard: dict[int, list[SearchResult]],
    ) -> list[SearchResult]:
        # Row position of each query inside every shard's sub-batch.
        positions = {
            shard_id: {qi: pos for pos, qi in enumerate(rows)}
            for shard_id, rows in shard_batches.items()
        }
        route_cost = self.config.cluster.route_cost_us
        merged: list[SearchResult] = []
        for qi, shards in enumerate(plan):
            results = [
                per_shard[int(s)][positions[int(s)][qi]] for s in shards
            ]
            all_ids = np.concatenate([r.ids for r in results])
            all_dists = np.concatenate([r.distances for r in results])
            top_ids, top_dists = dedup_top_k(all_ids, all_dists, request.k)
            merged.append(
                SearchResult(
                    ids=top_ids,
                    distances=top_dists,
                    latency_us=max(r.latency_us for r in results)
                    + route_cost
                    + self.MERGE_COST_US,
                    postings_probed=sum(r.postings_probed for r in results),
                    entries_scanned=sum(r.entries_scanned for r in results),
                    io_latency_us=max(r.io_latency_us for r in results),
                    truncated=any(r.truncated for r in results),
                    fresh_entries_scanned=sum(
                        r.fresh_entries_scanned for r in results
                    ),
                    reranked_entries=sum(r.reranked_entries for r in results),
                )
            )
        return merged

    # Replica chosen by the most recent read, per shard (tests and the
    # determinism contract observe fan-out through this).
    @property
    def last_replica_read(self) -> dict[int, int]:
        if not hasattr(self, "_last_replica_read"):
            self._last_replica_read: dict[int, int] = {}
        return self._last_replica_read

    def _next_replica(self, shard_id: int) -> int:
        """Deterministic replica pick: seeded golden-ratio counter mix."""
        group = self.groups[shard_id]
        live = group.live_indices()
        if not live:
            raise ClusterUnavailableError(
                f"shard {shard_id}: all replicas down"
            )
        self._read_counter += 1
        mixed = (
            (self.config.seed + 0x5EED + self._read_counter * 0x9E3779B9)
            * 0x9E3779B97F4A7C15
        ) & 0xFFFFFFFFFFFFFFFF
        pick = live[(mixed >> 32) % len(live)]
        return pick

    def search(
        self,
        query,
        k: int | None = None,
        nprobe: int | None = None,
        parallel: bool = False,
        broadcast: bool = False,
    ):
        """Search facade; positional form deprecated (see docs/api.md)."""
        if isinstance(query, QueryRequest):
            if k is not None or nprobe is not None:
                raise TypeError(
                    "pass k/nprobe inside the QueryRequest, not alongside it"
                )
            return self.query(query, parallel=parallel, broadcast=broadcast)
        warn_legacy_query("ClusterSPFresh.search")
        if k is None:
            raise TypeError("search(vector, k) requires k")
        request = QueryRequest.single(
            as_vector(query, self.config.dim), k=k, nprobe=nprobe
        )
        return self.query(request, parallel=parallel, broadcast=broadcast).result

    def search_many(
        self,
        queries,
        k: int | None = None,
        nprobe: int | None = None,
        parallel: bool = False,
        broadcast: bool = False,
    ):
        """Batched facade; positional form deprecated (see docs/api.md)."""
        if isinstance(queries, QueryRequest):
            if k is not None or nprobe is not None:
                raise TypeError(
                    "pass k/nprobe inside the QueryRequest, not alongside it"
                )
            return self.query(queries, parallel=parallel, broadcast=broadcast)
        warn_legacy_query("ClusterSPFresh.search_many")
        if k is None:
            raise TypeError("search_many(queries, k) requires k")
        queries = as_matrix(queries, self.config.dim)
        request = QueryRequest(vectors=queries, k=k, nprobe=nprobe)
        return list(
            self.query(request, parallel=parallel, broadcast=broadcast).results
        )

    # ``ServingFrontend`` resolves engines by this name too.
    search_batch = search_many

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def insert(self, vector_id: int, vector: np.ndarray) -> float:
        """Insert one vector into its centroid-routed home shard.

        Writes fan out to every live replica of the group; the returned
        simulated latency is the slowest replica's (the ack waits for the
        full write quorum). A re-insert whose nearest centroid moved since
        (drift) is re-homed: deleted from the old shard, inserted fresh.
        """
        vector = as_vector(vector, self.config.dim)
        shard_id = int(self.placement.route_vectors(vector[None])[0])
        vector_id = int(vector_id)
        old = self.directory.get(vector_id)
        if old is not None and old != shard_id:
            self._apply_write(old, "delete", vector_id)
            self.stats.rerouted_updates += 1
        latency = self._apply_write(shard_id, "insert", vector_id, vector)
        self.directory[vector_id] = shard_id
        return latency

    def delete(self, vector_id: int) -> float:
        """Delete by directory lookup (single-group operation)."""
        vector_id = int(vector_id)
        shard_id = self.directory.pop(vector_id, None)
        if shard_id is None:
            raise IndexError_(f"vector {vector_id} is not in the cluster")
        return self._apply_write(shard_id, "delete", vector_id)

    def _apply_write(self, shard_id: int, op: str, vector_id: int, vector=None) -> float:
        group = self.groups[shard_id]
        live = group.live_indices()
        if not live:
            raise ClusterUnavailableError(
                f"shard {shard_id}: no live replica to write"
            )
        latencies = []
        for replica_id in live:
            replica = group.replicas[replica_id]
            try:
                if op == "insert":
                    latencies.append(replica.insert(vector_id, vector))
                else:
                    latencies.append(replica.delete(vector_id))
            except StorageError:
                group.down[replica_id] = True
                self.stats.replica_failovers += 1
        if not latencies:
            raise ClusterUnavailableError(
                f"shard {shard_id}: every replica failed the {op}"
            )
        return max(latencies)

    # ------------------------------------------------------------------
    # shard lifecycle (LIRE at cluster granularity)
    # ------------------------------------------------------------------
    def maybe_split(self) -> int:
        """Split shards over ``cluster_split_threshold``; returns count.

        Each pass picks the largest oversized shard, carves its centroid
        group in two, and migrates the rerouted vectors into a freshly
        built shard group — repeating until every shard is within bounds
        (mirroring the posting-level split cascade).
        """
        threshold = self.config.cluster.split_threshold
        if threshold is None:
            return 0
        splits = 0
        while True:
            sizes = self.shard_sizes()
            worst = int(np.argmax(sizes))
            if sizes[worst] <= threshold:
                return splits
            if not self._split_shard(worst):
                return splits
            splits += 1

    def _split_shard(self, shard_id: int) -> bool:
        group = self.groups[shard_id]
        members = np.nonzero(
            self.placement.shard_of_centroid == shard_id
        )[0]
        if len(members) < 2:
            return False  # one region left: nothing to carve
        new_shard_id = len(self.groups)
        moved_centroids = self.placement.split_group(
            shard_id, new_shard_id, self._rng
        )
        ids, vectors = live_rows(group.primary)
        if len(ids) == 0:
            self._undo_split(shard_id, moved_centroids)
            return False
        # Rows whose nearest centroid *within the old group* moved follow
        # it to the new shard (the cluster-level NPA property).
        from repro.util.distance import pairwise_sq_l2

        group_members = np.concatenate(
            [
                moved_centroids,
                np.nonzero(self.placement.shard_of_centroid == shard_id)[0],
            ]
        )
        nearest = group_members[
            pairwise_sq_l2(
                vectors, self.placement.centroids[group_members]
            ).argmin(axis=1)
        ]
        moving = np.isin(nearest, moved_centroids)
        if not moving.any() or moving.all():
            self._undo_split(shard_id, moved_centroids)
            return False
        moved_ids, moved_vectors = ids[moving], vectors[moving]
        self.groups.append(
            self._build_group(
                new_shard_id,
                moved_vectors,
                moved_ids,
                self.config,
                self._device_factory,
            )
        )
        for vid in moved_ids:
            self._apply_write(shard_id, "delete", int(vid))
            self.directory[int(vid)] = new_shard_id
        # Reclaim the migrated rows' space and settle LIRE before the
        # next sizing decision.
        for replica_id in group.live_indices():
            replica = group.replicas[replica_id]
            replica.gc_pass()
            replica.drain()
        self.stats.shard_splits += 1
        self.stats.migrated_vectors += int(moving.sum())
        return True

    def _undo_split(self, shard_id: int, moved_centroids: np.ndarray) -> None:
        # Revert a placement carve that turned out to move nothing (or
        # everything): put the centroids back and drop the new shard id.
        self.placement.shard_of_centroid[moved_centroids] = shard_id
        self.placement.num_shards -= 1

    # ------------------------------------------------------------------
    # failure / recovery
    # ------------------------------------------------------------------
    def fail_replica(self, shard_id: int, replica_id: int) -> None:
        """Mark one replica down (simulated detected device failure)."""
        self.groups[shard_id].down[replica_id] = True

    def recover_replica(self, shard_id: int, replica_id: int) -> int:
        """Resync a downed replica from a healthy peer; returns rows copied.

        The replica is rebuilt from the peer's deduplicated live rows (a
        full-copy resync — the cluster analogue of restoring from a peer
        snapshot) and marked live again.
        """
        group = self.groups[shard_id]
        peer = group.primary  # raises if nobody is up to copy from
        ids, vectors = live_rows(peer)
        if len(ids) == 0:
            raise ClusterUnavailableError(
                f"shard {shard_id}: peer has no live rows to resync from"
            )
        shard_config = self._shard_config(self.config, shard_id)
        device = (
            self._device_factory(shard_id, replica_id, shard_config)
            if self._device_factory is not None
            else None
        )
        old = group.replicas[replica_id]
        group.replicas[replica_id] = SPFreshIndex.build(
            vectors, ids=ids, config=shard_config, device=device
        )
        group.down[replica_id] = False
        old.stop()
        self.stats.replica_resyncs += 1
        return len(ids)

    # ------------------------------------------------------------------
    # maintenance / lifecycle
    # ------------------------------------------------------------------
    def _live_replicas(self):
        for group in self.groups:
            for replica_id in group.live_indices():
                yield group.replicas[replica_id]

    def drain(self) -> int:
        return sum(replica.drain() for replica in self._live_replicas())

    def gc_pass(self) -> int:
        return sum(replica.gc_pass() for replica in self._live_replicas())

    def close(self) -> None:
        """Shut down the thread pool and every replica's workers."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        for group in self.groups:
            for replica in group.replicas:
                replica.stop()

    def __enter__(self) -> "ClusterSPFresh":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=len(self.groups))
        return self._pool

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return len(self.groups)

    @property
    def live_vector_count(self) -> int:
        return sum(g.primary.live_vector_count for g in self.groups)

    @property
    def num_postings(self) -> int:
        return sum(g.primary.num_postings for g in self.groups)

    def memory_bytes(self) -> int:
        return sum(
            replica.memory_bytes()
            for group in self.groups
            for replica in group.replicas
        ) + self.placement.centroids.nbytes

    def shard_sizes(self) -> list[int]:
        return [g.primary.live_vector_count for g in self.groups]

    def shards_probed_fraction(self) -> float:
        """Mean fraction of shards probed per query so far (1.0 = broadcast)."""
        if self.stats.queries == 0:
            return 0.0
        return self.stats.shards_probed / (
            self.stats.queries * len(self.groups)
        )

    def check_invariants(self, **kwargs):
        """Cluster-wide audit; see docs/distributed.md."""
        from repro.core.invariants import check_cluster_invariants

        return check_cluster_invariants(self, **kwargs)
