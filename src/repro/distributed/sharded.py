"""Sharded SPFresh: scatter-gather search over independent shards.

Design choices, mirroring production vector stores (and keeping each
shard byte-identical to the single-node system):

* **update routing** — a vector id hashes to exactly one shard, so every
  update is a single-shard operation and shards stay balanced in
  expectation regardless of data distribution;
* **search** — scatter to all shards, each runs its normal top-k, results
  merge by distance with replica dedup. The simulated query latency is
  the *maximum* shard latency (shards run in parallel) plus a small merge
  cost; the wall-clock path can optionally use real threads;
* **maintenance** — drain/gc/checkpoint fan out to every shard.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.api import QueryRequest, SearchResponse, warn_legacy_query
from repro.core.config import SPFreshConfig
from repro.core.index import SPFreshIndex
from repro.spann.postings import dedup_top_k
from repro.spann.searcher import SearchResult
from repro.util.distance import as_matrix, as_vector


class ShardRouter:
    """Deterministic id → shard mapping (multiplicative hashing)."""

    _MIX = 0x9E3779B97F4A7C15  # 64-bit golden-ratio multiplier

    def __init__(self, num_shards: int) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be at least 1")
        self.num_shards = num_shards

    def shard_of(self, vector_id: int) -> int:
        """Scalar oracle; :meth:`partition` is pinned bit-identical to it."""
        mixed = (int(vector_id) * self._MIX) & 0xFFFFFFFFFFFFFFFF
        return (mixed >> 32) % self.num_shards

    def shard_of_batch(self, ids: np.ndarray) -> np.ndarray:
        """Vectorized ``shard_of`` over an id array (int64 shard per row).

        uint64 arithmetic wraps modulo 2**64 exactly like the scalar
        path's ``& 0xFFFF...`` mask (negative ids reinterpret two's-
        complement, matching Python's masked product), so this is
        bit-identical to ``shard_of`` for the full int64 range.
        """
        ids_u = np.ascontiguousarray(ids, dtype=np.int64).view(np.uint64)
        mixed = ids_u * np.uint64(self._MIX)
        return (
            (mixed >> np.uint64(32)) % np.uint64(self.num_shards)
        ).astype(np.int64)

    def partition(self, ids: np.ndarray) -> list[np.ndarray]:
        """Row indices of ``ids`` belonging to each shard."""
        shards = self.shard_of_batch(ids)
        return [np.nonzero(shards == s)[0] for s in range(self.num_shards)]


class ShardedSPFresh:
    """N single-node SPFresh indexes behind one scatter-gather facade."""

    MERGE_COST_US = 10.0  # modelled cost of merging shard result lists

    def __init__(self, shards: list[SPFreshIndex], router: ShardRouter) -> None:
        if len(shards) != router.num_shards:
            raise ValueError("router and shard list disagree on shard count")
        self.shards = shards
        self.router = router
        self._pool: ThreadPoolExecutor | None = None

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        vectors: np.ndarray,
        ids: np.ndarray | None = None,
        num_shards: int = 4,
        config: SPFreshConfig | None = None,
    ) -> "ShardedSPFresh":
        """Partition the base set by id hash and build one index per shard."""
        vectors = as_matrix(vectors)
        if ids is None:
            ids = np.arange(len(vectors), dtype=np.int64)
        ids = np.asarray(ids, dtype=np.int64)
        config = (config or SPFreshConfig(dim=vectors.shape[1])).validate()
        router = ShardRouter(num_shards)
        shards: list[SPFreshIndex] = []
        for shard_id, rows in enumerate(router.partition(ids)):
            if len(rows) == 0:
                raise ValueError(
                    f"shard {shard_id} would be empty; use fewer shards"
                )
            shard_config = config.with_overrides(seed=config.seed + shard_id)
            shards.append(
                SPFreshIndex.build(vectors[rows], ids=ids[rows], config=shard_config)
            )
        return cls(shards, router)

    # ------------------------------------------------------------------
    # updates: single-shard operations
    # ------------------------------------------------------------------
    def insert(self, vector_id: int, vector: np.ndarray) -> float:
        shard = self.shards[self.router.shard_of(vector_id)]
        return shard.insert(vector_id, vector)

    def delete(self, vector_id: int) -> float:
        shard = self.shards[self.router.shard_of(vector_id)]
        return shard.delete(vector_id)

    # ------------------------------------------------------------------
    # search: scatter-gather
    # ------------------------------------------------------------------
    def query(self, request: QueryRequest, *, parallel: bool = False) -> SearchResponse:
        """Scatter-gather a typed request: every shard answers the batch.

        Each shard runs its vectorized path once over all queries (one
        ParallelGET per shard for the whole batch), then the per-query
        shard results merge by distance with replica dedup — same shard
        order, same ``dedup_top_k`` — so per-query ids/distances are
        bit-identical to the single-query path whenever the engine's own
        batch/single parity holds. Simulated latency per query is the
        *maximum* shard latency (shards run in parallel) plus a small
        merge cost. ``parallel=True`` uses real threads for wall-clock
        benches; the simulated model is identical either way.
        """
        if not isinstance(request, QueryRequest):
            raise TypeError(
                f"query() wants a repro.api.QueryRequest, got "
                f"{type(request).__name__}"
            )
        request = request.with_vectors(
            as_matrix(request.vectors, self.shards[0].config.dim)
        )
        if len(request.vectors) == 0:
            # An empty batch is well-defined: no shard probed, no results.
            return SearchResponse(results=(), request=request)
        if parallel:
            pool = self._ensure_pool()
            per_shard = list(
                pool.map(lambda shard: shard.query(request).results, self.shards)
            )
        else:
            per_shard = [shard.query(request).results for shard in self.shards]
        merged: list[SearchResult] = []
        for qi in range(len(request.vectors)):
            results = [shard_results[qi] for shard_results in per_shard]
            all_ids = np.concatenate([r.ids for r in results])
            all_dists = np.concatenate([r.distances for r in results])
            top_ids, top_dists = dedup_top_k(all_ids, all_dists, request.k)
            merged.append(
                SearchResult(
                    ids=top_ids,
                    distances=top_dists,
                    latency_us=max(r.latency_us for r in results)
                    + self.MERGE_COST_US,
                    postings_probed=sum(r.postings_probed for r in results),
                    entries_scanned=sum(r.entries_scanned for r in results),
                    io_latency_us=max(r.io_latency_us for r in results),
                    truncated=any(r.truncated for r in results),
                )
            )
        return SearchResponse(results=tuple(merged), request=request)

    def search(
        self,
        query,
        k: int | None = None,
        nprobe: int | None = None,
        parallel: bool = False,
    ):
        """Search facade; positional form deprecated (see docs/api.md)."""
        if isinstance(query, QueryRequest):
            if k is not None or nprobe is not None:
                raise TypeError(
                    "pass k/nprobe inside the QueryRequest, not alongside it"
                )
            return self.query(query, parallel=parallel)
        warn_legacy_query("ShardedSPFresh.search")
        if k is None:
            raise TypeError("search(vector, k) requires k")
        request = QueryRequest.single(
            as_vector(query, self.shards[0].config.dim), k=k, nprobe=nprobe
        )
        return self.query(request, parallel=parallel).result

    def search_many(
        self,
        queries,
        k: int | None = None,
        nprobe: int | None = None,
        parallel: bool = False,
    ):
        """Batched facade; positional form deprecated (see docs/api.md)."""
        if isinstance(queries, QueryRequest):
            if k is not None or nprobe is not None:
                raise TypeError(
                    "pass k/nprobe inside the QueryRequest, not alongside it"
                )
            return self.query(queries, parallel=parallel)
        warn_legacy_query("ShardedSPFresh.search_many")
        if k is None:
            raise TypeError("search_many(queries, k) requires k")
        queries = as_matrix(queries, self.shards[0].config.dim)
        request = QueryRequest(vectors=queries, k=k, nprobe=nprobe)
        return list(self.query(request, parallel=parallel).results)

    # ``ServingFrontend`` resolves engines by this name too.
    search_batch = search_many

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=len(self.shards))
        return self._pool

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def drain(self) -> int:
        return sum(shard.drain() for shard in self.shards)

    def gc_pass(self) -> int:
        return sum(shard.gc_pass() for shard in self.shards)

    def close(self) -> None:
        """Shut down the thread pool and every shard's background workers.

        Idempotent. Callers that don't manage lifetimes explicitly should
        use the facade as a context manager (``with ShardedSPFresh.build(
        ...) as cluster:``) — without it, a forgotten ``close()`` leaks
        the pool's threads for the life of the process.
        """
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        for shard in self.shards:
            shard.stop()

    def __enter__(self) -> "ShardedSPFresh":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def live_vector_count(self) -> int:
        return sum(shard.live_vector_count for shard in self.shards)

    @property
    def num_postings(self) -> int:
        return sum(shard.num_postings for shard in self.shards)

    def memory_bytes(self) -> int:
        return sum(shard.memory_bytes() for shard in self.shards)

    def shard_sizes(self) -> list[int]:
        return [shard.live_vector_count for shard in self.shards]
