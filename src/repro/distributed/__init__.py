"""Distributed SPFresh (the paper's stated future work).

The paper closes with "SPFresh's solid single-node performance builds a
strong foundation for the future distributed version." This package
provides that version at reproduction scale: a shard router that
scatter-gathers queries over N independent single-node SPFresh indexes,
hash-routes updates, and aggregates checkpoints — the standard design of
production vector databases (each shard is exactly the single-node system,
unchanged).
"""

from repro.distributed.sharded import ShardedSPFresh, ShardRouter

__all__ = ["ShardedSPFresh", "ShardRouter"]
