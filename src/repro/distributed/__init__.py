"""Distributed SPFresh (the paper's stated future work).

The paper closes with "SPFresh's solid single-node performance builds a
strong foundation for the future distributed version." This package
provides that version at reproduction scale, in two tiers:

* :class:`ShardedSPFresh` — the baseline design of production vector
  databases: hash-routed updates, every query scatter-gathered over N
  independent single-node SPFresh indexes;
* :class:`ClusterSPFresh` — the cluster model ROADMAP item 2 asks for:
  accuracy-preserving centroid-aware placement
  (:class:`CentroidPlacement`) so queries probe only the shards that can
  contribute, shard splits with posting migration (LIRE at cluster
  granularity), replica groups with deterministic fan-out and
  failure/recovery, and an optional process-per-shard executor
  (:class:`ProcessShardPool`) so wall-clock shard parallelism escapes
  the GIL. See docs/distributed.md.

Each shard is exactly the single-node system, unchanged.
"""

from repro.distributed.cluster import (
    ClusterSPFresh,
    ClusterStats,
    ClusterUnavailableError,
    ShardGroup,
)
from repro.distributed.executor import ProcessShardPool, fork_available
from repro.distributed.placement import CentroidPlacement
from repro.distributed.sharded import ShardedSPFresh, ShardRouter

__all__ = [
    "CentroidPlacement",
    "ClusterSPFresh",
    "ClusterStats",
    "ClusterUnavailableError",
    "ProcessShardPool",
    "ShardGroup",
    "ShardRouter",
    "ShardedSPFresh",
    "fork_available",
]
