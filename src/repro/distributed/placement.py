"""Accuracy-preserving, centroid-aware shard placement.

Blind hash routing spreads every region of the vector space over every
shard, so a query can only be answered by broadcasting. "Scalable
Distributed Vector Search via Accuracy Preserving Index Construction"
(PAPERS.md) shows the alternative this module implements: partition the
space by *clustered centroid groups* so each shard owns a few compact
regions, keep a shard-level centroid summary on the router, and probe
only the shards whose summaries can contribute to a query.

Concretely, placement is a two-level clustering:

1. ``num_shards * centroids_per_shard`` **fine centroids** are fit over
   the base vectors with balanced k-means (the same clusterer SPANN uses
   for postings, one level up);
2. the fine centroids are themselves grouped into ``num_shards``
   size-balanced **centroid groups** — one group per shard — so nearby
   regions co-locate and every shard owns the same number of regions.

A vector's home shard is the group of its nearest fine centroid. A
query ranks shards by distance to their *nearest* group member and
probes the top ``cluster_nprobe`` — the accuracy-preserving analogue of
SPANN's nprobe, one level up. The summary is tiny (``G x dim`` floats),
so routing costs one small matrix product; the modelled cost rides in
``ClusterConfig.route_cost_us``.

The placement is mutable under growth: :meth:`split_group` carves one
shard's centroid group in two (LIRE's split discipline at cluster
granularity) and returns the row movement the cluster facade uses to
migrate postings.
"""

from __future__ import annotations

import numpy as np

from repro.clustering.balanced import balanced_kmeans
from repro.util.distance import as_matrix, pairwise_sq_l2


class CentroidPlacement:
    """Shard-level centroid summary: fine centroids grouped by shard."""

    def __init__(self, centroids: np.ndarray, shard_of_centroid: np.ndarray) -> None:
        centroids = as_matrix(centroids)
        shard_of_centroid = np.asarray(shard_of_centroid, dtype=np.int64)
        if len(centroids) != len(shard_of_centroid):
            raise ValueError("one shard assignment per fine centroid required")
        if len(centroids) == 0:
            raise ValueError("placement needs at least one fine centroid")
        self.centroids = centroids
        self.shard_of_centroid = shard_of_centroid
        self.num_shards = int(shard_of_centroid.max()) + 1
        missing = set(range(self.num_shards)) - set(
            int(s) for s in np.unique(shard_of_centroid)
        )
        if missing:
            raise ValueError(f"shards without any centroid: {sorted(missing)}")

    # ------------------------------------------------------------------
    @classmethod
    def fit(
        cls,
        vectors: np.ndarray,
        num_shards: int,
        centroids_per_shard: int = 8,
        seed: int = 0,
        sample_limit: int = 20_000,
    ) -> "CentroidPlacement":
        """Two-level balanced clustering over (a sample of) the base set."""
        if num_shards < 1:
            raise ValueError("num_shards must be at least 1")
        vectors = as_matrix(vectors)
        rng = np.random.default_rng(seed)
        if len(vectors) > sample_limit:
            picks = rng.choice(len(vectors), size=sample_limit, replace=False)
            sample = vectors[np.sort(picks)]
        else:
            sample = vectors
        fine_k = min(num_shards * centroids_per_shard, len(sample))
        if fine_k < num_shards:
            raise ValueError(
                f"{len(sample)} vectors cannot seed {num_shards} shards"
            )
        fine, _ = balanced_kmeans(sample, fine_k, rng)
        if num_shards == 1:
            groups = np.zeros(len(fine), dtype=np.int64)
        else:
            # Group the fine centroids into size-balanced meta-clusters so
            # nearby regions land on the same shard and group sizes stay
            # even (no shard owns the whole hot region, none starves). A
            # high balance weight is correct here: group evenness is the
            # placement's load-balance story.
            _, groups = balanced_kmeans(
                fine, num_shards, rng, balance_weight=64.0
            )
            groups = _compact_groups(groups, num_shards, fine, rng)
        return cls(fine, groups)

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def route_vectors(self, vectors: np.ndarray) -> np.ndarray:
        """Home shard per row: the shard owning the nearest fine centroid."""
        vectors = as_matrix(vectors, self.centroids.shape[1])
        if len(vectors) == 0:
            return np.empty(0, dtype=np.int64)
        nearest = pairwise_sq_l2(vectors, self.centroids).argmin(axis=1)
        return self.shard_of_centroid[nearest]

    def shard_distances(self, queries: np.ndarray) -> np.ndarray:
        """Per-query distance to each shard's nearest group member.

        Returns a ``(Q, num_shards)`` matrix; the routed search probes the
        ``cluster_nprobe`` smallest entries per row.
        """
        queries = as_matrix(queries, self.centroids.shape[1])
        dists = pairwise_sq_l2(queries, self.centroids)
        out = np.full((len(queries), self.num_shards), np.inf, dtype=np.float64)
        for shard in range(self.num_shards):
            members = self.shard_of_centroid == shard
            if members.any():
                out[:, shard] = dists[:, members].min(axis=1)
        return out

    def shards_for_queries(
        self, queries: np.ndarray, nprobe: int | None
    ) -> list[np.ndarray]:
        """Ranked shard ids to probe per query (all shards when ``None``)."""
        queries = as_matrix(queries, self.centroids.shape[1])
        if nprobe is None or nprobe >= self.num_shards:
            return [
                np.arange(self.num_shards, dtype=np.int64)
                for _ in range(len(queries))
            ]
        dists = self.shard_distances(queries)
        take = max(1, int(nprobe))
        order = np.argsort(dists, axis=1, kind="stable")[:, :take]
        return [row.astype(np.int64) for row in order]

    # ------------------------------------------------------------------
    # growth
    # ------------------------------------------------------------------
    def split_group(
        self, shard_id: int, new_shard_id: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Split ``shard_id``'s centroid group in two; returns moved rows.

        The group's fine centroids are re-clustered into two balanced
        halves; the half farther from the group mean moves to
        ``new_shard_id``. The caller migrates the vectors whose nearest
        fine centroid moved (cluster-granularity LIRE: split, then
        reassign whatever the new boundary reroutes). Returns the indices
        of the fine centroids now owned by the new shard.
        """
        members = np.nonzero(self.shard_of_centroid == shard_id)[0]
        if len(members) < 2:
            raise ValueError(
                f"shard {shard_id} owns {len(members)} fine centroids; "
                f"need at least 2 to split"
            )
        if new_shard_id != self.num_shards:
            raise ValueError("new shard id must extend the shard range by 1")
        group = self.centroids[members]
        _, halves = balanced_kmeans(group, 2, rng, balance_weight=64.0)
        if halves.max() == 0:  # degenerate: identical centroids
            halves[len(halves) // 2 :] = 1
        # Deterministic orientation: half 1 (the one whose mean is farther
        # from the old group mean) becomes the new shard.
        mean = group.mean(axis=0, keepdims=True)
        d0 = pairwise_sq_l2(group[halves == 0].mean(axis=0)[None], mean).item()
        d1 = pairwise_sq_l2(group[halves == 1].mean(axis=0)[None], mean).item()
        moving_half = 1 if d1 >= d0 else 0
        moved = members[halves == moving_half]
        if len(moved) == len(members):  # never strand the old shard
            moved = moved[:-1]
        self.shard_of_centroid[moved] = new_shard_id
        self.num_shards += 1
        return moved

    def group_sizes(self) -> np.ndarray:
        """Fine centroids owned per shard."""
        return np.bincount(self.shard_of_centroid, minlength=self.num_shards)


def _compact_groups(
    groups: np.ndarray,
    num_shards: int,
    fine: np.ndarray,
    rng: np.random.Generator,
) -> np.ndarray:
    """Ensure every shard owns >= 1 centroid (re-seed empties greedily)."""
    groups = groups.astype(np.int64, copy=True)
    for shard in range(num_shards):
        if not (groups == shard).any():
            # Donate from the currently largest group: its member farthest
            # from the group mean becomes the empty shard's seed region.
            donor = int(np.bincount(groups, minlength=num_shards).argmax())
            members = np.nonzero(groups == donor)[0]
            center = fine[members].mean(axis=0, keepdims=True)
            far = members[int(pairwise_sq_l2(fine[members], center).argmax())]
            groups[far] = shard
    return groups
