"""Process-per-shard executor: shard fan-out that escapes the GIL.

Threaded fan-out (``ClusterSPFresh.query(parallel=True)``) interleaves
shard work on one interpreter, so CPU-bound scans serialize on the GIL
and the wall-clock "speedup" from sharding is mostly an illusion.
:class:`ProcessShardPool` runs one persistent worker **process** per
shard, so shard scans genuinely overlap on separate cores.

Design constraints, in order of importance:

* **determinism** — the simulated clock stays the gated metric; the
  pool's job is wall-clock only, and its *answers* must be bit-identical
  to running the same sub-batches serially. The subtlety is that
  ``SPFreshIndex.query`` has maintenance side effects (it schedules
  merges for undersized postings), so parity only holds when workers
  replay the same per-shard sub-batch sequence from the same starting
  state. Fork the pool **before** driving queries through the parent's
  copies, then send every sub-batch through the pool (or compare against
  a serial replay from an identical fork-time build, as the perf
  scenario does).
* **no pickling of the index** — with the ``fork`` start method the
  worker inherits the parent's built :class:`SPFreshIndex` objects
  by address-space copy; nothing is serialized. This is why the pool
  prefers ``fork`` and why forking requires ``synchronous_rebuild``
  indexes (no live background threads to duplicate mid-state —
  enforced below).
* **graceful degradation** — on platforms without ``fork`` (Windows,
  some macOS configurations) the pool raises at construction; callers
  fall back to threads. Queries keep working either way.

Wire protocol (parent -> worker over a ``Pipe``): ``("query", vectors,
k, nprobe)`` answered with a list of per-query result tuples (ids,
distances, latency_us) — small arrays, cheap to pickle back; or
``("stop",)`` to exit. Workers are daemonic so a crashed parent cannot
leak them.
"""

from __future__ import annotations

import multiprocessing as mp

import numpy as np

from repro.api import QueryRequest


def fork_available() -> bool:
    """True when the ``fork`` start method exists on this platform."""
    return "fork" in mp.get_all_start_methods()


def _worker_loop(index, conn) -> None:
    """Worker body: answer query jobs for one inherited shard index."""
    try:
        while True:
            job = conn.recv()
            if job[0] == "stop":
                break
            _, vectors, k, nprobe = job
            request = QueryRequest(vectors=vectors, k=k, nprobe=nprobe)
            results = index.query(request)
            conn.send(
                [
                    (r.ids, r.distances, r.latency_us)
                    for r in results
                ]
            )
    finally:
        conn.close()


class ProcessShardPool:
    """One persistent forked worker process per shard index."""

    def __init__(self, indexes) -> None:
        if not fork_available():
            raise RuntimeError(
                "ProcessShardPool needs the 'fork' start method; "
                "use threaded fan-out on this platform"
            )
        for index in indexes:
            if getattr(index, "_background_running", False):
                raise RuntimeError(
                    "cannot fork an index with live background workers; "
                    "build with synchronous_rebuild=True (the default) "
                    "or stop() workers first"
                )
        ctx = mp.get_context("fork")
        self._conns = []
        self._procs = []
        for index in indexes:
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_loop, args=(index, child_conn), daemon=True
            )
            proc.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._procs.append(proc)
        self._closed = False

    def __len__(self) -> int:
        return len(self._procs)

    def query_shards(
        self, jobs: dict[int, tuple[np.ndarray, int, int | None]]
    ) -> dict[int, list[tuple[np.ndarray, np.ndarray, float]]]:
        """Fan jobs out to their shard workers; gather per-query tuples.

        ``jobs`` maps shard id -> ``(vectors, k, nprobe)``. All sends go
        out before any receive, so the workers genuinely run in parallel;
        results come back keyed by shard id as ``(ids, distances,
        latency_us)`` tuples in sub-batch order.
        """
        if self._closed:
            raise RuntimeError("pool is closed")
        order = sorted(jobs)
        for shard_id in order:
            vectors, k, nprobe = jobs[shard_id]
            self._conns[shard_id].send(("query", vectors, k, nprobe))
        return {shard_id: self._conns[shard_id].recv() for shard_id in order}

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.send(("stop",))
                conn.close()
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=5)
            if proc.is_alive():
                proc.terminate()

    def __enter__(self) -> "ProcessShardPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
