"""Clustering algorithms used to build and maintain the partitioned index.

``kmeans`` is plain Lloyd's with k-means++ seeding; ``balanced`` adds the
multi-constraint size penalty from SPANN (NeurIPS '21) that LIRE reuses for
posting splits; ``hierarchical`` composes balanced clustering recursively to
produce the large number of small, even postings the static build needs.
"""

from repro.clustering.kmeans import kmeans, kmeans_plus_plus_init
from repro.clustering.balanced import balanced_kmeans, split_in_two
from repro.clustering.hierarchical import hierarchical_balanced_clustering

__all__ = [
    "kmeans",
    "kmeans_plus_plus_init",
    "balanced_kmeans",
    "split_in_two",
    "hierarchical_balanced_clustering",
]
