"""Lloyd's k-means with k-means++ seeding.

This is the unconstrained baseline clusterer. The index build and posting
splits use the balanced variant (:mod:`repro.clustering.balanced`); plain
k-means exists both as its inner building block and as the ablation
comparator for the "balanced vs plain split" design choice in DESIGN.md.
"""

from __future__ import annotations

import numpy as np

from repro.util.distance import pairwise_sq_l2


def kmeans_plus_plus_init(
    points: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding: spread initial centroids by D^2 sampling."""
    n = len(points)
    if k <= 0:
        raise ValueError("k must be positive")
    if n == 0:
        raise ValueError("cannot seed centroids from an empty point set")
    k = min(k, n)
    first = int(rng.integers(n))
    centroids = [points[first]]
    closest = pairwise_sq_l2(points, points[first : first + 1]).ravel()
    for _ in range(1, k):
        total = float(closest.sum())
        if total <= 0.0:
            # All remaining points coincide with a chosen centroid; any
            # unpicked point works — fall back to uniform sampling.
            idx = int(rng.integers(n))
        else:
            probs = closest / total
            idx = int(rng.choice(n, p=probs))
        centroids.append(points[idx])
        dist_new = pairwise_sq_l2(points, points[idx : idx + 1]).ravel()
        np.minimum(closest, dist_new, out=closest)
    return np.vstack(centroids).astype(np.float32, copy=False)


def kmeans(
    points: np.ndarray,
    k: int,
    rng: np.random.Generator,
    max_iters: int = 25,
    tol: float = 1e-4,
) -> tuple[np.ndarray, np.ndarray]:
    """Cluster ``points`` into ``k`` groups with Lloyd's algorithm.

    Returns ``(centroids, assignments)`` where ``assignments[i]`` is the
    cluster index of ``points[i]``. Empty clusters are re-seeded from the
    point currently farthest from its centroid, so all ``k`` clusters are
    non-empty when ``len(points) >= k``.
    """
    points = np.ascontiguousarray(points, dtype=np.float32)
    n = len(points)
    k = min(k, n)
    if k == 0:
        return np.empty((0, points.shape[1]), dtype=np.float32), np.empty(
            0, dtype=np.int64
        )
    centroids = kmeans_plus_plus_init(points, k, rng)
    assignments = np.zeros(n, dtype=np.int64)
    for _ in range(max_iters):
        dists = pairwise_sq_l2(points, centroids)
        new_assignments = dists.argmin(axis=1)
        moved = 0.0
        for j in range(k):
            members = points[new_assignments == j]
            if len(members) == 0:
                # Re-seed empty cluster at the globally worst-served point.
                worst = int(dists[np.arange(n), new_assignments].argmax())
                new_centroid = points[worst]
                new_assignments[worst] = j
            else:
                new_centroid = members.mean(axis=0)
            moved += float(np.abs(new_centroid - centroids[j]).max())
            centroids[j] = new_centroid
        converged = bool(np.array_equal(new_assignments, assignments)) or moved < tol
        assignments = new_assignments
        if converged:
            break
    return centroids.astype(np.float32, copy=False), assignments
