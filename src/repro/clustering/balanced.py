"""Multi-constraint balanced clustering (SPANN's clusterer, reused by LIRE).

SPANN keeps tail latency bounded by making all postings roughly the same
size. Its balanced k-means augments the assignment step with a size
penalty: a point is assigned to ``argmin_j D(x, c_j) + lambda * count_j``
where ``count_j`` is the running size of cluster ``j`` during the pass.
The penalty couples assignments, so points are processed sequentially in a
shuffled order each round.

``split_in_two`` is the specialisation the Local Rebuilder uses to split an
oversized posting into two balanced halves (paper §4.2.1).
"""

from __future__ import annotations

import numpy as np

from repro.clustering.kmeans import kmeans_plus_plus_init
from repro.util.distance import pairwise_sq_l2


def _balance_lambda(points: np.ndarray, balance_weight: float) -> float:
    """Scale the size penalty to the data's distance magnitude.

    The raw penalty competes with squared distances, so it is normalised by
    the mean point norm spread; otherwise one fixed lambda would be either
    inert or dominant depending on vector scale.
    """
    if len(points) < 2:
        return 0.0
    spread = float(points.var(axis=0).sum())
    if spread <= 0.0:
        spread = 1.0
    return balance_weight * spread / max(len(points), 1)


def balanced_kmeans(
    points: np.ndarray,
    k: int,
    rng: np.random.Generator,
    max_iters: int = 12,
    balance_weight: float = 4.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Cluster into ``k`` size-balanced groups.

    Returns ``(centroids, assignments)``. With ``balance_weight=0`` this
    degenerates to sequential Lloyd's. Larger weights trade cluster
    compactness for size evenness; the default keeps the max/min cluster
    size ratio low without visibly hurting centroid quality, matching
    SPANN's design goal.
    """
    points = np.ascontiguousarray(points, dtype=np.float32)
    n = len(points)
    k = min(k, n)
    if k == 0:
        return np.empty((0, points.shape[1]), dtype=np.float32), np.empty(
            0, dtype=np.int64
        )
    centroids = kmeans_plus_plus_init(points, k, rng)
    assignments = np.full(n, -1, dtype=np.int64)
    lam = _balance_lambda(points, balance_weight)
    for _ in range(max_iters):
        order = rng.permutation(n)
        counts = np.zeros(k, dtype=np.float64)
        new_assignments = np.empty(n, dtype=np.int64)
        dists = pairwise_sq_l2(points, centroids).astype(np.float64)
        for i in order:
            j = int((dists[i] + lam * counts).argmin())
            new_assignments[i] = j
            counts[j] += 1.0
        for j in range(k):
            members = points[new_assignments == j]
            if len(members) > 0:
                centroids[j] = members.mean(axis=0)
        if np.array_equal(new_assignments, assignments):
            break
        assignments = new_assignments
    return centroids.astype(np.float32, copy=False), assignments


def split_in_two(
    points: np.ndarray,
    rng: np.random.Generator,
    max_iters: int = 12,
    balance_weight: float = 4.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Split a posting's vectors into two balanced clusters.

    Returns ``(centroids, assignments)`` with exactly two non-empty
    clusters. Degenerate inputs (all points identical) are split by even
    halves so the split operation always makes progress — required by the
    convergence argument in paper §3.4 (each split grows |C| by one).
    """
    points = np.ascontiguousarray(points, dtype=np.float32)
    n = len(points)
    if n < 2:
        raise ValueError("cannot split fewer than 2 points")
    centroids, assignments = balanced_kmeans(
        points, 2, rng, max_iters=max_iters, balance_weight=balance_weight
    )
    if len(centroids) < 2 or len(np.unique(assignments)) < 2:
        # All points coincide (or collapsed): force an even split.
        half = n // 2
        assignments = np.zeros(n, dtype=np.int64)
        assignments[half:] = 1
        centroids = np.vstack(
            [points[:half].mean(axis=0), points[half:].mean(axis=0)]
        ).astype(np.float32)
    return centroids, assignments
