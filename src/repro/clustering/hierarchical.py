"""Hierarchical balanced clustering for the static index build (SPANN §3.1).

Building one flat balanced k-means over millions of points with a huge k is
quadratic in k; SPANN instead recursively partitions the data with a small
branching factor until every leaf holds at most the target posting size.
The leaves become the initial postings, with centroids re-computed from
their members.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.clustering.balanced import balanced_kmeans


@dataclass
class ClusterLeaf:
    """One leaf partition: its centroid and the member row indices."""

    centroid: np.ndarray
    member_indices: np.ndarray


def hierarchical_balanced_clustering(
    points: np.ndarray,
    target_leaf_size: int,
    rng: np.random.Generator,
    branch_factor: int = 8,
    max_iters: int = 10,
    balance_weight: float = 4.0,
) -> list[ClusterLeaf]:
    """Partition ``points`` into leaves of at most ``target_leaf_size``.

    Returns leaves in deterministic order (given the RNG); every input row
    appears in exactly one leaf. The recursion splits any oversized group
    with balanced k-means; groups that refuse to shrink (duplicate-heavy
    data) are chopped into even slices to guarantee termination.
    """
    if target_leaf_size <= 0:
        raise ValueError("target_leaf_size must be positive")
    if branch_factor < 2:
        raise ValueError("branch_factor must be at least 2")
    points = np.ascontiguousarray(points, dtype=np.float32)
    leaves: list[ClusterLeaf] = []
    # Explicit stack instead of recursion: datasets can force deep trees.
    stack: list[np.ndarray] = [np.arange(len(points), dtype=np.int64)]
    while stack:
        indices = stack.pop()
        if len(indices) == 0:
            continue
        if len(indices) <= target_leaf_size:
            centroid = points[indices].mean(axis=0).astype(np.float32)
            leaves.append(ClusterLeaf(centroid=centroid, member_indices=indices))
            continue
        subset = points[indices]
        k = min(branch_factor, -(-len(indices) // target_leaf_size), len(indices))
        k = max(k, 2)
        _, assignments = balanced_kmeans(
            subset, k, rng, max_iters=max_iters, balance_weight=balance_weight
        )
        groups = [indices[assignments == j] for j in range(k)]
        groups = [g for g in groups if len(g) > 0]
        if len(groups) <= 1:
            # No progress (e.g. all-identical vectors): slice evenly.
            groups = [
                indices[start : start + target_leaf_size]
                for start in range(0, len(indices), target_leaf_size)
            ]
        stack.extend(groups)
    return leaves
