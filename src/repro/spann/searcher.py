"""Disk-posting searcher (SPANN's searcher, reused by SPFresh §4.1).

Query flow: in-memory centroid navigation → ParallelGET of candidate
postings → stale-replica filtering via the version map → vectorized scan →
replica-deduplicated top-k. The simulated latency of a query is

    io (ParallelGET waves on the device)  +
    modelled CPU (fixed navigation cost + per-entry scan cost)

and the paper's 10 ms hard cut is honoured by *truncating the probe list*:
when the full candidate fetch would blow the budget, only the prefix of
postings that fits is read and the query returns possibly-degraded results
at the budget latency — exactly the accuracy/latency coupling Figure 2 and
Figure 7 rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.centroids.base import CentroidIndex, CentroidSearchResult
from repro.metrics.profiling import NULL_PROFILER, Profiler
from repro.spann.postings import dedup_top_k, live_view
from repro.storage.controller import BlockController
from repro.util.distance import as_matrix, as_vector, pairwise_sq_l2_exact, sq_l2_batch
from repro.util.errors import StalePostingError


@dataclass
class SearchResult:
    """Outcome of one query."""

    ids: np.ndarray
    distances: np.ndarray
    latency_us: float
    postings_probed: int = 0
    entries_scanned: int = 0
    io_latency_us: float = 0.0
    truncated: bool = False
    undersized_postings: list[int] = field(default_factory=list)
    fresh_entries_scanned: int = 0  # in-memory tier rows merged into top-k

    def __len__(self) -> int:
        return len(self.ids)


class SpannSearcher:
    """Shared searcher over a centroid index + block controller."""

    def __init__(
        self,
        centroid_index: CentroidIndex,
        controller: BlockController,
        version_map=None,
        *,
        default_nprobe: int = 8,
        latency_budget_us: float | None = None,
        cpu_cost_per_entry_us: float = 0.02,
        cpu_cost_per_query_us: float = 30.0,
        min_posting_size: int = 0,
        prune_epsilon: float | None = None,
        profiler: Profiler | None = None,
        fresh_tier=None,
    ) -> None:
        self.centroid_index = centroid_index
        self.controller = controller
        self.version_map = version_map
        self.profiler = profiler or NULL_PROFILER
        self.default_nprobe = default_nprobe
        self.latency_budget_us = latency_budget_us
        self.cpu_cost_per_entry_us = cpu_cost_per_entry_us
        self.cpu_cost_per_query_us = cpu_cost_per_query_us
        self.min_posting_size = min_posting_size
        # SPANN's query-aware dynamic pruning: skip candidate postings
        # whose centroid distance exceeds (1 + eps) x the nearest centroid
        # distance — easy queries touch fewer postings. None disables.
        self.prune_epsilon = prune_epsilon
        # Optional in-memory fresh tier (repro.core.fresh_tier): its rows
        # join the candidate pool as one extra pseudo-posting, scanned with
        # the same kernels as disk postings so merged top-k stays exact.
        self.fresh_tier = fresh_tier

    # ------------------------------------------------------------------
    def _budget_prefix(
        self, posting_ids: list[int], extra_entries: int = 0
    ) -> tuple[list[int], bool]:
        """Longest prefix of candidate postings that fits the latency budget.

        The projected cost mirrors the latency actually charged to the
        query: read waves for the cumulative blocks plus the fixed
        navigation CPU plus the per-entry scan CPU — so the truncation
        decision and the reported latency agree. ``extra_entries`` seeds
        the CPU term with work outside the probe list (the fresh-tier
        scan), keeping that agreement when the tier is enabled.
        """
        if self.latency_budget_us is None:
            return posting_ids, False
        profile = self.controller.ssd.profile
        codec = self.controller.codec
        cum_blocks = 0
        cum_entries = extra_entries
        kept: list[int] = []
        for pid in posting_ids:
            try:
                length = self.controller.length(pid)
            except StalePostingError:
                continue
            blocks = codec.blocks_needed(length)
            projected = (
                profile.read_batch_latency_us(cum_blocks + blocks)
                + self.cpu_cost_per_query_us
                + self.cpu_cost_per_entry_us * (cum_entries + length)
            )
            if kept and projected > self.latency_budget_us:
                return kept, True
            kept.append(pid)
            cum_blocks += blocks
            cum_entries += length
        return kept, False

    def _prune(self, hits: CentroidSearchResult) -> list[int]:
        """Candidate posting ids after SPANN's query-aware dynamic pruning."""
        if self.prune_epsilon is not None and len(hits) > 1:
            limit = (1.0 + self.prune_epsilon) ** 2 * float(hits.distances[0])
            return [
                pid
                for pid, dist in zip(
                    hits.posting_ids.tolist(), hits.distances.tolist()
                )
                if dist <= limit
            ]
        return hits.posting_ids.tolist()

    def search(
        self, query: np.ndarray, k: int, nprobe: int | None = None
    ) -> SearchResult:
        """Return the approximate ``k`` nearest live vectors to ``query``."""
        query = as_vector(query, self.centroid_index.dim)
        nprobe = nprobe or self.default_nprobe
        fresh_ids = fresh_matrix = None
        fresh_entries = 0
        if self.fresh_tier is not None and len(self.fresh_tier) > 0:
            fresh_ids, fresh_matrix = self.fresh_tier.live_snapshot()
            fresh_entries = len(fresh_ids)
        with self.profiler.section("navigate"):
            centroid_hits = self.centroid_index.search(query, nprobe)
        candidate_pids = self._prune(centroid_hits)
        probe_pids, truncated = self._budget_prefix(candidate_pids, fresh_entries)
        postings, io_latency = self.controller.parallel_get(probe_pids)

        all_ids: list[np.ndarray] = []
        all_dists: list[np.ndarray] = []
        entries_scanned = 0
        undersized: list[int] = []
        with self.profiler.section("scan"):
            for pid in probe_pids:
                data = postings.get(pid)
                if data is None:
                    continue  # deleted concurrently; its vectors live elsewhere
                live = live_view(data, self.version_map)
                entries_scanned += len(data)
                if self.min_posting_size and len(live) < self.min_posting_size:
                    undersized.append(pid)
                if len(live) == 0:
                    continue
                all_ids.append(live.ids)
                all_dists.append(sq_l2_batch(query, live.vectors))
            if fresh_entries:
                # The tier joins as one extra pseudo-posting, scanned with
                # the identical kernel — the merged top-k is therefore
                # bit-identical to a search over an eagerly flushed index.
                all_ids.append(fresh_ids)
                all_dists.append(sq_l2_batch(query, fresh_matrix))
                entries_scanned += fresh_entries

        with self.profiler.section("topk"):
            if all_ids:
                ids = np.concatenate(all_ids)
                dists = np.concatenate(all_dists)
                top_ids, top_dists = dedup_top_k(ids, dists, k, max_dup=len(all_ids))
            else:
                top_ids = np.empty(0, dtype=np.int64)
                top_dists = np.empty(0, dtype=np.float32)

        cpu_latency = (
            self.cpu_cost_per_query_us + self.cpu_cost_per_entry_us * entries_scanned
        )
        latency = io_latency + cpu_latency
        if truncated and self.latency_budget_us is not None:
            # The hard cut charges truncated queries exactly the budget
            # (degraded results at budget latency, Figure 2/7 semantics).
            # Non-truncated queries report their true cost — clamping them
            # too would hide over-budget outliers from the measurements.
            latency = self.latency_budget_us
        return SearchResult(
            ids=top_ids,
            distances=top_dists,
            latency_us=latency,
            postings_probed=len(probe_pids),
            entries_scanned=entries_scanned,
            io_latency_us=io_latency,
            truncated=truncated,
            undersized_postings=undersized,
            fresh_entries_scanned=fresh_entries,
        )

    def _live_views(self, postings: list[tuple[int, object]]) -> dict[int, object]:
        """Per-posting live views with ONE version-map round trip.

        Equivalent to ``live_view`` per posting — ``live_mask`` is
        elementwise, so one call over the concatenated id/version columns
        slices back into bit-identical per-posting masks — but the map's
        lock and the mask arithmetic are paid once per batch instead of
        once per posting.
        """
        if self.version_map is None:
            return {pid: data for pid, data in postings}
        scored = [(pid, data) for pid, data in postings if len(data) > 0]
        out: dict[int, object] = {
            pid: data for pid, data in postings if len(data) == 0
        }
        if not scored:
            return out
        mask = self.version_map.live_mask(
            np.concatenate([data.ids for _, data in scored]),
            np.concatenate([data.versions for _, data in scored]),
        )
        if mask.all():
            # Common steady state (no pending tombstones/stale replicas):
            # every posting is fully live, skip the per-posting slicing.
            out.update(scored)
            return out
        start = 0
        for pid, data in scored:
            part = mask[start : start + len(data)]
            start += len(data)
            out[pid] = data if part.all() else data.select(part)
        return out

    def search_many(
        self, queries, k: int, nprobe: int | None = None
    ) -> list[SearchResult]:
        """Batched search: one device submission serves many queries.

        Candidate postings of all queries are unioned and fetched with a
        single ParallelGET, so the device queue amortizes across the batch
        (the paper's ParallelGET rationale, applied cross-query). Each
        returned result carries the *shared* batch I/O latency — the
        completion time of the batched submission — plus its own CPU term.
        The per-query latency budget is not applied in batch mode; query-
        aware pruning and undersized-posting (merge trigger) reporting
        match :meth:`search`, so batch workloads drive the same
        maintenance signals as single-query ones.
        """
        if isinstance(queries, np.ndarray) and queries.ndim == 2:
            queries = as_matrix(queries, self.centroid_index.dim)
        else:
            rows = [as_vector(q, self.centroid_index.dim) for q in queries]
            if not rows:
                return []
            queries = as_matrix(np.stack(rows), self.centroid_index.dim)
        if len(queries) == 0:
            return []
        nprobe = nprobe or self.default_nprobe
        fresh_ids = fresh_rows = None
        fresh_entries = 0
        if self.fresh_tier is not None and len(self.fresh_tier) > 0:
            fresh_ids, fresh_matrix = self.fresh_tier.live_snapshot()
            fresh_entries = len(fresh_ids)
            if fresh_entries:
                # One fused kernel scores the tier against the whole batch;
                # row q is bit-identical to the single-query tier scan.
                with self.profiler.section("scan"):
                    fresh_rows = pairwise_sq_l2_exact(queries, fresh_matrix)
        with self.profiler.section("navigate"):
            nav = self.centroid_index.search_batch(queries, nprobe)
        per_query_pids: list[list[int]] = []
        union: dict[int, None] = {}
        for hits in nav:
            pids = self._prune(hits)
            per_query_pids.append(pids)
            for pid in pids:
                union[pid] = None
        postings, io_latency = self.controller.parallel_get(list(union))

        # Group the scan by posting: every posting's live vectors are scored
        # against all queries that probe it with ONE fused kernel call,
        # instead of one small kernel per (query, posting) pair. Row q of
        # ``pairwise_sq_l2_exact`` is bit-identical to the per-query
        # ``sq_l2_batch``, so results match the single-query path exactly.
        queries_of: dict[int, list[int]] = {}
        for qi, pids in enumerate(per_query_pids):
            for pid in pids:
                queries_of.setdefault(pid, []).append(qi)
        # pid -> (entries on disk, live entries, live ids, per-query dist row)
        scanned: dict[int, tuple[int, int, np.ndarray | None, dict | None]] = {}
        with self.profiler.section("scan"):
            lives = self._live_views(
                [(pid, postings[pid]) for pid in queries_of if pid in postings]
            )
            for pid, qidxs in queries_of.items():
                data = postings.get(pid)
                if data is None:
                    continue  # deleted concurrently; its vectors live elsewhere
                live = lives[pid]
                if len(live) == 0:
                    scanned[pid] = (len(data), 0, None, None)
                    continue
                dists = pairwise_sq_l2_exact(queries[qidxs], live.vectors)
                scanned[pid] = (
                    len(data),
                    len(live),
                    live.ids,
                    {qi: dists[j] for j, qi in enumerate(qidxs)},
                )

        results: list[SearchResult] = []
        for qi, pids in enumerate(per_query_pids):
            all_ids: list[np.ndarray] = []
            all_dists: list[np.ndarray] = []
            entries = 0
            undersized: list[int] = []
            # Assemble in this query's candidate order so concatenation —
            # and therefore stable top-k tie-breaking — matches the
            # single-query path posting for posting.
            for pid in pids:
                info = scanned.get(pid)
                if info is None:
                    continue
                n_disk, n_live, ids_arr, rows = info
                entries += n_disk
                if self.min_posting_size and n_live < self.min_posting_size:
                    undersized.append(pid)
                if n_live == 0:
                    continue
                all_ids.append(ids_arr)
                all_dists.append(rows[qi])
            if fresh_entries:
                all_ids.append(fresh_ids)
                all_dists.append(fresh_rows[qi])
                entries += fresh_entries
            with self.profiler.section("topk"):
                if all_ids:
                    top_ids, top_dists = dedup_top_k(
                        np.concatenate(all_ids),
                        np.concatenate(all_dists),
                        k,
                        max_dup=len(all_ids),
                    )
                else:
                    top_ids = np.empty(0, dtype=np.int64)
                    top_dists = np.empty(0, dtype=np.float32)
            cpu = self.cpu_cost_per_query_us + self.cpu_cost_per_entry_us * entries
            results.append(
                SearchResult(
                    ids=top_ids,
                    distances=top_dists,
                    latency_us=io_latency + cpu,
                    postings_probed=len(pids),
                    entries_scanned=entries,
                    io_latency_us=io_latency,
                    undersized_postings=undersized,
                    fresh_entries_scanned=fresh_entries,
                )
            )
        return results
