"""Disk-posting searcher (SPANN's searcher, reused by SPFresh §4.1).

Query flow: in-memory centroid navigation → ParallelGET of candidate
postings → stale-replica filtering via the version map → vectorized scan →
replica-deduplicated top-k. The simulated latency of a query is

    io (ParallelGET waves on the device)  +
    modelled CPU (fixed navigation cost + per-entry scan cost)

and the paper's 10 ms hard cut is honoured by *truncating the probe list*:
when the full candidate fetch would blow the budget, only the prefix of
postings that fits is read and the query returns possibly-degraded results
at the budget latency — exactly the accuracy/latency coupling Figure 2 and
Figure 7 rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.centroids.base import CentroidIndex
from repro.spann.postings import dedup_top_k, live_view
from repro.storage.controller import BlockController
from repro.util.distance import as_vector, sq_l2_batch
from repro.util.errors import StalePostingError


@dataclass
class SearchResult:
    """Outcome of one query."""

    ids: np.ndarray
    distances: np.ndarray
    latency_us: float
    postings_probed: int = 0
    entries_scanned: int = 0
    io_latency_us: float = 0.0
    truncated: bool = False
    undersized_postings: list[int] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.ids)


class SpannSearcher:
    """Shared searcher over a centroid index + block controller."""

    def __init__(
        self,
        centroid_index: CentroidIndex,
        controller: BlockController,
        version_map=None,
        *,
        default_nprobe: int = 8,
        latency_budget_us: float | None = None,
        cpu_cost_per_entry_us: float = 0.02,
        cpu_cost_per_query_us: float = 30.0,
        min_posting_size: int = 0,
        prune_epsilon: float | None = None,
    ) -> None:
        self.centroid_index = centroid_index
        self.controller = controller
        self.version_map = version_map
        self.default_nprobe = default_nprobe
        self.latency_budget_us = latency_budget_us
        self.cpu_cost_per_entry_us = cpu_cost_per_entry_us
        self.cpu_cost_per_query_us = cpu_cost_per_query_us
        self.min_posting_size = min_posting_size
        # SPANN's query-aware dynamic pruning: skip candidate postings
        # whose centroid distance exceeds (1 + eps) x the nearest centroid
        # distance — easy queries touch fewer postings. None disables.
        self.prune_epsilon = prune_epsilon

    # ------------------------------------------------------------------
    def _budget_prefix(self, posting_ids: list[int]) -> tuple[list[int], bool]:
        """Longest prefix of candidate postings that fits the latency budget.

        The projected cost mirrors the latency actually charged to the
        query: read waves for the cumulative blocks plus the fixed
        navigation CPU plus the per-entry scan CPU — so the truncation
        decision and the reported latency agree.
        """
        if self.latency_budget_us is None:
            return posting_ids, False
        profile = self.controller.ssd.profile
        codec = self.controller.codec
        cum_blocks = 0
        cum_entries = 0
        kept: list[int] = []
        for pid in posting_ids:
            try:
                length = self.controller.length(pid)
            except StalePostingError:
                continue
            blocks = codec.blocks_needed(length)
            projected = (
                profile.read_batch_latency_us(cum_blocks + blocks)
                + self.cpu_cost_per_query_us
                + self.cpu_cost_per_entry_us * (cum_entries + length)
            )
            if kept and projected > self.latency_budget_us:
                return kept, True
            kept.append(pid)
            cum_blocks += blocks
            cum_entries += length
        return kept, False

    def search(
        self, query: np.ndarray, k: int, nprobe: int | None = None
    ) -> SearchResult:
        """Return the approximate ``k`` nearest live vectors to ``query``."""
        query = as_vector(query, self.centroid_index.dim)
        nprobe = nprobe or self.default_nprobe
        centroid_hits = self.centroid_index.search(query, nprobe)
        candidate_pids = [int(pid) for pid in centroid_hits.posting_ids]
        if self.prune_epsilon is not None and len(centroid_hits) > 1:
            limit = (1.0 + self.prune_epsilon) ** 2 * float(
                centroid_hits.distances[0]
            )
            candidate_pids = [
                int(pid)
                for pid, dist in zip(
                    centroid_hits.posting_ids, centroid_hits.distances
                )
                if float(dist) <= limit
            ]
        probe_pids, truncated = self._budget_prefix(candidate_pids)
        postings, io_latency = self.controller.parallel_get(probe_pids)

        all_ids: list[np.ndarray] = []
        all_dists: list[np.ndarray] = []
        entries_scanned = 0
        undersized: list[int] = []
        for pid in probe_pids:
            data = postings.get(pid)
            if data is None:
                continue  # deleted concurrently; its vectors live elsewhere
            live = live_view(data, self.version_map)
            entries_scanned += len(data)
            if self.min_posting_size and len(live) < self.min_posting_size:
                undersized.append(pid)
            if len(live) == 0:
                continue
            all_ids.append(live.ids)
            all_dists.append(sq_l2_batch(query, live.vectors))

        if all_ids:
            ids = np.concatenate(all_ids)
            dists = np.concatenate(all_dists)
            top_ids, top_dists = dedup_top_k(ids, dists, k)
        else:
            top_ids = np.empty(0, dtype=np.int64)
            top_dists = np.empty(0, dtype=np.float32)

        cpu_latency = (
            self.cpu_cost_per_query_us + self.cpu_cost_per_entry_us * entries_scanned
        )
        latency = io_latency + cpu_latency
        if truncated and self.latency_budget_us is not None:
            # The hard cut charges truncated queries exactly the budget
            # (degraded results at budget latency, Figure 2/7 semantics).
            # Non-truncated queries report their true cost — clamping them
            # too would hide over-budget outliers from the measurements.
            latency = self.latency_budget_us
        return SearchResult(
            ids=top_ids,
            distances=top_dists,
            latency_us=latency,
            postings_probed=len(probe_pids),
            entries_scanned=entries_scanned,
            io_latency_us=io_latency,
            truncated=truncated,
            undersized_postings=undersized,
        )

    def search_many(
        self, queries, k: int, nprobe: int | None = None
    ) -> list[SearchResult]:
        """Batched search: one device submission serves many queries.

        Candidate postings of all queries are unioned and fetched with a
        single ParallelGET, so the device queue amortizes across the batch
        (the paper's ParallelGET rationale, applied cross-query). Each
        returned result carries the *shared* batch I/O latency — the
        completion time of the batched submission — plus its own CPU term.
        The per-query latency budget is not applied in batch mode; query-
        aware pruning and undersized-posting (merge trigger) reporting
        match :meth:`search`, so batch workloads drive the same
        maintenance signals as single-query ones.
        """
        queries = [as_vector(q, self.centroid_index.dim) for q in queries]
        nprobe = nprobe or self.default_nprobe
        per_query_pids: list[list[int]] = []
        union: dict[int, None] = {}
        for query in queries:
            hits = self.centroid_index.search(query, nprobe)
            pids = [int(p) for p in hits.posting_ids]
            if self.prune_epsilon is not None and len(hits) > 1:
                limit = (1.0 + self.prune_epsilon) ** 2 * float(hits.distances[0])
                pids = [
                    int(pid)
                    for pid, dist in zip(hits.posting_ids, hits.distances)
                    if float(dist) <= limit
                ]
            per_query_pids.append(pids)
            for pid in pids:
                union[pid] = None
        postings, io_latency = self.controller.parallel_get(list(union))
        live_cache: dict[int, object] = {}
        results: list[SearchResult] = []
        for query, pids in zip(queries, per_query_pids):
            all_ids: list[np.ndarray] = []
            all_dists: list[np.ndarray] = []
            entries = 0
            undersized: list[int] = []
            for pid in pids:
                data = postings.get(pid)
                if data is None:
                    continue
                live = live_cache.get(pid)
                if live is None:
                    live = live_view(data, self.version_map)
                    live_cache[pid] = live
                entries += len(data)
                if self.min_posting_size and len(live) < self.min_posting_size:
                    undersized.append(pid)
                if len(live) == 0:
                    continue
                all_ids.append(live.ids)
                all_dists.append(sq_l2_batch(query, live.vectors))
            if all_ids:
                top_ids, top_dists = dedup_top_k(
                    np.concatenate(all_ids), np.concatenate(all_dists), k
                )
            else:
                top_ids = np.empty(0, dtype=np.int64)
                top_dists = np.empty(0, dtype=np.float32)
            cpu = self.cpu_cost_per_query_us + self.cpu_cost_per_entry_us * entries
            results.append(
                SearchResult(
                    ids=top_ids,
                    distances=top_dists,
                    latency_us=io_latency + cpu,
                    postings_probed=len(pids),
                    entries_scanned=entries,
                    io_latency_us=io_latency,
                    undersized_postings=undersized,
                )
            )
        return results
