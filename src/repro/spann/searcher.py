"""Disk-posting searcher (SPANN's searcher, reused by SPFresh §4.1).

Query flow: in-memory centroid navigation → ParallelGET of candidate
postings → stale-replica filtering via the version map → vectorized scan →
replica-deduplicated top-k. The simulated latency of a query is

    io (ParallelGET waves on the device)  +
    modelled CPU (fixed navigation cost + per-entry scan cost)

and the paper's 10 ms hard cut is honoured by *truncating the probe list*:
when the full candidate fetch would blow the budget, only the prefix of
postings that fits is read and the query returns possibly-degraded results
at the budget latency — exactly the accuracy/latency coupling Figure 2 and
Figure 7 rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.centroids.base import CentroidIndex, CentroidSearchResult
from repro.metrics.profiling import NULL_PROFILER, Profiler
from repro.quantize.base import adc_scan
from repro.spann.postings import dedup_top_k, live_view
from repro.storage.controller import BlockController
from repro.util.distance import (
    as_matrix,
    as_vector,
    pairwise_sq_l2_exact,
    sq_l2_batch,
    top_k_smallest,
)
from repro.util.errors import StalePostingError


@dataclass
class SearchResult:
    """Outcome of one query."""

    ids: np.ndarray
    distances: np.ndarray
    latency_us: float
    postings_probed: int = 0
    entries_scanned: int = 0
    io_latency_us: float = 0.0
    truncated: bool = False
    undersized_postings: list[int] = field(default_factory=list)
    fresh_entries_scanned: int = 0  # in-memory tier rows merged into top-k
    reranked_entries: int = 0  # exact-vector rows fetched by the rerank step

    def __len__(self) -> int:
        return len(self.ids)


class SpannSearcher:
    """Shared searcher over a centroid index + block controller."""

    def __init__(
        self,
        centroid_index: CentroidIndex,
        controller: BlockController,
        version_map=None,
        *,
        default_nprobe: int = 8,
        latency_budget_us: float | None = None,
        cpu_cost_per_entry_us: float = 0.02,
        cpu_cost_per_query_us: float = 30.0,
        min_posting_size: int = 0,
        prune_epsilon: float | None = None,
        profiler: Profiler | None = None,
        fresh_tier=None,
        rerank_k: int = 4,
    ) -> None:
        self.centroid_index = centroid_index
        self.controller = controller
        self.version_map = version_map
        self.profiler = profiler or NULL_PROFILER
        self.default_nprobe = default_nprobe
        self.latency_budget_us = latency_budget_us
        self.cpu_cost_per_entry_us = cpu_cost_per_entry_us
        self.cpu_cost_per_query_us = cpu_cost_per_query_us
        self.min_posting_size = min_posting_size
        # Quantized scan support (docs/quantization.md): when the codec is
        # sectioned, searches default to scanning compact codes with the
        # fused ADC kernel and reranking the best k * rerank_k candidates
        # against exact vectors. ``quantized=False`` per query falls back
        # to the exact full-posting scan over the same layout.
        self.rerank_k = rerank_k
        self._sectioned = bool(getattr(controller.codec, "sectioned", False))
        # SPANN's query-aware dynamic pruning: skip candidate postings
        # whose centroid distance exceeds (1 + eps) x the nearest centroid
        # distance — easy queries touch fewer postings. None disables.
        self.prune_epsilon = prune_epsilon
        # Optional in-memory fresh tier (repro.core.fresh_tier): its rows
        # join the candidate pool as one extra pseudo-posting, scanned with
        # the same kernels as disk postings so merged top-k stays exact.
        self.fresh_tier = fresh_tier

    # ------------------------------------------------------------------
    def _resolve_quantized(self, quantized: bool | None) -> bool:
        use_quant = self._sectioned if quantized is None else bool(quantized)
        if use_quant and not self._sectioned:
            raise ValueError(
                "quantized search requires a quantized (sectioned) codec"
            )
        return use_quant

    def _scan_entry_cost(self, use_quant: bool) -> float:
        """Modelled CPU per scanned entry.

        The exact scan computes a full ``dim``-component distance per
        entry; the ADC scan does ``code_bytes`` table lookups, so its
        per-entry cost shrinks by the components-touched ratio (capped at
        1: SQ8 touches every dimension and saves IO, not scan CPU).
        """
        if not use_quant:
            return self.cpu_cost_per_entry_us
        codec = self.controller.codec
        return self.cpu_cost_per_entry_us * min(1.0, codec.code_bytes / codec.dim)

    def _budget_prefix(
        self,
        posting_ids: list[int],
        extra_entries: int = 0,
        use_quant: bool = False,
    ) -> tuple[list[int], bool]:
        """Longest prefix of candidate postings that fits the latency budget.

        The projected cost mirrors the latency actually charged to the
        query: read waves for the cumulative blocks plus the fixed
        navigation CPU plus the per-entry scan CPU — so the truncation
        decision and the reported latency agree. ``extra_entries`` seeds
        the CPU term with work outside the probe list (the fresh-tier
        scan), keeping that agreement when the tier is enabled.

        Under a quantized scan the projection counts only the code-block
        prefix of each posting and the cheaper ADC per-entry cost; the
        rerank fetch is bounded by ``k * rerank_k`` rows and is not part
        of the truncation decision (it is still charged to the reported
        latency of non-truncated queries).
        """
        if self.latency_budget_us is None:
            return posting_ids, False
        profile = self.controller.ssd.profile
        codec = self.controller.codec
        entry_cost = self._scan_entry_cost(use_quant)
        cum_blocks = 0
        cum_cpu = self.cpu_cost_per_query_us + self.cpu_cost_per_entry_us * (
            extra_entries
        )
        kept: list[int] = []
        for pid in posting_ids:
            try:
                length = self.controller.length(pid)
            except StalePostingError:
                continue
            blocks = (
                codec.scan_blocks_needed(length)
                if use_quant
                else codec.blocks_needed(length)
            )
            projected = (
                profile.read_batch_latency_us(cum_blocks + blocks)
                + cum_cpu
                + entry_cost * length
            )
            if kept and projected > self.latency_budget_us:
                return kept, True
            kept.append(pid)
            cum_blocks += blocks
            cum_cpu += entry_cost * length
        return kept, False

    def _prune(self, hits: CentroidSearchResult) -> list[int]:
        """Candidate posting ids after SPANN's query-aware dynamic pruning."""
        if self.prune_epsilon is not None and len(hits) > 1:
            limit = (1.0 + self.prune_epsilon) ** 2 * float(hits.distances[0])
            return [
                pid
                for pid, dist in zip(
                    hits.posting_ids.tolist(), hits.distances.tolist()
                )
                if dist <= limit
            ]
        return hits.posting_ids.tolist()

    def search(
        self,
        query: np.ndarray,
        k: int,
        nprobe: int | None = None,
        *,
        rerank_k: int | None = None,
        quantized: bool | None = None,
    ) -> SearchResult:
        """Return the approximate ``k`` nearest live vectors to ``query``.

        ``quantized`` overrides the codec-derived default (compressed scan
        iff the index stores codes); ``rerank_k`` overrides the searcher's
        rerank candidate multiplier for this query only.
        """
        query = as_vector(query, self.centroid_index.dim)
        nprobe = nprobe or self.default_nprobe
        use_quant = self._resolve_quantized(quantized)
        if use_quant:
            return self._search_quantized(
                query, k, nprobe, rerank_k=rerank_k or self.rerank_k
            )
        fresh_ids = fresh_matrix = None
        fresh_entries = 0
        if self.fresh_tier is not None and len(self.fresh_tier) > 0:
            fresh_ids, fresh_matrix = self.fresh_tier.live_snapshot()
            fresh_entries = len(fresh_ids)
        with self.profiler.section("navigate"):
            centroid_hits = self.centroid_index.search(query, nprobe)
        candidate_pids = self._prune(centroid_hits)
        probe_pids, truncated = self._budget_prefix(candidate_pids, fresh_entries)
        postings, io_latency = self.controller.parallel_get(probe_pids)

        all_ids: list[np.ndarray] = []
        all_dists: list[np.ndarray] = []
        entries_scanned = 0
        undersized: list[int] = []
        with self.profiler.section("scan"):
            for pid in probe_pids:
                data = postings.get(pid)
                if data is None:
                    continue  # deleted concurrently; its vectors live elsewhere
                live = live_view(data, self.version_map)
                entries_scanned += len(data)
                if self.min_posting_size and len(live) < self.min_posting_size:
                    undersized.append(pid)
                if len(live) == 0:
                    continue
                all_ids.append(live.ids)
                all_dists.append(sq_l2_batch(query, live.vectors))
            if fresh_entries:
                # The tier joins as one extra pseudo-posting, scanned with
                # the identical kernel — the merged top-k is therefore
                # bit-identical to a search over an eagerly flushed index.
                all_ids.append(fresh_ids)
                all_dists.append(sq_l2_batch(query, fresh_matrix))
                entries_scanned += fresh_entries

        with self.profiler.section("topk"):
            if all_ids:
                ids = np.concatenate(all_ids)
                dists = np.concatenate(all_dists)
                top_ids, top_dists = dedup_top_k(ids, dists, k, max_dup=len(all_ids))
            else:
                top_ids = np.empty(0, dtype=np.int64)
                top_dists = np.empty(0, dtype=np.float32)

        cpu_latency = (
            self.cpu_cost_per_query_us + self.cpu_cost_per_entry_us * entries_scanned
        )
        latency = io_latency + cpu_latency
        if truncated and self.latency_budget_us is not None:
            # The hard cut charges truncated queries exactly the budget
            # (degraded results at budget latency, Figure 2/7 semantics).
            # Non-truncated queries report their true cost — clamping them
            # too would hide over-budget outliers from the measurements.
            latency = self.latency_budget_us
        return SearchResult(
            ids=top_ids,
            distances=top_dists,
            latency_us=latency,
            postings_probed=len(probe_pids),
            entries_scanned=entries_scanned,
            io_latency_us=io_latency,
            truncated=truncated,
            undersized_postings=undersized,
            fresh_entries_scanned=fresh_entries,
        )

    def _live_masks(self, items: list[tuple[int, object]]) -> dict[int, object]:
        """Per-posting live masks with ONE version-map round trip.

        ``None`` for a posting means every entry is live (the common
        steady state and the version-map-less case) — callers use it to
        skip the masking entirely.
        """
        if self.version_map is None:
            return {pid: None for pid, _ in items}
        scored = [(pid, data) for pid, data in items if len(data) > 0]
        out: dict[int, object] = {pid: None for pid, data in items if len(data) == 0}
        if not scored:
            return out
        mask = self.version_map.live_mask(
            np.concatenate([data.ids for _, data in scored]),
            np.concatenate([data.versions for _, data in scored]),
        )
        if mask.all():
            out.update({pid: None for pid, _ in scored})
            return out
        start = 0
        for pid, data in scored:
            part = mask[start : start + len(data)]
            start += len(data)
            out[pid] = None if part.all() else part
        return out

    def _search_quantized(
        self, query: np.ndarray, k: int, nprobe: int, *, rerank_k: int
    ) -> SearchResult:
        """Compressed scan + exact rerank (docs/quantization.md).

        ParallelGET touches only the code sections; the fused ADC kernel
        scores every live candidate; the global best ``k * rerank_k``
        rows are then reranked against exact vectors fetched with one
        row-targeted read. With ``rerank_k`` large enough to cover every
        live candidate the result is bit-identical to the exact path:
        selected rows are re-sorted ascending (original posting order),
        ``sq_l2_batch`` is per-row independent, postings assemble in
        probe order, and the fresh tier — always scanned exactly —
        appends last, so the final ``dedup_top_k`` sees the same
        (ids, distances) stream.
        """
        quantizer = self.controller.codec.quantizer
        fresh_ids = fresh_matrix = None
        fresh_entries = 0
        if self.fresh_tier is not None and len(self.fresh_tier) > 0:
            fresh_ids, fresh_matrix = self.fresh_tier.live_snapshot()
            fresh_entries = len(fresh_ids)
        with self.profiler.section("navigate"):
            centroid_hits = self.centroid_index.search(query, nprobe)
        candidate_pids = self._prune(centroid_hits)
        probe_pids, truncated = self._budget_prefix(
            candidate_pids, fresh_entries, use_quant=True
        )
        code_map, io_latency = self.controller.parallel_get_codes(probe_pids)

        # Stage 1: ADC scan over the live code rows of every probed posting
        # with one fused kernel call across the whole candidate pool.
        entries_scanned = 0
        undersized: list[int] = []
        pool: list[tuple[int, np.ndarray, np.ndarray, np.ndarray]] = []
        with self.profiler.section("scan"):
            masks = self._live_masks(
                [(pid, code_map[pid]) for pid in probe_pids if pid in code_map]
            )
            for pid in probe_pids:
                codes = code_map.get(pid)
                if codes is None:
                    continue  # deleted concurrently; its vectors live elsewhere
                entries_scanned += len(codes)
                mask = masks[pid]
                if mask is None:
                    live_rows = np.arange(len(codes), dtype=np.intp)
                    live_ids, live_codes = codes.ids, codes.codes
                else:
                    live_rows = np.nonzero(mask)[0]
                    live_ids, live_codes = codes.ids[mask], codes.codes[mask]
                if self.min_posting_size and len(live_rows) < self.min_posting_size:
                    undersized.append(pid)
                if len(live_rows) == 0:
                    continue
                pool.append((pid, live_rows, live_ids, live_codes))
            if pool:
                with self.profiler.section("tables"):
                    tables = quantizer.distance_tables(query.reshape(1, -1))
                adc = adc_scan(tables, np.concatenate([p[3] for p in pool]))[0]
            else:
                adc = np.empty(0, dtype=np.float32)

        # Stage 2: pick the global best k * rerank_k rows and fetch their
        # exact vectors with one row-targeted submission. Closure
        # assignment replicates boundary vectors into neighboring
        # postings and replicas share one code, so rank only the first
        # copy of each id — otherwise replicas crowd distinct candidates
        # out of the rerank budget.
        with self.profiler.section("topk"):
            if len(adc):
                ids_cat = np.concatenate([p[2] for p in pool])
                _, first = np.unique(ids_cat, return_index=True)
                selected = first[top_k_smallest(adc[first], k * rerank_k)]
            else:
                selected = np.empty(0, dtype=np.int64)
        bounds = np.cumsum([0] + [len(p[1]) for p in pool])
        requests: list[tuple[int, np.ndarray]] = []
        chosen: list[tuple[int, np.ndarray]] = []  # (pool idx, local rows)
        if len(selected):
            owner = np.searchsorted(bounds, selected, side="right") - 1
            for pi in np.unique(owner):
                # Ascending row order == original posting order, which is
                # what makes the rerank-everything case bit-identical.
                local = np.sort(selected[owner == pi] - bounds[pi])
                pid, live_rows, _, _ = pool[pi]
                requests.append((pid, live_rows[local]))
                chosen.append((int(pi), local))
        fetched, rerank_io = self.controller.parallel_get_vector_rows(requests)
        io_latency += rerank_io

        all_ids: list[np.ndarray] = []
        all_dists: list[np.ndarray] = []
        reranked = 0
        with self.profiler.section("rerank"):
            for pi, local in chosen:
                pid, _, live_ids, _ = pool[pi]
                vectors = fetched.get(pid)
                if vectors is None:
                    continue  # vanished between the two reads
                reranked += len(local)
                all_ids.append(live_ids[local])
                all_dists.append(sq_l2_batch(query, vectors))
            if fresh_entries:
                all_ids.append(fresh_ids)
                all_dists.append(sq_l2_batch(query, fresh_matrix))
                entries_scanned += fresh_entries

        with self.profiler.section("topk"):
            if all_ids:
                ids = np.concatenate(all_ids)
                dists = np.concatenate(all_dists)
                top_ids, top_dists = dedup_top_k(ids, dists, k, max_dup=len(all_ids))
            else:
                top_ids = np.empty(0, dtype=np.int64)
                top_dists = np.empty(0, dtype=np.float32)

        disk_entries = entries_scanned - fresh_entries
        cpu_latency = self.cpu_cost_per_query_us + self.cpu_cost_per_entry_us * (
            fresh_entries + reranked
        )
        cpu_latency += self._scan_entry_cost(True) * disk_entries
        latency = io_latency + cpu_latency
        if truncated and self.latency_budget_us is not None:
            latency = self.latency_budget_us
        return SearchResult(
            ids=top_ids,
            distances=top_dists,
            latency_us=latency,
            postings_probed=len(probe_pids),
            entries_scanned=entries_scanned,
            io_latency_us=io_latency,
            truncated=truncated,
            undersized_postings=undersized,
            fresh_entries_scanned=fresh_entries,
            reranked_entries=reranked,
        )

    def _live_views(self, postings: list[tuple[int, object]]) -> dict[int, object]:
        """Per-posting live views with ONE version-map round trip.

        Equivalent to ``live_view`` per posting — ``live_mask`` is
        elementwise, so one call over the concatenated id/version columns
        slices back into bit-identical per-posting masks — but the map's
        lock and the mask arithmetic are paid once per batch instead of
        once per posting.
        """
        if self.version_map is None:
            return {pid: data for pid, data in postings}
        scored = [(pid, data) for pid, data in postings if len(data) > 0]
        out: dict[int, object] = {
            pid: data for pid, data in postings if len(data) == 0
        }
        if not scored:
            return out
        mask = self.version_map.live_mask(
            np.concatenate([data.ids for _, data in scored]),
            np.concatenate([data.versions for _, data in scored]),
        )
        if mask.all():
            # Common steady state (no pending tombstones/stale replicas):
            # every posting is fully live, skip the per-posting slicing.
            out.update(scored)
            return out
        start = 0
        for pid, data in scored:
            part = mask[start : start + len(data)]
            start += len(data)
            out[pid] = data if part.all() else data.select(part)
        return out

    def search_many(
        self,
        queries,
        k: int,
        nprobe: int | None = None,
        *,
        rerank_k: int | None = None,
        quantized: bool | None = None,
    ) -> list[SearchResult]:
        """Batched search: one device submission serves many queries.

        Candidate postings of all queries are unioned and fetched with a
        single ParallelGET, so the device queue amortizes across the batch
        (the paper's ParallelGET rationale, applied cross-query). Each
        returned result carries the *shared* batch I/O latency — the
        completion time of the batched submission — plus its own CPU term.
        The per-query latency budget is not applied in batch mode; query-
        aware pruning and undersized-posting (merge trigger) reporting
        match :meth:`search`, so batch workloads drive the same
        maintenance signals as single-query ones. ``quantized`` and
        ``rerank_k`` behave as in :meth:`search`.
        """
        if isinstance(queries, np.ndarray) and queries.ndim == 2:
            queries = as_matrix(queries, self.centroid_index.dim)
        else:
            rows = [as_vector(q, self.centroid_index.dim) for q in queries]
            if not rows:
                return []
            queries = as_matrix(np.stack(rows), self.centroid_index.dim)
        if len(queries) == 0:
            return []
        nprobe = nprobe or self.default_nprobe
        use_quant = self._resolve_quantized(quantized)
        if use_quant:
            return self._search_many_quantized(
                queries, k, nprobe, rerank_k=rerank_k or self.rerank_k
            )
        fresh_ids = fresh_rows = None
        fresh_entries = 0
        if self.fresh_tier is not None and len(self.fresh_tier) > 0:
            fresh_ids, fresh_matrix = self.fresh_tier.live_snapshot()
            fresh_entries = len(fresh_ids)
            if fresh_entries:
                # One fused kernel scores the tier against the whole batch;
                # row q is bit-identical to the single-query tier scan.
                with self.profiler.section("scan"):
                    fresh_rows = pairwise_sq_l2_exact(queries, fresh_matrix)
        with self.profiler.section("navigate"):
            nav = self.centroid_index.search_batch(queries, nprobe)
        per_query_pids: list[list[int]] = []
        union: dict[int, None] = {}
        for hits in nav:
            pids = self._prune(hits)
            per_query_pids.append(pids)
            for pid in pids:
                union[pid] = None
        postings, io_latency = self.controller.parallel_get(list(union))

        # Group the scan by posting: every posting's live vectors are scored
        # against all queries that probe it with ONE fused kernel call,
        # instead of one small kernel per (query, posting) pair. Row q of
        # ``pairwise_sq_l2_exact`` is bit-identical to the per-query
        # ``sq_l2_batch``, so results match the single-query path exactly.
        queries_of: dict[int, list[int]] = {}
        for qi, pids in enumerate(per_query_pids):
            for pid in pids:
                queries_of.setdefault(pid, []).append(qi)
        # pid -> (entries on disk, live entries, live ids, per-query dist row)
        scanned: dict[int, tuple[int, int, np.ndarray | None, dict | None]] = {}
        with self.profiler.section("scan"):
            lives = self._live_views(
                [(pid, postings[pid]) for pid in queries_of if pid in postings]
            )
            for pid, qidxs in queries_of.items():
                data = postings.get(pid)
                if data is None:
                    continue  # deleted concurrently; its vectors live elsewhere
                live = lives[pid]
                if len(live) == 0:
                    scanned[pid] = (len(data), 0, None, None)
                    continue
                dists = pairwise_sq_l2_exact(queries[qidxs], live.vectors)
                scanned[pid] = (
                    len(data),
                    len(live),
                    live.ids,
                    {qi: dists[j] for j, qi in enumerate(qidxs)},
                )

        results: list[SearchResult] = []
        for qi, pids in enumerate(per_query_pids):
            all_ids: list[np.ndarray] = []
            all_dists: list[np.ndarray] = []
            entries = 0
            undersized: list[int] = []
            # Assemble in this query's candidate order so concatenation —
            # and therefore stable top-k tie-breaking — matches the
            # single-query path posting for posting.
            for pid in pids:
                info = scanned.get(pid)
                if info is None:
                    continue
                n_disk, n_live, ids_arr, rows = info
                entries += n_disk
                if self.min_posting_size and n_live < self.min_posting_size:
                    undersized.append(pid)
                if n_live == 0:
                    continue
                all_ids.append(ids_arr)
                all_dists.append(rows[qi])
            if fresh_entries:
                all_ids.append(fresh_ids)
                all_dists.append(fresh_rows[qi])
                entries += fresh_entries
            with self.profiler.section("topk"):
                if all_ids:
                    top_ids, top_dists = dedup_top_k(
                        np.concatenate(all_ids),
                        np.concatenate(all_dists),
                        k,
                        max_dup=len(all_ids),
                    )
                else:
                    top_ids = np.empty(0, dtype=np.int64)
                    top_dists = np.empty(0, dtype=np.float32)
            cpu = self.cpu_cost_per_query_us + self.cpu_cost_per_entry_us * entries
            results.append(
                SearchResult(
                    ids=top_ids,
                    distances=top_dists,
                    latency_us=io_latency + cpu,
                    postings_probed=len(pids),
                    entries_scanned=entries,
                    io_latency_us=io_latency,
                    undersized_postings=undersized,
                    fresh_entries_scanned=fresh_entries,
                )
            )
        return results

    def _search_many_quantized(
        self, queries: np.ndarray, k: int, nprobe: int, *, rerank_k: int
    ) -> list[SearchResult]:
        """Batched compressed scan + exact rerank.

        Structure mirrors the exact :meth:`search_many`: one unioned
        code-section ParallelGET, the scan grouped by posting (one fused
        ADC call per posting over every query probing it, against tables
        computed once per batch), then ONE row-targeted vector fetch
        covering the union of every query's rerank survivors. Per query
        the rerank columns are sliced from a shared per-posting
        ``pairwise_sq_l2_exact`` — per-element identical to the
        single-query ``sq_l2_batch`` — so rerank-everything stays
        bit-identical to the exact batch path (and hence to ``search``).
        """
        quantizer = self.controller.codec.quantizer
        fresh_ids = fresh_rows = None
        fresh_entries = 0
        if self.fresh_tier is not None and len(self.fresh_tier) > 0:
            fresh_ids, fresh_matrix = self.fresh_tier.live_snapshot()
            fresh_entries = len(fresh_ids)
            if fresh_entries:
                with self.profiler.section("scan"):
                    fresh_rows = pairwise_sq_l2_exact(queries, fresh_matrix)
        with self.profiler.section("navigate"):
            nav = self.centroid_index.search_batch(queries, nprobe)
        per_query_pids: list[list[int]] = []
        union: dict[int, None] = {}
        for hits in nav:
            pids = self._prune(hits)
            per_query_pids.append(pids)
            for pid in pids:
                union[pid] = None
        code_map, io_latency = self.controller.parallel_get_codes(list(union))

        queries_of: dict[int, list[int]] = {}
        for qi, pids in enumerate(per_query_pids):
            for pid in pids:
                queries_of.setdefault(pid, []).append(qi)

        # Stage 1: ADC-scan each posting's live codes against every query
        # probing it. pid -> (entries on disk, live rows, live ids,
        # {query: adc row}).
        scanned: dict[int, tuple[int, np.ndarray, np.ndarray, dict | None]] = {}
        with self.profiler.section("tables"):
            tables = quantizer.distance_tables(queries)
        with self.profiler.section("scan"):
            masks = self._live_masks(
                [(pid, code_map[pid]) for pid in queries_of if pid in code_map]
            )
            empty_rows = np.empty(0, dtype=np.intp)
            empty_ids = np.empty(0, dtype=np.int64)
            for pid, qidxs in queries_of.items():
                codes = code_map.get(pid)
                if codes is None:
                    continue  # deleted concurrently; its vectors live elsewhere
                mask = masks[pid]
                if mask is None:
                    live_rows = np.arange(len(codes), dtype=np.intp)
                    live_ids, live_codes = codes.ids, codes.codes
                else:
                    live_rows = np.nonzero(mask)[0]
                    live_ids, live_codes = codes.ids[mask], codes.codes[mask]
                if len(live_rows) == 0:
                    scanned[pid] = (len(codes), empty_rows, empty_ids, None)
                    continue
                adc = adc_scan(tables, live_codes, query_rows=qidxs)
                scanned[pid] = (
                    len(codes),
                    live_rows,
                    live_ids,
                    {qi: adc[j] for j, qi in enumerate(qidxs)},
                )

        # Stage 2: per query, select the global best k * rerank_k ADC
        # candidates; union each posting's selected rows across queries
        # into ONE row-targeted vector fetch.
        selections: list[list[tuple[int, np.ndarray]]] = []  # per query
        rows_needed: dict[int, list[np.ndarray]] = {}
        for qi, pids in enumerate(per_query_pids):
            parts_pid: list[int] = []
            parts_adc: list[np.ndarray] = []
            parts_ids: list[np.ndarray] = []
            for pid in pids:
                info = scanned.get(pid)
                if info is None or info[3] is None:
                    continue
                parts_pid.append(pid)
                parts_adc.append(info[3][qi])
                parts_ids.append(info[2])
            picks: list[tuple[int, np.ndarray]] = []
            if parts_adc:
                adc_all = np.concatenate(parts_adc)
                with self.profiler.section("topk"):
                    # Rank only the first closure copy of each id, as in
                    # the single-query path.
                    _, first = np.unique(
                        np.concatenate(parts_ids), return_index=True
                    )
                    selected = first[top_k_smallest(adc_all[first], k * rerank_k)]
                if len(selected):
                    bounds = np.cumsum([0] + [len(a) for a in parts_adc])
                    owner = np.searchsorted(bounds, selected, side="right") - 1
                    for pi in np.unique(owner):
                        local = np.sort(selected[owner == pi] - bounds[pi])
                        pid = parts_pid[pi]
                        picks.append((pid, local))
                        rows_needed.setdefault(pid, []).append(local)
            selections.append(picks)

        requests: list[tuple[int, np.ndarray]] = []
        fetched_local: dict[int, np.ndarray] = {}  # pid -> union of local rows
        for pid, locals_ in rows_needed.items():
            union_local = np.unique(np.concatenate(locals_))
            fetched_local[pid] = union_local
            _, live_rows, _, _ = scanned[pid]
            requests.append((pid, live_rows[union_local]))
        fetched, rerank_io = self.controller.parallel_get_vector_rows(requests)
        io_latency += rerank_io

        # Stage 3: every (query, fetched row) rerank pair in ONE fused
        # exact kernel — same diff-then-einsum ops as ``sq_l2_batch``, so
        # per-pair distances stay bit-identical to the single-query path.
        # Per-(query, posting) distance spans slice out of the flat result.
        base_of: dict[int, int] = {}
        offset = 0
        for pid, union_local in fetched_local.items():
            if fetched.get(pid) is None:
                continue  # vanished between the two reads
            base_of[pid] = offset
            offset += len(union_local)
        pair_q: list[np.ndarray] = []
        pair_v: list[np.ndarray] = []
        spans: list[dict[int, tuple[np.ndarray, int]]] = []  # per query
        pos = 0
        for qi, picks in enumerate(selections):
            entry: dict[int, tuple[np.ndarray, int]] = {}
            for pid, local in picks:
                if pid not in base_of:
                    continue
                cols = np.searchsorted(fetched_local[pid], local)
                pair_q.append(np.full(len(local), qi, dtype=np.intp))
                pair_v.append(base_of[pid] + cols)
                entry[pid] = (local, pos)
                pos += len(local)
            spans.append(entry)
        with self.profiler.section("rerank"):
            if pair_q:
                v_cat = np.concatenate(
                    [fetched[pid] for pid in base_of]
                )
                qp = np.concatenate(pair_q)
                vp = np.concatenate(pair_v)
                diff = v_cat[vp] - queries[qp]
                pair_dists = np.einsum("ij,ij->i", diff, diff).astype(
                    np.float32, copy=False
                )
            else:
                pair_dists = np.empty(0, dtype=np.float32)

        results: list[SearchResult] = []
        for qi, pids in enumerate(per_query_pids):
            all_ids: list[np.ndarray] = []
            all_dists: list[np.ndarray] = []
            entries = 0
            reranked = 0
            undersized: list[int] = []
            picks = spans[qi]
            for pid in pids:
                info = scanned.get(pid)
                if info is None:
                    continue
                n_disk, live_rows, live_ids, _ = info
                entries += n_disk
                if self.min_posting_size and len(live_rows) < self.min_posting_size:
                    undersized.append(pid)
                got = picks.get(pid)
                if got is None:
                    continue
                local, start = got
                all_ids.append(live_ids[local])
                all_dists.append(pair_dists[start : start + len(local)])
                reranked += len(local)
            if fresh_entries:
                all_ids.append(fresh_ids)
                all_dists.append(fresh_rows[qi])
                entries += fresh_entries
            with self.profiler.section("topk"):
                if all_ids:
                    top_ids, top_dists = dedup_top_k(
                        np.concatenate(all_ids),
                        np.concatenate(all_dists),
                        k,
                        max_dup=len(all_ids),
                    )
                else:
                    top_ids = np.empty(0, dtype=np.int64)
                    top_dists = np.empty(0, dtype=np.float32)
            disk_entries = entries - fresh_entries
            cpu = self.cpu_cost_per_query_us + self.cpu_cost_per_entry_us * (
                fresh_entries + reranked
            )
            cpu += self._scan_entry_cost(True) * disk_entries
            results.append(
                SearchResult(
                    ids=top_ids,
                    distances=top_dists,
                    latency_us=io_latency + cpu,
                    postings_probed=len(pids),
                    entries_scanned=entries,
                    io_latency_us=io_latency,
                    undersized_postings=undersized,
                    fresh_entries_scanned=fresh_entries,
                    reranked_entries=reranked,
                )
            )
        return results
