"""Closure (multi-)assignment with boundary replication (SPANN §3.1).

SPANN replicates vectors near partition boundaries into several postings so
that a query probing only a few postings still finds them. A vector joins a
posting when the posting's centroid is within ``(1 + epsilon)`` of its
nearest centroid's distance, capped at ``replica_count`` postings, with an
RNG-style diversity rule that skips a candidate centroid dominated by an
already-chosen one (closer to that choice than to the vector).
"""

from __future__ import annotations

import numpy as np

from repro.util.distance import pairwise_sq_l2, sq_l2


def select_replicas(
    candidate_ids: np.ndarray,
    candidate_dists: np.ndarray,
    replica_count: int,
    epsilon: float,
    centroid_getter=None,
) -> list[int]:
    """Pick replica postings for one vector from sorted centroid candidates.

    ``candidate_ids``/``candidate_dists`` come from a centroid-index search,
    ascending by squared distance. ``centroid_getter(pid)`` enables the RNG
    diversity rule; pass None to use the pure distance-ratio rule.
    Always returns at least the nearest candidate.
    """
    if len(candidate_ids) == 0:
        return []
    limit = (1.0 + epsilon) ** 2 * float(candidate_dists[0])
    chosen: list[int] = [int(candidate_ids[0])]
    for pid, dist in zip(candidate_ids[1:], candidate_dists[1:]):
        if len(chosen) >= replica_count:
            break
        if float(dist) > limit:
            break
        if centroid_getter is not None:
            candidate_vec = centroid_getter(int(pid))
            if candidate_vec is None:
                continue  # posting vanished concurrently; skip it
            dominated = False
            for prev in chosen:
                prev_vec = centroid_getter(prev)
                if prev_vec is None:
                    continue
                if sq_l2(prev_vec, candidate_vec) < float(dist):
                    dominated = True
                    break
            if dominated:
                continue
        chosen.append(int(pid))
    return chosen


def closure_assign(
    vectors: np.ndarray,
    centroids: np.ndarray,
    replica_count: int,
    epsilon: float,
    chunk_size: int = 2048,
    use_rng_rule: bool = True,
) -> tuple[list[list[int]], np.ndarray]:
    """Batch closure assignment for the static build.

    Returns ``(members, primary)`` where ``members[j]`` lists vector row
    indices assigned to posting ``j`` (primary plus replicas) and
    ``primary[i]`` is row ``i``'s nearest posting. Memory is bounded by
    chunking the all-pairs distance computation.
    """
    n = len(vectors)
    m = len(centroids)
    if m == 0:
        raise ValueError("closure_assign needs at least one centroid")
    members: list[list[int]] = [[] for _ in range(m)]
    primary = np.empty(n, dtype=np.int64)
    cap = min(replica_count, m)
    centroid_self = pairwise_sq_l2(centroids, centroids) if use_rng_rule else None
    for start in range(0, n, chunk_size):
        stop = min(start + chunk_size, n)
        dists = pairwise_sq_l2(vectors[start:stop], centroids)
        # Partial sort: only the nearest `cap` centroids can be replicas.
        nearest = np.argpartition(dists, cap - 1, axis=1)[:, :cap] if cap < m else (
            np.tile(np.arange(m), (stop - start, 1))
        )
        for row in range(stop - start):
            cand = nearest[row]
            order = cand[np.argsort(dists[row, cand], kind="stable")]
            d_sorted = dists[row, order]
            limit = (1.0 + epsilon) ** 2 * float(d_sorted[0])
            chosen = [int(order[0])]
            for cid, dist in zip(order[1:], d_sorted[1:]):
                if len(chosen) >= cap:
                    break
                if float(dist) > limit:
                    break
                if centroid_self is not None and any(
                    centroid_self[cid, prev] < float(dist) for prev in chosen
                ):
                    continue
                chosen.append(int(cid))
            primary[start + row] = chosen[0]
            for cid in chosen:
                members[cid].append(start + row)
    return members, primary
