"""Posting-scan helpers shared by the searcher and the Local Rebuilder."""

from __future__ import annotations

import numpy as np

from repro.storage.layout import PostingData


def live_view(data: PostingData, version_map=None) -> PostingData:
    """Filter a decoded posting down to live entries.

    An entry is live when the version map confirms its id is registered,
    undeleted, and its stored version is current. ``version_map=None``
    treats everything as live (static-index paths and tests).
    """
    if version_map is None or len(data) == 0:
        return data
    mask = version_map.live_mask(data.ids, data.versions)
    if mask.all():
        return data
    return data.select(mask)


def dedup_top_k(
    ids: np.ndarray, distances: np.ndarray, k: int, max_dup: int | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Top-k by ascending distance with replica de-duplication.

    Boundary replication stores a vector in several postings, so a probe
    can surface the same id multiple times; only the closest instance (they
    are identical vectors, so equal distances) must be kept.

    ``max_dup`` is an optional *estimate* of how many times one id can
    occur (the searcher passes the number of candidate arrays — a live id
    usually appears at most once per posting). When set, candidates
    strictly worse than the ``k * max_dup``-th smallest distance are
    dropped with a cheap partition before the full sort: the surviving
    prefix normally spans at least ``k`` distinct ids, every id in the
    true answer keeps its best occurrence (ties at the cutoff are
    retained), and the result is identical to ``max_dup=None``. The
    estimate can undercount — a merge may co-locate two live boundary
    replicas of the same id in one posting — so when the capped prefix
    comes up with fewer than ``k`` unique ids the computation falls back
    to the uncapped exact path, keeping the prefilter an optimization
    rather than a correctness assumption.
    """
    if len(ids) == 0 or k <= 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float32)
    if max_dup is not None and max_dup > 0:
        cap = k * max_dup
        if cap < len(ids):
            kth = np.partition(distances, cap - 1)[cap - 1]
            if np.isfinite(kth):
                keep = distances <= kth
                top_ids, top_dists = _exact_dedup_top_k(
                    ids[keep], distances[keep], k
                )
                if len(top_ids) == k:
                    # The prefix held k distinct ids, so every id of the
                    # true answer kept its best occurrence — exact result.
                    return top_ids, top_dists
    return _exact_dedup_top_k(ids, distances, k)


def _exact_dedup_top_k(
    ids: np.ndarray, distances: np.ndarray, k: int
) -> tuple[np.ndarray, np.ndarray]:
    order = np.argsort(distances, kind="stable")
    ids_sorted = ids[order]
    dists_sorted = distances[order]
    _, first_idx = np.unique(ids_sorted, return_index=True)
    keep = np.sort(first_idx)[: max(k, 0)]
    # `first_idx` points at each id's best-ranked occurrence; sorting the
    # kept positions restores ascending-distance order.
    keep = keep[np.argsort(dists_sorted[keep], kind="stable")][:k]
    return ids_sorted[keep].astype(np.int64), dists_sorted[keep].astype(np.float32)
