"""Static SPANN index build: hierarchical balanced clustering + closure.

The build produces a :class:`BuildPlan` — pure data, no storage side
effects — which the core index (or a baseline) materializes into postings
on its own Block Controller. Keeping the plan separate lets SPFresh,
SPANN+, and the rebuild cost model share one build path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.clustering.hierarchical import hierarchical_balanced_clustering
from repro.core.config import SPFreshConfig
from repro.spann.closure import closure_assign


@dataclass
class BuildPlan:
    """Result of the static clustering phase.

    ``centroids[j]`` is posting ``j``'s centroid; ``members[j]`` the vector
    row indices stored in posting ``j`` (primary + replicas); ``primary[i]``
    the posting holding row ``i``'s primary copy.
    """

    centroids: np.ndarray
    members: list[np.ndarray]
    primary: np.ndarray

    @property
    def num_postings(self) -> int:
        return len(self.centroids)

    def posting_sizes(self) -> np.ndarray:
        return np.array([len(m) for m in self.members], dtype=np.int64)

    def replica_counts(self) -> np.ndarray:
        """Replicas per vector (>=1)."""
        counts = np.zeros(len(self.primary), dtype=np.int64)
        for rows in self.members:
            counts[rows] += 1
        return counts


def build_plan(
    vectors: np.ndarray,
    config: SPFreshConfig,
    rng: np.random.Generator,
) -> BuildPlan:
    """Cluster ``vectors`` into balanced postings with boundary replication."""
    vectors = np.ascontiguousarray(vectors, dtype=np.float32)
    if len(vectors) == 0:
        raise ValueError("cannot build an index over zero vectors")
    leaves = hierarchical_balanced_clustering(
        vectors,
        target_leaf_size=config.build_target_posting_size,
        rng=rng,
        branch_factor=config.build_branch_factor,
        max_iters=config.kmeans_iters,
        balance_weight=config.balance_weight,
    )
    centroids = np.vstack([leaf.centroid for leaf in leaves]).astype(np.float32)
    members_lists, primary = closure_assign(
        vectors,
        centroids,
        replica_count=config.replica_count,
        epsilon=config.closure_epsilon,
        use_rng_rule=config.build_rng_rule,
    )
    members = [np.asarray(rows, dtype=np.int64) for rows in members_lists]
    return BuildPlan(centroids=centroids, members=members, primary=primary)
