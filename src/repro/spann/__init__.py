"""SPANN substrate: balanced build, boundary replication, disk search.

SPFresh "reuses the SPANN SPTAG index ... as well as its searcher" (paper
§4.1); this package is that reused layer. It knows nothing about LIRE —
the core package composes these pieces with the updater/rebuilder.
"""

from repro.spann.closure import closure_assign, select_replicas
from repro.spann.build import BuildPlan, build_plan
from repro.spann.searcher import SearchResult, SpannSearcher
from repro.spann.postings import dedup_top_k, live_view

__all__ = [
    "closure_assign",
    "select_replicas",
    "BuildPlan",
    "build_plan",
    "SearchResult",
    "SpannSearcher",
    "dedup_top_k",
    "live_view",
]
