"""Wall-clock engine pools: really run the batches K ways in parallel.

The serving simulation prices concurrency on the simulated clock (the
K-worker pool in :class:`~repro.serving.frontend.ServingFrontend`); this
module is the other half of the repo's two-clock model — it takes the
exact batch compositions a finished :class:`ServingReport` recorded and
executes them again on real threads or forked processes, so the
wall-clock goodput speedup can be *measured* rather than modelled.

Two invariants make the measurement trustworthy:

* **bit-identical answers** — the engine's batched search is a pure
  function of (queries, k, nprobe) on a read-only searcher, so a pool
  replay must return exactly the ids/distances of a serial replay of
  the same batches. :func:`count_mismatches` checks this seat by seat;
  the perf scenario gates it at zero. Use searcher-level engines (or
  any read-only query surface) for replay — ``SPFreshIndex.query`` has
  maintenance side effects and only holds parity from identical
  starting states (same caveat as ``distributed/executor.py``).
* **informational only** — wall-clock numbers (speedups, pool wall
  time) are reported but never gated; they depend on the host.

:class:`ThreadEnginePool` shares the engine across worker threads — the
numpy kernels under ``search_many`` release the GIL, so batches overlap
on real cores. :class:`ProcessEnginePool` forks one worker process per
slot (the ``distributed/executor.py`` ProcessShardPool pattern: the
engine is inherited by address-space copy, nothing is pickled, workers
are daemonic, all sends go out before any receive). Batches are
assigned to workers round robin by batch index, which keeps the
assignment deterministic and the reassembled answer order independent
of scheduling.

Each pool worker runs under a profiler stage named ``serve_worker<i>``
so per-worker wall time shows up in ``repro.metrics.profiling`` reports.
"""

from __future__ import annotations

import multiprocessing as mp
import threading
import time
from dataclasses import dataclass

import numpy as np

from repro.api import QueryRequest
from repro.distributed.executor import fork_available
from repro.metrics.profiling import NULL_PROFILER


def batch_jobs(trace, report) -> list[np.ndarray]:
    """Replayable per-batch query matrices from a finished serving run.

    Batch ``i`` of the returned list holds exactly the query vectors the
    simulated run's batch ``i`` answered, in seat order.
    """
    return [
        np.ascontiguousarray(trace.queries[batch.query_rows])
        for batch in report.batches
    ]


def answer_batch(engine, vectors: np.ndarray, k: int, nprobe: int | None):
    """One batch through the engine's best surface (mirrors the frontend)."""
    query = getattr(engine, "query", None)
    if query is not None:
        request = QueryRequest(vectors=vectors, k=k, nprobe=nprobe)
        return list(query(request).results)
    search = getattr(engine, "search_many", None) or getattr(
        engine, "search_batch", None
    )
    if search is None:
        raise TypeError("engine must expose query, search_many, or search_batch")
    return search(vectors, k, nprobe)


def _freeze(results) -> list[tuple[np.ndarray, np.ndarray]]:
    """Reduce engine results to comparable (ids, distances) pairs."""
    return [
        (np.asarray(r.ids).copy(), np.asarray(r.distances).copy())
        for r in results
    ]


@dataclass
class ReplayResult:
    """Answers plus wall time for one replay of a batch schedule."""

    batch_answers: list  # per batch: list of (ids, distances) per seat
    wall_s: float
    num_workers: int


def serial_replay(
    engine, jobs, k: int, nprobe: int | None = None, profiler=NULL_PROFILER
) -> ReplayResult:
    """Run the batch schedule one batch at a time (the parity baseline)."""
    start = time.perf_counter()
    answers = []
    with profiler.section("serve_replay_serial"):
        for vectors in jobs:
            answers.append(_freeze(answer_batch(engine, vectors, k, nprobe)))
    return ReplayResult(answers, time.perf_counter() - start, 1)


class ThreadEnginePool:
    """Shared-engine thread pool; batches overlap on GIL-free kernels."""

    def __init__(self, engine, num_workers: int, profiler=NULL_PROFILER) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be at least 1")
        self.engine = engine
        self.num_workers = num_workers
        self.profiler = profiler

    def run(self, jobs, k: int, nprobe: int | None = None) -> ReplayResult:
        """Execute all batches, round-robin across worker threads."""
        answers: list = [None] * len(jobs)
        errors: list[BaseException] = []

        def worker(widx: int) -> None:
            try:
                with self.profiler.section(f"serve_worker{widx}"):
                    for j in range(widx, len(jobs), self.num_workers):
                        results = answer_batch(self.engine, jobs[j], k, nprobe)
                        answers[j] = _freeze(results)
            except BaseException as exc:  # surfaced after join
                errors.append(exc)

        start = time.perf_counter()
        threads = [
            threading.Thread(target=worker, args=(w,), daemon=True)
            for w in range(self.num_workers)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if errors:
            raise errors[0]
        return ReplayResult(answers, time.perf_counter() - start, self.num_workers)


def _engine_worker_loop(engine, conn) -> None:
    """Forked worker body: answer batch-slice jobs on the inherited engine."""
    try:
        while True:
            msg = conn.recv()
            if msg[0] == "stop":
                break
            _, jobs, k, nprobe = msg
            out = []
            for vectors in jobs:
                out.append(_freeze(answer_batch(engine, vectors, k, nprobe)))
            conn.send(out)
    finally:
        conn.close()


class ProcessEnginePool:
    """Forked worker processes, each holding an inherited engine copy."""

    def __init__(self, engine, num_workers: int) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be at least 1")
        if not fork_available():
            raise RuntimeError(
                "ProcessEnginePool needs the 'fork' start method; "
                "use ThreadEnginePool on this platform"
            )
        for index in self._component_indexes(engine):
            if getattr(index, "_background_running", False):
                raise RuntimeError(
                    "cannot fork an engine with live background workers; "
                    "build with synchronous_rebuild=True (the default) "
                    "or stop() workers first"
                )
        ctx = mp.get_context("fork")
        self._conns = []
        self._procs = []
        for _ in range(num_workers):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_engine_worker_loop,
                args=(engine, child_conn),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._procs.append(proc)
        self.num_workers = num_workers
        self._closed = False

    @staticmethod
    def _component_indexes(engine):
        """The engine itself plus any shard indexes a facade wraps."""
        yield engine
        for shard in getattr(engine, "shards", None) or []:
            yield shard

    def run(self, jobs, k: int, nprobe: int | None = None) -> ReplayResult:
        """Execute all batches; worker ``w`` gets batches ``w::K``."""
        if self._closed:
            raise RuntimeError("pool is closed")
        start = time.perf_counter()
        slices = [list(jobs[w :: self.num_workers]) for w in range(self.num_workers)]
        for conn, piece in zip(self._conns, slices):
            conn.send(("run", piece, k, nprobe))
        answers: list = [None] * len(jobs)
        for w, conn in enumerate(self._conns):
            for offset, batch in enumerate(conn.recv()):
                answers[w + offset * self.num_workers] = batch
        return ReplayResult(answers, time.perf_counter() - start, self.num_workers)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.send(("stop",))
                conn.close()
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=5)
            if proc.is_alive():
                proc.terminate()

    def __enter__(self) -> "ProcessEnginePool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def count_mismatches(a: ReplayResult, b: ReplayResult) -> int:
    """Seats whose (ids, distances) are not bit-identical across replays."""
    if len(a.batch_answers) != len(b.batch_answers):
        raise ValueError("replays cover different batch schedules")
    mismatches = 0
    for batch_a, batch_b in zip(a.batch_answers, b.batch_answers):
        if len(batch_a) != len(batch_b):
            raise ValueError("replays cover different batch sizes")
        for (ids_a, dist_a), (ids_b, dist_b) in zip(batch_a, batch_b):
            if not (
                np.array_equal(ids_a, ids_b)
                and np.array_equal(dist_a, dist_b)
            ):
                mismatches += 1
    return mismatches
