"""Dynamic batching policy: fill fast, never hold past the wait bound.

The engine's ``search_many`` amortizes one device submission across a
whole batch, so larger batches buy throughput — but a request that sits
waiting for stragglers pays that wait in its own tail latency. The
classic resolution (every production inference/search server uses a
variant) is a two-trigger batcher:

* **size trigger** — dispatch the moment ``max_batch`` requests are
  queued; the batch is as amortized as allowed;
* **time trigger** — otherwise dispatch when the *oldest* queued request
  has waited ``max_wait_us``; no request's assembly delay ever exceeds
  the knob.

``max_wait_us=0`` degrades to unbatched serving (every request
dispatches alone unless a backlog formed while the engine was busy),
which is exactly the baseline the serving bench compares against.

The batcher is a pure policy object: given the queued requests it
reports *when* the next batch is ready and *which* requests form it.
The frontend's event loop owns time; keeping the policy side-effect
free is what makes the simulation deterministic and the policy unit-
testable.
"""

from __future__ import annotations

import math
from collections import deque


class DynamicBatcher:
    """max-batch / max-wait coalescing policy over an arrival-ordered queue."""

    def __init__(self, max_batch: int, max_wait_us: float) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if max_wait_us < 0:
            raise ValueError("max_wait_us must be non-negative")
        self.max_batch = max_batch
        self.max_wait_us = max_wait_us

    def ready_at(self, queue: deque) -> float:
        """Earliest simulated time the queued batch is ready to dispatch.

        ``queue`` holds objects with an ``arrival_us`` attribute in
        arrival order. A full batch is ready the instant its
        ``max_batch``-th member arrived; a partial one when its oldest
        member's wait bound expires. Empty queue: never (+inf).
        """
        if not queue:
            return math.inf
        if len(queue) >= self.max_batch:
            return float(queue[self.max_batch - 1].arrival_us)
        return float(queue[0].arrival_us) + self.max_wait_us

    def take(self, queue: deque) -> list:
        """Pop the next batch (oldest ``max_batch`` requests) off the queue."""
        n = min(self.max_batch, len(queue))
        return [queue.popleft() for _ in range(n)]
