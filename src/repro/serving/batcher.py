"""Dynamic batching policy: fill fast, never hold past the wait bound.

The engine's ``search_many`` amortizes one device submission across a
whole batch, so larger batches buy throughput — but a request that sits
waiting for stragglers pays that wait in its own tail latency. The
classic resolution (every production inference/search server uses a
variant) is a two-trigger batcher:

* **size trigger** — dispatch the moment ``max_batch`` requests are
  queued; the batch is as amortized as allowed;
* **time trigger** — otherwise dispatch when the *oldest* queued request
  has waited ``max_wait_us``; no request's assembly delay ever exceeds
  the knob.

``max_wait_us=0`` degrades to unbatched serving (every request
dispatches alone unless a backlog formed while the engine was busy),
which is exactly the baseline the serving bench compares against.

The batcher is a pure policy object: given the queued requests it
reports *when* the next batch is ready and *which* requests form it.
The frontend's event loop owns time; keeping the policy side-effect
free is what makes the simulation deterministic and the policy unit-
testable.

:class:`DwrrBatcher` adds per-tenant fairness on top: batch *timing* is
identical (the two triggers observe the same arrival-ordered queue),
but batch *seats* are assigned by deficit-weighted round robin across
tenants instead of pure arrival order. When demand exceeds the batch
size, a bursty tenant is limited to roughly its weight share of the
seats per batch, so light tenants keep dispatching at their own pace
instead of queueing behind the burst. Deficit counters carry over
between batches (long-run weighted shares hold even when per-batch
shares round unevenly) and reset when a tenant's queue drains (no
banking credit while idle — the standard DWRR rule).
"""

from __future__ import annotations

import math
from collections import deque


class DynamicBatcher:
    """max-batch / max-wait coalescing policy over an arrival-ordered queue."""

    def __init__(self, max_batch: int, max_wait_us: float) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if max_wait_us < 0:
            raise ValueError("max_wait_us must be non-negative")
        self.max_batch = max_batch
        self.max_wait_us = max_wait_us

    def ready_at(self, queue: deque) -> float:
        """Earliest simulated time the queued batch is ready to dispatch.

        ``queue`` holds objects with an ``arrival_us`` attribute in
        arrival order. A full batch is ready the instant its
        ``max_batch``-th member arrived; a partial one when its oldest
        member's wait bound expires. Empty queue: never (+inf).
        """
        if not queue:
            return math.inf
        if len(queue) >= self.max_batch:
            return float(queue[self.max_batch - 1].arrival_us)
        return float(queue[0].arrival_us) + self.max_wait_us

    def take(self, queue: deque) -> list:
        """Pop the next batch (oldest ``max_batch`` requests) off the queue."""
        n = min(self.max_batch, len(queue))
        return [queue.popleft() for _ in range(n)]


class DwrrBatcher(DynamicBatcher):
    """Deficit-weighted round-robin seat assignment across tenants.

    Timing triggers are inherited unchanged from :class:`DynamicBatcher`
    (given the same queued requests, a batch is ready at the same instant
    it would be under FIFO; with a single tenant the policies coincide
    exactly); only *which* queued requests fill the seats differs. Each request costs
    one deficit unit; every DWRR round credits each backlogged tenant
    its weight, and a tenant spends accumulated deficit on seats oldest-
    request-first. Within a batch all seats complete together, so the
    visit order inside a round carries no latency meaning — tenants are
    visited in sorted id order, which keeps the policy deterministic.
    """

    def __init__(
        self,
        max_batch: int,
        max_wait_us: float,
        tenant_weights=None,
    ) -> None:
        super().__init__(max_batch=max_batch, max_wait_us=max_wait_us)
        if tenant_weights is not None:
            tenant_weights = tuple(float(w) for w in tenant_weights)
            if not tenant_weights or any(w <= 0 for w in tenant_weights):
                raise ValueError(
                    "tenant_weights must be a non-empty sequence of "
                    "positive weights (or None for equal shares)"
                )
        self.tenant_weights = tenant_weights
        self._deficit: dict[int, float] = {}

    def weight_of(self, tenant: int) -> float:
        """Tenant's DWRR weight (1.0 beyond the configured sequence)."""
        if self.tenant_weights is None or tenant >= len(self.tenant_weights):
            return 1.0
        return self.tenant_weights[tenant]

    def take(self, queue: deque) -> list:
        """Assign up to ``max_batch`` seats by DWRR; pop them off the queue."""
        seats = min(self.max_batch, len(queue))
        if seats == len(queue):
            # Everything queued fits: identical to FIFO, and the cheap
            # common case. Every backlog drains, so no tenant banks
            # credit across the batch.
            batch = [queue.popleft() for _ in range(seats)]
            self._deficit.clear()
            return batch
        by_tenant: dict[int, deque] = {}
        for request in queue:
            by_tenant.setdefault(request.tenant, deque()).append(request)
        active = sorted(by_tenant)
        # Idle tenants (nothing queued) hold no credit across batches.
        self._reset_drained(
            [tenant for tenant in self._deficit if tenant not in by_tenant]
        )
        chosen: list = []
        while len(chosen) < seats:
            took_any = False
            for tenant in active:
                pending = by_tenant[tenant]
                if not pending:
                    continue
                credit = self._deficit.get(tenant, 0.0) + self.weight_of(tenant)
                while credit >= 1.0 and pending and len(chosen) < seats:
                    chosen.append(pending.popleft())
                    credit -= 1.0
                    took_any = True
                self._deficit[tenant] = credit
            if not took_any:
                # All weights are far below 1: fast-forward the rounds
                # the closest tenant still needs for a whole seat, so
                # extreme weights cost O(1) instead of O(1/weight).
                rounds = min(
                    math.ceil(
                        (1.0 - self._deficit.get(tenant, 0.0))
                        / self.weight_of(tenant)
                    )
                    for tenant in active
                    if by_tenant[tenant]
                )
                for tenant in active:
                    if by_tenant[tenant]:
                        self._deficit[tenant] = self._deficit.get(
                            tenant, 0.0
                        ) + rounds * self.weight_of(tenant)
        # A tenant whose backlog drained gives up its leftover credit.
        self._reset_drained(
            tenant for tenant, pending in by_tenant.items() if not pending
        )
        taken = {id(request) for request in chosen}
        remaining = [r for r in queue if id(r) not in taken]
        queue.clear()
        queue.extend(remaining)
        chosen.sort(key=lambda r: r.index)
        return chosen

    def _reset_drained(self, tenants) -> None:
        for tenant in tenants:
            self._deficit.pop(tenant, None)
