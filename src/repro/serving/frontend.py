"""Open-loop serving simulation: arrivals → admission → batcher → engine.

The frontend is a deterministic discrete-event loop over an
:class:`~repro.datasets.arrival.ArrivalTrace`. Two event types exist —
*a request arrives* and *a batch dispatches* — and they are processed
in strict simulated-time order, so the whole run is a pure function of
(trace, knobs, index state): byte-identical metrics under a fixed seed,
which is what lets serving tail latency gate CI next to the engine's
simulated metrics (the repo's two-clock model; see
``docs/performance.md``).

The engine model is a pool of ``num_workers`` independent executors
(the K-worker pool; ``num_workers=1`` reproduces the historical serial
executor bit-for-bit). Each worker is one simulated resource with its
own busy-until horizon; a ready batch dispatches to the earliest-free
worker (lowest index on ties) and occupies it for the batch's full
service time

    service = shared batch IO + sum of per-query CPU terms

(the IO wave completion the device model already charges, plus each
query's scan/navigation CPU run back to back on one core). Every
request in a batch completes when the batch does, and its end-to-end
latency decomposes exactly as

    e2e = queue wait (engine busy) + assembly wait (batcher holding)
        + engine service

so regressions attribute to the right layer: a queue-wait regression is
a capacity problem, an assembly-wait regression a batcher-tuning
problem, an engine regression belongs to the index.

Fairness: with ``fairness="dwrr"`` batch seats are assigned by
deficit-weighted round robin across tenants (see
:class:`~repro.serving.batcher.DwrrBatcher`) so a bursty tenant cannot
monopolize dispatch; ``tenant_quota_fraction`` additionally bounds any
one tenant's share of the queue at admission. Wall-clock execution of
the same batches on real threads/processes lives in
``repro.serving.engine_pool`` — informational only, never gated.
"""

from __future__ import annotations

import math
import time
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.api import QueryRequest
from repro.datasets.arrival import ArrivalTrace
from repro.metrics.latency import percentile_metrics
from repro.serving.admission import AdmissionController
from repro.serving.batcher import DwrrBatcher, DynamicBatcher


@dataclass
class RequestOutcome:
    """Per-request accounting, filled in as the request moves through."""

    index: int
    tenant: int
    arrival_us: float
    query_index: int
    status: str = "queued"  # -> "answered" | "shed"
    shed_reason: str = ""
    retry_after_us: float = 0.0
    modelled_wait_us: float = 0.0
    dispatch_us: float = 0.0
    completion_us: float = 0.0
    queue_wait_us: float = 0.0
    assembly_wait_us: float = 0.0
    engine_us: float = 0.0
    batch_id: int = -1
    result: object = None  # SearchResult, only when keep_results

    @property
    def e2e_us(self) -> float:
        """End-to-end latency (queue + assembly + engine)."""
        return self.completion_us - self.arrival_us


@dataclass
class BatchRecord:
    """One dispatched batch."""

    batch_id: int
    dispatch_us: float
    size: int
    io_us: float
    service_us: float
    worker: int = 0  # which pool worker served it
    # Trace query rows the batch answered, in seat order — enough to
    # replay the exact batch composition on a wall-clock pool.
    query_rows: list[int] = field(default_factory=list)


@dataclass
class ServingReport:
    """Everything one frontend run produced, plus derived metrics."""

    trace_name: str
    slo_us: float
    outcomes: list[RequestOutcome]
    batches: list[BatchRecord]
    wall_s: float = 0.0
    shed_queue_full: int = 0
    shed_wait_budget: int = 0
    shed_tenant_quota: int = 0
    num_workers: int = 1

    # ------------------------------------------------------------------
    @property
    def answered(self) -> list[RequestOutcome]:
        return [o for o in self.outcomes if o.status == "answered"]

    @property
    def shed(self) -> list[RequestOutcome]:
        return [o for o in self.outcomes if o.status == "shed"]

    @property
    def makespan_us(self) -> float:
        """Simulated span from t=0 to the last completion (or arrival)."""
        end = max((o.completion_us for o in self.answered), default=0.0)
        last_arrival = (
            max(o.arrival_us for o in self.outcomes) if self.outcomes else 0.0
        )
        return max(end, last_arrival)

    def metrics(self) -> dict[str, float]:
        """Flat deterministic metric dict (the BENCH/report payload)."""
        answered = self.answered
        offered = len(self.outcomes)
        n_shed = len(self.shed)
        within_slo = sum(1 for o in answered if o.e2e_us <= self.slo_us)
        span_s = self.makespan_us / 1e6
        e2e = [o.e2e_us for o in answered]
        out = {
            "offered_requests": float(offered),
            "answered_requests": float(len(answered)),
            "shed_requests": float(n_shed),
            "shed_rate": n_shed / offered if offered else 0.0,
            "shed_queue_full": float(self.shed_queue_full),
            "shed_wait_budget": float(self.shed_wait_budget),
            "shed_tenant_quota": float(self.shed_tenant_quota),
            "num_workers": float(self.num_workers),
            "slo_violation_rate": (
                (len(answered) - within_slo) / len(answered) if answered else 0.0
            ),
            "offered_qps": offered / span_s if span_s > 0 else 0.0,
            "answered_qps": len(answered) / span_s if span_s > 0 else 0.0,
            "goodput_qps": within_slo / span_s if span_s > 0 else 0.0,
            **percentile_metrics(e2e, "e2e_latency_us"),
            "queue_wait_us_mean": (
                float(np.mean([o.queue_wait_us for o in answered]))
                if answered
                else 0.0
            ),
            "assembly_wait_us_mean": (
                float(np.mean([o.assembly_wait_us for o in answered]))
                if answered
                else 0.0
            ),
            "engine_us_mean": (
                float(np.mean([o.engine_us for o in answered])) if answered else 0.0
            ),
            "batch_count": float(len(self.batches)),
            "batch_size_mean": (
                float(np.mean([b.size for b in self.batches]))
                if self.batches
                else 0.0
            ),
            "batch_size_max": (
                float(max(b.size for b in self.batches)) if self.batches else 0.0
            ),
            "retry_after_us_mean": (
                float(np.mean([o.retry_after_us for o in self.shed]))
                if n_shed
                else 0.0
            ),
        }
        busy = self.worker_busy_us()
        span = self.makespan_us
        out["worker_busy_frac_mean"] = (
            float(np.mean(busy)) / span if span > 0 else 0.0
        )
        out["worker_busy_frac_max"] = max(busy) / span if span > 0 else 0.0
        out["worker_busy_frac_min"] = min(busy) / span if span > 0 else 0.0
        return out

    def worker_busy_us(self) -> list[float]:
        """Total simulated service time charged to each pool worker."""
        busy = [0.0] * self.num_workers
        for b in self.batches:
            busy[b.worker] += b.service_us
        return busy

    def tenant_p99_spread(self) -> float:
        """Max/min ratio of per-tenant answered p99 e2e latency.

        1.0 means every tenant sees the same tail; large values mean some
        tenant's tail is inflated relative to the luckiest tenant. Only
        tenants with at least one answered request participate; fewer
        than two such tenants (or a zero minimum) yield 1.0.
        """
        p99s = [
            m["e2e_latency_us_p99"]
            for m in self.per_tenant_metrics().values()
            if m["e2e_latency_us_p99"] > 0.0
        ]
        if len(p99s) < 2:
            return 1.0
        return max(p99s) / min(p99s)

    def per_tenant_metrics(self) -> dict[int, dict[str, float]]:
        """Offered/answered/shed counts and p99 e2e per tenant."""
        tenants: dict[int, dict[str, list]] = {}
        for o in self.outcomes:
            slot = tenants.setdefault(o.tenant, {"e2e": [], "shed": 0, "n": 0})
            slot["n"] += 1
            if o.status == "shed":
                slot["shed"] += 1
            else:
                slot["e2e"].append(o.e2e_us)
        out: dict[int, dict[str, float]] = {}
        for tenant, slot in sorted(tenants.items()):
            e2e = np.asarray(slot["e2e"], dtype=np.float64)
            out[tenant] = {
                "offered": float(slot["n"]),
                "shed_rate": slot["shed"] / slot["n"],
                "e2e_latency_us_p99": (
                    round(float(np.percentile(e2e, 99.0)), 3) if e2e.size else 0.0
                ),
            }
        return out


class ServingFrontend:
    """Bounded queue + admission + dynamic batcher over one engine."""

    def __init__(
        self,
        engine,
        *,
        k: int,
        nprobe: int | None = None,
        rerank_k: int | None = None,
        quantized: bool | None = None,
        queue_capacity: int = 256,
        max_batch: int = 32,
        max_wait_us: float = 1500.0,
        slo_us: float = 15_000.0,
        admission_wait_budget_us: float | None = 30_000.0,
        num_workers: int = 1,
        fairness: str = "fifo",
        tenant_weights=None,
        tenant_quota_fraction: float | None = None,
        keep_results: bool = False,
    ) -> None:
        if slo_us <= 0:
            raise ValueError("slo_us must be positive")
        if num_workers < 1:
            raise ValueError("num_workers must be at least 1")
        if fairness not in ("fifo", "dwrr"):
            raise ValueError(
                f"unknown fairness {fairness!r} (choose 'fifo' or 'dwrr')"
            )
        # Typed-API engines (SPFreshIndex, ShardedSPFresh) take a
        # QueryRequest through ``query``; bare searcher-level engines
        # (SpannSearcher) keep their internal positional signature.
        self._query = getattr(engine, "query", None)
        if self._query is None:
            self._search = getattr(engine, "search_many", None) or getattr(
                engine, "search_batch", None
            )
            if self._search is None:
                raise TypeError(
                    "engine must expose query, search_many, or search_batch"
                )
            if rerank_k is not None or quantized is not None:
                raise TypeError(
                    "rerank_k/quantized knobs need a QueryRequest-capable "
                    "engine (one exposing query())"
                )
        self.engine = engine
        self.k = k
        self.nprobe = nprobe
        self.rerank_k = rerank_k
        self.quantized = quantized
        self.slo_us = slo_us
        self.num_workers = num_workers
        self.fairness = fairness
        self.keep_results = keep_results
        if fairness == "dwrr":
            self.batcher: DynamicBatcher = DwrrBatcher(
                max_batch=max_batch,
                max_wait_us=max_wait_us,
                tenant_weights=tenant_weights,
            )
        else:
            self.batcher = DynamicBatcher(
                max_batch=max_batch, max_wait_us=max_wait_us
            )
        self.admission = AdmissionController(
            queue_capacity=queue_capacity,
            wait_budget_us=admission_wait_budget_us,
            max_batch=max_batch,
            num_workers=num_workers,
            tenant_quota_fraction=tenant_quota_fraction,
        )

    @classmethod
    def from_config(
        cls, engine, config, *, k: int, nprobe: int | None = None, **overrides
    ) -> "ServingFrontend":
        """Build a frontend from ``SPFreshConfig``'s serving knobs."""
        serving = config.serving
        kwargs = dict(
            queue_capacity=serving.queue_capacity,
            max_batch=serving.max_batch,
            max_wait_us=serving.max_wait_us,
            slo_us=serving.slo_us,
            admission_wait_budget_us=serving.admission_wait_budget_us,
            num_workers=serving.num_workers,
            fairness=serving.fairness,
            tenant_weights=serving.tenant_weights,
            tenant_quota_fraction=serving.tenant_quota_fraction,
        )
        kwargs.update(overrides)
        return cls(engine, k=k, nprobe=nprobe, **kwargs)

    def _run_batch(self, queries: np.ndarray) -> list:
        """Answer one dispatched batch through the engine's best surface."""
        if self._query is not None:
            request = QueryRequest(
                vectors=queries,
                k=self.k,
                nprobe=self.nprobe,
                rerank_k=self.rerank_k,
                quantized=self.quantized,
            )
            return list(self._query(request).results)
        return self._search(queries, self.k, self.nprobe)

    # ------------------------------------------------------------------
    def run(self, trace: ArrivalTrace) -> ServingReport:
        """Simulate the full trace; returns the per-request accounting.

        Strict event ordering: at any step the earlier of (next arrival,
        next batch dispatch) is processed; an arrival landing exactly at
        a dispatch instant misses that batch (dispatch wins the tie).
        """
        wall_start = time.perf_counter()
        n = len(trace)
        arrivals = trace.arrival_us
        queue: deque[RequestOutcome] = deque()
        outcomes: list[RequestOutcome] = []
        batches: list[BatchRecord] = []
        # One busy-until horizon per pool worker; a batch dispatches when
        # both the batcher says it is ready and some worker is free.
        workers = [0.0] * self.num_workers
        queued_by_tenant: dict[int, int] = {}
        i = 0
        while i < n or queue:
            ready = self.batcher.ready_at(queue)
            earliest_free = min(workers)
            dispatch_at = max(ready, earliest_free)
            next_arrival = arrivals[i] if i < n else math.inf
            if next_arrival < dispatch_at:
                tenant = int(trace.tenant[i])
                outcome = RequestOutcome(
                    index=i,
                    tenant=tenant,
                    arrival_us=float(next_arrival),
                    query_index=int(trace.query_index[i]),
                )
                outcomes.append(outcome)
                decision = self.admission.admit(
                    float(next_arrival),
                    len(queue),
                    earliest_free,
                    tenant_depth=queued_by_tenant.get(tenant, 0),
                )
                outcome.modelled_wait_us = decision.modelled_wait_us
                if decision.admitted:
                    queue.append(outcome)
                    queued_by_tenant[tenant] = (
                        queued_by_tenant.get(tenant, 0) + 1
                    )
                else:
                    outcome.status = "shed"
                    outcome.shed_reason = decision.reason
                    outcome.retry_after_us = decision.retry_after_us
                i += 1
                continue
            # Dispatch the batch that became ready at ``ready`` onto the
            # earliest-free worker (lowest index wins horizon ties).
            worker = workers.index(earliest_free)
            batch = self.batcher.take(queue)
            for r in batch:
                queued_by_tenant[r.tenant] -= 1
            rows = [r.query_index for r in batch]
            results = self._run_batch(trace.queries[rows])
            io_us = max(r.io_latency_us for r in results)
            cpu_us = sum(r.latency_us - r.io_latency_us for r in results)
            service_us = io_us + cpu_us
            completion = dispatch_at + service_us
            batch_id = len(batches)
            batches.append(
                BatchRecord(
                    batch_id=batch_id,
                    dispatch_us=dispatch_at,
                    size=len(batch),
                    io_us=io_us,
                    service_us=service_us,
                    worker=worker,
                    query_rows=rows,
                )
            )
            for outcome, result in zip(batch, results):
                # Up to ``blocked`` the request waited on busy workers;
                # from there to dispatch it waited on batch assembly.
                blocked = min(
                    max(earliest_free, outcome.arrival_us), dispatch_at
                )
                outcome.status = "answered"
                outcome.dispatch_us = dispatch_at
                outcome.completion_us = completion
                outcome.queue_wait_us = blocked - outcome.arrival_us
                outcome.assembly_wait_us = dispatch_at - blocked
                outcome.engine_us = service_us
                outcome.batch_id = batch_id
                if self.keep_results:
                    outcome.result = result
            self.admission.observe_batch(service_us)
            workers[worker] = completion
        return ServingReport(
            trace_name=trace.name,
            slo_us=self.slo_us,
            outcomes=outcomes,
            batches=batches,
            wall_s=time.perf_counter() - wall_start,
            shed_queue_full=self.admission.shed_queue_full,
            shed_wait_budget=self.admission.shed_wait_budget,
            shed_tenant_quota=self.admission.shed_tenant_quota,
            num_workers=self.num_workers,
        )
