"""Admission control for the serving queue (shed early, shed cheap).

An open-loop workload has no client-side backpressure: when offered
load exceeds capacity the queue grows without bound, and *every*
request's latency diverges. The admission controller converts that
collapse into bounded, explicit degradation — requests beyond what the
queue can absorb are rejected at arrival with a ``retry_after_us``
signal, which costs nearly nothing, instead of timing out after
consuming queue space and batch slots.

Three independent shed conditions, all checked at arrival time:

* **depth** — the bounded queue is full (``queue_capacity``);
* **tenant quota** — the arriving tenant already occupies its share of
  the queue (``tenant_quota_fraction`` × capacity); one bursty tenant
  cannot fill the whole queue and starve admission for everyone else
  (disabled when the fraction is ``None``);
* **modelled wait** — the predicted time until this request would
  *start* service exceeds ``wait_budget_us``. The prediction uses the
  earliest-free-worker horizon plus the number of whole batches queued
  ahead, priced at an EWMA of recent batch service times divided by the
  worker count (``num_workers`` batches drain concurrently) — the same
  two-clock discipline the rest of the repo uses (modelled,
  deterministic, never wall clock).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class AdmissionDecision:
    """Outcome of one admission check."""

    admitted: bool
    modelled_wait_us: float
    retry_after_us: float = 0.0  # > 0 only when shed
    reason: str = ""  # "", "queue_full", "tenant_quota", "wait_budget"


class AdmissionController:
    """Depth-, quota- and wait-bounded admission in front of the queue."""

    def __init__(
        self,
        queue_capacity: int,
        wait_budget_us: float | None,
        max_batch: int,
        initial_batch_service_us: float = 500.0,
        ewma_alpha: float = 0.2,
        num_workers: int = 1,
        tenant_quota_fraction: float | None = None,
    ) -> None:
        if queue_capacity < 1:
            raise ValueError("queue_capacity must be at least 1")
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if wait_budget_us is not None and wait_budget_us <= 0:
            raise ValueError("wait_budget_us must be positive or None")
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")
        if num_workers < 1:
            raise ValueError("num_workers must be at least 1")
        if tenant_quota_fraction is not None and not (
            0.0 < tenant_quota_fraction <= 1.0
        ):
            raise ValueError("tenant_quota_fraction must be in (0, 1] or None")
        self.queue_capacity = queue_capacity
        self.wait_budget_us = wait_budget_us
        self.max_batch = max_batch
        self.ewma_alpha = ewma_alpha
        self.num_workers = num_workers
        self.tenant_quota_fraction = tenant_quota_fraction
        # A tenant may hold at most this many queue slots (always >= 1,
        # so a lone tenant on an empty queue is never quota-shed).
        self.tenant_quota = (
            None
            if tenant_quota_fraction is None
            else max(1, int(tenant_quota_fraction * queue_capacity))
        )
        self._batch_service_us = float(initial_batch_service_us)
        self.admitted = 0
        self.shed_queue_full = 0
        self.shed_tenant_quota = 0
        self.shed_wait_budget = 0

    # ------------------------------------------------------------------
    @property
    def batch_service_estimate_us(self) -> float:
        """Current EWMA of batch service time (the wait model's price)."""
        return self._batch_service_us

    def observe_batch(self, service_us: float) -> None:
        """Feed one completed batch's service time into the EWMA."""
        self._batch_service_us += self.ewma_alpha * (
            float(service_us) - self._batch_service_us
        )

    def modelled_wait_us(
        self, now_us: float, queue_depth: int, engine_free_at_us: float
    ) -> float:
        """Predicted queue wait for a request arriving now.

        Time until the *earliest* worker frees up, plus one EWMA-priced
        batch per full ``max_batch`` of requests already queued ahead —
        divided by the worker count, since ``num_workers`` batches drain
        concurrently. At ``num_workers=1`` this reproduces the historical
        serial-executor model exactly.
        """
        busy = max(0.0, engine_free_at_us - now_us)
        batches_ahead = queue_depth // self.max_batch
        return busy + batches_ahead * self._batch_service_us / self.num_workers

    def admit(
        self,
        now_us: float,
        queue_depth: int,
        engine_free_at_us: float,
        tenant_depth: int = 0,
    ) -> AdmissionDecision:
        """Admit or shed one arrival given the queue/engine state.

        ``tenant_depth`` is how many queue slots the arriving tenant
        already holds; it only matters when a quota is configured.
        """
        wait = self.modelled_wait_us(now_us, queue_depth, engine_free_at_us)
        if queue_depth >= self.queue_capacity:
            self.shed_queue_full += 1
            return AdmissionDecision(
                admitted=False,
                modelled_wait_us=wait,
                # The earliest the backlog could meaningfully shrink:
                # after the modelled wait, one batch's worth drains.
                retry_after_us=max(wait, self._batch_service_us),
                reason="queue_full",
            )
        if self.tenant_quota is not None and tenant_depth >= self.tenant_quota:
            self.shed_tenant_quota += 1
            return AdmissionDecision(
                admitted=False,
                modelled_wait_us=wait,
                # The tenant's own backlog must drain a batch seat first.
                retry_after_us=max(wait, self._batch_service_us),
                reason="tenant_quota",
            )
        if self.wait_budget_us is not None and wait > self.wait_budget_us:
            self.shed_wait_budget += 1
            return AdmissionDecision(
                admitted=False,
                modelled_wait_us=wait,
                retry_after_us=max(wait - self.wait_budget_us, 0.0)
                + self._batch_service_us,
                reason="wait_budget",
            )
        self.admitted += 1
        return AdmissionDecision(admitted=True, modelled_wait_us=wait)
