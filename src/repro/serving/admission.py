"""Admission control for the serving queue (shed early, shed cheap).

An open-loop workload has no client-side backpressure: when offered
load exceeds capacity the queue grows without bound, and *every*
request's latency diverges. The admission controller converts that
collapse into bounded, explicit degradation — requests beyond what the
queue can absorb are rejected at arrival with a ``retry_after_us``
signal, which costs nearly nothing, instead of timing out after
consuming queue space and batch slots.

Two independent shed conditions, both checked at arrival time:

* **depth** — the bounded queue is full (``queue_capacity``);
* **modelled wait** — the predicted time until this request would
  *start* service exceeds ``wait_budget_us``. The prediction uses the
  engine-busy horizon plus the number of whole batches queued ahead,
  priced at an EWMA of recent batch service times — the same two-clock
  discipline the rest of the repo uses (modelled, deterministic, never
  wall clock).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class AdmissionDecision:
    """Outcome of one admission check."""

    admitted: bool
    modelled_wait_us: float
    retry_after_us: float = 0.0  # > 0 only when shed
    reason: str = ""  # "", "queue_full", "wait_budget"


class AdmissionController:
    """Depth- and wait-bounded admission in front of the request queue."""

    def __init__(
        self,
        queue_capacity: int,
        wait_budget_us: float | None,
        max_batch: int,
        initial_batch_service_us: float = 500.0,
        ewma_alpha: float = 0.2,
    ) -> None:
        if queue_capacity < 1:
            raise ValueError("queue_capacity must be at least 1")
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if wait_budget_us is not None and wait_budget_us <= 0:
            raise ValueError("wait_budget_us must be positive or None")
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")
        self.queue_capacity = queue_capacity
        self.wait_budget_us = wait_budget_us
        self.max_batch = max_batch
        self.ewma_alpha = ewma_alpha
        self._batch_service_us = float(initial_batch_service_us)
        self.admitted = 0
        self.shed_queue_full = 0
        self.shed_wait_budget = 0

    # ------------------------------------------------------------------
    @property
    def batch_service_estimate_us(self) -> float:
        """Current EWMA of batch service time (the wait model's price)."""
        return self._batch_service_us

    def observe_batch(self, service_us: float) -> None:
        """Feed one completed batch's service time into the EWMA."""
        self._batch_service_us += self.ewma_alpha * (
            float(service_us) - self._batch_service_us
        )

    def modelled_wait_us(
        self, now_us: float, queue_depth: int, engine_free_at_us: float
    ) -> float:
        """Predicted queue wait for a request arriving now.

        Time until the engine frees up, plus one EWMA-priced batch per
        full ``max_batch`` of requests already queued ahead of it.
        """
        busy = max(0.0, engine_free_at_us - now_us)
        batches_ahead = queue_depth // self.max_batch
        return busy + batches_ahead * self._batch_service_us

    def admit(
        self, now_us: float, queue_depth: int, engine_free_at_us: float
    ) -> AdmissionDecision:
        """Admit or shed one arrival given the queue/engine state."""
        wait = self.modelled_wait_us(now_us, queue_depth, engine_free_at_us)
        if queue_depth >= self.queue_capacity:
            self.shed_queue_full += 1
            return AdmissionDecision(
                admitted=False,
                modelled_wait_us=wait,
                # The earliest the backlog could meaningfully shrink:
                # after the modelled wait, one batch's worth drains.
                retry_after_us=max(wait, self._batch_service_us),
                reason="queue_full",
            )
        if self.wait_budget_us is not None and wait > self.wait_budget_us:
            self.shed_wait_budget += 1
            return AdmissionDecision(
                admitted=False,
                modelled_wait_us=wait,
                retry_after_us=max(wait - self.wait_budget_us, 0.0)
                + self._batch_service_us,
                reason="wait_budget",
            )
        self.admitted += 1
        return AdmissionDecision(admitted=True, modelled_wait_us=wait)
