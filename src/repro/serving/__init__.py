"""Serving front-end: open-loop admission, dynamic batching, SLO accounting.

This package turns the engine's fast ``search_many`` hot path into a
*service*: requests arrive on their own schedule (``repro.datasets.
arrival``), pass an admission controller guarding a bounded queue, are
coalesced by a dynamic batcher under a latency SLO, and leave with a
fully decomposed end-to-end latency (queue wait + batch assembly +
engine time) on the simulated clock — so goodput, tail latency, SLO
violations, and shed rates are byte-deterministic under a fixed seed
and gate CI like every other simulated metric.

See ``docs/serving.md`` for the model and knobs.
"""

from repro.serving.admission import AdmissionController, AdmissionDecision
from repro.serving.batcher import DynamicBatcher
from repro.serving.frontend import (
    RequestOutcome,
    ServingFrontend,
    ServingReport,
)

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "DynamicBatcher",
    "RequestOutcome",
    "ServingFrontend",
    "ServingReport",
]
