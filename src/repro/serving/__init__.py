"""Serving front-end: open-loop admission, dynamic batching, SLO accounting.

This package turns the engine's fast ``search_many`` hot path into a
*service*: requests arrive on their own schedule (``repro.datasets.
arrival``), pass an admission controller guarding a bounded queue, are
coalesced by a dynamic batcher under a latency SLO, and leave with a
fully decomposed end-to-end latency (queue wait + batch assembly +
engine time) on the simulated clock — so goodput, tail latency, SLO
violations, and shed rates are byte-deterministic under a fixed seed
and gate CI like every other simulated metric.

The engine side is a K-worker pool on both clocks: simulated (the
frontend's per-worker busy-until horizons — deterministic, gated) and
wall (``engine_pool``'s thread/forked-process pools — informational,
parity-checked against serial replay). Batch seats are assigned FIFO or
by deficit-weighted round robin across tenants (``DwrrBatcher``).

See ``docs/serving.md`` for the model and knobs.
"""

from repro.serving.admission import AdmissionController, AdmissionDecision
from repro.serving.batcher import DwrrBatcher, DynamicBatcher
from repro.serving.engine_pool import (
    ProcessEnginePool,
    ReplayResult,
    ThreadEnginePool,
    batch_jobs,
    count_mismatches,
    serial_replay,
)
from repro.serving.frontend import (
    BatchRecord,
    RequestOutcome,
    ServingFrontend,
    ServingReport,
)

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "BatchRecord",
    "DwrrBatcher",
    "DynamicBatcher",
    "ProcessEnginePool",
    "ReplayResult",
    "RequestOutcome",
    "ServingFrontend",
    "ServingReport",
    "ThreadEnginePool",
    "batch_jobs",
    "count_mismatches",
    "serial_replay",
]
