"""Baseline systems the paper compares against (§5.1).

* :func:`build_spann_plus` — SPANN+ : the append-only SPFresh variant with
  the Local Rebuilder disabled (no split / merge / reassign);
* :class:`repro.baselines.diskann.FreshDiskANNIndex` — the graph-based
  out-of-place-update comparator (Vamana + PQ + streamingMerge);
* :class:`repro.baselines.flat.FlatIndex` — exact brute-force oracle for
  differential testing (no approximation, no latency model).
"""

from repro.baselines.spann_plus import build_spann_plus
from repro.baselines.diskann import DiskANNConfig, FreshDiskANNIndex
from repro.baselines.flat import FlatIndex
from repro.baselines.vearch import VearchLikeIndex

__all__ = [
    "build_spann_plus",
    "DiskANNConfig",
    "FlatIndex",
    "FreshDiskANNIndex",
    "VearchLikeIndex",
]
