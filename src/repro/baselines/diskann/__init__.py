"""DiskANN / FreshDiskANN baseline (paper §5.1).

A disk-resident Vamana graph index with product-quantized in-memory
vectors for traversal, tombstone deletes, and the FreshDiskANN
``streamingMerge`` global consolidation — the out-of-place update design
whose rebuild pauses and accuracy decay SPFresh is measured against.
"""

from repro.baselines.diskann.pq import ProductQuantizer
from repro.baselines.diskann.vamana import build_vamana, greedy_search, robust_prune
from repro.baselines.diskann.fresh import DiskANNConfig, FreshDiskANNIndex

__all__ = [
    "ProductQuantizer",
    "build_vamana",
    "greedy_search",
    "robust_prune",
    "DiskANNConfig",
    "FreshDiskANNIndex",
]
