"""FreshDiskANN-style streaming index over a simulated disk (paper §5.1).

Faithful to the baseline's architecture:

* the Vamana graph lives on "disk" — one node (vector + adjacency) per
  block of a :class:`SimulatedSSD`; traversal reads node blocks in beam
  batches and pays the device latency for every hop;
* PQ-compressed vectors live in DRAM and steer the traversal; exact
  distances come from the vectors read off the node blocks (rerank);
* inserts greedy-search for a neighborhood, RobustPrune it, then patch
  reverse edges with read-modify-writes;
* deletes are tombstones; accumulated deletes trigger ``streaming_merge``,
  a global consolidation that rewrites the graph — the expensive
  out-of-place step whose latency interference Figure 7 shows.
"""

from __future__ import annotations

import heapq
import struct
from dataclasses import dataclass

import numpy as np

from repro.baselines.diskann.pq import ProductQuantizer
from repro.baselines.diskann.vamana import build_vamana, robust_prune
from repro.storage.ssd import SimulatedSSD, SSDProfile
from repro.util.distance import as_matrix, as_vector
from repro.util.errors import IndexError_, StorageError


@dataclass
class DiskANNConfig:
    """Tunables for the FreshDiskANN baseline (defaults: paper's, scaled)."""

    dim: int = 32
    degree_limit: int = 16  # paper R=64 at billion scale
    degree_slack: int = 8  # prune only past limit+slack (amortized)
    build_list_size: int = 32
    search_list_size: int = 32  # paper L=40
    insert_list_size: int = 48  # paper insert candidate list = 75
    alpha: float = 1.2
    beamwidth: int = 2  # paper default
    pq_subspaces: int = 4

    # streamingMerge policy: consolidate after this many deletes.
    merge_threshold: int = 2000
    # Latency interference: queries overlapping a merge window queue behind
    # its I/O; this many queries after a merge see added blocking latency.
    merge_interference_queries: int = 50
    merge_blocking_us: float = 15_000.0

    block_size: int = 4096
    ssd_blocks: int = 1 << 17
    read_latency_us: float = 90.0
    write_latency_us: float = 20.0
    queue_depth: int = 32
    cpu_cost_per_hop_us: float = 10.0
    cpu_cost_per_query_us: float = 30.0
    seed: int = 0

    def node_capacity(self) -> int:
        return self.degree_limit + self.degree_slack

    def node_bytes(self) -> int:
        # int32 degree + int64 neighbor slots + float32 vector
        return 4 + 8 * self.node_capacity() + 4 * self.dim

    def validate(self) -> "DiskANNConfig":
        if self.node_bytes() > self.block_size:
            raise ValueError(
                f"node of {self.node_bytes()} bytes exceeds block size "
                f"{self.block_size}; lower degree_limit or dim"
            )
        return self


class _NodeStore:
    """One graph node per SSD block: vector + padded adjacency list."""

    def __init__(self, ssd: SimulatedSSD, config: DiskANNConfig) -> None:
        self.ssd = ssd
        self.config = config
        self._free = list(range(ssd.num_blocks - 1, -1, -1))

    def allocate(self) -> int:
        if not self._free:
            raise StorageError("DiskANN node store out of blocks")
        return self._free.pop()

    def release(self, block_id: int) -> None:
        self.ssd.trim([block_id])
        self._free.append(block_id)

    def encode(self, vector: np.ndarray, neighbors: np.ndarray) -> bytes:
        cap = self.config.node_capacity()
        padded = np.full(cap, -1, dtype=np.int64)
        padded[: len(neighbors)] = neighbors[:cap]
        return (
            struct.pack("<i", min(len(neighbors), cap))
            + padded.tobytes()
            + np.ascontiguousarray(vector, dtype=np.float32).tobytes()
        )

    def decode(self, payload: bytes) -> tuple[np.ndarray, np.ndarray]:
        cap = self.config.node_capacity()
        (degree,) = struct.unpack_from("<i", payload, 0)
        neighbors = np.frombuffer(payload, dtype=np.int64, count=cap, offset=4)
        vector = np.frombuffer(
            payload, dtype=np.float32, count=self.config.dim, offset=4 + 8 * cap
        )
        return vector.copy(), neighbors[:degree].copy()

    def write(self, block_id: int, vector: np.ndarray, neighbors: np.ndarray) -> float:
        return self.ssd.write_block(block_id, self.encode(vector, neighbors))

    def read(self, block_id: int) -> tuple[np.ndarray, np.ndarray, float]:
        payload, latency = self.ssd.read_block(block_id)
        vector, neighbors = self.decode(payload)
        return vector, neighbors, latency

    def read_batch(
        self, block_ids: list[int]
    ) -> tuple[list[tuple[np.ndarray, np.ndarray]], float]:
        payloads, latency = self.ssd.read_blocks(block_ids)
        return [self.decode(p) for p in payloads], latency


@dataclass
class DiskANNSearchResult:
    """Same shape as the SPFresh SearchResult (duck-typed for the harness)."""

    ids: np.ndarray
    distances: np.ndarray
    latency_us: float
    hops: int = 0
    nodes_read: int = 0


class FreshDiskANNIndex:
    """Streaming DiskANN with tombstone deletes and global streamingMerge."""

    def __init__(self, config: DiskANNConfig) -> None:
        self.config = config.validate()
        self.ssd = SimulatedSSD(
            config.ssd_blocks,
            SSDProfile(
                block_size=config.block_size,
                read_latency_us=config.read_latency_us,
                write_latency_us=config.write_latency_us,
                queue_depth=config.queue_depth,
            ),
        )
        self.store = _NodeStore(self.ssd, config)
        self.pq = ProductQuantizer(config.dim, config.pq_subspaces)
        self._rng = np.random.default_rng(config.seed)
        self._id_to_block: dict[int, int] = {}
        self._block_vector_cache: dict[int, np.ndarray] = {}
        self._pq_codes: dict[int, np.ndarray] = {}
        self._tombstones: set[int] = set()
        self._medoid: int | None = None  # a vector id
        self.merges_completed = 0
        self.last_merge_io_us = 0.0
        self.background_io_us = 0.0
        self._interference_remaining = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        vectors: np.ndarray,
        ids: np.ndarray | None = None,
        config: DiskANNConfig | None = None,
    ) -> "FreshDiskANNIndex":
        vectors = as_matrix(vectors)
        config = config or DiskANNConfig(dim=vectors.shape[1])
        if config.dim != vectors.shape[1]:
            raise ValueError("config.dim must match vectors")
        if ids is None:
            ids = np.arange(len(vectors), dtype=np.int64)
        ids = np.asarray(ids, dtype=np.int64)
        index = cls(config)
        adjacency, medoid_row = build_vamana(
            vectors,
            degree_limit=config.degree_limit,
            build_list_size=config.build_list_size,
            alpha=config.alpha,
            rng=index._rng,
        )
        index.pq.fit(vectors, index._rng)
        codes = index.pq.encode(vectors)
        for row, vid in enumerate(ids):
            vid = int(vid)
            block = index.store.allocate()
            index._id_to_block[vid] = block
            index.store.write(block, vectors[row], ids[adjacency[row]])
            index._pq_codes[vid] = codes[row]
        index._medoid = int(ids[medoid_row])
        return index

    # ------------------------------------------------------------------
    # traversal
    # ------------------------------------------------------------------
    def _read_node(self, vector_id: int) -> tuple[np.ndarray, np.ndarray, float]:
        block = self._id_to_block.get(vector_id)
        if block is None:
            raise IndexError_(f"vector {vector_id} not in DiskANN index")
        return self.store.read(block)

    def _beam_traverse(
        self, query: np.ndarray, list_size: int
    ) -> tuple[dict[int, tuple[float, np.ndarray, np.ndarray]], float, int]:
        """Beam search steered by PQ distances; reads nodes off disk.

        Returns (visited: id -> (exact distance, vector, neighbors),
        io latency, hop count).
        """
        if self._medoid is None or not self._id_to_block:
            return {}, 0.0, 0
        table = self.pq.distance_table(query)

        def pq_dist(vid: int) -> float:
            return float(self.pq.adc_distances(table, self._pq_codes[vid])[0])

        entry = self._medoid
        frontier: list[tuple[float, int]] = [(pq_dist(entry), entry)]
        best: list[tuple[float, int]] = [(-frontier[0][0], entry)]
        seen = {entry}
        visited: dict[int, tuple[float, np.ndarray, np.ndarray]] = {}
        io_latency = 0.0
        hops = 0
        while frontier:
            batch: list[int] = []
            while frontier and len(batch) < self.config.beamwidth:
                dist, vid = heapq.heappop(frontier)
                if len(best) >= list_size and dist > -best[0][0]:
                    break
                if vid not in visited:
                    batch.append(vid)
            if not batch:
                break
            blocks = [self._id_to_block[vid] for vid in batch]
            nodes, latency = self.store.read_batch(blocks)
            io_latency += latency
            hops += 1
            for vid, (vector, neighbors) in zip(batch, nodes):
                exact = float(np.dot(vector - query, vector - query))
                visited[vid] = (exact, vector, neighbors)
                for nbr in neighbors:
                    nbr = int(nbr)
                    if nbr in seen or nbr not in self._pq_codes:
                        continue
                    seen.add(nbr)
                    d = pq_dist(nbr)
                    if len(best) < list_size or d < -best[0][0]:
                        heapq.heappush(frontier, (d, nbr))
                        heapq.heappush(best, (-d, nbr))
                        if len(best) > list_size:
                            heapq.heappop(best)
        return visited, io_latency, hops

    def search(
        self, query: np.ndarray, k: int, list_size: int | None = None
    ) -> DiskANNSearchResult:
        """Approximate k-NN over live (non-tombstoned) vectors."""
        query = as_vector(query, self.config.dim)
        list_size = list_size or self.config.search_list_size
        visited, io_latency, hops = self._beam_traverse(query, max(list_size, k))
        ranked = sorted(
            (
                (exact, vid)
                for vid, (exact, _, _) in visited.items()
                if vid not in self._tombstones
            ),
        )[:k]
        latency = (
            io_latency
            + self.config.cpu_cost_per_query_us
            + self.config.cpu_cost_per_hop_us * hops
        )
        if self._interference_remaining > 0:
            # This query overlapped a streamingMerge window: it queued
            # behind the merge's bulk I/O (paper: >20 ms P99.9 spikes).
            self._interference_remaining -= 1
            latency += float(self._rng.uniform(0.4, 1.0)) * self.config.merge_blocking_us
        return DiskANNSearchResult(
            ids=np.array([vid for _, vid in ranked], dtype=np.int64),
            distances=np.array([d for d, _ in ranked], dtype=np.float32),
            latency_us=latency,
            hops=hops,
            nodes_read=len(visited),
        )

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def insert(self, vector_id: int, vector: np.ndarray) -> float:
        """Graph insert: greedy search + RobustPrune + reverse-edge patch."""
        vector = as_vector(vector, self.config.dim)
        if vector_id in self._id_to_block:
            raise IndexError_(f"vector {vector_id} already present")
        if not self._id_to_block:
            block = self.store.allocate()
            self._id_to_block[vector_id] = block
            latency = self.store.write(block, vector, np.empty(0, dtype=np.int64))
            if not self.pq.is_fitted:
                self.pq.fit(vector.reshape(1, -1), self._rng)
            self._pq_codes[vector_id] = self.pq.encode(vector)[0]
            self._medoid = vector_id
            return latency

        visited, io_latency, hops = self._beam_traverse(
            vector, self.config.insert_list_size
        )
        latency = io_latency + self.config.cpu_cost_per_hop_us * hops
        cand_ids = np.array(list(visited.keys()), dtype=np.int64)
        cand_vecs = np.vstack([visited[int(v)][1] for v in cand_ids])
        neighbors = robust_prune(
            vector, cand_ids, cand_vecs, self.config.alpha, self.config.degree_limit
        )
        block = self.store.allocate()
        self._id_to_block[vector_id] = block
        latency += self.store.write(block, vector, np.array(neighbors, dtype=np.int64))
        self._pq_codes[vector_id] = self.pq.encode(vector)[0]

        # Reverse edges: read-modify-write each new neighbor.
        for nbr in neighbors:
            nbr_block = self._id_to_block.get(nbr)
            if nbr_block is None:
                continue
            nbr_vec, nbr_adj, read_us = self.store.read(nbr_block)
            latency += read_us
            if vector_id in nbr_adj:
                continue
            nbr_adj = np.append(nbr_adj, vector_id)
            if len(nbr_adj) > self.config.node_capacity():
                keep_vecs = self._vectors_for(nbr_adj)
                nbr_adj = np.array(
                    robust_prune(
                        nbr_vec,
                        nbr_adj,
                        keep_vecs,
                        self.config.alpha,
                        self.config.degree_limit,
                    ),
                    dtype=np.int64,
                )
            latency += self.store.write(nbr_block, nbr_vec, nbr_adj)
        return latency

    def delete(self, vector_id: int) -> float:
        """Tombstone; triggers streamingMerge at the configured threshold."""
        if vector_id not in self._id_to_block:
            return 1.0
        self._tombstones.add(vector_id)
        if len(self._tombstones) >= self.config.merge_threshold:
            self.streaming_merge()
        return 1.0

    def _vectors_for(self, ids: np.ndarray) -> np.ndarray:
        out = np.zeros((len(ids), self.config.dim), dtype=np.float32)
        for row, vid in enumerate(ids):
            block = self._id_to_block.get(int(vid))
            if block is None:
                continue
            vector, _, _ = self.store.read(block)
            out[row] = vector
        return out

    # ------------------------------------------------------------------
    # streamingMerge: global consolidation
    # ------------------------------------------------------------------
    def streaming_merge(self) -> float:
        """Remove tombstoned nodes and patch the graph around them.

        For each live node pointing at deleted neighbors, the deleted
        entries are replaced by the deleted nodes' own neighborhoods and
        re-pruned (FreshDiskANN's delete consolidation). Every node block
        is read once; patched nodes are rewritten. Returns the simulated
        device time the merge consumed.
        """
        if not self._tombstones:
            return 0.0
        deleted = set(self._tombstones)
        merge_io = 0.0
        # Pass 1: cache deleted nodes' neighborhoods.
        deleted_adj: dict[int, np.ndarray] = {}
        for vid in deleted:
            _, neighbors, read_us = self._read_node(vid)
            merge_io += read_us
            deleted_adj[vid] = neighbors
        # Pass 2: patch every live node.
        for vid, block in list(self._id_to_block.items()):
            if vid in deleted:
                continue
            vector, neighbors, read_us = self.store.read(block)
            merge_io += read_us
            if not any(int(n) in deleted for n in neighbors):
                continue
            patched: list[int] = []
            for n in neighbors:
                n = int(n)
                if n in deleted:
                    patched.extend(
                        int(x)
                        for x in deleted_adj.get(n, ())
                        if int(x) not in deleted and int(x) != vid
                    )
                else:
                    patched.append(n)
            unique = np.array(sorted(set(patched)), dtype=np.int64)
            if len(unique) > self.config.degree_limit:
                unique = np.array(
                    robust_prune(
                        vector,
                        unique,
                        self._vectors_for(unique),
                        self.config.alpha,
                        self.config.degree_limit,
                    ),
                    dtype=np.int64,
                )
            merge_io += self.store.write(block, vector, unique)
        # Pass 3: reclaim deleted nodes.
        for vid in deleted:
            block = self._id_to_block.pop(vid)
            self.store.release(block)
            self._pq_codes.pop(vid, None)
        self._tombstones.clear()
        if self._medoid in deleted:
            self._medoid = next(iter(self._id_to_block), None)
        self.merges_completed += 1
        self.last_merge_io_us = merge_io
        self.background_io_us += merge_io
        self._interference_remaining = self.config.merge_interference_queries
        return merge_io

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    @property
    def live_vector_count(self) -> int:
        return len(self._id_to_block) - len(self._tombstones)

    def memory_bytes(self, during_merge: bool = False) -> int:
        """Modelled DRAM: PQ codes + codebooks + id mapping.

        During a merge, FreshDiskANN materializes substantial extra state
        (the paper measures an extra ~60 GB at 100M scale); modelled here
        as the full adjacency working set.
        """
        n = len(self._id_to_block)
        base = self.pq.memory_bytes(n) + n * 16  # id -> block mapping
        if during_merge:
            base += n * 8 * self.config.node_capacity()
        return base
