"""Product quantization for DiskANN's in-memory vectors (re-export).

DiskANN keeps a PQ-compressed copy of every vector in DRAM so graph
traversal can estimate distances without touching disk; exact vectors are
read from the node blocks only for the final rerank. The implementation
was promoted into the main engine as :mod:`repro.quantize.pq` (the
SPFresh searcher now scans PQ codes in postings too); this module remains
the baseline's import path.
"""

from repro.quantize.pq import ProductQuantizer

__all__ = ["ProductQuantizer"]
