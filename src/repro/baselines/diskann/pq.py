"""Product quantization (Jégou et al.) for DiskANN's in-memory vectors.

DiskANN keeps a PQ-compressed copy of every vector in DRAM so graph
traversal can estimate distances without touching disk; exact vectors are
read from the node blocks only for the final rerank. This implementation
uses the classic layout: the vector is cut into ``num_subspaces`` chunks,
each chunk quantized against a 256-entry codebook learned with k-means.
"""

from __future__ import annotations

import numpy as np

from repro.clustering.kmeans import kmeans
from repro.util.distance import pairwise_sq_l2


class ProductQuantizer:
    """Classic PQ with asymmetric distance computation (ADC)."""

    def __init__(self, dim: int, num_subspaces: int = 4, codebook_size: int = 256) -> None:
        if dim % num_subspaces != 0:
            raise ValueError(
                f"dim {dim} must be divisible by num_subspaces {num_subspaces}"
            )
        if not 2 <= codebook_size <= 256:
            raise ValueError("codebook_size must fit in one byte (2..256)")
        self.dim = dim
        self.num_subspaces = num_subspaces
        self.sub_dim = dim // num_subspaces
        self.codebook_size = codebook_size
        self.codebooks: np.ndarray | None = None  # (m, codebook_size, sub_dim)

    @property
    def is_fitted(self) -> bool:
        return self.codebooks is not None

    def fit(
        self,
        vectors: np.ndarray,
        rng: np.random.Generator | None = None,
        max_iters: int = 8,
        sample_size: int = 4096,
    ) -> "ProductQuantizer":
        """Learn one k-means codebook per subspace from a training sample."""
        vectors = np.ascontiguousarray(vectors, dtype=np.float32)
        rng = rng or np.random.default_rng(0)
        if len(vectors) > sample_size:
            sample = vectors[rng.choice(len(vectors), sample_size, replace=False)]
        else:
            sample = vectors
        books = np.zeros(
            (self.num_subspaces, self.codebook_size, self.sub_dim), dtype=np.float32
        )
        for m in range(self.num_subspaces):
            chunk = sample[:, m * self.sub_dim : (m + 1) * self.sub_dim]
            k = min(self.codebook_size, len(chunk))
            centroids, _ = kmeans(chunk, k, rng, max_iters=max_iters)
            books[m, : len(centroids)] = centroids
            if len(centroids) < self.codebook_size:
                # Pad unused codewords far away so they are never selected.
                books[m, len(centroids) :] = centroids[0] + 1e6
        self.codebooks = books
        return self

    def encode(self, vectors: np.ndarray) -> np.ndarray:
        """Quantize vectors to (n, num_subspaces) uint8 codes."""
        if not self.is_fitted:
            raise RuntimeError("ProductQuantizer.fit must be called first")
        vectors = np.ascontiguousarray(vectors, dtype=np.float32)
        if vectors.ndim == 1:
            vectors = vectors.reshape(1, -1)
        codes = np.zeros((len(vectors), self.num_subspaces), dtype=np.uint8)
        for m in range(self.num_subspaces):
            chunk = vectors[:, m * self.sub_dim : (m + 1) * self.sub_dim]
            dists = pairwise_sq_l2(chunk, self.codebooks[m])
            codes[:, m] = dists.argmin(axis=1).astype(np.uint8)
        return codes

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Reconstruct approximate vectors from codes."""
        if not self.is_fitted:
            raise RuntimeError("ProductQuantizer.fit must be called first")
        codes = np.asarray(codes, dtype=np.uint8)
        if codes.ndim == 1:
            codes = codes.reshape(1, -1)
        out = np.zeros((len(codes), self.dim), dtype=np.float32)
        for m in range(self.num_subspaces):
            out[:, m * self.sub_dim : (m + 1) * self.sub_dim] = self.codebooks[m][
                codes[:, m]
            ]
        return out

    def distance_table(self, query: np.ndarray) -> np.ndarray:
        """Per-subspace distances from ``query`` to every codeword (ADC)."""
        if not self.is_fitted:
            raise RuntimeError("ProductQuantizer.fit must be called first")
        query = np.ascontiguousarray(query, dtype=np.float32).reshape(-1)
        table = np.zeros((self.num_subspaces, self.codebook_size), dtype=np.float32)
        for m in range(self.num_subspaces):
            chunk = query[m * self.sub_dim : (m + 1) * self.sub_dim]
            table[m] = pairwise_sq_l2(
                chunk.reshape(1, -1), self.codebooks[m]
            ).ravel()
        return table

    @staticmethod
    def adc_distances(table: np.ndarray, codes: np.ndarray) -> np.ndarray:
        """Approximate squared distances via table lookups (vectorized)."""
        codes = np.asarray(codes, dtype=np.uint8)
        if codes.ndim == 1:
            codes = codes.reshape(1, -1)
        cols = np.arange(codes.shape[1])
        return table[cols, codes].sum(axis=1)

    def memory_bytes(self, num_vectors: int) -> int:
        """DRAM model: codes for every vector plus the codebooks."""
        codebook_bytes = (
            self.num_subspaces * self.codebook_size * self.sub_dim * 4
        )
        return num_vectors * self.num_subspaces + codebook_bytes
