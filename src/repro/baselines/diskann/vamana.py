"""Vamana graph construction (DiskANN's index graph).

Two build paths are provided:

* :func:`build_vamana` — the paper-faithful incremental build: for every
  point, greedy-search from the medoid, RobustPrune the visited set into
  the out-neighborhood, then insert reverse edges with pruning;
* ``fast=True`` — a batched variant that seeds the graph from the exact
  k-NN lists (computed chunk-wise) before running RobustPrune; this is an
  order of magnitude faster in Python and produces graphs of equivalent
  search quality at reproduction scale.

Both share :func:`robust_prune` and :func:`greedy_search`, which are also
used verbatim by the streaming insert/merge paths in
:mod:`repro.baselines.diskann.fresh`.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.util.distance import pairwise_sq_l2, sq_l2_batch


def robust_prune(
    point: np.ndarray,
    candidate_ids: np.ndarray,
    candidate_vectors: np.ndarray,
    alpha: float,
    degree_limit: int,
) -> list[int]:
    """DiskANN's RobustPrune: diverse out-neighbors within degree limit.

    Candidates are consumed in ascending distance order; a candidate is
    kept only if no already-kept neighbor ``p*`` satisfies
    ``alpha * D(p*, c) <= D(point, c)`` — i.e. kept edges "cover" the
    directions they point in, keeping the graph navigable at low degree.
    """
    if len(candidate_ids) == 0:
        return []
    dists = sq_l2_batch(point.astype(np.float32), candidate_vectors)
    order = np.argsort(dists, kind="stable")
    kept: list[int] = []
    kept_vectors: list[np.ndarray] = []
    alpha_sq = alpha * alpha  # distances are squared
    for idx in order:
        cand_vec = candidate_vectors[idx]
        cand_dist = float(dists[idx])
        dominated = False
        for kept_vec in kept_vectors:
            if alpha_sq * float(np.dot(kept_vec - cand_vec, kept_vec - cand_vec)) <= cand_dist:
                dominated = True
                break
        if dominated:
            continue
        kept.append(int(candidate_ids[idx]))
        kept_vectors.append(cand_vec)
        if len(kept) >= degree_limit:
            break
    return kept


def greedy_search(
    query: np.ndarray,
    entry: int,
    neighbors: list[np.ndarray] | dict,
    get_vector,
    list_size: int,
    visit_callback=None,
) -> tuple[list[int], list[int]]:
    """Best-first search over an adjacency structure.

    Returns ``(closest_ids, visited_ids)``: the final candidate list of up
    to ``list_size`` node ids (ascending distance), plus every node whose
    adjacency was expanded — the set RobustPrune uses for inserts.
    ``visit_callback(node_id)`` fires once per expansion (I/O accounting).
    """
    d0 = float(np.dot(get_vector(entry) - query, get_vector(entry) - query))
    frontier: list[tuple[float, int]] = [(d0, entry)]
    best: list[tuple[float, int]] = [(-d0, entry)]  # max-heap of the L best
    seen = {entry}
    visited: list[int] = []
    while frontier:
        dist, node = heapq.heappop(frontier)
        if len(best) >= list_size and dist > -best[0][0]:
            break
        visited.append(node)
        if visit_callback is not None:
            visit_callback(node)
        for nbr in neighbors[node]:
            nbr = int(nbr)
            if nbr in seen:
                continue
            seen.add(nbr)
            vec = get_vector(nbr)
            d = float(np.dot(vec - query, vec - query))
            if len(best) < list_size or d < -best[0][0]:
                heapq.heappush(frontier, (d, nbr))
                heapq.heappush(best, (-d, nbr))
                if len(best) > list_size:
                    heapq.heappop(best)
    ordered = sorted((-negd, node) for negd, node in best)
    return [node for _, node in ordered], visited


def _knn_seed_graph(
    vectors: np.ndarray, k: int, chunk_size: int = 1024
) -> list[np.ndarray]:
    """Exact k-NN lists per node (chunked); seed for the fast build."""
    n = len(vectors)
    k = min(k, n - 1)
    out: list[np.ndarray] = []
    for start in range(0, n, chunk_size):
        stop = min(start + chunk_size, n)
        dists = pairwise_sq_l2(vectors[start:stop], vectors)
        rows = np.arange(start, stop)
        dists[np.arange(stop - start), rows] = np.inf  # exclude self
        part = np.argpartition(dists, k - 1, axis=1)[:, :k]
        row_idx = np.arange(stop - start)[:, None]
        order = np.argsort(dists[row_idx, part], axis=1, kind="stable")
        out.extend(part[row_idx, order])
    return [np.asarray(x, dtype=np.int64) for x in out]


def build_vamana(
    vectors: np.ndarray,
    degree_limit: int = 16,
    build_list_size: int = 32,
    alpha: float = 1.2,
    rng: np.random.Generator | None = None,
    fast: bool = True,
) -> tuple[list[np.ndarray], int]:
    """Build a Vamana graph; returns (adjacency lists, medoid index)."""
    vectors = np.ascontiguousarray(vectors, dtype=np.float32)
    n = len(vectors)
    if n == 0:
        raise ValueError("cannot build a graph over zero vectors")
    rng = rng or np.random.default_rng(0)
    medoid = int(
        sq_l2_batch(vectors.mean(axis=0).astype(np.float32), vectors).argmin()
    )
    if n == 1:
        return [np.empty(0, dtype=np.int64)], medoid

    if fast:
        knn = _knn_seed_graph(vectors, k=build_list_size)
        adjacency: list[list[int]] = [
            robust_prune(vectors[i], knn[i], vectors[knn[i]], alpha, degree_limit)
            for i in range(n)
        ]
    else:
        # Random-start incremental build, as in the DiskANN paper.
        adjacency = [
            list(rng.choice(n, size=min(degree_limit, n - 1), replace=False))
            for _ in range(n)
        ]
        for i in range(n):
            if i in adjacency[i]:
                adjacency[i].remove(i)
        order = rng.permutation(n)
        for i in order:
            _, visited = greedy_search(
                vectors[i],
                medoid,
                adjacency,
                lambda nid: vectors[nid],
                build_list_size,
            )
            cand = np.array([v for v in visited if v != i], dtype=np.int64)
            adjacency[i] = robust_prune(
                vectors[i], cand, vectors[cand], alpha, degree_limit
            )

    # Reverse edges with pruning (shared by both paths).
    for i in range(n):
        for j in adjacency[i]:
            if i not in adjacency[j]:
                adjacency[j].append(i)
                if len(adjacency[j]) > degree_limit:
                    cand = np.array(adjacency[j], dtype=np.int64)
                    adjacency[j] = robust_prune(
                        vectors[j], cand, vectors[cand], alpha, degree_limit
                    )
    adjacency = [list(a) for a in adjacency]
    if fast:
        # Navigability shortcuts: a few random long-range out-edges per
        # node, added after the degree-pruning passes so they survive. The
        # incremental Vamana build gets such edges from its random initial
        # graph surviving RobustPrune; the k-NN-seeded fast build must add
        # them explicitly or greedy search cannot hop between
        # well-separated clusters.
        long_edges = min(3, n - 1)
        for i in range(n):
            extras = rng.choice(n, size=long_edges, replace=False)
            adjacency[i].extend(int(e) for e in extras if int(e) != i)
    _ensure_connected(vectors, adjacency, medoid)
    return [np.asarray(a, dtype=np.int64) for a in adjacency], medoid


def _ensure_connected(
    vectors: np.ndarray, adjacency: list[list[int]], medoid: int
) -> None:
    """Bridge disconnected components to the medoid's component.

    A k-NN-seeded graph over well-separated clusters fragments into one
    component per cluster, making most of the dataset unreachable from the
    medoid. For each stray component the closest cross-component pair gets
    a bidirectional bridge edge — the navigability role that long random
    edges play in the incremental Vamana build.
    """
    n = len(vectors)
    component = _components(adjacency, n)
    main = component[medoid]
    main_nodes = np.nonzero(component == main)[0]
    stray_labels = set(int(c) for c in np.unique(component)) - {int(main)}
    for label in stray_labels:
        members = np.nonzero(component == label)[0]
        cross = pairwise_sq_l2(vectors[members], vectors[main_nodes])
        flat = int(cross.argmin())
        u = int(members[flat // cross.shape[1]])
        v = int(main_nodes[flat % cross.shape[1]])
        adjacency[u].append(v)
        adjacency[v].append(u)
        # Newly bridged nodes join the main component for later strays.
        component[members] = main
        main_nodes = np.nonzero(component == main)[0]


def _components(adjacency: list[list[int]], n: int) -> np.ndarray:
    """Connected-component labels over the undirected view of the graph."""
    labels = np.full(n, -1, dtype=np.int64)
    undirected: list[set[int]] = [set() for _ in range(n)]
    for i, nbrs in enumerate(adjacency):
        for j in nbrs:
            undirected[i].add(int(j))
            undirected[int(j)].add(i)
    current = 0
    for start in range(n):
        if labels[start] != -1:
            continue
        stack = [start]
        labels[start] = current
        while stack:
            node = stack.pop()
            for nbr in undirected[node]:
                if labels[nbr] == -1:
                    labels[nbr] = current
                    stack.append(nbr)
        current += 1
    return labels
