"""Vearch-style in-memory cluster index (paper §2.3's early in-place system).

Vearch keeps cluster-based postings *in memory*, inserts new vectors into
their nearest partition, filters deletions through a tombstone bitmap —
and still needs **weekly global rebuilds** because fixed centroids cannot
track distribution shift. This implementation exists to reproduce that
§2.3 argument: in-place updates without rebalancing work until the data
moves, and then only a full recluster (`rebuild()`) restores quality.

Being in-memory, its search latency model is pure CPU (per-entry scan
cost); there is no device. Its DRAM footprint is the entire raw vector
set — the cost profile the paper contrasts against disk-based indexes.
"""

from __future__ import annotations

import time

import numpy as np

from repro.clustering.kmeans import kmeans
from repro.util.distance import as_matrix, as_vector, sq_l2_batch, top_k_smallest
from repro.util.errors import IndexError_


class _Partition:
    """One in-memory posting: grow-only arrays of ids and vectors."""

    def __init__(self, dim: int) -> None:
        self.ids: list[int] = []
        self.vectors: list[np.ndarray] = []
        self.dim = dim

    def append(self, vector_id: int, vector: np.ndarray) -> None:
        self.ids.append(vector_id)
        self.vectors.append(vector)

    def matrix(self) -> np.ndarray:
        if not self.vectors:
            return np.empty((0, self.dim), dtype=np.float32)
        return np.vstack(self.vectors)

    def __len__(self) -> int:
        return len(self.ids)


class VearchLikeIndex:
    """In-memory cluster index: naive in-place updates + global rebuild."""

    def __init__(
        self,
        dim: int,
        num_partitions: int = 64,
        cpu_cost_per_entry_us: float = 0.02,
        cpu_cost_per_query_us: float = 20.0,
        seed: int = 0,
    ) -> None:
        self.dim = dim
        self.num_partitions = num_partitions
        self.cpu_cost_per_entry_us = cpu_cost_per_entry_us
        self.cpu_cost_per_query_us = cpu_cost_per_query_us
        self._rng = np.random.default_rng(seed)
        self._centroids = np.empty((0, dim), dtype=np.float32)
        self._partitions: list[_Partition] = []
        self._tombstones: set[int] = set()
        self._live: dict[int, np.ndarray] = {}
        self.rebuilds_completed = 0

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        vectors: np.ndarray,
        ids: np.ndarray | None = None,
        num_partitions: int = 64,
        seed: int = 0,
    ) -> "VearchLikeIndex":
        vectors = as_matrix(vectors)
        if ids is None:
            ids = np.arange(len(vectors), dtype=np.int64)
        index = cls(vectors.shape[1], num_partitions=num_partitions, seed=seed)
        index._recluster(np.asarray(ids, dtype=np.int64), vectors)
        return index

    def _recluster(self, ids: np.ndarray, vectors: np.ndarray) -> None:
        k = min(self.num_partitions, max(len(vectors), 1))
        centroids, assignments = kmeans(vectors, k, self._rng)
        self._centroids = centroids
        self._partitions = [_Partition(self.dim) for _ in range(len(centroids))]
        self._live = {}
        self._tombstones = set()
        for row, (vid, part) in enumerate(zip(ids, assignments)):
            self._partitions[int(part)].append(int(vid), vectors[row])
            self._live[int(vid)] = vectors[row]

    # ------------------------------------------------------------------
    def insert(self, vector_id: int, vector: np.ndarray) -> float:
        """Append to the nearest partition; centroids stay frozen."""
        vector = as_vector(vector, self.dim).copy()
        if vector_id in self._live:
            raise IndexError_(f"vector {vector_id} already present")
        dists = sq_l2_batch(vector, self._centroids)
        self._partitions[int(dists.argmin())].append(vector_id, vector)
        self._live[vector_id] = vector
        self._tombstones.discard(vector_id)
        return self.cpu_cost_per_query_us

    def delete(self, vector_id: int) -> float:
        """Tombstone-bitmap deletion (result filtering only)."""
        if vector_id in self._live:
            self._tombstones.add(vector_id)
            del self._live[vector_id]
        return 1.0

    def search(self, query: np.ndarray, k: int, nprobe: int = 8):
        """Scan the nearest ``nprobe`` partitions; pure-CPU latency model."""
        from repro.spann.searcher import SearchResult

        query = as_vector(query, self.dim)
        if len(self._centroids) == 0:
            return SearchResult(
                ids=np.empty(0, dtype=np.int64),
                distances=np.empty(0, dtype=np.float32),
                latency_us=self.cpu_cost_per_query_us,
            )
        centroid_dists = sq_l2_batch(query, self._centroids)
        order = top_k_smallest(centroid_dists, min(nprobe, len(self._centroids)))
        all_ids: list[int] = []
        all_dists: list[float] = []
        scanned = 0
        for part_idx in order:
            partition = self._partitions[int(part_idx)]
            scanned += len(partition)
            if not len(partition):
                continue
            dists = sq_l2_batch(query, partition.matrix())
            for vid, dist in zip(partition.ids, dists):
                if vid in self._tombstones:
                    continue
                all_ids.append(vid)
                all_dists.append(float(dist))
        dist_arr = np.array(all_dists, dtype=np.float32)
        top = top_k_smallest(dist_arr, k)
        latency = (
            self.cpu_cost_per_query_us + self.cpu_cost_per_entry_us * scanned
        )
        return SearchResult(
            ids=np.array(all_ids, dtype=np.int64)[top],
            distances=dist_arr[top],
            latency_us=latency,
            postings_probed=len(order),
            entries_scanned=scanned,
        )

    # ------------------------------------------------------------------
    def rebuild(self) -> float:
        """The weekly global rebuild: full recluster of the live set.

        Returns wall-clock seconds spent — the cost SPFresh exists to
        avoid.
        """
        start = time.perf_counter()
        ids = np.fromiter(self._live.keys(), dtype=np.int64, count=len(self._live))
        if len(ids) == 0:
            return 0.0
        vectors = np.vstack([self._live[int(v)] for v in ids])
        self._recluster(ids, vectors)
        self.rebuilds_completed += 1
        return time.perf_counter() - start

    # ------------------------------------------------------------------
    @property
    def live_vector_count(self) -> int:
        return len(self._live)

    def partition_sizes(self) -> np.ndarray:
        return np.array([len(p) for p in self._partitions], dtype=np.int64)

    def memory_bytes(self) -> int:
        """In-memory index: every raw vector resides in DRAM."""
        stored = sum(len(p) for p in self._partitions)
        return stored * (self.dim * 4 + 8) + len(self._centroids) * self.dim * 4
