"""Exact brute-force index: the differential-testing oracle.

``FlatIndex`` keeps every live vector in a plain ``id → vector`` map and
answers top-k by scanning all of them with the same ``sq_l2_batch`` kernel
the engine uses. It has no postings, no tiers, no tombstones and no
latency model — which is precisely why it is trustworthy: any divergence
between it and :class:`~repro.core.index.SPFreshIndex` run over the same
insert/delete/search interleaving is an engine bug, not an oracle bug.
``tests/test_fresh_tier.py`` runs it in lockstep against the fresh-tier
write path, including mid-flush states.
"""

from __future__ import annotations

import numpy as np

from repro.util.distance import as_vector, sq_l2_batch


class FlatIndex:
    """Minimal exact k-NN index over an explicit vector map."""

    def __init__(self, dim: int) -> None:
        if dim <= 0:
            raise ValueError("dim must be positive")
        self.dim = int(dim)
        self._vectors: dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------
    def insert(self, vector_id: int, vector: np.ndarray) -> None:
        self._vectors[int(vector_id)] = as_vector(vector, self.dim).copy()

    def delete(self, vector_id: int) -> bool:
        return self._vectors.pop(int(vector_id), None) is not None

    def __len__(self) -> int:
        return len(self._vectors)

    def __contains__(self, vector_id: int) -> bool:
        return int(vector_id) in self._vectors

    def ids(self) -> np.ndarray:
        return np.array(sorted(self._vectors), dtype=np.int64)

    # ------------------------------------------------------------------
    def search(self, query: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
        """Exact top-k ``(ids, distances)``, distance- then id-ordered.

        Ties on distance break toward the smaller id, which makes the
        oracle's output deterministic regardless of insertion order.
        """
        query = as_vector(query, self.dim)
        if not self._vectors or k <= 0:
            return (
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.float32),
            )
        ids = self.ids()
        matrix = np.stack([self._vectors[int(v)] for v in ids])
        dists = sq_l2_batch(query, matrix)
        order = np.argsort(dists, kind="stable")[: min(k, len(ids))]
        return ids[order], dists[order]
