"""SPANN+ baseline (paper §5.1): append-only in-place updates.

SPANN+ is "a modified version of SPANN which appends updates locally to a
posting *without splitting and reassigning* — an append-only version of
SPFresh without the Local Rebuilder module". It is exactly the SPFresh
code with the three LIRE operators disabled, plus the background garbage
collection the paper credits with keeping SPANN+ competitive on uniform
data (it can prune stale vectors, but never re-balances postings).
"""

from __future__ import annotations

import numpy as np

from repro.core.config import SPFreshConfig
from repro.core.index import SPFreshIndex


def build_spann_plus(
    vectors: np.ndarray,
    ids: np.ndarray | None = None,
    config: SPFreshConfig | None = None,
    **overrides,
) -> SPFreshIndex:
    """Build an SPANN+ index: SPFresh with the rebuilder switched off.

    Accepts either a prepared config (its LIRE flags are forcibly cleared)
    or keyword overrides applied on top of the SPANN+ preset. Postings can
    grow without bound, so the simulated device and latency budget behave
    exactly as the paper's Figure 2/7 describe: probes get more expensive
    as postings lengthen.
    """
    if config is None:
        config = SPFreshConfig.spann_plus(**overrides)
    else:
        config = config.with_overrides(
            enable_split=False,
            enable_merge=False,
            enable_reassign=False,
            **overrides,
        )
    return SPFreshIndex.build(vectors, ids=ids, config=config)
