"""Human-readable verdicts over experiment series.

`comparison_report` renders the multi-system Figure-7 style comparison as
one table with per-metric stability verdicts; `stability_verdict` is the
single-series classifier behind it. Both are built on
:mod:`repro.analysis.series` and used by the CLI and notebooks-style
exploration.
"""

from __future__ import annotations

from repro.analysis.series import series_stats, to_arrays
from repro.bench.reporting import format_table

_METRIC_FIELDS = {
    "recall": "recall",
    "p99.9 (us)": "search_p999_us",
    "insert (us)": "insert_mean_us",
    "memory (MB)": "memory_mb",
}


def stability_verdict(values, spike_factor: float = 3.0) -> str:
    """Classify a day series the way the paper's prose does."""
    stats = series_stats(values, spike_factor)
    if stats.spike_days:
        return f"spiky ({len(stats.spike_days)} days >{spike_factor:.0f}x)"
    if stats.slope_per_day > 0.02:
        return f"growing ({stats.slope_per_day * 100:+.1f}%/day)"
    if stats.slope_per_day < -0.02:
        return f"degrading ({stats.slope_per_day * 100:+.1f}%/day)"
    return "stable"


def comparison_report(results_by_system: dict[str, list]) -> str:
    """Verdict table for a multi-system day-series experiment.

    ``results_by_system`` maps system name → list of DayMetrics (the
    harness output). Returns an ASCII table: one row per system/metric
    with mean value and stability verdict.
    """
    rows = []
    for system, series in results_by_system.items():
        arrays = to_arrays(series, list(_METRIC_FIELDS.values()))
        for label, field in _METRIC_FIELDS.items():
            values = arrays[field]
            stats = series_stats(values)
            rows.append((system, label, stats.mean, stats.maximum, stability_verdict(values)))
    return format_table(
        ["system", "metric", "mean", "max", "verdict"],
        rows,
        title="stability report",
    )
