"""Post-processing of experiment results (trend/spike detection, reports)."""

from repro.analysis.series import (
    SeriesStats,
    detect_spikes,
    series_stats,
    to_arrays,
    trend_slope,
)
from repro.analysis.report import comparison_report, stability_verdict

__all__ = [
    "SeriesStats",
    "detect_spikes",
    "series_stats",
    "to_arrays",
    "trend_slope",
    "comparison_report",
    "stability_verdict",
]
