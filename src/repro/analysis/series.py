"""Numeric analysis of day-metric series.

The paper's claims about Figure 7/9 are *qualitative statements about
series*: "low and stable", "fluctuates significantly with dramatic
increases", "grows gradually". This module turns those into computable
predicates — trend slopes, spike detection, stability scores — used both
by the benches' assertions and by :mod:`repro.analysis.report`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def to_arrays(day_metrics, fields: list[str]) -> dict[str, np.ndarray]:
    """Convert a list of DayMetrics into a dict of per-field arrays."""
    out: dict[str, np.ndarray] = {}
    for field in fields:
        out[field] = np.array(
            [getattr(m, field) for m in day_metrics], dtype=np.float64
        )
    return out


def trend_slope(values) -> float:
    """Least-squares slope per day, normalized by the series mean.

    0.0 means flat; +0.01 means the metric grows ~1% of its mean per day.
    """
    values = np.asarray(values, dtype=np.float64)
    if len(values) < 2:
        return 0.0
    mean = values.mean()
    if mean == 0:
        return 0.0
    days = np.arange(len(values), dtype=np.float64)
    slope = np.polyfit(days, values, 1)[0]
    return float(slope / mean)


def detect_spikes(values, factor: float = 3.0) -> list[int]:
    """Indices where a value exceeds ``factor`` x the median of the rest.

    Median-based so that a few giant spikes (DiskANN merge days) do not
    mask themselves by inflating the baseline.
    """
    values = np.asarray(values, dtype=np.float64)
    if len(values) < 3:
        return []
    spikes = []
    for i in range(len(values)):
        rest = np.delete(values, i)
        baseline = float(np.median(rest))
        if baseline > 0 and values[i] > factor * baseline:
            spikes.append(i)
    return spikes


@dataclass(frozen=True)
class SeriesStats:
    """Summary of one metric's day series."""

    mean: float
    minimum: float
    maximum: float
    slope_per_day: float  # normalized (fraction of mean per day)
    spike_days: tuple[int, ...]
    coefficient_of_variation: float

    @property
    def is_stable(self) -> bool:
        """Flat trend, no spikes, low dispersion — the paper's "stable"."""
        return (
            abs(self.slope_per_day) < 0.02
            and not self.spike_days
            and self.coefficient_of_variation < 0.25
        )


def series_stats(values, spike_factor: float = 3.0) -> SeriesStats:
    values = np.asarray(values, dtype=np.float64)
    if len(values) == 0:
        return SeriesStats(0.0, 0.0, 0.0, 0.0, (), 0.0)
    mean = float(values.mean())
    cv = float(values.std() / mean) if mean else 0.0
    return SeriesStats(
        mean=mean,
        minimum=float(values.min()),
        maximum=float(values.max()),
        slope_per_day=trend_slope(values),
        spike_days=tuple(detect_spikes(values, spike_factor)),
        coefficient_of_variation=cv,
    )
