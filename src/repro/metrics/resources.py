"""Resource accounting: modelled DRAM footprints and scaling projections.

The paper's Table 1 and Figure 7 memory panels compare systems by their
DRAM needs. At reproduction scale the absolute numbers are tiny, so this
module reports both the measured modelled bytes and a projection to a
reference scale (default 100M vectors, the Workload A scale) using each
component's known scaling law — entries per vector or per posting.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class ResourceModel:
    """Per-component memory accounting with linear scaling projection."""

    vectors: int
    postings: int
    centroid_bytes: int
    version_map_bytes: int
    block_mapping_bytes: int
    extra_bytes: int = 0

    @property
    def total_bytes(self) -> int:
        return (
            self.centroid_bytes
            + self.version_map_bytes
            + self.block_mapping_bytes
            + self.extra_bytes
        )

    def projected_bytes(self, target_vectors: int) -> int:
        """Scale each component linearly to a target dataset size.

        Centroid and mapping structures scale with posting count (postings
        per vector stays constant under LIRE's balance invariant); the
        version map scales with vector count.
        """
        if self.vectors == 0:
            return 0
        ratio = target_vectors / self.vectors
        return int(
            (self.centroid_bytes + self.block_mapping_bytes + self.extra_bytes)
            * ratio
            + self.version_map_bytes * ratio
        )


def index_memory_report(index) -> ResourceModel:
    """Build a :class:`ResourceModel` from an SPFresh-like index object."""
    return ResourceModel(
        vectors=index.version_map.live_count,
        postings=index.controller.num_postings,
        centroid_bytes=index.centroid_index.memory_bytes(),
        version_map_bytes=index.version_map.memory_bytes(),
        block_mapping_bytes=index.controller.mapping_memory_bytes(),
    )
