"""Recall metrics (paper §2.1: RecallK@K = |Y ∩ G| / |G|)."""

from __future__ import annotations

import numpy as np


def recall_at_k(result_ids, ground_truth_ids, k: int | None = None) -> float:
    """Mean RecallK@K across queries.

    ``result_ids`` and ``ground_truth_ids`` are per-query sequences of ids
    (ragged lists or 2-D arrays). ``k`` defaults to each query's ground
    truth size. Queries with empty ground truth are skipped.
    """
    if len(result_ids) != len(ground_truth_ids):
        raise ValueError("result and ground-truth lists must align")
    total = 0.0
    counted = 0
    for results, truth in zip(result_ids, ground_truth_ids):
        truth = [int(t) for t in truth]
        if k is not None:
            truth = truth[:k]
        if not truth:
            continue
        results = [int(r) for r in results]
        if k is not None:
            results = results[:k]
        total += len(set(results) & set(truth)) / len(truth)
        counted += 1
    return total / counted if counted else 0.0


def recall_curve(
    search_fn, queries: np.ndarray, ground_truth: np.ndarray, k: int, nprobes: list[int]
) -> list[tuple[int, float, float]]:
    """Sweep nprobe and return (nprobe, recall, mean simulated latency us).

    ``search_fn(query, k, nprobe)`` must return an object with ``ids`` and
    ``latency_us``; this is the shape of both SPFresh and baseline search
    results, so one curve function serves the Figure 10 ablation.
    """
    curve: list[tuple[int, float, float]] = []
    for nprobe in nprobes:
        all_ids = []
        latencies = []
        for query in queries:
            result = search_fn(query, k, nprobe)
            all_ids.append(result.ids)
            latencies.append(result.latency_us)
        recall = recall_at_k(all_ids, ground_truth, k)
        curve.append((nprobe, recall, float(np.mean(latencies))))
    return curve
