"""Structured operation tracing (observability for experiments).

`TraceLog` is a bounded, thread-safe event log for per-operation records:
searches, inserts, rebuild jobs. The bench harness aggregates day-level
numbers; the trace keeps the raw per-op stream so experiments can ask
finer questions — latency by operation kind, timeline buckets around a
merge event, or background-vs-foreground I/O attribution.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class TraceEvent:
    """One traced operation."""

    timestamp: float
    kind: str
    latency_us: float
    detail: dict | None = None


class TraceLog:
    """Bounded in-memory event log with per-kind aggregation."""

    def __init__(self, capacity: int = 100_000) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._events: deque[TraceEvent] = deque(maxlen=capacity)
        self._dropped = 0

    def record(  # one traced operation
        self,
        kind: str,
        latency_us: float,
        detail: dict | None = None,
        timestamp: float | None = None,
    ) -> None:
        event = TraceEvent(
            timestamp=timestamp if timestamp is not None else time.monotonic(),
            kind=kind,
            latency_us=float(latency_us),
            detail=detail,
        )
        with self._lock:
            if len(self._events) == self.capacity:
                self._dropped += 1
            self._events.append(event)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    @property
    def dropped(self) -> int:
        with self._lock:
            return self._dropped

    def events(self, kind: str | None = None) -> list[TraceEvent]:
        with self._lock:
            snapshot = list(self._events)
        if kind is None:
            return snapshot
        return [e for e in snapshot if e.kind == kind]

    def kinds(self) -> set[str]:
        with self._lock:
            return {e.kind for e in self._events}

    def summary(self, kind: str) -> dict[str, float]:
        """count / mean / p50 / p99 / max latency for one op kind."""
        latencies = np.array(
            [e.latency_us for e in self.events(kind)], dtype=np.float64
        )
        if len(latencies) == 0:
            return {"count": 0, "mean": 0.0, "p50": 0.0, "p99": 0.0, "max": 0.0}
        return {
            "count": int(len(latencies)),
            "mean": float(latencies.mean()),
            "p50": float(np.percentile(latencies, 50)),
            "p99": float(np.percentile(latencies, 99)),
            "max": float(latencies.max()),
        }

    def timeline(
        self, bucket_s: float, kind: str | None = None
    ) -> list[tuple[float, int, float]]:
        """(bucket start, op count, mean latency) per time bucket."""
        if bucket_s <= 0:
            raise ValueError("bucket_s must be positive")
        events = self.events(kind)
        if not events:
            return []
        start = events[0].timestamp
        buckets: dict[int, list[float]] = {}
        for event in events:
            slot = int((event.timestamp - start) / bucket_s)
            buckets.setdefault(slot, []).append(event.latency_us)
        return [
            (start + slot * bucket_s, len(vals), float(np.mean(vals)))
            for slot, vals in sorted(buckets.items())
        ]

    def clear(self) -> None:
        with self._lock:
            self._events.clear()
            self._dropped = 0


class TracedIndex:
    """Transparent tracing wrapper around an SPFresh-like index.

    Delegates everything; intercepts search/insert/delete to record their
    simulated latencies into a :class:`TraceLog`.
    """

    def __init__(self, index, log: TraceLog | None = None) -> None:
        self._index = index
        self.trace = log or TraceLog()

    def query(self, request):
        response = self._index.query(request)
        for result in response.results:
            self.trace.record(
                "search",
                result.latency_us,
                detail={"postings": result.postings_probed},
            )
        return response

    def search(self, query, k=None, nprobe=None):
        from repro.api import QueryRequest, warn_legacy_query

        if isinstance(query, QueryRequest):
            if k is not None or nprobe is not None:
                raise TypeError(
                    "pass k/nprobe inside the QueryRequest, not alongside it"
                )
            return self.query(query)
        warn_legacy_query("TracedIndex.search")
        if k is None:
            raise TypeError("search(vector, k) requires k")
        return self.query(QueryRequest.single(query, k=k, nprobe=nprobe)).result

    def insert(self, vector_id, vector):
        latency = self._index.insert(vector_id, vector)
        self.trace.record("insert", latency)
        return latency

    def delete(self, vector_id):
        latency = self._index.delete(vector_id)
        self.trace.record("delete", latency)
        return latency

    def __getattr__(self, name):
        return getattr(self._index, name)
