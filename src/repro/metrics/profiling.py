"""Scoped wall-clock profiler for the real (not simulated) hot path.

The repo runs two clocks. The *simulated* clock — device waves, modelled
CPU cost — is deterministic and gated by the perf harness. The *wall*
clock is how fast this Python process actually executes; it is machine-
dependent, informational, and exactly what the vectorized-engine work
optimizes. This module measures the second clock with near-zero overhead:

* ``Profiler.section("scan")`` is a context manager around a code region;
  enabled profilers aggregate ``perf_counter_ns`` deltas per stage
  (calls, total, max), disabled ones return a shared no-op context whose
  enter/exit do nothing — the disabled cost is one attribute check per
  section, far below the 5% overhead budget.
* Stages are free-form strings; the engine uses ``navigate`` (centroid
  index), ``io`` (device reads/writes), ``decode`` (posting codec),
  ``scan`` (distance kernels), ``topk`` (dedup + selection), ``update``
  (foreground updater) and ``maintenance`` (LIRE rebuild jobs). The
  serving engine pools add ``serve_worker<i>`` (one stage per wall-clock
  pool worker, so skew across workers is visible) and
  ``serve_replay_serial`` (the parity baseline replay).
* ``snapshot()`` returns plain dicts for JSON emission; ``format_report``
  renders the human table the ``python -m repro profile`` subcommand and
  the CI artifact use.

Thread-safety: counters are guarded by a lock taken only on section *exit*
of an enabled profiler; the disabled path is lock-free.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass


@dataclass
class StageStats:
    """Aggregated wall-clock time of one stage."""

    calls: int = 0
    total_ns: int = 0
    max_ns: int = 0

    @property
    def total_us(self) -> float:
        return self.total_ns / 1_000.0

    @property
    def mean_us(self) -> float:
        return self.total_ns / self.calls / 1_000.0 if self.calls else 0.0

    @property
    def max_us(self) -> float:
        return self.max_ns / 1_000.0

    def to_dict(self) -> dict:
        return {
            "calls": self.calls,
            "total_us": round(self.total_us, 3),
            "mean_us": round(self.mean_us, 3),
            "max_us": round(self.max_us, 3),
        }


class _NullSection:
    """Shared no-op context manager: the disabled profiler's entire cost."""

    __slots__ = ()

    def __enter__(self) -> "_NullSection":
        return self

    def __exit__(self, *exc) -> None:
        return None


_NULL_SECTION = _NullSection()


class _Section:
    """Timed scope; records into its profiler on exit."""

    __slots__ = ("_profiler", "_stage", "_start")

    def __init__(self, profiler: "Profiler", stage: str) -> None:
        self._profiler = profiler
        self._stage = stage

    def __enter__(self) -> "_Section":
        self._start = time.perf_counter_ns()
        return self

    def __exit__(self, *exc) -> None:
        self._profiler.record(self._stage, time.perf_counter_ns() - self._start)


class Profiler:
    """Per-stage wall-clock aggregator, disabled by default.

    One profiler instance is shared by every component of an index
    (searcher, block controller, updater, rebuilder), so a snapshot shows
    where real time went across the whole engine.
    """

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._stages: dict[str, StageStats] = {}

    def section(self, stage: str):
        """Context manager timing a region under ``stage`` (no-op if disabled)."""
        if not self.enabled:
            return _NULL_SECTION
        return _Section(self, stage)

    def record(self, stage: str, elapsed_ns: int) -> None:
        """Fold one measured duration into a stage's aggregate."""
        if not self.enabled:
            return
        with self._lock:
            stats = self._stages.get(stage)
            if stats is None:
                stats = self._stages[stage] = StageStats()
            stats.calls += 1
            stats.total_ns += elapsed_ns
            if elapsed_ns > stats.max_ns:
                stats.max_ns = elapsed_ns

    def reset(self) -> None:
        with self._lock:
            self._stages.clear()

    def snapshot(self) -> dict[str, dict]:
        """Stage name → aggregate dict, sorted by descending total time."""
        with self._lock:
            items = sorted(
                self._stages.items(), key=lambda kv: -kv[1].total_ns
            )
            return {stage: stats.to_dict() for stage, stats in items}

    @property
    def total_us(self) -> float:
        with self._lock:
            return sum(s.total_us for s in self._stages.values())


NULL_PROFILER = Profiler(enabled=False)


def format_report(snapshot: dict[str, dict], title: str = "wall-clock profile") -> str:
    """Render a snapshot as the ASCII table the CLI and CI artifact print."""
    if not snapshot:
        return f"{title}: no sections recorded (profiler disabled or idle)"
    total = sum(s["total_us"] for s in snapshot.values()) or 1.0
    lines = [
        title,
        f"| {'stage':<20} | {'calls':>9} | {'total ms':>10} | "
        f"{'mean us':>9} | {'max us':>9} | {'share':>6} |",
        "|" + "-" * 22 + "|" + "-" * 11 + "|" + "-" * 12 + "|"
        + "-" * 11 + "|" + "-" * 11 + "|" + "-" * 8 + "|",
    ]
    for stage, stats in snapshot.items():
        lines.append(
            f"| {stage:<20} | {stats['calls']:>9} | "
            f"{stats['total_us'] / 1000.0:>10.2f} | {stats['mean_us']:>9.1f} | "
            f"{stats['max_us']:>9.1f} | {stats['total_us'] / total:>6.1%} |"
        )
    return "\n".join(lines)
