"""Latency percentile tracking (paper metrics: P90/P95/P99/P99.9, QPS)."""

from __future__ import annotations

import numpy as np

PERCENTILES = (50.0, 90.0, 95.0, 99.0, 99.9)


def percentile_label(p: float) -> str:
    """``50.0 -> "p50"``, ``99.9 -> "p99.9"`` — stable metric-name suffixes."""
    return f"p{str(p).rstrip('0').rstrip('.')}"


def percentile_metrics(
    samples,
    prefix: str = "",
    percentiles=PERCENTILES,
    decimals: int = 3,
) -> dict[str, float]:
    """Flatten a sample list into a ``{prefix_pXX: value}`` metric dict.

    The output is what the perf harness writes into the deterministic
    section of ``BENCH_*.json``: plain floats rounded to ``decimals`` so a
    re-run under the same seed serializes byte-identically, keys in a
    stable paper-style naming scheme (p50/p90/p95/p99/p99.9 + mean/max).
    """
    values = np.asarray(list(samples), dtype=np.float64)
    sep = "_" if prefix and not prefix.endswith("_") else ""
    key = f"{prefix}{sep}" if prefix else ""
    if values.size == 0:
        out = {f"{key}{percentile_label(p)}": 0.0 for p in percentiles}
        out[f"{key}mean"] = 0.0
        out[f"{key}max"] = 0.0
        return out
    out = {
        f"{key}{percentile_label(p)}": round(float(np.percentile(values, p)), decimals)
        for p in percentiles
    }
    out[f"{key}mean"] = round(float(values.mean()), decimals)
    out[f"{key}max"] = round(float(values.max()), decimals)
    return out


class LatencyTracker:
    """Accumulates latency samples and reports paper-style percentiles."""

    def __init__(self) -> None:
        self._samples: list[float] = []

    def record(self, latency_us: float) -> None:
        self._samples.append(float(latency_us))

    def extend(self, latencies_us) -> None:
        self._samples.extend(float(x) for x in latencies_us)

    def __len__(self) -> int:
        return len(self._samples)

    def percentile(self, p: float) -> float:
        if not self._samples:
            return 0.0
        return float(np.percentile(self._samples, p))

    @property
    def mean(self) -> float:
        return float(np.mean(self._samples)) if self._samples else 0.0

    @property
    def max(self) -> float:
        return float(np.max(self._samples)) if self._samples else 0.0

    def summary(self) -> dict[str, float]:
        """All standard percentiles plus mean, in microseconds."""
        out = {percentile_label(p): self.percentile(p) for p in PERCENTILES}
        out["mean"] = self.mean
        out["max"] = self.max
        return out

    def qps(self, wall_s: float) -> float:
        """Operations per second given the wall-clock window that produced them."""
        if wall_s <= 0:
            return 0.0
        return len(self._samples) / wall_s

    def reset(self) -> None:
        self._samples.clear()
