"""Evaluation metrics: recall, latency percentiles, resource accounting."""

from repro.metrics.recall import recall_at_k, recall_curve
from repro.metrics.latency import (
    LatencyTracker,
    percentile_label,
    percentile_metrics,
)
from repro.metrics.resources import ResourceModel, index_memory_report
from repro.metrics.tracing import TraceEvent, TraceLog, TracedIndex

__all__ = [
    "recall_at_k",
    "recall_curve",
    "LatencyTracker",
    "percentile_label",
    "percentile_metrics",
    "ResourceModel",
    "index_memory_report",
    "TraceEvent",
    "TraceLog",
    "TracedIndex",
]
