"""Day-by-day update-simulation driver (the engine behind Figures 7 & 9).

The harness runs one system adapter through a :class:`repro.datasets.Workload`:
each simulated day it interleaves the epoch's deletes and inserts, lets the
system do its maintenance (drain LIRE jobs / GC / merge), recomputes exact
ground truth over the live set, and measures search recall + latency
percentiles, update latency/throughput, memory, and device I/O.

Adapters duck-type three systems onto one interface:
:class:`SPFreshAdapter` (also serves SPANN+ — same code, LIRE disabled) and
:class:`DiskANNAdapter`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.api import QueryRequest
from repro.datasets.groundtruth import GroundTruthTracker
from repro.datasets.workloads import Workload
from repro.metrics.latency import LatencyTracker
from repro.metrics.recall import recall_at_k


# Paper Table 2: thread allocation for the overall-performance experiment
# (per system: insert / delete / search / background). At reproduction
# scale threads are simulated work streams, but the presets document the
# paper's resource envelope and are printed by the fig7/fig9 benches.
TABLE2_THREAD_ALLOCATION = {
    "DiskANN": {"insert": 3, "delete": 1, "search": 2, "background": 10, "total": 16},
    "SPANN+": {"insert": 1, "delete": 1, "search": 2, "background": 2, "total": 6},
    "SPFresh": {"insert": 1, "delete": 1, "search": 2, "background": 2, "total": 6},
}

# Paper Table 3: SPFresh thread allocation for the billion-scale stress
# test (delete/re-insert, search, background SPDK + rebuild).
TABLE3_THREAD_ALLOCATION = {
    "delete/re-insert": 4,
    "search": 8,
    "background": 3,
    "total": 15,
}


@dataclass
class DayMetrics:
    """Everything Figure 7/9 plot, for one simulated day of one system."""

    day: int
    recall: float
    search_p50_us: float
    search_p90_us: float
    search_p95_us: float
    search_p99_us: float
    search_p999_us: float
    insert_mean_us: float
    insert_p999_us: float
    insert_wall_qps: float
    search_wall_qps: float
    memory_mb: float
    device_iops: float
    live_vectors: int
    postings: int = 0
    extra: dict = field(default_factory=dict)


class SPFreshAdapter:
    """Adapter for SPFreshIndex and the SPANN+ variant."""

    def __init__(self, index, name: str = "SPFresh", gc_every: int | None = None):
        self.index = index
        self.name = name
        # SPANN+ runs periodic background GC instead of split-time GC.
        self.gc_every = gc_every
        self._day = 0

    def insert(self, vector_id: int, vector: np.ndarray) -> float:
        return self.index.insert(vector_id, vector)

    def delete(self, vector_id: int) -> float:
        return self.index.delete(vector_id)

    def search(self, query: np.ndarray, k: int, nprobe: int | None = None):
        request = QueryRequest.single(query, k=k, nprobe=nprobe)
        return self.index.query(request).result

    def maintenance(self) -> None:
        self._day += 1
        self.index.drain()
        if self.gc_every and self._day % self.gc_every == 0:
            self.index.gc_pass()

    def memory_bytes(self) -> int:
        return self.index.memory_bytes()

    def device_stats_window(self):
        return self.index.ssd.stats.snapshot()

    def day_extra(self) -> dict:
        snap = self.index.stats.snapshot()
        return {
            "splits": snap.splits,
            "merges": snap.merges,
            "reassign_executed": snap.reassign_executed,
            "reassign_evaluated": snap.reassign_evaluated,
            "postings": self.index.num_postings,
            "background_io_us": self.index.rebuilder.background_io_us,
        }

    @property
    def postings(self) -> int:
        return self.index.num_postings


class DiskANNAdapter:
    """Adapter for the FreshDiskANN baseline."""

    def __init__(self, index, name: str = "DiskANN"):
        self.index = index
        self.name = name
        self._merged_today = False
        self._merges_seen = 0

    def insert(self, vector_id: int, vector: np.ndarray) -> float:
        return self.index.insert(vector_id, vector)

    def delete(self, vector_id: int) -> float:
        return self.index.delete(vector_id)

    def search(self, query: np.ndarray, k: int, nprobe: int | None = None):
        # nprobe has no meaning for a graph index; list size stands in.
        return self.index.search(query, k)

    def maintenance(self) -> None:
        self._merged_today = self.index.merges_completed > self._merges_seen
        self._merges_seen = self.index.merges_completed

    def memory_bytes(self) -> int:
        return self.index.memory_bytes(during_merge=self._merged_today)

    def device_stats_window(self):
        return self.index.ssd.stats.snapshot()

    def day_extra(self) -> dict:
        return {
            "merges": self.index.merges_completed,
            "merged_today": self._merged_today,
        }

    @property
    def postings(self) -> int:
        return 0


def run_update_simulation(
    adapter,
    workload: Workload,
    k: int = 10,
    nprobe: int | None = None,
    queries_per_day: int | None = None,
    progress: bool = False,
) -> list[DayMetrics]:
    """Run a full multi-day update workload and measure every day."""
    tracker = GroundTruthTracker(workload.base_ids, workload.base_vectors)
    queries = workload.queries
    if queries_per_day is not None:
        queries = queries[:queries_per_day]
    results: list[DayMetrics] = []
    for epoch in workload.epochs:
        insert_lat = LatencyTracker()
        io_before = adapter.device_stats_window()
        wall_start = time.perf_counter()
        # Interleave deletes and inserts, as a live service would see them.
        pairs = max(len(epoch.delete_ids), len(epoch.insert_ids))
        for i in range(pairs):
            if i < len(epoch.delete_ids):
                adapter.delete(int(epoch.delete_ids[i]))
            if i < len(epoch.insert_ids):
                insert_lat.record(
                    adapter.insert(int(epoch.insert_ids[i]), epoch.insert_vectors[i])
                )
        adapter.maintenance()
        update_wall = time.perf_counter() - wall_start

        tracker.apply_epoch(epoch)
        ground_truth = tracker.ground_truth(queries, k)

        search_lat = LatencyTracker()
        result_ids = []
        search_start = time.perf_counter()
        for query in queries:
            res = adapter.search(query, k, nprobe)
            search_lat.record(res.latency_us)
            result_ids.append(res.ids)
        search_wall = time.perf_counter() - search_start

        io_after = adapter.device_stats_window()
        window = io_after.delta(io_before)
        day_wall = update_wall + search_wall
        metrics = DayMetrics(
            day=epoch.day,
            recall=recall_at_k(result_ids, ground_truth, k),
            search_p50_us=search_lat.percentile(50),
            search_p90_us=search_lat.percentile(90),
            search_p95_us=search_lat.percentile(95),
            search_p99_us=search_lat.percentile(99),
            search_p999_us=search_lat.percentile(99.9),
            insert_mean_us=insert_lat.mean,
            insert_p999_us=insert_lat.percentile(99.9),
            insert_wall_qps=(
                len(epoch.insert_ids) / update_wall if update_wall > 0 else 0.0
            ),
            search_wall_qps=len(queries) / search_wall if search_wall > 0 else 0.0,
            memory_mb=adapter.memory_bytes() / (1024 * 1024),
            device_iops=window.iops(day_wall),
            live_vectors=tracker.live_count,
            postings=adapter.postings,
            extra=adapter.day_extra(),
        )
        results.append(metrics)
        if progress:
            print(
                f"[{adapter.name}] day {epoch.day:3d} "
                f"recall={metrics.recall:.3f} "
                f"p99.9={metrics.search_p999_us / 1000:.2f}ms "
                f"mem={metrics.memory_mb:.2f}MB"
            )
    return results


def summarize(results: list[DayMetrics]) -> dict[str, float]:
    """Aggregate a day series into the headline numbers the paper quotes."""
    if not results:
        return {}
    return {
        "mean_recall": float(np.mean([r.recall for r in results])),
        "final_recall": results[-1].recall,
        "mean_p999_ms": float(np.mean([r.search_p999_us for r in results])) / 1000,
        "max_p999_ms": float(np.max([r.search_p999_us for r in results])) / 1000,
        "mean_insert_us": float(np.mean([r.insert_mean_us for r in results])),
        "peak_memory_mb": float(np.max([r.memory_mb for r in results])),
        "mean_memory_mb": float(np.mean([r.memory_mb for r in results])),
    }
