"""Deterministic concurrency stress harness for the background pipeline.

The LIRE pipeline's correctness claim — splits, merges, and reassigns run
concurrently with foreground inserts/deletes/searches without breaking the
index invariants — is only credible under adversarial interleavings. This
driver provides them reproducibly:

* a :class:`ChaosSchedule` — a *seeded* yield/sleep injector installed at
  the two scheduling boundaries the pipeline exposes (``JobQueue.get`` and
  ``PostingLockManager.hold``), forcing context switches exactly where a
  race would bite;
* a mixed insert/delete/search workload driven by seeded per-thread
  schedules against an index running background rebuild workers;
* a post-``stop()`` audit: :func:`repro.core.invariants.check_invariants`
  plus a self-recall sanity probe (querying a live vector's own data must
  find it).

Thread scheduling itself is up to the OS, so runs are not bit-identical;
the *decision streams* (workload ops, chaos yields) are fully determined
by ``seed``, which is what makes failures re-runnable in practice.

Run from the CLI::

    PYTHONPATH=src python -m repro.bench.stress --seeds 0 1 2 --workers 4
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.api import QueryRequest
from repro.core.config import SPFreshConfig
from repro.core.index import SPFreshIndex
from repro.core.invariants import InvariantReport, check_invariants


class ChaosSchedule:
    """Seeded adversarial yield injector for lock/queue boundaries.

    Installed as the ``chaos`` hook of a :class:`JobQueue` and a
    :class:`PostingLockManager`; at each boundary it rolls a seeded RNG and
    either returns immediately, yields the GIL (``sleep(0)``), or sleeps up
    to ``max_sleep_us`` — widening exactly the windows (lock acquisition,
    job dequeue) where lifecycle races hide.
    """

    def __init__(
        self,
        seed: int = 0,
        yield_probability: float = 0.2,
        sleep_probability: float = 0.05,
        max_sleep_us: float = 500.0,
        stats=None,
    ) -> None:
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self.yield_probability = yield_probability
        self.sleep_probability = sleep_probability
        self.max_sleep_us = max_sleep_us
        self.stats = stats
        self.calls = 0
        self.yields = 0

    def install(self, index: SPFreshIndex) -> "ChaosSchedule":
        """Attach to an index's lock manager and job queue."""
        if self.stats is None:
            self.stats = index.stats
        index.locks.chaos = self
        index.job_queue.chaos = self
        return self

    def __call__(self, point: str, detail: int | None = None) -> None:
        with self._lock:
            self.calls += 1
            roll = self._rng.random()
            sleep_fraction = self._rng.random()
        if roll < self.sleep_probability:
            delay = sleep_fraction * self.max_sleep_us / 1e6
        elif roll < self.sleep_probability + self.yield_probability:
            delay = 0.0
        else:
            return
        with self._lock:
            self.yields += 1
        if self.stats is not None:
            self.stats.incr("chaos_yields")
        time.sleep(delay)


@dataclass
class StressConfig:
    """Knobs of one stress run; everything downstream of ``seed`` is seeded."""

    dim: int = 16
    initial_vectors: int = 256
    foreground_threads: int = 3
    background_workers: int = 2
    ops_per_thread: int = 150
    insert_weight: float = 0.55
    delete_weight: float = 0.15  # remainder of the mix is searches
    batch_search_every: int = 10  # every Nth search goes through search_batch
    seed: int = 0
    chaos_yield_probability: float = 0.2
    chaos_sleep_probability: float = 0.05
    chaos_max_sleep_us: float = 300.0
    search_k: int = 5
    nprobe: int = 8
    recall_samples: int = 64
    index_overrides: dict = field(default_factory=dict)

    def build_index_config(self) -> SPFreshConfig:
        overrides = dict(
            dim=self.dim,
            max_posting_size=32,
            min_posting_size=3,
            build_target_posting_size=16,
            ssd_blocks=1 << 13,
            reassign_range=8,
            seed=self.seed,
            synchronous_rebuild=False,
            background_workers=self.background_workers,
        )
        overrides.update(self.index_overrides)
        return SPFreshConfig(**overrides)


@dataclass
class StressReport:
    """Everything one stress run observed, plus the final audit."""

    config: StressConfig
    inserts: int = 0
    deletes: int = 0
    searches: int = 0
    errors: list[str] = field(default_factory=list)
    worker_errors: list[str] = field(default_factory=list)
    invariants: InvariantReport | None = None
    self_recall: float = 1.0
    chaos_calls: int = 0
    chaos_yields: int = 0
    lock_recycles: int = 0
    live_vectors: int = 0
    duration_s: float = 0.0

    @property
    def ok(self) -> bool:
        return (
            not self.errors
            and not self.worker_errors
            and self.invariants is not None
            and self.invariants.ok
            and self.self_recall >= 0.9
        )

    def summary(self) -> str:
        state = "OK" if self.ok else "FAIL"
        lines = [
            f"stress seed={self.config.seed} threads={self.config.foreground_threads} "
            f"workers={self.config.background_workers}: {state}",
            f"  ops: {self.inserts} inserts, {self.deletes} deletes, "
            f"{self.searches} searches in {self.duration_s:.2f}s",
            f"  chaos: {self.chaos_yields}/{self.chaos_calls} yields, "
            f"{self.lock_recycles} lock recycles, {self.live_vectors} live vectors",
            f"  self-recall: {self.self_recall:.3f}",
        ]
        if self.errors:
            lines.append(f"  foreground errors: {self.errors[:3]}")
        if self.worker_errors:
            lines.append(f"  worker errors: {self.worker_errors[:3]}")
        if self.invariants is not None and not self.invariants.ok:
            lines.extend(f"  invariant: {f}" for f in self.invariants.failures)
        return "\n".join(lines)


def _initial_dataset(config: StressConfig) -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(config.seed)
    centers = rng.normal(scale=6.0, size=(4, config.dim)).astype(np.float32)
    assignment = rng.integers(0, 4, size=config.initial_vectors)
    vectors = (
        centers[assignment]
        + rng.normal(scale=0.5, size=(config.initial_vectors, config.dim))
    ).astype(np.float32)
    return vectors, centers


def _foreground_worker(
    index: SPFreshIndex,
    config: StressConfig,
    thread_id: int,
    centers: np.ndarray,
    report: StressReport,
    counts_lock: threading.Lock,
) -> None:
    """One seeded foreground client: mixed inserts/deletes/searches."""
    schedule = random.Random(config.seed * 7919 + thread_id)
    vec_rng = np.random.default_rng(config.seed * 104729 + thread_id)
    base_id = 1_000_000 * (thread_id + 1)
    next_id = 0
    my_live: list[int] = []
    inserts = deletes = searches = 0
    try:
        for op in range(config.ops_per_thread):
            roll = schedule.random()
            center = centers[schedule.randrange(len(centers))]
            if roll < config.insert_weight or not my_live:
                vid = base_id + next_id
                next_id += 1
                vector = (
                    center + vec_rng.normal(scale=0.3, size=config.dim)
                ).astype(np.float32)
                index.insert(vid, vector)
                my_live.append(vid)
                inserts += 1
            elif roll < config.insert_weight + config.delete_weight:
                vid = my_live.pop(schedule.randrange(len(my_live)))
                index.delete(vid)
                deletes += 1
            else:
                query = (
                    center + vec_rng.normal(scale=0.5, size=config.dim)
                ).astype(np.float32)
                if config.batch_search_every and op % config.batch_search_every == 0:
                    index.query(
                        QueryRequest(
                            vectors=query[None, :],
                            k=config.search_k,
                            nprobe=config.nprobe,
                        )
                    )
                else:
                    index.query(
                        QueryRequest.single(
                            query, k=config.search_k, nprobe=config.nprobe
                        )
                    )
                searches += 1
    except Exception as exc:  # noqa: BLE001 — report, don't kill the run
        with counts_lock:
            report.errors.append(f"thread {thread_id}: {exc!r}")
    with counts_lock:
        report.inserts += inserts
        report.deletes += deletes
        report.searches += searches


def _self_recall(index: SPFreshIndex, config: StressConfig) -> float:
    """Fraction of sampled live vectors that find themselves via search."""
    live_ids = index.version_map.live_ids()
    if len(live_ids) == 0:
        return 1.0
    rng = np.random.default_rng(config.seed + 17)
    take = min(config.recall_samples, len(live_ids))
    sampled = set(int(v) for v in rng.choice(live_ids, size=take, replace=False))
    vectors: dict[int, np.ndarray] = {}
    from repro.spann.postings import live_view  # local import: avoid cycle

    for pid in index.controller.posting_ids():
        data, _ = index.controller.get(pid)
        live = live_view(data, index.version_map)
        for row, vid in enumerate(live.ids):
            vid = int(vid)
            if vid in sampled and vid not in vectors:
                vectors[vid] = live.vectors[row]
    nprobe = max(config.nprobe, 16)
    found = 0
    for vid, vector in vectors.items():
        result = index.query(
            QueryRequest.single(vector, k=10, nprobe=nprobe)
        ).result
        if vid in set(int(i) for i in result.ids):
            found += 1
    return found / take if take else 1.0


def run_stress(config: StressConfig | None = None) -> StressReport:
    """Run one seeded chaos workload end to end and audit the result."""
    config = config or StressConfig()
    report = StressReport(config=config)
    vectors, centers = _initial_dataset(config)
    index = SPFreshIndex.build(vectors, config=config.build_index_config())
    chaos = ChaosSchedule(
        seed=config.seed,
        yield_probability=config.chaos_yield_probability,
        sleep_probability=config.chaos_sleep_probability,
        max_sleep_us=config.chaos_max_sleep_us,
    ).install(index)

    counts_lock = threading.Lock()
    started = time.perf_counter()
    index.start(config.background_workers)
    threads = [
        threading.Thread(
            target=_foreground_worker,
            args=(index, config, t, centers, report, counts_lock),
            name=f"stress-fg-{t}",
        )
        for t in range(config.foreground_threads)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    index.stop()
    report.duration_s = time.perf_counter() - started

    report.worker_errors = [repr(e) for e in index.rebuilder.worker_errors]
    report.invariants = check_invariants(index, seed=config.seed)
    report.self_recall = _self_recall(index, config)
    report.chaos_calls = chaos.calls
    report.chaos_yields = chaos.yields
    report.lock_recycles = index.locks.lock_recycles
    report.live_vectors = index.live_vector_count
    return report


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seeds", type=int, nargs="+", default=[0, 1, 2])
    parser.add_argument("--threads", type=int, default=3)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--ops", type=int, default=150)
    args = parser.parse_args(argv)
    failures = 0
    for seed in args.seeds:
        report = run_stress(
            StressConfig(
                seed=seed,
                foreground_threads=args.threads,
                background_workers=args.workers,
                ops_per_thread=args.ops,
            )
        )
        print(report.summary())
        failures += 0 if report.ok else 1
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
