"""Experiment harness that regenerates the paper's tables and figures."""

from repro.bench.harness import (
    TABLE2_THREAD_ALLOCATION,
    TABLE3_THREAD_ALLOCATION,
    DayMetrics,
    DiskANNAdapter,
    SPFreshAdapter,
    run_update_simulation,
)
from repro.bench.reporting import format_series, format_table
from repro.bench.cost_model import RebuildCostModel, table1_rows

__all__ = [
    "TABLE2_THREAD_ALLOCATION",
    "TABLE3_THREAD_ALLOCATION",
    "DayMetrics",
    "DiskANNAdapter",
    "SPFreshAdapter",
    "run_update_simulation",
    "format_series",
    "format_table",
    "RebuildCostModel",
    "table1_rows",
]
