"""Experiment harness that regenerates the paper's tables and figures."""

from repro.bench.harness import (
    TABLE2_THREAD_ALLOCATION,
    TABLE3_THREAD_ALLOCATION,
    DayMetrics,
    DiskANNAdapter,
    SPFreshAdapter,
    run_update_simulation,
)
from repro.bench.reporting import format_series, format_table
from repro.bench.cost_model import RebuildCostModel, table1_rows

from repro.bench.scales import PERF_SCALES, SCALES, BenchScale, PerfScale

_STRESS_EXPORTS = ("ChaosSchedule", "StressConfig", "StressReport", "run_stress")
_PERF_EXPORTS = (
    "CompareReport",
    "ScenarioResult",
    "compare_dirs",
    "run_scenarios",
    "write_results",
)
_CRASH_MATRIX_EXPORTS = (
    "CrashMatrixConfig",
    "CrashMatrixReport",
    "CrashTrial",
    "run_crash_matrix",
)


def __getattr__(name):
    # Lazy: keeps `python -m repro.bench.stress` (and .crash_matrix)
    # runnable without the package __init__ pre-importing the submodule
    # (runpy warning).
    if name in _STRESS_EXPORTS:
        from repro.bench import stress

        return getattr(stress, name)
    if name in _CRASH_MATRIX_EXPORTS:
        from repro.bench import crash_matrix

        return getattr(crash_matrix, name)
    if name in _PERF_EXPORTS:
        from repro.bench import perf

        return getattr(perf, name)
    raise AttributeError(name)


__all__ = [
    "TABLE2_THREAD_ALLOCATION",
    "TABLE3_THREAD_ALLOCATION",
    "DayMetrics",
    "DiskANNAdapter",
    "SPFreshAdapter",
    "run_update_simulation",
    "format_series",
    "format_table",
    "RebuildCostModel",
    "table1_rows",
    "ChaosSchedule",
    "StressConfig",
    "StressReport",
    "run_stress",
    "CrashMatrixConfig",
    "CrashMatrixReport",
    "CrashTrial",
    "run_crash_matrix",
    "BenchScale",
    "PerfScale",
    "SCALES",
    "PERF_SCALES",
    "CompareReport",
    "ScenarioResult",
    "compare_dirs",
    "run_scenarios",
    "write_results",
]
