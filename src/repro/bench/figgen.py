"""Plotting without a plotting library: ASCII charts for bench output.

The paper's figures are time series and trade-off curves; the benches
print the raw rows, and this module renders them as terminal charts so a
bench log *shows* the shapes being asserted (flat SPFresh lines, DiskANN
spikes, recall/latency frontiers) rather than burying them in numbers.
"""

from __future__ import annotations

import numpy as np

_BARS = " ▁▂▃▄▅▆▇█"


def sparkline(values, width: int | None = None) -> str:
    """One-line unicode sparkline of a series."""
    values = np.asarray(list(values), dtype=np.float64)
    if len(values) == 0:
        return ""
    if width is not None and len(values) > width:
        # Downsample by bucket means to the requested width.
        edges = np.linspace(0, len(values), width + 1).astype(int)
        values = np.array(
            [values[a:b].mean() for a, b in zip(edges[:-1], edges[1:]) if b > a]
        )
    lo, hi = float(values.min()), float(values.max())
    if hi - lo < 1e-12:
        return _BARS[1] * len(values)
    scaled = (values - lo) / (hi - lo) * (len(_BARS) - 2) + 1
    return "".join(_BARS[int(round(s))] for s in scaled)


def line_chart(
    series: dict[str, list[float]],
    height: int = 10,
    width: int = 60,
    title: str | None = None,
) -> str:
    """Multi-series ASCII line chart (each series one plot character)."""
    if not series:
        return ""
    markers = "*o+x#@"
    arrays = [np.asarray(v, dtype=np.float64) for v in series.values() if len(v)]
    if not arrays:
        return ""
    all_values = np.concatenate(arrays)
    if len(all_values) == 0:
        return ""
    lo, hi = float(all_values.min()), float(all_values.max())
    if hi - lo < 1e-12:
        hi = lo + 1.0
    grid = [[" "] * width for _ in range(height)]
    for marker, (name, values) in zip(markers, series.items()):
        values = np.asarray(values, dtype=np.float64)
        if len(values) == 0:
            continue
        for i, value in enumerate(values):
            col = int(i / max(len(values) - 1, 1) * (width - 1))
            row = height - 1 - int((value - lo) / (hi - lo) * (height - 1))
            grid[row][col] = marker
    lines = []
    if title:
        lines.append(f"== {title} ==")
    lines.append(f"{hi:#.4g} ┤" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 8 + "│" + "".join(row))
    lines.append(f"{lo:#.4g} ┤" + "".join(grid[-1]))
    legend = "   ".join(
        f"{marker}={name}" for marker, name in zip(markers, series.keys())
    )
    lines.append(" " * 9 + legend)
    return "\n".join(lines)


def day_series_chart(
    results_by_system: dict[str, list], field: str, title: str | None = None,
    height: int = 10, width: int = 60,
) -> str:
    """Chart one DayMetrics field across systems."""
    series = {
        name: [getattr(m, field) for m in metrics]
        for name, metrics in results_by_system.items()
    }
    return line_chart(series, height=height, width=width,
                      title=title or field)
