"""ASCII table/series rendering for bench output.

Every figure bench prints the exact series the paper plots, as rows, so
EXPERIMENTS.md can quote paper-vs-measured numbers directly from the bench
logs.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence], title: str | None = None
) -> str:
    """Render rows as a fixed-width ASCII table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(f"== {title} ==")
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_markdown_table(
    headers: Sequence[str], rows: Iterable[Sequence], title: str | None = None
) -> str:
    """Render rows as a GitHub-flavored markdown table (for PR logs)."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(f"### {title}")
        lines.append("")
    lines.append("| " + " | ".join(h.ljust(w) for h, w in zip(headers, widths)) + " |")
    lines.append("| " + " | ".join("-" * w for w in widths) + " |")
    for row in str_rows:
        lines.append(
            "| " + " | ".join(c.rjust(w) for c, w in zip(row, widths)) + " |"
        )
    return "\n".join(lines)


def format_series(
    day_metrics,
    fields: Sequence[str] = (
        "day",
        "recall",
        "search_p90_us",
        "search_p99_us",
        "search_p999_us",
        "insert_mean_us",
        "memory_mb",
    ),
    title: str | None = None,
    every: int = 1,
) -> str:
    """Render a list of :class:`DayMetrics` as a day series table."""
    rows = [
        [getattr(m, f) for f in fields]
        for i, m in enumerate(day_metrics)
        if i % every == 0 or i == len(day_metrics) - 1
    ]
    return format_table(fields, rows, title=title)
