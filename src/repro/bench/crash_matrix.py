"""Crash-at-every-point recovery matrix (durability contract audit).

The recovery story (paper §4.4) claims that after a crash, snapshot + WAL
replay restore every acknowledged update. This harness tests that claim at
*every* point a crash can physically happen, not just clean shutdowns:

1. Build a small index, checkpoint it, and capture the durable state
   (device blocks, snapshot blob) as the trial starting line.
2. Run a seeded insert/delete/checkpoint workload once fault-free through
   a :class:`~repro.storage.faults.FaultInjectingSSD` to enumerate the
   crashable operations: every device op (reads, writes, trims), every
   WAL append (torn at two byte offsets), and every snapshot boundary
   (torn temp file, crash before / after the atomic rename).
3. For each crash point, restart from the captured state, replay the
   workload until the injected :class:`~repro.util.errors.CrashPoint`
   fires, then recover into a fresh index object — the moral equivalent
   of a process restart — and audit:

   * ``check_invariants()`` passes (conservation, size bounds, mapping
     coherence, sampled NPA);
   * every **acknowledged** update is durable: acked inserts have a live
     replica, acked deletes stay dead; only the single in-flight op may
     go either way;
   * top-k self-recall against a brute-force oracle over the surviving
     vectors is 1.0.

Determinism: the workload, the fault plan, and every audit sample derive
from ``seed``, so a failing crash point reruns identically.

Run from the CLI::

    PYTHONPATH=src python -m repro.bench.crash_matrix --device-stride 4
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.api import QueryRequest
from repro.core.config import SPFreshConfig
from repro.core.index import SPFreshIndex
from repro.spann.postings import live_view
from repro.storage.faults import FaultInjectingSSD, FaultPlan
from repro.storage.snapshot import SnapshotManager
from repro.storage.ssd import SimulatedSSD, SSDProfile
from repro.storage.wal import WriteAheadLog
from repro.util.errors import CrashPoint


@dataclass
class CrashMatrixConfig:
    """Knobs of one matrix sweep; everything downstream of ``seed``."""

    dim: int = 8
    initial_vectors: int = 96
    updates: int = 110
    delete_every: int = 5  # every Nth workload op is a delete
    checkpoint_every: int = 40  # a checkpoint lands every Nth workload op
    hot_fraction: float = 0.6  # inserts aimed at one blob, forcing splits
    seed: int = 0
    device_stride: int = 1  # crash at every Nth device op
    wal_stride: int = 4  # tear every Nth WAL append
    max_device_points: int | None = None
    search_checks: int = 4  # oracle recall probes per trial
    search_k: int = 5
    # Fresh-tier mode: inserts buffer in RAM and reach disk via batched
    # flushes (docs/fresh-tier.md), so the durability contract leans
    # entirely on the WAL. Every device op inside a flush span is crashed
    # explicitly (on top of the stride) to prove acked-but-unflushed
    # inserts survive a crash at any point of the tier drain.
    fresh_tier: bool = False
    fresh_flush_threshold: int = 10
    flush_stride: int = 1  # crash at every Nth device op inside a flush

    def index_config(self) -> SPFreshConfig:
        return SPFreshConfig(
            dim=self.dim,
            max_posting_size=24,
            min_posting_size=2,
            build_target_posting_size=12,
            block_size=512,
            ssd_blocks=1 << 12,
            reassign_range=6,
            seed=self.seed,
            centroid_index_kind="brute",
            enable_fresh_tier=self.fresh_tier,
            fresh_flush_threshold=self.fresh_flush_threshold,
        )


@dataclass(frozen=True)
class _Op:
    kind: str  # "insert" | "delete" | "checkpoint"
    vector_id: int = -1
    vector: np.ndarray | None = None


@dataclass
class _BaseState:
    """The durable starting line every trial restarts from."""

    blocks: dict[int, bytes]
    snapshot_blob: bytes
    base_live: dict[int, np.ndarray]


@dataclass
class _CleanRunInfo:
    """Operation census from the fault-free pass: what can crash, where."""

    total_device_ops: int = 0
    # (first device op, one-past-last device op, phase) per workload op
    spans: list[tuple[int, int, str]] = field(default_factory=list)
    # lifetime WAL append index per workload op (-1 for checkpoints)
    wal_index: list[int] = field(default_factory=list)
    # (workload op position, snapshot generation) per checkpoint
    checkpoints: list[tuple[int, int]] = field(default_factory=list)

    def phase_of(self, device_op: int) -> str:
        for start, end, phase in self.spans:
            if start <= device_op < end:
                return phase
        return "idle"


@dataclass
class CrashTrial:
    """One crash point: where it fired and what the audit found."""

    label: str
    phase: str
    crashed: bool = False
    acked_ops: int = 0
    recall: float = 1.0
    failures: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


@dataclass
class CrashMatrixReport:
    """Aggregate of a full sweep."""

    config: CrashMatrixConfig
    trials: list[CrashTrial] = field(default_factory=list)
    device_ops: int = 0

    @property
    def num_points(self) -> int:
        return len(self.trials)

    @property
    def failed_trials(self) -> list[CrashTrial]:
        return [t for t in self.trials if not t.ok]

    @property
    def ok(self) -> bool:
        return not self.failed_trials

    def phase_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for trial in self.trials:
            counts[trial.phase] = counts.get(trial.phase, 0) + 1
        return counts

    def summary(self) -> str:
        state = "OK" if self.ok else "FAIL"
        phases = ", ".join(
            f"{phase}:{count}" for phase, count in sorted(self.phase_counts().items())
        )
        lines = [
            f"crash matrix seed={self.config.seed}: {state} — "
            f"{self.num_points} crash points over {self.device_ops} device ops",
            f"  phases: {phases}",
        ]
        for trial in self.failed_trials[:5]:
            lines.append(f"  FAIL {trial.label} ({trial.phase}): {trial.failures[:2]}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# workload and base-state construction
# ----------------------------------------------------------------------
def _make_workload(config: CrashMatrixConfig) -> tuple[np.ndarray, list[_Op]]:
    rng = np.random.default_rng(config.seed)
    centers = rng.normal(scale=6.0, size=(4, config.dim)).astype(np.float32)
    assignment = rng.integers(0, 4, size=config.initial_vectors)
    base = (
        centers[assignment]
        + rng.normal(scale=0.5, size=(config.initial_vectors, config.dim))
    ).astype(np.float32)

    ops: list[_Op] = []
    deletable = list(range(config.initial_vectors))
    next_vid = 100_000
    for i in range(config.updates):
        if config.checkpoint_every and i > 0 and i % config.checkpoint_every == 0:
            ops.append(_Op("checkpoint"))
        if (
            config.delete_every
            and i % config.delete_every == config.delete_every - 1
            and deletable
        ):
            vid = deletable.pop(int(rng.integers(len(deletable))))
            ops.append(_Op("delete", vid))
        else:
            hot = rng.random() < config.hot_fraction
            center = centers[0] if hot else centers[int(rng.integers(1, 4))]
            vec = (center + rng.normal(scale=0.4, size=config.dim)).astype(np.float32)
            ops.append(_Op("insert", next_vid, vec))
            deletable.append(next_vid)
            next_vid += 1
    return base, ops


def _profile(icfg: SPFreshConfig) -> SSDProfile:
    return SSDProfile(
        block_size=icfg.block_size,
        read_latency_us=icfg.read_latency_us,
        write_latency_us=icfg.write_latency_us,
        queue_depth=icfg.queue_depth,
    )


def _build_base(config: CrashMatrixConfig) -> tuple[_BaseState, list[_Op]]:
    base_vectors, ops = _make_workload(config)
    icfg = config.index_config()
    ssd = SimulatedSSD(icfg.ssd_blocks, _profile(icfg))
    wal = WriteAheadLog()
    snapshots = SnapshotManager()
    index = SPFreshIndex.build(
        base_vectors, config=icfg, wal=wal, snapshots=snapshots, device=ssd
    )
    index.checkpoint()
    blob = snapshots.export_blob()
    assert blob is not None
    base = _BaseState(
        blocks=ssd.export_blocks(),
        snapshot_blob=blob,
        base_live={vid: base_vectors[vid] for vid in range(len(base_vectors))},
    )
    return base, ops


# ----------------------------------------------------------------------
# trial execution
# ----------------------------------------------------------------------
def _live_ids(index: SPFreshIndex) -> set[int]:
    """Vector ids with a live replica on disk or buffered in the fresh tier.

    After a fresh-tier recovery, WAL replay legitimately lands acked
    inserts back in the memory tier rather than in a posting; they count
    as durable because the (replayed) WAL still holds them.
    """
    out: set[int] = set()
    for pid in index.controller.posting_ids():
        data, _ = index.controller.get(pid)
        live = live_view(data, index.version_map)
        out.update(int(v) for v in live.ids)
    if index.fresh_tier is not None and len(index.fresh_tier) > 0:
        tier_ids, _ = index.fresh_tier.live_snapshot()
        out.update(int(v) for v in tier_ids)
    return out


def _brute_force_topk(
    vectors_by_vid: dict[int, np.ndarray], candidates: list[int], query: np.ndarray, k: int
) -> list[int]:
    matrix = np.stack([vectors_by_vid[vid] for vid in candidates])
    dists = ((matrix - query) ** 2).sum(axis=1)
    order = np.argsort(dists, kind="stable")
    return [candidates[int(i)] for i in order[:k]]


def _run_trial(
    base: _BaseState,
    ops: list[_Op],
    config: CrashMatrixConfig,
    plan: FaultPlan | None,
    trial: CrashTrial,
    collect: _CleanRunInfo | None = None,
) -> None:
    icfg = config.index_config()
    inner = SimulatedSSD(icfg.ssd_blocks, _profile(icfg))
    inner.import_blocks(base.blocks)
    device = FaultInjectingSSD(inner, plan)
    wal = WriteAheadLog(faults=plan)
    snapshots = SnapshotManager(faults=plan)
    snapshots.import_blob(base.snapshot_blob)

    index = SPFreshIndex.recover(device, icfg, snapshots, wal=wal)

    expected_live: dict[int, np.ndarray] = dict(base.base_live)
    vectors_by_vid: dict[int, np.ndarray] = dict(base.base_live)
    inflight: _Op | None = None
    wal_appends = 0
    for position, op in enumerate(ops):
        inflight = op
        if op.vector is not None:
            vectors_by_vid[op.vector_id] = op.vector
        op_start = device.op_index
        splits_before = index.stats.splits
        flushes_before = index.stats.fresh_flushes
        if collect is not None:
            collect.wal_index.append(wal_appends if op.kind != "checkpoint" else -1)
        try:
            if op.kind == "insert":
                index.insert(op.vector_id, op.vector)
            elif op.kind == "delete":
                index.delete(op.vector_id)
            else:
                generation = index.checkpoint()
                if collect is not None:
                    collect.checkpoints.append((position, generation))
        except CrashPoint:
            trial.crashed = True
            break
        # Acknowledged: this update is now part of the durability contract.
        if op.kind == "insert":
            expected_live[op.vector_id] = op.vector
            wal_appends += 1
        elif op.kind == "delete":
            expected_live.pop(op.vector_id, None)
            wal_appends += 1
        inflight = None
        trial.acked_ops += 1
        if collect is not None:
            phase = op.kind
            if op.kind == "insert" and index.stats.fresh_flushes > flushes_before:
                # A threshold flush drained inside this insert: its device
                # ops are the batched tier → posting appends.
                phase = "flush"
            elif op.kind == "insert" and index.stats.splits > splits_before:
                phase = "split"
            elif op.kind == "checkpoint":
                phase = "snapshot"
            collect.spans.append((op_start, device.op_index, phase))
    if collect is not None:
        collect.total_device_ops = device.op_index

    # ------------------------------------------------------------------
    # "process restart": drop the index object, recover from durable state
    # ------------------------------------------------------------------
    if plan is not None:
        plan.disarm()
    recovered = SPFreshIndex.recover(device, icfg, snapshots, wal=wal)
    _audit(recovered, expected_live, vectors_by_vid, inflight, config, trial)


def _audit(
    recovered: SPFreshIndex,
    expected_live: dict[int, np.ndarray],
    vectors_by_vid: dict[int, np.ndarray],
    inflight: _Op | None,
    config: CrashMatrixConfig,
    trial: CrashTrial,
) -> None:
    report = recovered.check_invariants(seed=config.seed)
    if not report.ok:
        trial.failures.extend(f"invariant: {f}" for f in report.failures)

    present = _live_ids(recovered)
    must_have = set(expected_live)
    allowed_either_way: set[int] = set()
    if inflight is not None and inflight.kind in ("insert", "delete"):
        # The one un-acked op may have reached the WAL before the crash
        # (replayed → applied) or not (dropped); both outcomes honor the
        # contract, which only covers acknowledged updates.
        allowed_either_way.add(inflight.vector_id)
        must_have.discard(inflight.vector_id)

    lost = sorted(must_have - present)
    ghosts = sorted(present - set(expected_live) - allowed_either_way)
    if lost:
        trial.failures.append(f"lost acked vectors: {lost[:10]}")
    if ghosts:
        trial.failures.append(f"ghost vectors: {ghosts[:10]}")

    # Oracle recall over the survivors: full-breadth search must agree
    # exactly with brute force on what the index actually holds.
    survivors = sorted(present)
    if not survivors or config.search_checks <= 0:
        return
    rng = np.random.default_rng(config.seed + 31)
    picks = rng.choice(
        len(survivors), size=min(config.search_checks, len(survivors)), replace=False
    )
    k = min(config.search_k, len(survivors))
    worst = 1.0
    for pick in picks:
        vid = survivors[int(pick)]
        query = vectors_by_vid[vid]
        want = set(_brute_force_topk(vectors_by_vid, survivors, query, k))
        result = recovered.query(
            QueryRequest.single(query, k=k, nprobe=recovered.num_postings)
        ).result
        got = set(int(i) for i in result.ids)
        recall = len(want & got) / k
        worst = min(worst, recall)
        if recall < 1.0:
            trial.failures.append(
                f"oracle recall {recall:.2f} for query vid {vid}: "
                f"missing {sorted(want - got)[:5]}"
            )
    trial.recall = worst


# ----------------------------------------------------------------------
# the sweep
# ----------------------------------------------------------------------
def run_crash_matrix(config: CrashMatrixConfig | None = None) -> CrashMatrixReport:
    """Sweep every crash point of the seeded workload and audit recovery."""
    config = config or CrashMatrixConfig()
    report = CrashMatrixReport(config=config)
    base, ops = _build_base(config)

    # Fault-free census pass: enumerates device ops, WAL appends, and
    # checkpoint generations — and doubles as the zero-fault control trial.
    census = _CleanRunInfo()
    control = CrashTrial(label="control", phase="none")
    _run_trial(base, ops, config, None, control, collect=census)
    report.trials.append(control)
    report.device_ops = census.total_device_ops

    # 1. Crash at every Nth device operation. In fresh-tier mode every
    # device op inside a flush span is added explicitly (deduplicated
    # against the stride) so flush interiors get full coverage even under
    # the reduced strides the CI lane uses.
    device_points = list(range(0, census.total_device_ops, config.device_stride))
    if config.fresh_tier:
        covered = set(device_points)
        for start, end, phase in census.spans:
            if phase == "flush":
                covered.update(range(start, end, max(config.flush_stride, 1)))
        device_points = sorted(covered)
    if config.max_device_points is not None:
        device_points = device_points[: config.max_device_points]
    for crash_op in device_points:
        trial = CrashTrial(
            label=f"device-op-{crash_op}", phase=census.phase_of(crash_op)
        )
        plan = FaultPlan(config.seed, crash_at_op=crash_op)
        _run_trial(base, ops, config, plan, trial)
        report.trials.append(trial)

    # 2. Tear every Nth WAL append, at byte 0 and mid-frame.
    wal_ops = [
        (position, wal_idx)
        for position, wal_idx in enumerate(census.wal_index)
        if wal_idx >= 0
    ]
    for position, wal_idx in wal_ops[:: max(config.wal_stride, 1)]:
        for keep in (0, None):  # nothing durable / torn mid-frame
            where = "0" if keep == 0 else "mid"
            trial = CrashTrial(
                label=f"wal-tear-{wal_idx}@{where}", phase=ops[position].kind
            )
            plan = FaultPlan(config.seed, wal_tear_at=(wal_idx, keep))
            _run_trial(base, ops, config, plan, trial)
            report.trials.append(trial)

    # 3. Crash at every snapshot boundary of every mid-workload checkpoint.
    for _position, generation in census.checkpoints:
        for mode in ("torn-tmp", "crash-before-commit", "crash-after-commit"):
            trial = CrashTrial(
                label=f"snapshot-{mode}@gen{generation}", phase="snapshot"
            )
            plan = FaultPlan(
                config.seed,
                snapshot_fault=mode,
                snapshot_fault_generation=generation,
            )
            _run_trial(base, ops, config, plan, trial)
            report.trials.append(trial)

    return report


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--updates", type=int, default=110)
    parser.add_argument("--device-stride", type=int, default=1)
    parser.add_argument("--wal-stride", type=int, default=4)
    parser.add_argument("--max-device-points", type=int, default=None)
    parser.add_argument(
        "--fresh-tier",
        action="store_true",
        help="enable the LSM-style memory tier and crash inside flushes",
    )
    args = parser.parse_args(argv)
    report = run_crash_matrix(
        CrashMatrixConfig(
            seed=args.seed,
            updates=args.updates,
            device_stride=args.device_stride,
            wal_stride=args.wal_stride,
            max_device_points=args.max_device_points,
            fresh_tier=args.fresh_tier,
        )
    )
    print(report.summary())
    return 0 if report.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
