"""Deterministic perf-regression harness: seeded scenarios → ``BENCH_*.json``.

The simulation substrate makes performance *reproducible*: device latency,
I/O amplification, ParallelGET waves, probe counts, and LIRE rebalancing
work are all functions of the seeded workload, not of the machine the
bench runs on. This harness exploits that to give the repo a quantitative
perf trajectory that CI can gate on:

* each **scenario** runs a seeded workload over the real stack (searcher,
  updater, LIRE split/merge/reassign, WAL + recovery, posting cache) and
  records two metric classes:

  - ``deterministic`` — simulated latencies (percentiles), IOStats
    read/write amplification, wave counts, postings probed, rebalance
    counters, recall against brute force. Bit-stable under a fixed seed;
    **safe to gate on**.
  - ``wall_clock`` — ops/sec via ``time.perf_counter``. Machine noise;
    **informational only**, never gated.

* results land as ``BENCH_<scenario>.json`` (stable schema, sorted keys)
  so every later optimization PR diffs against the same files;

* ``--compare baseline_dir/ --tolerance 0.05`` exits nonzero when any
  deterministic metric regresses beyond tolerance — the CI perf lane's
  gate.

Run from the CLI::

    PYTHONPATH=src python -m repro.bench.perf --quick --out bench-out
    PYTHONPATH=src python -m repro.bench.perf --compare baseline/ --tolerance 0.05
"""

from __future__ import annotations

import argparse
import json
import math
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.api import QueryRequest
from repro.bench.reporting import format_markdown_table
from repro.bench.scales import PERF_SCALES, PerfScale
from repro.core.config import SPFreshConfig
from repro.core.index import SPFreshIndex
from repro.datasets import exact_knn, make_sift_like
from repro.metrics.latency import percentile_metrics
from repro.metrics.recall import recall_at_k
from repro.spann.searcher import SpannSearcher
from repro.storage import CachedBlockController
from repro.storage.snapshot import SnapshotManager
from repro.storage.wal import WriteAheadLog

SCHEMA_VERSION = 1
FILE_PREFIX = "BENCH_"

# Deterministic metrics are gated lower-is-better unless named here.
_HIGHER_IS_BETTER_SUFFIXES = (
    "recall_at_k",
    "recall_ratio",
    "hit_rate",
    "speedup",
    "goodput_qps",
    "answered_qps",
    "batch_size_mean",
)


@dataclass
class ScenarioResult:
    """One scenario's measurements, split by gating class."""

    scenario: str
    config: dict
    deterministic: dict[str, float]
    wall_clock: dict[str, float]

    def directions(self) -> dict[str, str]:
        return {
            name: (
                "higher"
                if name.endswith(_HIGHER_IS_BETTER_SUFFIXES)
                else "lower"
            )
            for name in self.deterministic
        }

    def to_document(self) -> dict:
        """The ``BENCH_*.json`` payload (stable schema, gate policy inline)."""
        return {
            "schema_version": SCHEMA_VERSION,
            "generated_by": "repro.bench.perf",
            "scenario": self.scenario,
            "config": self.config,
            "deterministic": self.deterministic,
            "directions": self.directions(),
            "wall_clock": self.wall_clock,
            "gating": {
                "deterministic": "gate",
                "wall_clock": "informational",
            },
        }


def _round(value: float, decimals: int = 3) -> float:
    return round(float(value), decimals)


def _base_config(scale: PerfScale, seed: int, **overrides) -> SPFreshConfig:
    base = dict(
        dim=scale.dim,
        seed=seed,
        ssd_blocks=1 << 16,
        centroid_index_kind="brute",
    )
    base.update(overrides)
    return SPFreshConfig(**base).validate()


def _queries(dataset, scale: PerfScale, seed: int) -> np.ndarray:
    """Seeded query set: perturbed samples of the base distribution."""
    rng = np.random.default_rng(seed + 1)
    picks = rng.integers(0, len(dataset.base), size=scale.queries)
    noise = rng.normal(scale=0.05, size=(scale.queries, scale.dim))
    return (dataset.base[picks] + noise).astype(np.float32)


def _scenario_config(scale: PerfScale, seed: int, config: SPFreshConfig) -> dict:
    return {
        "scale": scale.name,
        "seed": seed,
        "base_vectors": scale.base_vectors,
        "dim": scale.dim,
        "k": scale.k,
        "nprobe": scale.nprobe,
        "max_posting_size": config.max_posting_size,
        "min_posting_size": config.min_posting_size,
        "read_latency_us": config.read_latency_us,
        "write_latency_us": config.write_latency_us,
        "queue_depth": config.queue_depth,
    }


# ----------------------------------------------------------------------
# scenarios
# ----------------------------------------------------------------------
def scenario_search(scale: PerfScale, seed: int) -> ScenarioResult:
    """Single and batched search over a freshly built index."""
    dataset = make_sift_like(scale.base_vectors, 0, dim=scale.dim, seed=seed)
    config = _base_config(scale, seed)
    index = SPFreshIndex.build(dataset.base, config=config)
    queries = _queries(dataset, scale, seed)
    truth = exact_knn(
        dataset.base, np.arange(scale.base_vectors), queries, scale.k
    )

    latencies: list[float] = []
    io_latencies: list[float] = []
    probed: list[int] = []
    scanned: list[int] = []
    result_ids = []
    before = index.ssd.stats.snapshot()
    wall_start = time.perf_counter()
    for query in queries:
        result = index.query(
            QueryRequest.single(query, k=scale.k, nprobe=scale.nprobe)
        ).result
        latencies.append(result.latency_us)
        io_latencies.append(result.io_latency_us)
        probed.append(result.postings_probed)
        scanned.append(result.entries_scanned)
        result_ids.append(result.ids)
    single_wall = time.perf_counter() - wall_start
    single_window = index.ssd.stats.since(before)

    batch_latencies: list[float] = []
    batch_ids = []
    before = index.ssd.stats.snapshot()
    wall_start = time.perf_counter()
    for start in range(0, len(queries), scale.batch_size):
        chunk = queries[start : start + scale.batch_size]
        for result in index.query(
            QueryRequest(vectors=chunk, k=scale.k, nprobe=scale.nprobe)
        ):
            batch_latencies.append(result.latency_us)
            batch_ids.append(result.ids)
    batch_wall = time.perf_counter() - wall_start
    batch_window = index.ssd.stats.since(before)

    # Read amplification: device bytes fetched per byte of result payload.
    result_bytes = len(queries) * scale.k * scale.dim * 4
    deterministic = {
        **percentile_metrics(latencies, "single_latency_us"),
        **percentile_metrics(io_latencies, "single_io_latency_us"),
        **percentile_metrics(batch_latencies, "batch_latency_us"),
        "single_recall_at_k": _round(recall_at_k(result_ids, truth, scale.k), 4),
        "batch_recall_at_k": _round(recall_at_k(batch_ids, truth, scale.k), 4),
        "single_postings_probed_mean": _round(np.mean(probed)),
        "single_entries_scanned_mean": _round(np.mean(scanned)),
        "single_io_waves_mean": _round(
            np.mean(io_latencies) / config.read_latency_us
        ),
        "single_read_amplification": _round(
            single_window.read_amplification(result_bytes)
        ),
        "batch_read_amplification": _round(
            batch_window.read_amplification(result_bytes)
        ),
        **single_window.to_metrics("single_io"),
        **batch_window.to_metrics("batch_io"),
    }
    wall_clock = {
        "single_search_qps": _round(
            len(queries) / single_wall if single_wall > 0 else 0.0
        ),
        "batch_search_qps": _round(
            len(queries) / batch_wall if batch_wall > 0 else 0.0
        ),
    }
    return ScenarioResult(
        scenario="search",
        config={**_scenario_config(scale, seed, config), "queries": len(queries)},
        deterministic=deterministic,
        wall_clock=wall_clock,
    )


def scenario_update(scale: PerfScale, seed: int) -> ScenarioResult:
    """Interleaved insert/delete churn through the foreground updater."""
    dataset = make_sift_like(
        scale.base_vectors, scale.updates, dim=scale.dim, seed=seed
    )
    # Tight posting geometry so the churn actually crosses split/merge
    # thresholds and the LIRE counters carry signal.
    config = _base_config(
        scale,
        seed,
        max_posting_size=48,
        min_posting_size=4,
        build_target_posting_size=24,
    )
    index = SPFreshIndex.build(dataset.base, config=config)
    rng = np.random.default_rng(seed + 2)

    insert_lat: list[float] = []
    delete_lat: list[float] = []
    deletable = list(range(scale.base_vectors))
    next_pool = 0
    stats_before = index.stats.snapshot()
    io_before = index.ssd.stats.snapshot()
    wall_start = time.perf_counter()
    for op in range(scale.updates):
        # 2:1 insert:delete mix keeps the index growing while exercising
        # tombstones; the schedule is fully determined by the seed.
        if op % 3 != 2 and next_pool < len(dataset.pool):
            insert_lat.append(
                index.insert(1_000_000 + next_pool, dataset.pool[next_pool])
            )
            next_pool += 1
        elif deletable:
            victim = deletable.pop(int(rng.integers(len(deletable))))
            delete_lat.append(index.delete(victim))
    index.drain()
    wall = time.perf_counter() - wall_start
    window = index.ssd.stats.since(io_before)
    delta = index.stats.snapshot().delta(stats_before)

    inserted_bytes = len(insert_lat) * scale.dim * 4
    deterministic = {
        **percentile_metrics(insert_lat, "insert_latency_us"),
        **percentile_metrics(delete_lat, "delete_latency_us"),
        "splits": float(delta.splits),
        "merges": float(delta.merges),
        "reassign_evaluated": float(delta.reassign_evaluated),
        "reassign_executed": float(delta.reassign_executed),
        "appends": float(delta.appends),
        "write_amplification": _round(
            window.write_amplification(inserted_bytes)
        ),
        "background_io_us": _round(index.rebuilder.background_io_us),
        **window.to_metrics("io"),
    }
    wall_clock = {
        "updates_per_s": _round(scale.updates / wall if wall > 0 else 0.0),
    }
    return ScenarioResult(
        scenario="update",
        config={
            **_scenario_config(scale, seed, config),
            "updates": scale.updates,
            "inserts": len(insert_lat),
            "deletes": len(delete_lat),
        },
        deterministic=deterministic,
        wall_clock=wall_clock,
    )


def scenario_rebalance(scale: PerfScale, seed: int) -> ScenarioResult:
    """Split+merge+reassign storm: hot-cluster burst, then mass deletion."""
    dataset = make_sift_like(
        max(scale.base_vectors // 2, 200), 0, dim=scale.dim, seed=seed
    )
    # Tight posting geometry so the burst forces real rebalancing work.
    config = _base_config(
        scale,
        seed,
        max_posting_size=48,
        min_posting_size=4,
        build_target_posting_size=24,
        reassign_range=12,
    )
    index = SPFreshIndex.build(dataset.base, config=config)
    rng = np.random.default_rng(seed + 3)
    hot_center = dataset.cluster_centers[0]

    stats_before = index.stats.snapshot()
    io_before = index.ssd.stats.snapshot()
    postings_before = index.num_postings
    wall_start = time.perf_counter()
    hot_ids = []
    for i in range(scale.storm_inserts):
        vector = (
            hot_center + rng.normal(scale=0.2, size=scale.dim)
        ).astype(np.float32)
        vid = 2_000_000 + i
        index.insert(vid, vector)
        hot_ids.append(vid)
    index.drain()
    split_window = index.ssd.stats.since(io_before)

    # Delete most of the burst, sweep queries over the hot region (the
    # paper's searcher-triggered merge path), then run the proactive
    # maintenance scanner so postings queries missed are merged/GC'd too.
    victims = rng.permutation(len(hot_ids))[: int(len(hot_ids) * 0.9)]
    for pick in victims:
        index.delete(hot_ids[int(pick)])
    probes = (
        hot_center + rng.normal(scale=0.3, size=(64, scale.dim))
    ).astype(np.float32)
    for query in probes:
        index.query(QueryRequest.single(query, k=scale.k, nprobe=scale.nprobe))
    index.drain()
    from repro.core.maintenance import MaintenanceScanner

    scan = MaintenanceScanner(index).scan()
    index.drain()
    wall = time.perf_counter() - wall_start
    window = index.ssd.stats.since(io_before)
    delta = index.stats.snapshot().delta(stats_before)
    sizes = index.posting_sizes()

    deterministic = {
        "splits": float(delta.splits),
        "split_jobs": float(delta.split_jobs),
        "merges": float(delta.merges),
        "merge_jobs": float(delta.merge_jobs),
        "reassign_evaluated": float(delta.reassign_evaluated),
        "reassign_scheduled": float(delta.reassign_scheduled),
        "reassign_executed": float(delta.reassign_executed),
        "split_cascade_max_depth": float(delta.split_cascade_max_depth),
        "scan_merges_scheduled": float(scan.merges_scheduled),
        "scan_gc_rewrites": float(scan.gc_rewrites),
        "scan_dead_entries_seen": float(scan.dead_entries_seen),
        "background_io_us": _round(index.rebuilder.background_io_us),
        "postings_before": float(postings_before),
        "postings_after": float(index.num_postings),
        "posting_size_mean": _round(sizes.mean()),
        "posting_size_max": float(sizes.max()),
        "split_phase_block_writes": float(split_window.block_writes),
        **window.to_metrics("io"),
    }
    wall_clock = {
        "storm_ops_per_s": _round(
            (scale.storm_inserts + len(victims)) / wall if wall > 0 else 0.0
        ),
    }
    return ScenarioResult(
        scenario="rebalance",
        config={
            **_scenario_config(scale, seed, config),
            "storm_inserts": scale.storm_inserts,
            "storm_deletes": len(victims),
        },
        deterministic=deterministic,
        wall_clock=wall_clock,
    )


def scenario_fresh_tier(scale: PerfScale, seed: int) -> ScenarioResult:
    """Insert-storm write amplification with vs. without the memory tier.

    The same seeded hot-cluster storm is driven through two indexes built
    from the same base set: a baseline (classic per-insert posting append)
    and one with the LSM-style fresh tier enabled (inserts buffer in RAM,
    a flush batch-appends every ``fresh_flush_threshold`` vectors — see
    docs/fresh-tier.md). Gated metrics cover the write-amplification win,
    insert-latency percentiles before/after, recall at the regular probe
    width for both runs, and two zero-tolerance parity counters measured
    on the fresh index with a partially resident tier: batched vs. single
    search, and tier-resident vs. eagerly-flushed search (both must be
    bit-identical, so the expected value is 0).
    """
    dataset = make_sift_like(
        max(scale.base_vectors // 2, 200), 0, dim=scale.dim, seed=seed
    )
    base_n = len(dataset.base)
    hot_center = dataset.cluster_centers[0]
    # Sub-threshold tail inserted after the measured storm so the parity
    # sweep always sees a non-empty tier regardless of scale.
    tail = 24
    threshold = 64

    def storm_vectors() -> np.ndarray:
        rng = np.random.default_rng(seed + 5)
        return (
            hot_center
            + rng.normal(scale=0.25, size=(scale.storm_inserts + tail, scale.dim))
        ).astype(np.float32)

    def run(enable_tier: bool):
        # Tight posting geometry so the storm crosses split thresholds the
        # way the update/rebalance scenarios do; no search budget so the
        # parity sweeps scan everything they probe.
        config = _base_config(
            scale,
            seed,
            max_posting_size=48,
            min_posting_size=4,
            build_target_posting_size=24,
            search_latency_budget_us=None,
            enable_fresh_tier=enable_tier,
            fresh_flush_threshold=threshold,
        )
        index = SPFreshIndex.build(dataset.base, config=config)
        vectors = storm_vectors()
        stats_before = index.stats.snapshot()
        io_before = index.ssd.stats.snapshot()
        wall_start = time.perf_counter()
        latencies = [
            index.insert(4_000_000 + i, vectors[i])
            for i in range(scale.storm_inserts)
        ]
        index.drain()
        wall = time.perf_counter() - wall_start
        window = index.ssd.stats.since(io_before)
        # The tail rides outside the measured window: it stays buffered in
        # the fresh run (below threshold) and lands on disk in the baseline,
        # keeping the two live sets identical for the recall sweep.
        for i in range(scale.storm_inserts, len(vectors)):
            index.insert(4_000_000 + i, vectors[i])
        index.drain()
        delta = index.stats.snapshot().delta(stats_before)
        return index, config, latencies, window, delta, wall

    base_index, config, base_lat, base_window, base_delta, base_wall = run(False)
    fresh_index, _, fresh_lat, fresh_window, fresh_delta, fresh_wall = run(True)

    # Recall at the regular probe width over the identical live sets.
    queries = _queries(dataset, scale, seed)
    all_vectors = np.concatenate([dataset.base, storm_vectors()])
    all_ids = np.concatenate(
        [
            np.arange(base_n, dtype=np.int64),
            4_000_000 + np.arange(scale.storm_inserts + tail, dtype=np.int64),
        ]
    )
    truth = exact_knn(all_vectors, all_ids, queries, scale.k)
    base_ids = [
        base_index.query(
            QueryRequest.single(q, k=scale.k, nprobe=scale.nprobe)
        ).ids
        for q in queries
    ]
    fresh_ids = [
        fresh_index.query(
            QueryRequest.single(q, k=scale.k, nprobe=scale.nprobe)
        ).ids
        for q in queries
    ]

    # Parity sweeps on the fresh index: full probe, exact merge, tier still
    # partially resident. Mismatches gate at zero.
    rng = np.random.default_rng(seed + 6)
    parity_queries = np.concatenate(
        [
            queries[:16],
            (hot_center + rng.normal(scale=0.3, size=(16, scale.dim))).astype(
                np.float32
            ),
        ]
    )
    tier_resident = len(fresh_index.fresh_tier)
    pre = [
        fresh_index.query(QueryRequest.single(q, k=scale.k, nprobe=10**6)).result
        for q in parity_queries
    ]
    batched = list(
        fresh_index.query(
            QueryRequest(vectors=parity_queries, k=scale.k, nprobe=10**6)
        )
    )
    batch_single_mismatches = sum(
        1
        for s, b in zip(pre, batched)
        if not (
            np.array_equal(s.ids, b.ids)
            and np.array_equal(s.distances, b.distances)
        )
    )
    flushed_for_parity = fresh_index.flush_fresh_tier()
    post = [
        fresh_index.query(QueryRequest.single(q, k=scale.k, nprobe=10**6)).result
        for q in parity_queries
    ]
    search_parity_mismatches = sum(
        1
        for s, p in zip(pre, post)
        if not (
            np.array_equal(s.ids, p.ids)
            and np.array_equal(s.distances, p.distances)
        )
    )

    inserted_bytes = scale.storm_inserts * scale.dim * 4
    base_amp = base_window.write_amplification(inserted_bytes)
    fresh_amp = fresh_window.write_amplification(inserted_bytes)
    deterministic = {
        "baseline_write_amplification": _round(base_amp),
        "fresh_write_amplification": _round(fresh_amp),
        "fresh_write_amp_speedup": _round(
            base_amp / fresh_amp if fresh_amp > 0 else 0.0
        ),
        **percentile_metrics(base_lat, "baseline_insert_latency_us"),
        **percentile_metrics(fresh_lat, "fresh_insert_latency_us"),
        "baseline_recall_at_k": _round(
            recall_at_k(base_ids, truth, scale.k), 4
        ),
        "fresh_recall_at_k": _round(recall_at_k(fresh_ids, truth, scale.k), 4),
        "search_parity_mismatches": float(search_parity_mismatches),
        "batch_single_mismatches": float(batch_single_mismatches),
        "tier_resident_at_sweep": float(tier_resident),
        "parity_flush_vectors": float(flushed_for_parity),
        "fresh_flushes": float(fresh_delta.fresh_flushes),
        "fresh_flushed_vectors": float(fresh_delta.fresh_flushed_vectors),
        "fresh_flush_appends": float(fresh_delta.fresh_flush_appends),
        "baseline_appends": float(base_delta.appends),
        "fresh_appends": float(fresh_delta.appends),
        "baseline_splits": float(base_delta.splits),
        "fresh_splits": float(fresh_delta.splits),
        **base_window.to_metrics("baseline_io"),
        **fresh_window.to_metrics("fresh_io"),
    }
    wall_clock = {
        "baseline_storm_ops_per_s": _round(
            scale.storm_inserts / base_wall if base_wall > 0 else 0.0
        ),
        "fresh_storm_ops_per_s": _round(
            scale.storm_inserts / fresh_wall if fresh_wall > 0 else 0.0
        ),
    }
    return ScenarioResult(
        scenario="fresh_tier",
        config={
            **_scenario_config(scale, seed, config),
            "storm_inserts": scale.storm_inserts,
            "tail_inserts": tail,
            "fresh_flush_threshold": threshold,
            "parity_queries": len(parity_queries),
        },
        deterministic=deterministic,
        wall_clock=wall_clock,
    )


def scenario_quantized(scale: PerfScale, seed: int) -> ScenarioResult:
    """Quantized posting scans vs exact, at equal probe width.

    This scenario pins its own workload geometry instead of the generic
    ``scale`` one: SIFT-like 128-dimensional vectors and paper-realistic
    posting lengths (hundreds of entries per posting). That is the regime
    the tentpole targets — with 32-dimensional vectors and ~50-entry
    postings, per-posting bookkeeping dominates and the code/vector byte
    asymmetry (a 25-byte PQ entry vs a 521-byte vector entry) is
    invisible. Probe width, k, and the query set are identical for both
    paths.

    Two same-seed builds over the same base set — one with the plain v1
    codec, one with the sectioned quantized codec (PQ, 16 subspaces) —
    run the identical query sweep with no latency budget. The simulated
    IO sweep is single-query: per-query read accounting is what a
    serving system pays per request, whereas a batched sweep fetches
    each posting once for the whole batch and amortizes the very reads
    the codec shrinks. Gated metrics (docs/quantization.md):

    * recall for both, plus ``quant_recall_ratio`` (quantized ÷ exact;
      CI asserts >= 0.95 explicitly);
    * simulated read bytes per query for both, plus the byte and
      simulated-latency speedups (the IO win is what quantization buys:
      scans touch only the compact code section, then fetch only the
      ``k * rerank_k`` selected rows);
    * ``rerank_all_mismatches``: with ``rerank_k`` large enough to rerank
      every scanned candidate, the quantized path must be bit-identical
      (ids and distances) to the exact index — expected 0;
    * ``batch_parity_mismatches``: the batched quantized path must agree
      with the single-query path bit for bit — expected 0;
    * code/vector coherence after LIRE churn (inserts + deletes + drain)
      audited by ``check_invariants`` — expected 0 mismatching postings;
    * a recall-vs-bytes ablation (exact / PQ m=8 / PQ m=16 / SQ8).

    Wall clock rides along informationally (the two-clock model: wall
    clock never gates) but is the headline demonstration: the batched
    sweep's profiler attributes time per stage, and the quantized
    ``scan`` stage (ADC over codes) must come in under the exact path's
    full-dimension posting scans. Rerank cost is reported separately —
    it is refinement on fetched rows, not posting traversal.
    """
    from repro.core.invariants import check_invariants

    # Scenario-local geometry (see docstring). The base count scales with
    # the tier but is capped: posting length, not corpus size, is what
    # the codec comparison is sensitive to.
    dim = 128
    n_base = min(16_000, max(3_000, 4 * scale.base_vectors))
    n_queries = min(scale.queries, 200)
    nprobe = 4
    subspaces = 16
    rerank_k = 24

    dataset = make_sift_like(n_base, 0, dim=dim, seed=seed)
    rng = np.random.default_rng(seed + 1)
    picks = rng.integers(0, n_base, size=n_queries)
    noise = rng.normal(scale=0.05, size=(n_queries, dim))
    queries = (dataset.base[picks] + noise).astype(np.float32)
    truth = exact_knn(dataset.base, np.arange(n_base), queries, scale.k)

    def build(**overrides):
        config = _base_config(
            scale,
            seed,
            dim=dim,
            ssd_blocks=1 << 17,
            build_target_posting_size=512,
            max_posting_size=4096,
            search_latency_budget_us=None,
            **overrides,
        )
        return SPFreshIndex.build(dataset.base, config=config), config

    exact_index, config = build()
    quant_index, quant_config = build(
        quant_enabled=True,
        quant_kind="pq",
        quant_subspaces=subspaces,
        quant_rerank_k=rerank_k,
    )

    def sweep(index):
        """Single-query sweep: per-query simulated IO accounting."""
        ids, latencies, io_lat, scanned, reranked = [], [], [], [], []
        before = index.ssd.stats.snapshot()
        for q in queries:
            r = index.query(
                QueryRequest.single(q, k=scale.k, nprobe=nprobe)
            ).result
            ids.append(r.ids)
            latencies.append(r.latency_us)
            io_lat.append(r.io_latency_us)
            scanned.append(r.entries_scanned)
            reranked.append(r.reranked_entries)
        window = index.ssd.stats.since(before)
        return ids, latencies, io_lat, scanned, reranked, window

    def batched_sweep(index, runs=3):
        """Batched sweep: wall clock + per-stage profiler attribution."""
        request = QueryRequest(vectors=queries, k=scale.k, nprobe=nprobe)
        response = index.search(request)  # warm caches before timing
        index.profiler.enabled = True
        best_wall, best_stages = math.inf, {}
        for _ in range(runs):
            index.profiler.reset()
            start = time.perf_counter()
            response = index.search(request)
            wall = time.perf_counter() - start
            if wall < best_wall:
                best_wall = wall
                best_stages = {
                    stage: stats["total_us"] / 1e3
                    for stage, stats in index.profiler.snapshot().items()
                }
        index.profiler.enabled = False
        return response, best_wall, best_stages

    e_ids, e_lat, e_io, e_scanned, _, e_window = sweep(exact_index)
    q_ids, q_lat, q_io, q_scanned, q_reranked, q_window = sweep(quant_index)
    exact_recall = recall_at_k(e_ids, truth, scale.k)
    quant_recall = recall_at_k(q_ids, truth, scale.k)

    e_batch, e_wall, e_stages = batched_sweep(exact_index)
    q_batch, q_wall, q_stages = batched_sweep(quant_index)

    # Batched-vs-single parity: the grouped scan must reproduce the
    # single-query path bit for bit (ids and distances).
    batch_mismatches = 0
    for single_ids, batch_result in zip(q_ids, q_batch.results):
        if not np.array_equal(single_ids, batch_result.ids):
            batch_mismatches += 1

    # Rerank-everything parity: every scanned candidate reranked against
    # exact vectors must reproduce the exact search bit for bit.
    mismatches = 0
    for q in queries[: min(32, len(queries))]:
        exact_r = exact_index.query(
            QueryRequest.single(q, k=scale.k, nprobe=nprobe)
        ).result
        rerank_all = quant_index.query(
            QueryRequest.single(q, k=scale.k, nprobe=nprobe, rerank_k=10**6)
        ).result
        if not (
            np.array_equal(exact_r.ids, rerank_all.ids)
            and np.array_equal(exact_r.distances, rerank_all.distances)
        ):
            mismatches += 1

    # LIRE churn on the quantized index; the auditor's code-coherence
    # check proves splits/merges/GC kept codes in sync with vectors.
    rng = np.random.default_rng(seed + 7)
    churn = max(min(scale.updates // 4, 600), 60)
    for i in range(churn):
        if i % 3 == 2:
            quant_index.delete(int(rng.integers(n_base)))
        else:
            pick = int(rng.integers(n_base))
            vector = (
                dataset.base[pick] + rng.normal(scale=0.1, size=dim)
            ).astype(np.float32)
            quant_index.insert(5_000_000 + i, vector)
    quant_index.drain()
    audit = check_invariants(quant_index)

    # Recall-vs-bytes ablation: code bytes per vector against recall and
    # per-query read bytes at the regular probe width.
    ablation: dict[str, tuple[int, float, float]] = {
        "exact": (dim * 4, exact_recall, e_window.bytes_read / n_queries),
        "pq_m16": (
            subspaces,
            quant_recall,
            q_window.bytes_read / n_queries,
        ),
    }
    ablation_overrides = {
        "pq_m8": dict(
            quant_enabled=True,
            quant_kind="pq",
            quant_subspaces=8,
            quant_rerank_k=rerank_k,
        ),
        "sq8": dict(
            quant_enabled=True, quant_kind="sq8", quant_rerank_k=rerank_k
        ),
    }
    for label, overrides in ablation_overrides.items():
        index, _ = build(**overrides)
        before = index.ssd.stats.snapshot()
        ids = [
            index.query(
                QueryRequest.single(q, k=scale.k, nprobe=nprobe)
            ).ids
            for q in queries
        ]
        window = index.ssd.stats.since(before)
        ablation[label] = (
            index.quantizer.code_bytes,
            recall_at_k(ids, truth, scale.k),
            window.bytes_read / n_queries,
        )

    deterministic = {
        "exact_recall_at_k": _round(exact_recall, 4),
        "quant_recall_at_k": _round(quant_recall, 4),
        "quant_recall_ratio": _round(
            quant_recall / exact_recall if exact_recall > 0 else 0.0, 4
        ),
        "rerank_all_mismatches": float(mismatches),
        "batch_parity_mismatches": float(batch_mismatches),
        "quant_code_mismatch_postings": float(len(audit.code_mismatches)),
        "quant_lost_vectors": float(len(audit.lost_vectors)),
        "exact_read_bytes_per_query": _round(e_window.bytes_read / n_queries),
        "quant_read_bytes_per_query": _round(q_window.bytes_read / n_queries),
        "quant_read_bytes_speedup": _round(
            e_window.bytes_read / q_window.bytes_read
            if q_window.bytes_read > 0
            else 0.0
        ),
        "quant_latency_speedup": _round(
            float(np.mean(e_lat)) / float(np.mean(q_lat))
            if np.mean(q_lat) > 0
            else 0.0
        ),
        "exact_entries_scanned_mean": _round(np.mean(e_scanned)),
        "quant_entries_scanned_mean": _round(np.mean(q_scanned)),
        "quant_reranked_entries_mean": _round(np.mean(q_reranked)),
        **percentile_metrics(e_lat, "exact_latency_us"),
        **percentile_metrics(q_lat, "quant_latency_us"),
        **percentile_metrics(e_io, "exact_io_latency_us"),
        **percentile_metrics(q_io, "quant_io_latency_us"),
        **{
            f"ablation_{label}_code_bytes": float(bytes_)
            for label, (bytes_, _, _) in ablation.items()
        },
        **{
            f"ablation_{label}_recall_at_k": _round(recall, 4)
            for label, (_, recall, _) in ablation.items()
        },
        **{
            f"ablation_{label}_read_bytes_per_query": _round(per_query)
            for label, (_, _, per_query) in ablation.items()
        },
        **e_window.to_metrics("exact_io"),
        **q_window.to_metrics("quant_io"),
    }
    wall_clock = {
        "exact_batch_wall_ms": _round(e_wall * 1e3),
        "quant_batch_wall_ms": _round(q_wall * 1e3),
        "quant_wall_speedup": _round(e_wall / q_wall if q_wall > 0 else 0.0),
        "exact_scan_ms": _round(e_stages.get("scan", 0.0)),
        "quant_scan_ms": _round(q_stages.get("scan", 0.0)),
        "quant_scan_wall_speedup": _round(
            e_stages.get("scan", 0.0) / q_stages["scan"]
            if q_stages.get("scan")
            else 0.0
        ),
        "quant_rerank_ms": _round(q_stages.get("rerank", 0.0)),
        "quant_tables_ms": _round(q_stages.get("tables", 0.0)),
        **{
            f"exact_stage_{stage}_ms": _round(ms)
            for stage, ms in e_stages.items()
        },
        **{
            f"quant_stage_{stage}_ms": _round(ms)
            for stage, ms in q_stages.items()
        },
    }
    return ScenarioResult(
        scenario="quantized",
        config={
            **_scenario_config(scale, seed, quant_config),
            "base_vectors": n_base,
            "dim": dim,
            "nprobe": nprobe,
            "queries": n_queries,
            "quant_kind": "pq",
            "quant_subspaces": subspaces,
            "quant_rerank_k": rerank_k,
            "build_target_posting_size": 512,
            "churn_updates": churn,
        },
        deterministic=deterministic,
        wall_clock=wall_clock,
    )


def scenario_cluster(scale: PerfScale, seed: int) -> ScenarioResult:
    """Centroid-routed cluster vs broadcast: routing accuracy, splits, procs.

    Builds a :class:`~repro.distributed.ClusterSPFresh` (replication
    factor 2) over the clustered base set and measures the three claims
    the cluster model makes (docs/distributed.md):

    * **routing preserves accuracy** — the routed path probes only
      ``cluster_nprobe`` of the shards per query; its recall against
      brute force must stay within 0.95x of the broadcast oracle's
      (``routing_recall_ratio`` gates >= 0.95 in CI) while
      ``shards_probed_fraction`` stays < 1.0. Simulated latency is
      max-of-probed-shards + route + merge cost, so routing also shows up
      as a gated ``routed_latency_speedup`` over broadcast;
    * **growth preserves conservation** — a seeded hot-region insert
      storm pushes one shard over ``cluster_split_threshold``;
      ``maybe_split()`` carves its centroid group and migrates the
      rerouted vectors, and ``check_cluster_invariants`` audits the
      cross-shard conservation story (``conservation_violations`` gates
      at 0). A post-split routed-vs-broadcast sweep
      (``post_split_recall_ratio``) shows routing survives the topology
      change;
    * **process fan-out is bit-exact** — the same per-shard sub-batches
      run through a forked :class:`~repro.distributed.ProcessShardPool`
      (workers inherit the build-state shards, so no pickling and no
      divergence) and must merge to the routed path's exact ids and
      distances (``process_parity_mismatches`` gates at 0). The pool is
      forked *before* the parent's sweeps because ``query()`` has
      maintenance side effects. Wall-clock ``process_wall_speedup`` over
      the serial sweep is informational (two-clock model); on platforms
      without ``fork`` the process metrics report 0 mismatches and 0
      wall time.
    """
    from repro.core.invariants import check_cluster_invariants
    from repro.distributed import ClusterSPFresh, ProcessShardPool, fork_available

    dataset = make_sift_like(scale.base_vectors, 0, dim=scale.dim, seed=seed)
    split_threshold = int(
        (scale.base_vectors / scale.cluster_shards + scale.cluster_updates)
        * 0.75
    )
    config = _base_config(
        scale,
        seed,
        cluster_nprobe=scale.cluster_nprobe,
        cluster_replication_factor=2,
        cluster_split_threshold=split_threshold,
    )
    cluster = ClusterSPFresh.build(
        dataset.base, num_shards=scale.cluster_shards, config=config
    )
    queries = _queries(dataset, scale, seed)
    truth = exact_knn(
        dataset.base, np.arange(scale.base_vectors), queries, scale.k
    )
    request = QueryRequest(vectors=queries, k=scale.k, nprobe=scale.nprobe)

    # Fork the worker pool from pristine build state, before any parent
    # sweep can schedule maintenance in the parent's copies.
    pool = (
        ProcessShardPool([g.replicas[0] for g in cluster.groups])
        if fork_available()
        else None
    )

    # Serial routed sweep (also the simulated-metric source). A second
    # timed pass smooths first-touch noise; wall clock is informational,
    # so the extra pass's maintenance side effects are harmless.
    wall_start = time.perf_counter()
    routed = cluster.query(request)
    serial_wall = time.perf_counter() - wall_start
    routed_lat = [r.latency_us for r in routed]
    probed_fraction = cluster.shards_probed_fraction()
    wall_start = time.perf_counter()
    cluster.query(request)
    serial_wall = min(serial_wall, time.perf_counter() - wall_start)

    # Process-pool sweep over the identical per-shard sub-batches, merged
    # with the same dedup; parity against the routed response gates at 0.
    from repro.spann.postings import dedup_top_k

    plan = cluster.placement.shards_for_queries(
        queries, config.cluster.nprobe
    )
    shard_rows: dict[int, list[int]] = {}
    for qi, shards in enumerate(plan):
        for sid in shards:
            shard_rows.setdefault(int(sid), []).append(qi)
    process_mismatches = 0
    process_wall = 0.0
    if pool is not None:
        jobs = {
            sid: (queries[rows], scale.k, scale.nprobe)
            for sid, rows in shard_rows.items()
        }
        positions = {
            sid: {qi: pos for pos, qi in enumerate(rows)}
            for sid, rows in shard_rows.items()
        }
        wall_start = time.perf_counter()
        pooled = pool.query_shards(jobs)
        process_wall = time.perf_counter() - wall_start
        for qi, shards in enumerate(plan):
            parts = [pooled[int(s)][positions[int(s)][qi]] for s in shards]
            ids, dists = dedup_top_k(
                np.concatenate([p[0] for p in parts]),
                np.concatenate([p[1] for p in parts]),
                scale.k,
            )
            if not (
                np.array_equal(ids, routed[qi].ids)
                and np.array_equal(dists, routed[qi].distances)
            ):
                process_mismatches += 1
        # Warm second pass: the first fork pays copy-on-write page faults
        # for every posting the workers touch; steady state is what the
        # serial-vs-process comparison should show. (On a single-core
        # machine the speedup still sits near 1/fan-out — workers can
        # only interleave; the metric is informational either way.)
        wall_start = time.perf_counter()
        pool.query_shards(jobs)
        process_wall = min(process_wall, time.perf_counter() - wall_start)
        pool.close()

    # Broadcast oracle: every shard answers every query.
    broadcast = cluster.query(request, broadcast=True)
    broadcast_lat = [r.latency_us for r in broadcast]
    routed_recall = recall_at_k([r.ids for r in routed], truth, scale.k)
    broadcast_recall = recall_at_k(
        [r.ids for r in broadcast], truth, scale.k
    )

    # Hot-region growth: concentrated inserts push one shard past the
    # split threshold; the split migrates and the auditor must find the
    # cross-shard books balanced.
    rng = np.random.default_rng(seed + 8)
    hot_center = dataset.cluster_centers[0]
    storm = (
        hot_center + rng.normal(scale=0.2, size=(scale.cluster_updates, scale.dim))
    ).astype(np.float32)
    for i in range(scale.cluster_updates):
        cluster.insert(6_000_000 + i, storm[i])
    shards_before = cluster.num_shards
    splits = cluster.maybe_split()
    cluster.drain()
    audit = check_cluster_invariants(cluster)

    all_vectors = np.concatenate([dataset.base, storm])
    all_ids = np.concatenate(
        [
            np.arange(scale.base_vectors, dtype=np.int64),
            6_000_000 + np.arange(scale.cluster_updates, dtype=np.int64),
        ]
    )
    truth_after = exact_knn(all_vectors, all_ids, queries, scale.k)
    post_routed = cluster.query(request)
    post_broadcast = cluster.query(request, broadcast=True)
    post_routed_recall = recall_at_k(
        [r.ids for r in post_routed], truth_after, scale.k
    )
    post_broadcast_recall = recall_at_k(
        [r.ids for r in post_broadcast], truth_after, scale.k
    )
    cluster.close()

    deterministic = {
        "routed_recall_at_k": _round(routed_recall, 4),
        "broadcast_recall_at_k": _round(broadcast_recall, 4),
        "routing_recall_ratio": _round(
            routed_recall / broadcast_recall if broadcast_recall > 0 else 0.0,
            4,
        ),
        "shards_probed_fraction": _round(probed_fraction, 4),
        **percentile_metrics(routed_lat, "routed_latency_us"),
        **percentile_metrics(broadcast_lat, "broadcast_latency_us"),
        "routed_latency_speedup": _round(
            float(np.mean(broadcast_lat)) / float(np.mean(routed_lat))
            if np.mean(routed_lat) > 0
            else 0.0
        ),
        "process_parity_mismatches": float(process_mismatches),
        "shard_splits": float(splits),
        "migrated_vectors": float(cluster.stats.migrated_vectors),
        "shards_before_split": float(shards_before),
        "shards_after_split": float(cluster.num_shards),
        "conservation_violations": float(audit.conservation_violations),
        "cluster_live_vectors": float(audit.cluster_live_vectors),
        "post_split_recall_ratio": _round(
            post_routed_recall / post_broadcast_recall
            if post_broadcast_recall > 0
            else 0.0,
            4,
        ),
        "post_split_routed_recall_at_k": _round(post_routed_recall, 4),
    }
    wall_clock = {
        "serial_routed_wall_ms": _round(serial_wall * 1e3),
        "process_routed_wall_ms": _round(process_wall * 1e3),
        "process_wall_speedup": _round(
            serial_wall / process_wall if process_wall > 0 else 0.0
        ),
        "process_workers": float(scale.cluster_shards if pool is not None else 0),
    }
    return ScenarioResult(
        scenario="cluster",
        config={
            **_scenario_config(scale, seed, config),
            "queries": len(queries),
            "num_shards": scale.cluster_shards,
            "cluster_nprobe": scale.cluster_nprobe,
            "replication_factor": 2,
            "split_threshold": split_threshold,
            "storm_inserts": scale.cluster_updates,
        },
        deterministic=deterministic,
        wall_clock=wall_clock,
    )


def scenario_recovery(scale: PerfScale, seed: int) -> ScenarioResult:
    """WAL append cost plus snapshot + WAL-replay recovery after a restart."""
    dataset = make_sift_like(
        max(scale.base_vectors // 2, 200),
        scale.recovery_updates,
        dim=scale.dim,
        seed=seed,
    )
    config = _base_config(scale, seed)
    wal = WriteAheadLog()
    snapshots = SnapshotManager()
    index = SPFreshIndex.build(
        dataset.base, config=config, wal=wal, snapshots=snapshots
    )
    index.checkpoint()

    rng = np.random.default_rng(seed + 4)
    wall_start = time.perf_counter()
    for i in range(scale.recovery_updates):
        if i % 4 == 3:
            index.delete(int(rng.integers(len(dataset.base))))
        else:
            index.insert(3_000_000 + i, dataset.pool[i])
    update_wall = time.perf_counter() - wall_start
    wal_bytes = wal.size_bytes()
    live_before = index.live_vector_count

    io_before = index.ssd.stats.snapshot()
    wall_start = time.perf_counter()
    recovered = SPFreshIndex.recover(index.ssd, config, snapshots, wal=wal)
    recovery_wall = time.perf_counter() - wall_start
    window = recovered.ssd.stats.since(io_before)
    report = recovered.last_recovery

    deterministic = {
        "wal_bytes": float(wal_bytes),
        "wal_bytes_per_update": _round(wal_bytes / scale.recovery_updates),
        "wal_records_replayed": float(report.records_replayed),
        "wal_records_skipped": float(report.records_skipped),
        "wal_records_quarantined": float(report.records_quarantined),
        "recovery_apply_errors": float(report.records_failed),
        "live_vectors_recovered": float(recovered.live_vector_count),
        "live_vector_drift": float(
            abs(recovered.live_vector_count - live_before)
        ),
        **window.to_metrics("recovery_io"),
    }
    wall_clock = {
        "logged_updates_per_s": _round(
            scale.recovery_updates / update_wall if update_wall > 0 else 0.0
        ),
        "recovery_s": _round(recovery_wall, 4),
    }
    return ScenarioResult(
        scenario="recovery",
        config={
            **_scenario_config(scale, seed, config),
            "recovery_updates": scale.recovery_updates,
        },
        deterministic=deterministic,
        wall_clock=wall_clock,
    )


def scenario_cache(scale: PerfScale, seed: int) -> ScenarioResult:
    """Cached vs uncached search: the posting-cache ablation's trajectory."""
    dataset = make_sift_like(scale.base_vectors, 0, dim=scale.dim, seed=seed)
    config = _base_config(scale, seed)
    index = SPFreshIndex.build(dataset.base, config=config)
    queries = _queries(dataset, scale, seed)

    def _searcher(controller) -> SpannSearcher:
        return SpannSearcher(
            index.centroid_index,
            controller,
            index.version_map,
            default_nprobe=scale.nprobe,
            latency_budget_us=config.search_latency_budget_us,
            cpu_cost_per_entry_us=config.cpu_cost_per_entry_us,
            cpu_cost_per_query_us=config.cpu_cost_per_query_us,
        )

    def _sweep(searcher) -> tuple[list[float], list[float]]:
        lat, io_lat = [], []
        for query in queries:
            result = searcher.search(query, scale.k, nprobe=scale.nprobe)
            lat.append(result.latency_us)
            io_lat.append(result.io_latency_us)
        return lat, io_lat

    plain = _searcher(index.controller)
    before = index.ssd.stats.snapshot()
    uncached_lat, uncached_io = _sweep(plain)
    uncached_window = index.ssd.stats.since(before)

    cached_controller = CachedBlockController(index.controller, capacity=256)
    cached = _searcher(cached_controller)
    _sweep(cached)  # cold pass: populate the cache
    cached_controller.hits = 0
    cached_controller.misses = 0
    before = index.ssd.stats.snapshot()
    cached_lat, cached_io = _sweep(cached)
    cached_window = index.ssd.stats.since(before)

    uncached_mean = float(np.mean(uncached_lat))
    cached_mean = float(np.mean(cached_lat))
    deterministic = {
        **percentile_metrics(uncached_lat, "uncached_latency_us"),
        **percentile_metrics(cached_lat, "cached_latency_us"),
        **percentile_metrics(uncached_io, "uncached_io_latency_us"),
        **percentile_metrics(cached_io, "cached_io_latency_us"),
        "cache_hit_rate": _round(cached_controller.hit_rate, 4),
        "cache_speedup": _round(
            uncached_mean / cached_mean if cached_mean > 0 else 0.0
        ),
        "uncached_block_reads": float(uncached_window.block_reads),
        "cached_block_reads": float(cached_window.block_reads),
    }
    return ScenarioResult(
        scenario="cache",
        config={
            **_scenario_config(scale, seed, config),
            "queries": len(queries),
            "cache_capacity": 256,
        },
        deterministic=deterministic,
        wall_clock={},
    )


def scenario_throughput(scale: PerfScale, seed: int) -> ScenarioResult:
    """Vectorized-engine throughput: batched-vs-single parity plus wall QPS.

    Parity and scan counters run at the searcher layer (no maintenance side
    effects), so ``batch_single_mismatches`` gates the bit-identity contract
    of the vectorized batch path. QPS numbers are wall clock and therefore
    informational; ``profiled_batch_qps`` re-runs the batched sweep with the
    wall-clock profiler enabled so its overhead is visible in the report.
    """
    dataset = make_sift_like(scale.base_vectors, 0, dim=scale.dim, seed=seed)
    config = _base_config(scale, seed)
    index = SPFreshIndex.build(dataset.base, config=config)
    searcher = index.searcher
    queries = _queries(dataset, scale, seed)
    truth = exact_knn(
        dataset.base, np.arange(scale.base_vectors), queries, scale.k
    )

    single_results = []
    wall_start = time.perf_counter()
    for query in queries:
        single_results.append(searcher.search(query, scale.k, nprobe=scale.nprobe))
    single_wall = time.perf_counter() - wall_start

    before = index.ssd.stats.snapshot()
    batch_results = []
    wall_start = time.perf_counter()
    for start in range(0, len(queries), scale.batch_size):
        chunk = queries[start : start + scale.batch_size]
        batch_results.extend(searcher.search_many(chunk, scale.k, nprobe=scale.nprobe))
    batch_wall = time.perf_counter() - wall_start
    batch_window = index.ssd.stats.since(before)

    mismatches = sum(
        1
        for s, b in zip(single_results, batch_results)
        if not (
            np.array_equal(s.ids, b.ids) and np.array_equal(s.distances, b.distances)
        )
    )

    # Third sweep with the profiler switched on: stage attribution for the
    # report, and a live check that instrumentation stays cheap.
    index.profiler.enabled = True
    index.profiler.reset()
    wall_start = time.perf_counter()
    for start in range(0, len(queries), scale.batch_size):
        chunk = queries[start : start + scale.batch_size]
        searcher.search_many(chunk, scale.k, nprobe=scale.nprobe)
    profiled_wall = time.perf_counter() - wall_start
    index.profiler.enabled = False

    deterministic = {
        **percentile_metrics([r.latency_us for r in batch_results], "batch_latency_us"),
        "single_recall_at_k": _round(
            recall_at_k([r.ids for r in single_results], truth, scale.k), 4
        ),
        "batch_recall_at_k": _round(
            recall_at_k([r.ids for r in batch_results], truth, scale.k), 4
        ),
        "batch_single_mismatches": float(mismatches),
        "batch_postings_probed_mean": _round(
            np.mean([r.postings_probed for r in batch_results])
        ),
        "batch_entries_scanned_mean": _round(
            np.mean([r.entries_scanned for r in batch_results])
        ),
        **batch_window.to_metrics("batch_io"),
    }
    wall_clock = {
        "single_search_qps": _round(
            len(queries) / single_wall if single_wall > 0 else 0.0
        ),
        "batch_search_qps": _round(
            len(queries) / batch_wall if batch_wall > 0 else 0.0
        ),
        "batch_wall_speedup": _round(
            single_wall / batch_wall if batch_wall > 0 else 0.0
        ),
        "profiled_batch_qps": _round(
            len(queries) / profiled_wall if profiled_wall > 0 else 0.0
        ),
    }
    return ScenarioResult(
        scenario="throughput",
        config={**_scenario_config(scale, seed, config), "queries": len(queries)},
        deterministic=deterministic,
        wall_clock=wall_clock,
    )


def scenario_serving(scale: PerfScale, seed: int) -> ScenarioResult:
    """Open-loop serving: admission + dynamic batching vs unbatched.

    One seeded bursty, hot-key-skewed, multi-tenant arrival trace is
    served twice through ``repro.serving.ServingFrontend`` over the same
    freshly built index: once with the dynamic batcher (config knobs) and
    once unbatched (``max_batch=1``, ``max_wait_us=0`` — the baseline a
    serving layer must beat). Everything runs on the simulated clock, so
    goodput, tail latency, SLO-violation rate, and shed rate gate in CI;
    ``goodput_speedup`` gates the batched-beats-unbatched claim itself.
    """
    from repro.datasets import make_arrival_trace
    from repro.serving import ServingFrontend

    dataset = make_sift_like(scale.base_vectors, 0, dim=scale.dim, seed=seed)
    config = _base_config(scale, seed)
    index = SPFreshIndex.build(dataset.base, config=config)
    pool = _queries(dataset, scale, seed)
    trace = make_arrival_trace(
        pool,
        n_requests=scale.serve_requests,
        mean_rate_qps=scale.serve_rate_qps,
        pattern="bursty",
        hot_key_skew=0.8,
        tenant_weights=4,
        seed=seed + 5,
        name=f"serving-{scale.name}",
    )

    wall_start = time.perf_counter()
    batched = ServingFrontend.from_config(
        index.searcher, config, k=scale.k, nprobe=scale.nprobe
    ).run(trace)
    batched_wall = time.perf_counter() - wall_start
    wall_start = time.perf_counter()
    unbatched = ServingFrontend.from_config(
        index.searcher,
        config,
        k=scale.k,
        nprobe=scale.nprobe,
        max_batch=1,
        max_wait_us=0.0,
    ).run(trace)
    unbatched_wall = time.perf_counter() - wall_start

    bm = batched.metrics()
    um = unbatched.metrics()
    deterministic = {
        "goodput_qps": _round(bm["goodput_qps"]),
        "unbatched_goodput_qps": _round(um["goodput_qps"]),
        "goodput_speedup": _round(
            bm["goodput_qps"] / um["goodput_qps"] if um["goodput_qps"] else 0.0
        ),
        "answered_qps": _round(bm["answered_qps"]),
        "shed_rate": _round(bm["shed_rate"], 4),
        "unbatched_shed_rate": _round(um["shed_rate"], 4),
        "slo_violation_rate": _round(bm["slo_violation_rate"], 4),
        "unbatched_slo_violation_rate": _round(um["slo_violation_rate"], 4),
        "e2e_latency_us_p50": bm["e2e_latency_us_p50"],
        "e2e_latency_us_p99": bm["e2e_latency_us_p99"],
        "e2e_latency_us_p99.9": bm["e2e_latency_us_p99.9"],
        "unbatched_e2e_latency_us_p99": um["e2e_latency_us_p99"],
        "queue_wait_us_mean": _round(bm["queue_wait_us_mean"]),
        "assembly_wait_us_mean": _round(bm["assembly_wait_us_mean"]),
        "engine_us_mean": _round(bm["engine_us_mean"]),
        "batch_size_mean": _round(bm["batch_size_mean"]),
        "batch_count": bm["batch_count"],
        "retry_after_us_mean": _round(bm["retry_after_us_mean"]),
    }
    wall_clock = {
        "batched_requests_per_s": _round(
            scale.serve_requests / batched_wall if batched_wall > 0 else 0.0
        ),
        "unbatched_requests_per_s": _round(
            scale.serve_requests / unbatched_wall if unbatched_wall > 0 else 0.0
        ),
    }
    return ScenarioResult(
        scenario="serving",
        config={
            **_scenario_config(scale, seed, config),
            "serve_requests": scale.serve_requests,
            "serve_rate_qps": scale.serve_rate_qps,
            "pattern": "bursty",
            "hot_key_skew": 0.8,
            "tenants": 4,
            "queue_capacity": config.serve_queue_capacity,
            "max_batch": config.serve_max_batch,
            "max_wait_us": config.serve_max_wait_us,
            "slo_us": config.serve_slo_us,
            "admission_wait_budget_us": config.serve_admission_wait_budget_us,
        },
        deterministic=deterministic,
        wall_clock=wall_clock,
    )


def scenario_serving_concurrent(scale: PerfScale, seed: int) -> ScenarioResult:
    """K-worker serving: goodput scaling, DWRR fairness, pool parity.

    Three claims, one scenario:

    * **goodput scales with workers** — a saturating Poisson trace (rate
      far above one worker's drain rate) runs through the frontend at
      ``num_workers=1`` and ``num_workers=serve_workers``; simulated
      goodput must scale (``workers_goodput_speedup`` gates >= 2 at
      K=4). Deterministic: both runs are pure functions of the trace.
    * **DWRR bounds the victims' tail** — a hot-key-skewed trace with one
      dominant tenant (8x the others' weight) runs FIFO vs DWRR at the
      same K. The *victim* p99 (worst p99 among non-dominant tenants)
      must not be worse under DWRR (``dwrr_fairness_speedup`` gates
      >= 1); per-tenant p99 spreads for both policies ship alongside.
    * **wall-clock pools are bit-exact** — the exact batch schedule the
      K-worker run produced replays serially, on a shared-engine thread
      pool, and (where ``fork`` exists) on a forked process pool; every
      seat's (ids, distances) must match the serial replay
      (``pool_parity_mismatches`` / ``process_parity_mismatches`` gate
      at 0). The pools run at the searcher layer, which has no
      maintenance side effects, so parity is exact by construction.
      Pool wall speedups are informational (host-dependent), never
      gated.
    """
    from repro.datasets import make_arrival_trace
    from repro.serving import (
        ProcessEnginePool,
        ServingFrontend,
        ThreadEnginePool,
        batch_jobs,
        count_mismatches,
        serial_replay,
    )
    from repro.distributed import fork_available

    dataset = make_sift_like(scale.base_vectors, 0, dim=scale.dim, seed=seed)
    config = _base_config(scale, seed)
    index = SPFreshIndex.build(dataset.base, config=config)
    pool_queries = _queries(dataset, scale, seed)

    # --- goodput scaling on a saturating trace --------------------------
    saturating = make_arrival_trace(
        pool_queries,
        n_requests=scale.serve_requests,
        mean_rate_qps=scale.serve_saturate_qps,
        pattern="poisson",
        tenant_weights=4,
        seed=seed + 11,
        name=f"serving-saturate-{scale.name}",
    )

    def frontend(**overrides) -> ServingFrontend:
        return ServingFrontend.from_config(
            index.searcher, config, k=scale.k, nprobe=scale.nprobe, **overrides
        )

    single = frontend(num_workers=1).run(saturating)
    pooled = frontend(num_workers=scale.serve_workers).run(saturating)
    sm = single.metrics()
    pm = pooled.metrics()

    # --- fairness under a dominant tenant -------------------------------
    skewed = make_arrival_trace(
        pool_queries,
        n_requests=scale.serve_requests,
        mean_rate_qps=scale.serve_saturate_qps,
        pattern="bursty",
        hot_key_skew=0.8,
        tenant_weights=(8.0, 1.0, 1.0, 1.0),
        seed=seed + 12,
        name=f"serving-hotkey-{scale.name}",
    )
    fifo = frontend(num_workers=scale.serve_workers, fairness="fifo").run(skewed)
    dwrr = frontend(num_workers=scale.serve_workers, fairness="dwrr").run(skewed)

    def victim_p99(report) -> float:
        """Worst answered p99 among tenants other than the heaviest."""
        per_tenant = report.per_tenant_metrics()
        if not per_tenant:
            return 0.0
        dominant = max(per_tenant, key=lambda t: per_tenant[t]["offered"])
        return max(
            (
                m["e2e_latency_us_p99"]
                for t, m in per_tenant.items()
                if t != dominant and m["e2e_latency_us_p99"] > 0.0
            ),
            default=0.0,
        )

    fifo_victim = victim_p99(fifo)
    dwrr_victim = victim_p99(dwrr)

    # --- wall-clock pool replay of the K-worker batch schedule ----------
    jobs = batch_jobs(saturating, pooled)
    serial = serial_replay(index.searcher, jobs, scale.k, scale.nprobe)
    threaded = ThreadEnginePool(
        index.searcher, scale.serve_workers, profiler=index.profiler
    ).run(jobs, scale.k, scale.nprobe)
    thread_mismatches = count_mismatches(serial, threaded)

    process_mismatches = 0
    process_wall = 0.0
    process_workers = 0
    if fork_available():
        with ProcessEnginePool(index.searcher, scale.serve_workers) as procs:
            # Warm second pass: the first fork pays copy-on-write page
            # faults; the steady state is what the comparison should show.
            forked = procs.run(jobs, scale.k, scale.nprobe)
            process_mismatches = count_mismatches(serial, forked)
            forked = procs.run(jobs, scale.k, scale.nprobe)
            process_mismatches += count_mismatches(serial, forked)
            process_wall = forked.wall_s
            process_workers = scale.serve_workers

    deterministic = {
        "single_worker_goodput_qps": _round(sm["goodput_qps"]),
        "pool_goodput_qps": _round(pm["goodput_qps"]),
        "workers_goodput_speedup": _round(
            pm["goodput_qps"] / sm["goodput_qps"] if sm["goodput_qps"] else 0.0
        ),
        "single_worker_shed_rate": _round(sm["shed_rate"], 4),
        "pool_shed_rate": _round(pm["shed_rate"], 4),
        "pool_slo_violation_rate": _round(pm["slo_violation_rate"], 4),
        "pool_e2e_latency_us_p99": pm["e2e_latency_us_p99"],
        "single_worker_e2e_latency_us_p99": sm["e2e_latency_us_p99"],
        "pool_worker_busy_frac_mean": _round(pm["worker_busy_frac_mean"], 4),
        "pool_worker_busy_frac_min": _round(pm["worker_busy_frac_min"], 4),
        "pool_batch_size_mean": _round(pm["batch_size_mean"]),
        "fifo_victim_p99_us": _round(fifo_victim),
        "dwrr_victim_p99_us": _round(dwrr_victim),
        "dwrr_fairness_speedup": _round(
            fifo_victim / dwrr_victim if dwrr_victim > 0 else 0.0
        ),
        "fifo_tenant_p99_spread": _round(fifo.tenant_p99_spread(), 4),
        "dwrr_tenant_p99_spread": _round(dwrr.tenant_p99_spread(), 4),
        "fifo_shed_rate": _round(fifo.metrics()["shed_rate"], 4),
        "dwrr_shed_rate": _round(dwrr.metrics()["shed_rate"], 4),
        "replayed_batches": float(len(jobs)),
        "pool_parity_mismatches": float(thread_mismatches),
        "process_parity_mismatches": float(process_mismatches),
    }
    wall_clock = {
        "serial_replay_wall_ms": _round(serial.wall_s * 1e3),
        "thread_pool_wall_ms": _round(threaded.wall_s * 1e3),
        "thread_pool_wall_speedup": _round(
            serial.wall_s / threaded.wall_s if threaded.wall_s > 0 else 0.0
        ),
        "process_pool_wall_ms": _round(process_wall * 1e3),
        "process_pool_wall_speedup": _round(
            serial.wall_s / process_wall if process_wall > 0 else 0.0
        ),
        "process_workers": float(process_workers),
    }
    return ScenarioResult(
        scenario="serving_concurrent",
        config={
            **_scenario_config(scale, seed, config),
            "serve_requests": scale.serve_requests,
            "serve_saturate_qps": scale.serve_saturate_qps,
            "serve_workers": scale.serve_workers,
            "hot_key_skew": 0.8,
            "tenants": 4,
            "dominant_tenant_weight": 8.0,
            "queue_capacity": config.serve_queue_capacity,
            "max_batch": config.serve_max_batch,
            "max_wait_us": config.serve_max_wait_us,
            "slo_us": config.serve_slo_us,
            "admission_wait_budget_us": config.serve_admission_wait_budget_us,
        },
        deterministic=deterministic,
        wall_clock=wall_clock,
    )


SCENARIOS = {
    "search": scenario_search,
    "update": scenario_update,
    "rebalance": scenario_rebalance,
    "fresh_tier": scenario_fresh_tier,
    "quantized": scenario_quantized,
    "cluster": scenario_cluster,
    "recovery": scenario_recovery,
    "cache": scenario_cache,
    "throughput": scenario_throughput,
    "serving": scenario_serving,
    "serving_concurrent": scenario_serving_concurrent,
}


def run_scenarios(
    scale: PerfScale,
    seed: int = 0,
    scenarios: list[str] | None = None,
    progress: bool = False,
) -> list[ScenarioResult]:
    """Run the requested scenarios (all by default) at one scale/seed."""
    names = scenarios or list(SCENARIOS)
    results: list[ScenarioResult] = []
    for name in names:
        if name not in SCENARIOS:
            raise ValueError(
                f"unknown scenario {name!r}; choose from {sorted(SCENARIOS)}"
            )
        started = time.perf_counter()
        result = SCENARIOS[name](scale, seed)
        if progress:
            print(
                f"[perf] {name}: {len(result.deterministic)} metrics "
                f"in {time.perf_counter() - started:.1f}s"
            )
        results.append(result)
    return results


# ----------------------------------------------------------------------
# emission
# ----------------------------------------------------------------------
def write_results(
    results: list[ScenarioResult], out_dir: str | Path
) -> list[Path]:
    """Write one ``BENCH_<scenario>.json`` per result; returns the paths."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    paths = []
    for result in results:
        path = out / f"{FILE_PREFIX}{result.scenario}.json"
        with open(path, "w") as fh:
            json.dump(result.to_document(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        paths.append(path)
    return paths


def load_documents(directory: str | Path) -> dict[str, dict]:
    """Load every ``BENCH_*.json`` in a directory, keyed by scenario."""
    docs: dict[str, dict] = {}
    for path in sorted(Path(directory).glob(f"{FILE_PREFIX}*.json")):
        with open(path) as fh:
            doc = json.load(fh)
        docs[doc.get("scenario", path.stem[len(FILE_PREFIX) :])] = doc
    return docs


def run_markdown_summary(results: list[ScenarioResult]) -> str:
    """Compact per-scenario headline table for PR logs."""
    headline_order = (
        "single_latency_us_p50",
        "single_latency_us_p99.9",
        "insert_latency_us_p99.9",
        "cached_latency_us_p50",
        "single_recall_at_k",
        "quant_recall_ratio",
        "quant_read_bytes_speedup",
        "routing_recall_ratio",
        "shards_probed_fraction",
        "conservation_violations",
        "rerank_all_mismatches",
        "fresh_write_amp_speedup",
        "search_parity_mismatches",
        "cache_hit_rate",
        "goodput_qps",
        "slo_violation_rate",
        "shed_rate",
        "batch_size_mean",
        "splits",
        "merges",
        "reassign_executed",
        "wal_records_replayed",
        "io_block_reads",
        "io_block_writes",
    )
    rows = []
    for result in results:
        picks = [k for k in headline_order if k in result.deterministic]
        headline = ", ".join(
            f"{k}={result.deterministic[k]:g}" for k in picks[:4]
        )
        rows.append(
            (result.scenario, len(result.deterministic), headline or "—")
        )
    return format_markdown_table(
        ["scenario", "gated metrics", "headline"],
        rows,
        title="perf harness results (deterministic section)",
    )


# ----------------------------------------------------------------------
# baseline comparison
# ----------------------------------------------------------------------
@dataclass
class MetricDelta:
    """One metric compared across baseline and current runs."""

    scenario: str
    metric: str
    baseline: float | None
    current: float | None
    direction: str  # "lower" | "higher"
    rel_change: float  # positive = worse, negative = better
    verdict: str  # "ok" | "regression" | "improvement" | "new" | "missing"


@dataclass
class CompareReport:
    """Outcome of comparing two ``BENCH_*.json`` directories."""

    tolerance: float
    deltas: list[MetricDelta] = field(default_factory=list)
    missing_scenarios: list[str] = field(default_factory=list)
    new_scenarios: list[str] = field(default_factory=list)

    @property
    def regressions(self) -> list[MetricDelta]:
        return [d for d in self.deltas if d.verdict in ("regression", "missing")]

    @property
    def improvements(self) -> list[MetricDelta]:
        return [d for d in self.deltas if d.verdict == "improvement"]

    @property
    def ok(self) -> bool:
        return not self.regressions and not self.missing_scenarios

    def markdown(self, max_ok_rows: int = 0) -> str:
        rows = []
        for delta in self.deltas:
            if delta.verdict == "ok" and not max_ok_rows:
                continue
            rows.append(
                (
                    delta.scenario,
                    delta.metric,
                    "—" if delta.baseline is None else f"{delta.baseline:g}",
                    "—" if delta.current is None else f"{delta.current:g}",
                    f"{delta.rel_change:+.1%}"
                    if math.isfinite(delta.rel_change)
                    else "inf",
                    delta.verdict,
                )
            )
        if not rows:
            rows.append(("all", "—", "—", "—", "+0.0%", "ok"))
        return format_markdown_table(
            ["scenario", "metric", "baseline", "current", "change", "verdict"],
            rows,
            title=f"perf comparison (tolerance {self.tolerance:.0%})",
        )

    def summary(self) -> str:
        state = "OK" if self.ok else "REGRESSION"
        lines = [
            f"perf compare: {state} — {len(self.regressions)} regressions, "
            f"{len(self.improvements)} improvements over "
            f"{len(self.deltas)} metrics (tolerance {self.tolerance:.1%})"
        ]
        for delta in self.regressions[:10]:
            change = (
                f"{delta.rel_change:+.1%}"
                if math.isfinite(delta.rel_change)
                else "inf"
            )
            lines.append(
                f"  REGRESSION {delta.scenario}.{delta.metric}: "
                f"{delta.baseline} -> {delta.current} ({change})"
            )
        for name in self.missing_scenarios:
            lines.append(f"  MISSING scenario {name}: no current BENCH file")
        return "\n".join(lines)


def _compare_metric(
    baseline: float, current: float, direction: str
) -> float:
    """Relative regression amount (positive = worse in `direction` terms)."""
    if direction == "higher":
        worse = baseline - current
    else:
        worse = current - baseline
    if baseline == 0:
        if worse == 0:
            return 0.0
        return math.inf if worse > 0 else -math.inf
    return worse / abs(baseline)


def compare_documents(
    baseline_docs: dict[str, dict],
    current_docs: dict[str, dict],
    tolerance: float,
) -> CompareReport:
    """Compare deterministic sections; wall-clock is never gated."""
    report = CompareReport(tolerance=tolerance)
    for scenario, base_doc in sorted(baseline_docs.items()):
        cur_doc = current_docs.get(scenario)
        if cur_doc is None:
            report.missing_scenarios.append(scenario)
            continue
        base_metrics = base_doc.get("deterministic", {})
        cur_metrics = cur_doc.get("deterministic", {})
        directions = {
            **base_doc.get("directions", {}),
            **cur_doc.get("directions", {}),
        }
        for metric in sorted(set(base_metrics) | set(cur_metrics)):
            direction = directions.get(metric, "lower")
            base_val = base_metrics.get(metric)
            cur_val = cur_metrics.get(metric)
            if base_val is None:
                # New metric: no baseline to gate against, never a failure.
                report.deltas.append(
                    MetricDelta(scenario, metric, None, cur_val, direction, 0.0, "new")
                )
                continue
            if cur_val is None:
                # A gated metric vanished — treat as a regression so gates
                # cannot be silently deleted.
                report.deltas.append(
                    MetricDelta(
                        scenario, metric, base_val, None, direction, math.inf, "missing"
                    )
                )
                continue
            rel = _compare_metric(float(base_val), float(cur_val), direction)
            if rel > tolerance:
                verdict = "regression"
            elif rel < -tolerance:
                verdict = "improvement"
            else:
                verdict = "ok"
            report.deltas.append(
                MetricDelta(
                    scenario, metric, float(base_val), float(cur_val), direction, rel, verdict
                )
            )
    report.new_scenarios = sorted(set(current_docs) - set(baseline_docs))
    return report


def compare_dirs(
    baseline_dir: str | Path, current_dir: str | Path, tolerance: float
) -> CompareReport:
    """Compare every ``BENCH_*.json`` in two directories."""
    return compare_documents(
        load_documents(baseline_dir), load_documents(current_dir), tolerance
    )


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def add_perf_arguments(
    parser: argparse.ArgumentParser, *, include_shared: bool = True
) -> None:
    """Register the harness's flags on ``parser``.

    The unified ``python -m repro`` CLI supplies ``--scale``/``--seed``
    from its shared parent parser and calls this with
    ``include_shared=False``; the standalone ``python -m repro.bench.perf``
    entry point registers everything itself.
    """
    if include_shared:
        parser.add_argument(
            "--scale", choices=sorted(PERF_SCALES), default="quick",
            help="workload scale preset (see repro.bench.scales.PERF_SCALES)",
        )
        parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--quick", action="store_true",
        help="alias for --scale quick (the CI tier)",
    )
    parser.add_argument(
        "--out", default=".",
        help="directory that receives BENCH_*.json (default: repo root)",
    )
    parser.add_argument(
        "--scenarios", nargs="+", choices=sorted(SCENARIOS), default=None,
        help="subset of scenarios to run (default: all)",
    )
    parser.add_argument(
        "--compare", metavar="BASELINE_DIR", default=None,
        help="compare --out against a baseline BENCH_*.json directory; "
        "exit nonzero on deterministic-metric regressions",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.05,
        help="relative regression tolerance for --compare (default 0.05)",
    )
    parser.add_argument(
        "--compare-only", action="store_true",
        help="skip running scenarios; just compare --out against --compare",
    )
    parser.add_argument(
        "--summary", metavar="PATH", default=None,
        help="also write the markdown summary/comparison to this file",
    )


def run_cli(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    """Execute one parsed harness invocation (shared with ``repro.cli``)."""
    if args.quick:
        args.scale = "quick"
    scale = PERF_SCALES[args.scale]

    summary_parts: list[str] = []
    if not args.compare_only:
        results = run_scenarios(
            scale, seed=args.seed, scenarios=args.scenarios, progress=True
        )
        paths = write_results(results, args.out)
        print(f"[perf] wrote {len(paths)} files to {Path(args.out).resolve()}")
        summary_parts.append(run_markdown_summary(results))

    exit_code = 0
    if args.compare is not None:
        report = compare_dirs(args.compare, args.out, args.tolerance)
        summary_parts.append(report.markdown())
        print(report.summary())
        exit_code = 0 if report.ok else 1
    elif args.compare_only:
        parser.error("--compare-only requires --compare")

    summary = "\n\n".join(summary_parts)
    if summary:
        print()
        print(summary)
    if args.summary:
        with open(args.summary, "w") as fh:
            fh.write(summary + "\n")
    return exit_code


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    add_perf_arguments(parser)
    return run_cli(parser.parse_args(argv), parser)


if __name__ == "__main__":
    raise SystemExit(main())
