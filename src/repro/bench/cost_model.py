"""Global-rebuild cost model (paper Table 1).

Table 1 reports what it costs to rebuild a billion-scale index from
scratch: DiskANN needs 1100 GB DRAM / 32 cores / 2 days (or 64 GB / 16
cores / 5 days), SPANN 260 GB / 45 cores / 4 days. We cannot rebuild a
billion vectors in Python; instead the bench *measures* a small-scale
rebuild of each system here, fits the per-vector cost, and projects it to
1e9 vectors with each system's scaling law:

* build time — near-linear in n for both systems (hierarchical clustering
  and graph construction are O(n log n); the log factor is absorbed into
  the fitted constant, which is what the paper's own numbers reflect);
* DRAM — DiskANN's build materializes the full graph + vectors in memory
  (bytes/vector fitted from the in-memory working set); SPANN's build
  holds the vectors plus clustering state.

The point of the table is the *contrast* with SPFresh, which never pays
this cost: LIRE's incremental work per day is also measured and printed in
the same units.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np


@dataclass
class RebuildCostModel:
    """Fitted small-scale costs, projectable to arbitrary scale."""

    system: str
    measured_vectors: int
    measured_seconds: float
    modelled_working_set_bytes: int

    def projected_hours(self, target_vectors: int, speedup: float = 1.0) -> float:
        """Wall-clock hours to rebuild ``target_vectors``.

        ``speedup`` folds in the native-code + multicore advantage of the
        paper's C++ systems over this Python reproduction; callers pass a
        documented constant rather than hiding it here.
        """
        per_vector = self.measured_seconds / self.measured_vectors
        return per_vector * target_vectors / speedup / 3600.0

    def projected_memory_gb(self, target_vectors: int) -> float:
        per_vector = self.modelled_working_set_bytes / self.measured_vectors
        return per_vector * target_vectors / (1024**3)


def measure_spfresh_build(vectors: np.ndarray, config) -> RebuildCostModel:
    """Measure a full SPANN/SPFresh static build at reproduction scale."""
    from repro.core.index import SPFreshIndex

    start = time.perf_counter()
    index = SPFreshIndex.build(vectors, config=config)
    elapsed = time.perf_counter() - start
    # Build working set: raw vectors + per-posting entries + index metadata.
    working_set = vectors.nbytes * 2 + index.memory_bytes()
    return RebuildCostModel(
        system="SPANN (global rebuild)",
        measured_vectors=len(vectors),
        measured_seconds=elapsed,
        modelled_working_set_bytes=working_set,
    )


def measure_diskann_build(vectors: np.ndarray, config) -> RebuildCostModel:
    """Measure a full DiskANN graph build at reproduction scale."""
    from repro.baselines.diskann import FreshDiskANNIndex

    start = time.perf_counter()
    index = FreshDiskANNIndex.build(vectors, config=config)
    elapsed = time.perf_counter() - start
    # DiskANN's build holds vectors + full adjacency in DRAM.
    adjacency_bytes = len(vectors) * 8 * config.node_capacity()
    working_set = vectors.nbytes * 2 + adjacency_bytes + index.memory_bytes()
    return RebuildCostModel(
        system="DiskANN (global rebuild)",
        measured_vectors=len(vectors),
        measured_seconds=elapsed,
        modelled_working_set_bytes=working_set,
    )


PAPER_TABLE1 = [
    ("DiskANN", "1100 GB", "32 cores", "2 days"),
    ("DiskANN (constrained)", "64 GB", "16 cores", "5 days"),
    ("SPANN", "260 GB", "45 cores", "4 days"),
]

# Native C++ with tens of cores vs single-threaded numpy/Python: the
# constant used when projecting our measured build times to paper scale.
NATIVE_SPEEDUP = 50.0


def table1_rows(
    spann_model: RebuildCostModel,
    diskann_model: RebuildCostModel,
    target_vectors: int = 1_000_000_000,
) -> list[tuple]:
    """Rows for the reproduced Table 1: paper numbers + our projections."""
    rows = [
        (
            model.system,
            f"{model.projected_memory_gb(target_vectors):.0f} GB (projected)",
            f"{model.measured_seconds:.1f} s @ {model.measured_vectors} vecs",
            f"{model.projected_hours(target_vectors, NATIVE_SPEEDUP) / 24:.1f} days "
            f"(projected, /{NATIVE_SPEEDUP:.0f}x native)",
        )
        for model in (diskann_model, spann_model)
    ]
    return rows
