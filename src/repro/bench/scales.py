"""Shared workload-scale presets for the figure benches and the perf harness.

One place defines how big a benchmark run is, so the pytest figure benches
(`benchmarks/conftest.py`) and the perf-regression harness
(`repro.bench.perf`) agree on what "small"/"quick"/"large" mean and CI
lanes can pick a scale by name.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class BenchScale:
    """Knobs of the day-series figure benches (Figures 7/9 style)."""

    base_vectors: int
    days: int
    daily_rate: float
    queries: int
    stress_base: int
    stress_days: int


SCALES = {
    "small": BenchScale(
        base_vectors=4000, days=12, daily_rate=0.015, queries=50,
        stress_base=12000, stress_days=6,
    ),
    "large": BenchScale(
        base_vectors=10000, days=30, daily_rate=0.01, queries=100,
        stress_base=40000, stress_days=10,
    ),
}


@dataclass(frozen=True)
class PerfScale:
    """Knobs of one perf-harness run (`repro.bench.perf`).

    Everything here feeds seeded generators, so a (scale, seed) pair fully
    determines the simulated-metric sections of every ``BENCH_*.json``.
    """

    name: str
    base_vectors: int
    dim: int
    queries: int  # single-query search probes
    batch_size: int  # queries per search_batch submission
    updates: int  # insert/delete ops in the update scenario
    storm_inserts: int  # hot-cluster burst size in the rebalance scenario
    recovery_updates: int  # WAL'd updates replayed in the recovery scenario
    serve_requests: int = 2000  # open-loop arrivals in the serving scenario
    serve_rate_qps: float = 6000.0  # mean offered load of the arrival trace
    serve_workers: int = 4  # pool size in the serving_concurrent scenario
    # Saturating offered load for the concurrency scenario: deliberately
    # far above the whole K-worker pool's drain rate so goodput scales
    # with K (tuned per tier: roughly 10x one worker's drain rate).
    serve_saturate_qps: float = 120_000.0
    k: int = 10
    nprobe: int = 8
    cluster_shards: int = 4  # shard count in the cluster scenario
    cluster_nprobe: int = 2  # shards probed per routed query
    cluster_updates: int = 200  # churn ops before the split/audit phase


PERF_SCALES = {
    # CI-tier run: the `--quick` flag; a couple of minutes end to end.
    "quick": PerfScale(
        name="quick",
        base_vectors=4000,
        dim=32,
        queries=400,
        batch_size=32,
        updates=2400,
        storm_inserts=900,
        recovery_updates=600,
        serve_requests=6000,
        serve_rate_qps=6000.0,
        serve_saturate_qps=120_000.0,
    ),
    # Unit-test tier: seconds, still exercises every metric.
    "tiny": PerfScale(
        name="tiny",
        base_vectors=600,
        dim=8,
        queries=60,
        batch_size=16,
        updates=220,
        storm_inserts=160,
        recovery_updates=80,
        serve_requests=500,
        serve_rate_qps=12000.0,
        serve_saturate_qps=250_000.0,
    ),
    # Local deep-dive tier (not wired into CI).
    "full": PerfScale(
        name="full",
        base_vectors=6000,
        dim=32,
        queries=1000,
        batch_size=64,
        updates=6000,
        storm_inserts=2400,
        recovery_updates=1500,
        serve_requests=20000,
        serve_rate_qps=8000.0,
        serve_saturate_qps=100_000.0,
    ),
}
