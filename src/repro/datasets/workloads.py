"""Update workloads A/B/C (paper §5.1).

Each workload is a base set plus a stream of daily epochs; every epoch
deletes ``daily_rate`` of the live vectors uniformly at random and inserts
the same number drawn from a disjoint update pool:

* **Workload A** — SPACEV-like (skewed, shifting) at reproduction scale;
* **Workload B** — SIFT-like (uniform, stationary), same sampling method;
* **Workload C** — the stress-test variant: the same two regimes at the
  largest scale the reproduction runs, used by the Figure-9 bench.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.datasets.synthetic import (
    ClusteredDataset,
    make_sift_like,
    make_spacev_like,
)


@dataclass
class UpdateEpoch:
    """One simulated day of updates."""

    day: int
    delete_ids: np.ndarray
    insert_ids: np.ndarray
    insert_vectors: np.ndarray

    @property
    def num_updates(self) -> int:
        return len(self.delete_ids) + len(self.insert_ids)


@dataclass
class Workload:
    """Base set, query set, and the daily epoch stream."""

    name: str
    base_ids: np.ndarray
    base_vectors: np.ndarray
    queries: np.ndarray
    epochs: list[UpdateEpoch] = field(default_factory=list)

    @property
    def dim(self) -> int:
        return self.base_vectors.shape[1]

    @property
    def days(self) -> int:
        return len(self.epochs)


def make_workload(
    dataset: ClusteredDataset,
    name: str,
    days: int,
    daily_rate: float,
    num_queries: int,
    seed: int = 0,
) -> Workload:
    """Turn a generated dataset into a daily insert/delete stream.

    Deletions sample the *current* live set uniformly (as in the paper);
    insertions consume the update pool in order, so a drifted pool shifts
    the live distribution monotonically over the simulated days.
    """
    rng = np.random.default_rng(seed + 17)
    n_base = len(dataset.base)
    base_ids = np.arange(n_base, dtype=np.int64)
    per_day = max(1, int(round(n_base * daily_rate)))
    if days * per_day > len(dataset.pool):
        raise ValueError(
            f"update pool too small: need {days * per_day}, have {len(dataset.pool)}"
        )
    # Queries sample both the base distribution and the (possibly shifted)
    # update distribution: a live service's queries follow its live data,
    # and the paper's headline divergence (SPANN+ tail growth on SPACEV)
    # only shows on queries that touch the insert-heavy regions.
    n_from_base = min(num_queries // 2 + num_queries % 2, n_base)
    n_from_pool = min(num_queries - n_from_base, len(dataset.pool))
    parts = [
        dataset.base[rng.choice(n_base, size=n_from_base, replace=False)]
    ]
    if n_from_pool > 0:
        parts.append(
            dataset.pool[
                rng.choice(len(dataset.pool), size=n_from_pool, replace=False)
            ]
        )
    queries = np.vstack(parts).copy()
    # Perturb queries so they are near, not equal to, stored vectors.
    queries += rng.normal(scale=0.05, size=queries.shape).astype(np.float32)

    live = list(range(n_base))
    next_id = n_base
    pool_cursor = 0
    epochs: list[UpdateEpoch] = []
    for day in range(days):
        victims_idx = rng.choice(len(live), size=per_day, replace=False)
        victims = sorted(victims_idx, reverse=True)
        delete_ids = np.array([live[i] for i in victims], dtype=np.int64)
        for i in victims:
            live[i] = live[-1]
            live.pop()
        insert_ids = np.arange(next_id, next_id + per_day, dtype=np.int64)
        insert_vectors = dataset.pool[pool_cursor : pool_cursor + per_day]
        live.extend(int(v) for v in insert_ids)
        next_id += per_day
        pool_cursor += per_day
        epochs.append(
            UpdateEpoch(
                day=day,
                delete_ids=delete_ids,
                insert_ids=insert_ids,
                insert_vectors=insert_vectors.copy(),
            )
        )
    return Workload(
        name=name,
        base_ids=base_ids,
        base_vectors=dataset.base.copy(),
        queries=queries,
        epochs=epochs,
    )


def workload_a(
    n_base: int = 8000,
    days: int = 30,
    daily_rate: float = 0.01,
    dim: int = 32,
    num_queries: int = 100,
    seed: int = 0,
) -> Workload:
    """SPACEV-like 1%-daily-churn workload (paper Workload A, scaled)."""
    pool_size = int(days * max(1, round(n_base * daily_rate)) * 1.05) + 16
    dataset = make_spacev_like(n_base, pool_size, dim=dim, seed=seed)
    return make_workload(dataset, "workload-a", days, daily_rate, num_queries, seed)


def workload_b(
    n_base: int = 8000,
    days: int = 30,
    daily_rate: float = 0.01,
    dim: int = 32,
    num_queries: int = 100,
    seed: int = 0,
) -> Workload:
    """SIFT-like 1%-daily-churn workload (paper Workload B, scaled)."""
    pool_size = int(days * max(1, round(n_base * daily_rate)) * 1.05) + 16
    dataset = make_sift_like(n_base, pool_size, dim=dim, seed=seed)
    return make_workload(dataset, "workload-b", days, daily_rate, num_queries, seed)


def workload_d(
    n_base: int = 4000,
    days: int = 12,
    daily_growth: float = 0.08,
    dim: int = 32,
    num_queries: int = 100,
    seed: int = 0,
) -> Workload:
    """Insert-only growth stream (the real-time retrieval scenario, §2.3).

    No deletions: every epoch only adds ``daily_growth`` of the *original*
    base size, drawn from a drifted pool — the personal-document /
    retrieval-plugin workload where the corpus monotonically grows and new
    entries must be recallable immediately.
    """
    per_day = max(1, int(round(n_base * daily_growth)))
    pool_size = days * per_day + 16
    dataset = make_spacev_like(n_base, pool_size, dim=dim, seed=seed, drift=0.7)
    rng = np.random.default_rng(seed + 29)
    queries = dataset.base[
        rng.choice(n_base, size=min(num_queries, n_base), replace=False)
    ].copy()
    queries += rng.normal(scale=0.05, size=queries.shape).astype(np.float32)
    epochs = []
    next_id = n_base
    for day in range(days):
        insert_ids = np.arange(next_id, next_id + per_day, dtype=np.int64)
        epochs.append(
            UpdateEpoch(
                day=day,
                delete_ids=np.empty(0, dtype=np.int64),
                insert_ids=insert_ids,
                insert_vectors=dataset.pool[day * per_day : (day + 1) * per_day].copy(),
            )
        )
        next_id += per_day
    return Workload(
        name="workload-d-growth",
        base_ids=np.arange(n_base, dtype=np.int64),
        base_vectors=dataset.base.copy(),
        queries=queries,
        epochs=epochs,
    )


def workload_c(
    n_base: int = 30000,
    days: int = 10,
    daily_rate: float = 0.01,
    dim: int = 32,
    num_queries: int = 100,
    seed: int = 0,
    skewed: bool = False,
) -> Workload:
    """Stress-test workload at the largest reproduction scale (Workload C)."""
    pool_size = int(days * max(1, round(n_base * daily_rate)) * 1.05) + 16
    if skewed:
        dataset = make_spacev_like(n_base, pool_size, dim=dim, seed=seed)
        name = "workload-c-skew"
    else:
        dataset = make_sift_like(n_base, pool_size, dim=dim, seed=seed)
        name = "workload-c-uniform"
    return make_workload(dataset, name, days, daily_rate, num_queries, seed)
