"""Clustered Gaussian vector generators standing in for SIFT/SPACEV.

Real embedding datasets are strongly clustered; what differs between the
paper's two datasets is *how mass is spread across clusters* and whether
newly arriving vectors follow the same distribution as the base set:

* SIFT-like — near-uniform cluster weights, update pool drawn from the
  same distribution (no shift);
* SPACEV-like — Zipf-skewed cluster weights, update pool drawn with
  *rotated* weights and drifted cluster centers, so continuous updates
  shift the data distribution exactly the way §2.3/§5.2 describe.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class ClusteredDataset:
    """A generated dataset: base vectors plus a disjoint update pool."""

    base: np.ndarray
    pool: np.ndarray
    cluster_centers: np.ndarray
    base_cluster: np.ndarray  # cluster id per base row
    pool_cluster: np.ndarray  # cluster id per pool row

    @property
    def dim(self) -> int:
        return self.base.shape[1]


def _zipf_weights(n_clusters: int, skew: float) -> np.ndarray:
    """Zipf-like cluster mass; ``skew=0`` is uniform."""
    ranks = np.arange(1, n_clusters + 1, dtype=np.float64)
    weights = ranks ** (-skew)
    return weights / weights.sum()


def _sample_mixture(
    n: int,
    centers: np.ndarray,
    weights: np.ndarray,
    cluster_std: float,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    assignments = rng.choice(len(centers), size=n, p=weights)
    noise = rng.normal(scale=cluster_std, size=(n, centers.shape[1]))
    vectors = centers[assignments] + noise
    return vectors.astype(np.float32), assignments.astype(np.int64)


def make_clustered(
    n_base: int,
    n_pool: int,
    dim: int,
    n_clusters: int,
    rng: np.random.Generator,
    *,
    skew: float = 0.0,
    drift: float = 0.0,
    cluster_std: float = 0.5,
    center_scale: float = 4.0,
) -> ClusteredDataset:
    """General generator behind the SIFT-like and SPACEV-like presets.

    ``skew`` sets the Zipf exponent of cluster mass; ``drift`` controls how
    different the update pool's distribution is from the base (0 = same
    distribution, 1 = weights fully rotated and centers visibly moved).
    """
    if min(n_base, dim, n_clusters) <= 0 or n_pool < 0:
        raise ValueError("sizes must be positive (n_pool may be zero)")
    centers = rng.normal(scale=center_scale, size=(n_clusters, dim)).astype(
        np.float32
    )
    base_weights = _zipf_weights(n_clusters, skew)
    base, base_cluster = _sample_mixture(n_base, centers, base_weights, cluster_std, rng)

    # Pool distribution: rotate the weight vector so previously light
    # clusters become heavy (mass shift), and nudge the centers (drift in
    # space). drift=0 reproduces the base distribution exactly.
    shift_steps = int(round(drift * n_clusters / 2))
    pool_weights = np.roll(base_weights, shift_steps)
    pool_centers = centers + drift * cluster_std * rng.normal(
        size=centers.shape
    ).astype(np.float32)
    if n_pool > 0:
        pool, pool_cluster = _sample_mixture(
            n_pool, pool_centers, pool_weights, cluster_std, rng
        )
    else:
        pool = np.empty((0, dim), dtype=np.float32)
        pool_cluster = np.empty(0, dtype=np.int64)
    return ClusteredDataset(
        base=base,
        pool=pool,
        cluster_centers=centers,
        base_cluster=base_cluster,
        pool_cluster=pool_cluster,
    )


def make_sift_like(
    n_base: int,
    n_pool: int = 0,
    dim: int = 32,
    n_clusters: int = 64,
    seed: int = 0,
) -> ClusteredDataset:
    """Uniform cluster mass, no distribution shift (Workload B regime)."""
    rng = np.random.default_rng(seed)
    return make_clustered(
        n_base, n_pool, dim, n_clusters, rng, skew=0.0, drift=0.0
    )


def make_spacev_like(
    n_base: int,
    n_pool: int = 0,
    dim: int = 32,
    n_clusters: int = 64,
    seed: int = 0,
    skew: float = 1.1,
    drift: float = 0.6,
) -> ClusteredDataset:
    """Skewed cluster mass with shifting updates (Workload A regime)."""
    rng = np.random.default_rng(seed)
    return make_clustered(
        n_base, n_pool, dim, n_clusters, rng, skew=skew, drift=drift
    )
