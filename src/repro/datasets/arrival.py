"""Seeded open-loop arrival traces for the serving front-end.

A *closed-loop* bench (issue one query, wait, issue the next) can never
observe queueing: the client politely slows down whenever the server
does. Production traffic is *open loop* — millions of users issue
requests on their own schedule, and when the server falls behind, work
piles up. These generators produce that schedule deterministically: a
``(seed, parameters)`` pair fully determines every arrival timestamp,
tenant, and query choice, so serving metrics built on top of them can
gate CI byte-for-byte (see ``repro.serving``).

Four arrival regimes cover the shapes that stress an admission/batching
layer differently:

* ``poisson`` — memoryless steady state; batches fill at a steady rate;
* ``bursty``  — two-state (calm/burst) modulated Poisson, the regime
  where admission control earns its keep;
* ``diurnal`` — sinusoidal rate swing (day/night), long overload windows;
* hot-key skew — a Zipf-distributed query pool (orthogonal knob, applies
  to any regime), the regime that rewards caching and per-posting
  batch grouping.

Multi-tenancy is a weight vector: each request carries a tenant id so
the front-end can report per-tenant latency/shed metrics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

PATTERNS = ("poisson", "bursty", "diurnal")


@dataclass
class ArrivalTrace:
    """An open-loop request schedule over a fixed query pool.

    ``arrival_us`` is sorted and starts at (or near) zero; request ``i``
    asks query ``queries[query_index[i]]`` on behalf of ``tenant[i]``.
    The pool is deliberately smaller than the request count so hot-key
    skew repeats queries, the way real traffic repeats popular searches.
    """

    name: str
    arrival_us: np.ndarray  # float64, sorted, microseconds from t=0
    tenant: np.ndarray  # int32 tenant id per request
    query_index: np.ndarray  # int32 row into ``queries`` per request
    queries: np.ndarray  # float32 (pool_size, dim) query pool

    def __post_init__(self) -> None:
        n = len(self.arrival_us)
        if not (len(self.tenant) == len(self.query_index) == n):
            raise ValueError("trace columns must have equal length")
        if n and np.any(np.diff(self.arrival_us) < 0):
            raise ValueError("arrival_us must be sorted")
        if n and (
            self.query_index.min() < 0
            or self.query_index.max() >= len(self.queries)
        ):
            raise ValueError("query_index out of pool range")

    def __len__(self) -> int:
        return len(self.arrival_us)

    @property
    def dim(self) -> int:
        return self.queries.shape[1]

    @property
    def num_tenants(self) -> int:
        return int(self.tenant.max()) + 1 if len(self.tenant) else 0

    @property
    def duration_us(self) -> float:
        """Span from t=0 to the last arrival."""
        return float(self.arrival_us[-1]) if len(self.arrival_us) else 0.0

    @property
    def offered_qps(self) -> float:
        """Mean offered load over the trace span."""
        if len(self) < 2 or self.duration_us <= 0:
            return 0.0
        return len(self) / (self.duration_us / 1e6)

    def query_matrix(self) -> np.ndarray:
        """Per-request query rows (gathers the pool; hot keys repeat)."""
        return self.queries[self.query_index]


def _zipf_pool_weights(
    pool_size: int, skew: float, rng: np.random.Generator
) -> np.ndarray:
    """Zipf mass over a *shuffled* pool, so hot keys sit at random rows."""
    ranks = np.arange(1, pool_size + 1, dtype=np.float64)
    weights = ranks ** (-skew)
    rng.shuffle(weights)
    return weights / weights.sum()


def _interarrivals(
    n_requests: int,
    mean_rate_qps: float,
    pattern: str,
    rng: np.random.Generator,
    burst_factor: float,
    burst_fraction: float,
    diurnal_period_s: float,
    diurnal_depth: float,
) -> np.ndarray:
    """Inter-arrival gaps (us) for one of the three rate regimes."""
    unit = rng.exponential(scale=1.0, size=n_requests)  # Exp(1) draws
    if pattern == "poisson":
        return unit * (1e6 / mean_rate_qps)
    if pattern == "bursty":
        if not 0.0 < burst_fraction < 1.0 or burst_factor < 1.0:
            raise ValueError(
                "bursty pattern needs 0 < burst_fraction < 1 and burst_factor >= 1"
            )
        # Two-state modulated Poisson: calm at a sub-mean rate, bursts at
        # burst_factor x. Dwell times are geometric (seeded), and calm
        # rate is solved so the *time-weighted* mean rate stays at
        # mean_rate_qps regardless of the burst knobs.
        burst_rate = mean_rate_qps * burst_factor
        calm_time = 1.0 - burst_fraction
        # mean = calm_time*calm_rate + burst_fraction*burst_rate, solved
        # for calm_rate (floored when the bursts alone exceed the mean).
        calm_rate = max(
            mean_rate_qps * (1.0 - burst_fraction * burst_factor) / calm_time,
            mean_rate_qps * 0.05,
        )
        # Expected dwell lengths (in requests) chosen so the fraction of
        # *time* spent bursting is ~burst_fraction.
        mean_burst_run = max(2.0, n_requests * 0.02)
        mean_calm_run = max(
            2.0,
            mean_burst_run
            * (calm_time / burst_fraction)
            * (calm_rate / burst_rate),
        )
        gaps = np.empty(n_requests, dtype=np.float64)
        in_burst = False
        run_left = rng.geometric(1.0 / mean_calm_run)
        for i in range(n_requests):
            if run_left <= 0:
                in_burst = not in_burst
                run_left = rng.geometric(
                    1.0 / (mean_burst_run if in_burst else mean_calm_run)
                )
            rate = burst_rate if in_burst else calm_rate
            gaps[i] = unit[i] * (1e6 / rate)
            run_left -= 1
        return gaps
    if pattern == "diurnal":
        # Sinusoidal rate: lambda(t) = mean * (1 + depth * sin(2*pi*t/P)).
        # Sequential thinning-free form: each gap is drawn at the rate in
        # effect at the previous arrival — accurate when gaps are short
        # relative to the period, which holds at serving rates.
        period_us = diurnal_period_s * 1e6
        gaps = np.empty(n_requests, dtype=np.float64)
        t = 0.0
        for i in range(n_requests):
            rate = mean_rate_qps * (
                1.0 + diurnal_depth * np.sin(2.0 * np.pi * t / period_us)
            )
            rate = max(rate, mean_rate_qps * (1.0 - abs(diurnal_depth)), 1e-6)
            gaps[i] = unit[i] * (1e6 / rate)
            t += gaps[i]
        return gaps
    raise ValueError(f"unknown arrival pattern {pattern!r}; choose from {PATTERNS}")


def make_arrival_trace(
    queries: np.ndarray,
    n_requests: int,
    mean_rate_qps: float,
    pattern: str = "poisson",
    *,
    hot_key_skew: float = 0.0,
    tenant_weights=None,
    burst_factor: float = 8.0,
    burst_fraction: float = 0.1,
    diurnal_period_s: float = 2.0,
    diurnal_depth: float = 0.8,
    seed: int = 0,
    name: str | None = None,
) -> ArrivalTrace:
    """Generate a seeded open-loop trace over a query pool.

    ``queries`` is the pool of distinct query vectors; requests draw rows
    from it uniformly (``hot_key_skew=0``) or Zipf-skewed (``>0``, larger
    = hotter head). ``tenant_weights`` is ``None`` (single tenant), an
    int (that many equal tenants), or a weight sequence.
    """
    queries = np.ascontiguousarray(queries, dtype=np.float32)
    if queries.ndim != 2 or len(queries) == 0:
        raise ValueError("queries must be a non-empty (pool, dim) matrix")
    if n_requests < 0:
        raise ValueError("n_requests must be non-negative")
    if mean_rate_qps <= 0:
        raise ValueError("mean_rate_qps must be positive")
    if hot_key_skew < 0:
        raise ValueError("hot_key_skew must be non-negative")
    rng = np.random.default_rng(seed)

    gaps = _interarrivals(
        n_requests,
        mean_rate_qps,
        pattern,
        rng,
        burst_factor,
        burst_fraction,
        diurnal_period_s,
        diurnal_depth,
    )
    arrival_us = np.cumsum(gaps)

    if hot_key_skew > 0:
        weights = _zipf_pool_weights(len(queries), hot_key_skew, rng)
        query_index = rng.choice(len(queries), size=n_requests, p=weights)
    else:
        query_index = rng.integers(0, len(queries), size=n_requests)

    if tenant_weights is None:
        tenant = np.zeros(n_requests, dtype=np.int32)
    else:
        if isinstance(tenant_weights, (int, np.integer)):
            weights = np.full(int(tenant_weights), 1.0 / int(tenant_weights))
        else:
            weights = np.asarray(tenant_weights, dtype=np.float64)
            if weights.ndim != 1 or len(weights) == 0 or np.any(weights < 0):
                raise ValueError("tenant_weights must be non-negative weights")
            weights = weights / weights.sum()
        tenant = rng.choice(len(weights), size=n_requests, p=weights).astype(
            np.int32
        )

    return ArrivalTrace(
        name=name or f"{pattern}-{mean_rate_qps:g}qps-s{seed}",
        arrival_us=arrival_us,
        tenant=tenant,
        query_index=query_index.astype(np.int32),
        queries=queries,
    )
