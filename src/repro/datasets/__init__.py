"""Synthetic datasets and update workloads (substitutes for SIFT1B/SPACEV1B).

The paper's workloads are characterised by two regimes: SIFT is "almost
uniformly distributed" while SPACEV's "data distribution shifts over time"
(Figure 7 caption). The generators here expose exactly those regimes —
cluster-mass skew and a drift knob — at laptop scale.
"""

from repro.datasets.synthetic import (
    ClusteredDataset,
    make_sift_like,
    make_spacev_like,
)
from repro.datasets.arrival import ArrivalTrace, make_arrival_trace
from repro.datasets.groundtruth import GroundTruthTracker, exact_knn
from repro.datasets.workloads import (
    UpdateEpoch,
    Workload,
    make_workload,
    workload_a,
    workload_b,
    workload_c,
    workload_d,
)

__all__ = [
    "ArrivalTrace",
    "make_arrival_trace",
    "ClusteredDataset",
    "make_sift_like",
    "make_spacev_like",
    "GroundTruthTracker",
    "exact_knn",
    "UpdateEpoch",
    "Workload",
    "make_workload",
    "workload_a",
    "workload_b",
    "workload_c",
    "workload_d",
]
