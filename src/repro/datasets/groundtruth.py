"""Exact k-NN ground truth, static and under streaming updates.

Recall can only be measured against the *current* live set, which changes
every epoch in the update workloads; :class:`GroundTruthTracker` maintains
that live set and recomputes exact answers on demand.
"""

from __future__ import annotations

import numpy as np

from repro.util.distance import pairwise_sq_l2


def exact_knn(
    base_vectors: np.ndarray,
    base_ids: np.ndarray,
    queries: np.ndarray,
    k: int,
    chunk_size: int = 1024,
) -> np.ndarray:
    """Exact top-k ids for each query (brute force, chunked over queries)."""
    base_vectors = np.ascontiguousarray(base_vectors, dtype=np.float32)
    base_ids = np.asarray(base_ids, dtype=np.int64)
    queries = np.ascontiguousarray(queries, dtype=np.float32)
    k = min(k, len(base_vectors))
    out = np.empty((len(queries), k), dtype=np.int64)
    for start in range(0, len(queries), chunk_size):
        stop = min(start + chunk_size, len(queries))
        dists = pairwise_sq_l2(queries[start:stop], base_vectors)
        if k < dists.shape[1]:
            part = np.argpartition(dists, k - 1, axis=1)[:, :k]
            row = np.arange(stop - start)[:, None]
            order = np.argsort(dists[row, part], axis=1, kind="stable")
            top = part[row, order]
        else:
            top = np.argsort(dists, axis=1, kind="stable")[:, :k]
        out[start:stop] = base_ids[top]
    return out


class GroundTruthTracker:
    """Live vector set with exact-kNN evaluation under insert/delete streams."""

    def __init__(self, ids: np.ndarray, vectors: np.ndarray) -> None:
        ids = np.asarray(ids, dtype=np.int64)
        vectors = np.ascontiguousarray(vectors, dtype=np.float32)
        if len(ids) != len(vectors):
            raise ValueError("ids and vectors must have the same length")
        self._vectors: dict[int, np.ndarray] = {
            int(vid): vec for vid, vec in zip(ids, vectors)
        }

    def insert(self, vector_id: int, vector: np.ndarray) -> None:
        self._vectors[int(vector_id)] = np.asarray(vector, dtype=np.float32)

    def delete(self, vector_id: int) -> None:
        self._vectors.pop(int(vector_id), None)

    def apply_epoch(self, epoch) -> None:
        """Apply one workload epoch (delete_ids + insert ids/vectors)."""
        for vid in epoch.delete_ids:
            self.delete(int(vid))
        for vid, vec in zip(epoch.insert_ids, epoch.insert_vectors):
            self.insert(int(vid), vec)

    @property
    def live_count(self) -> int:
        return len(self._vectors)

    def live_ids(self) -> np.ndarray:
        return np.fromiter(self._vectors.keys(), dtype=np.int64, count=len(self._vectors))

    def live_matrix(self) -> tuple[np.ndarray, np.ndarray]:
        ids = self.live_ids()
        vectors = (
            np.vstack([self._vectors[int(v)] for v in ids])
            if len(ids)
            else np.empty((0, 0), dtype=np.float32)
        )
        return ids, vectors

    def ground_truth(self, queries: np.ndarray, k: int) -> np.ndarray:
        ids, vectors = self.live_matrix()
        if len(ids) == 0:
            return np.empty((len(queries), 0), dtype=np.int64)
        return exact_knn(vectors, ids, queries, k)
