"""Incremental navigable small-world graph over posting centroids.

Stand-in for SPTAG: the paper only requires the centroid structure to
answer "k nearest centroids" quickly while supporting inserts (new postings
from splits) and deletes (merged/split-away postings). This implementation
follows the flat-NSW recipe: greedy best-first search from an entry point,
connect each new node to its ``m`` nearest discovered neighbors with
bidirectional edges, prune degrees, and patch the neighborhood when a node
is deleted by cross-linking its former neighbors.

Storage is vectorized for the hot path: centroids live in one contiguous
grow-only float32 matrix with free-slot recycling (mirroring the brute
backend), adjacency is a packed int32 row array per node, and beam search
expands a node's whole unvisited neighbor list with a single
``sq_l2_batch`` call instead of one scalar distance per edge.
"""

from __future__ import annotations

import heapq
import threading

import numpy as np

from repro.centroids.base import CentroidIndex, CentroidSearchResult
from repro.util.distance import as_matrix, as_vector, sq_l2_batch
from repro.util.errors import IndexError_

_INITIAL_CAPACITY = 64
_NO_NEIGHBORS = np.empty(0, dtype=np.int32)


class GraphCentroidIndex(CentroidIndex):
    """NSW-style approximate centroid index with insert/delete support.

    Parameters mirror common HNSW/NSW settings: ``m`` is the target degree,
    ``ef_construction``/``ef_search`` the beam widths for build and query.
    """

    def __init__(
        self,
        dim: int,
        m: int = 12,
        ef_construction: int = 48,
        ef_search: int = 48,
    ) -> None:
        super().__init__(dim)
        if m < 2:
            raise ValueError("m must be at least 2")
        self.m = m
        self.ef_construction = ef_construction
        self.ef_search = ef_search
        self._lock = threading.RLock()
        self._matrix = np.zeros((_INITIAL_CAPACITY, dim), dtype=np.float32)
        self._row_pid = np.full(_INITIAL_CAPACITY, -1, dtype=np.int64)
        self._pid_row: dict[int, int] = {}
        self._free_rows: list[int] = list(range(_INITIAL_CAPACITY - 1, -1, -1))
        # Packed adjacency: per-row int32 array of neighbor rows. Arrays are
        # rebuilt on mutation (degree is O(m)) so searches can gather them
        # straight into the matrix without touching Python sets.
        self._adjacency: list[np.ndarray] = [_NO_NEIGHBORS] * _INITIAL_CAPACITY
        self._entry_row: int | None = None

    # ------------------------------------------------------------------
    # row storage
    # ------------------------------------------------------------------
    def _grow(self) -> None:
        old_cap = len(self._matrix)
        new_cap = old_cap * 2
        matrix = np.zeros((new_cap, self.dim), dtype=np.float32)
        matrix[:old_cap] = self._matrix
        row_pid = np.full(new_cap, -1, dtype=np.int64)
        row_pid[:old_cap] = self._row_pid
        self._matrix = matrix
        self._row_pid = row_pid
        self._adjacency.extend([_NO_NEIGHBORS] * (new_cap - old_cap))
        self._free_rows.extend(range(new_cap - 1, old_cap - 1, -1))

    def _link(self, row: int, other: int) -> None:
        nbrs = self._adjacency[row]
        if other in nbrs:
            return
        self._adjacency[row] = np.append(nbrs, np.int32(other))

    def _unlink(self, row: int, other: int) -> None:
        nbrs = self._adjacency[row]
        self._adjacency[row] = nbrs[nbrs != other]

    # ------------------------------------------------------------------
    # internal search
    # ------------------------------------------------------------------
    def _beam_search(self, query: np.ndarray, ef: int) -> list[tuple[float, int]]:
        """Best-first search; returns (distance, row) pairs, ascending.

        The frontier is vectorized: all unvisited neighbors of the popped
        node are distance-scored with one ``sq_l2_batch`` gather instead of
        a scalar kernel call per edge.
        """
        entry = self._entry_row
        if entry is None:
            return []
        visited = np.zeros(len(self._matrix), dtype=bool)
        visited[entry] = True
        d0 = float(sq_l2_batch(query, self._matrix[entry : entry + 1])[0])
        # candidates: min-heap by distance; results: max-heap (negated).
        candidates: list[tuple[float, int]] = [(d0, entry)]
        results: list[tuple[float, int]] = [(-d0, entry)]
        while candidates:
            dist, row = heapq.heappop(candidates)
            if len(results) >= ef and dist > -results[0][0]:
                break
            nbrs = self._adjacency[row]
            if len(nbrs) == 0:
                continue
            fresh = nbrs[~visited[nbrs]]
            if len(fresh) == 0:
                continue
            visited[fresh] = True
            dists = sq_l2_batch(query, self._matrix[fresh])
            for d, nbr in zip(dists.tolist(), fresh.tolist()):
                if len(results) < ef or d < -results[0][0]:
                    heapq.heappush(candidates, (d, nbr))
                    heapq.heappush(results, (-d, nbr))
                    if len(results) > ef:
                        heapq.heappop(results)
        return sorted((-negd, row) for negd, row in results)

    def _prune_degree(self, row: int) -> None:
        """Keep only the ``m`` closest neighbors of ``row``."""
        nbrs = self._adjacency[row]
        limit = self.m * 2  # allow slack; hard-prune beyond 2m
        if len(nbrs) <= limit:
            return
        dists = sq_l2_batch(self._matrix[row], self._matrix[nbrs])
        keep = nbrs[np.argsort(dists, kind="stable")[: self.m]]
        for dropped in np.setdiff1d(nbrs, keep).tolist():
            self._unlink(dropped, row)
        self._adjacency[row] = keep

    # ------------------------------------------------------------------
    # CentroidIndex API
    # ------------------------------------------------------------------
    def add(self, posting_id: int, centroid: np.ndarray) -> None:
        centroid = as_vector(centroid, self.dim)
        with self._lock:
            if posting_id in self._pid_row:
                raise IndexError_(f"centroid for posting {posting_id} exists")
            nearest = self._beam_search(centroid, self.ef_construction)
            if not self._free_rows:
                self._grow()
            row = self._free_rows.pop()
            self._matrix[row] = centroid
            self._row_pid[row] = posting_id
            self._pid_row[posting_id] = row
            links = [other for _, other in nearest[: self.m]]
            self._adjacency[row] = np.asarray(links, dtype=np.int32)
            for nbr in links:
                self._link(nbr, row)
                self._prune_degree(nbr)
            if self._entry_row is None:
                self._entry_row = row

    def remove(self, posting_id: int) -> None:
        with self._lock:
            row = self._pid_row.pop(posting_id, None)
            if row is None:
                raise IndexError_(f"no centroid for posting {posting_id}")
            nbr_list = self._adjacency[row].tolist()
            self._adjacency[row] = _NO_NEIGHBORS
            self._row_pid[row] = -1
            for nbr in nbr_list:
                self._unlink(nbr, row)
            # Patch the hole: cross-link former neighbors so the graph stays
            # connected (the standard cheap delete repair).
            for i, a in enumerate(nbr_list):
                for b in nbr_list[i + 1 :]:
                    if (
                        len(self._adjacency[a]) < self.m
                        or len(self._adjacency[b]) < self.m
                    ):
                        self._link(a, b)
                        self._link(b, a)
            for nbr in nbr_list:
                self._prune_degree(nbr)
            self._free_rows.append(row)
            if self._entry_row == row:
                next_pid = next(iter(self._pid_row), None)
                self._entry_row = (
                    self._pid_row[next_pid] if next_pid is not None else None
                )

    def search(self, query: np.ndarray, k: int) -> CentroidSearchResult:
        query = as_vector(query, self.dim)
        with self._lock:
            return self._search_locked(query, k)

    def _search_locked(self, query: np.ndarray, k: int) -> CentroidSearchResult:
        if k <= 0 or not self._pid_row:
            return CentroidSearchResult(
                posting_ids=np.empty(0, dtype=np.int64),
                distances=np.empty(0, dtype=np.float32),
            )
        ef = max(self.ef_search, k)
        ordered = self._beam_search(query, ef)[:k]
        return CentroidSearchResult(
            posting_ids=np.array(
                [self._row_pid[row] for _, row in ordered], dtype=np.int64
            ),
            distances=np.array([d for d, _ in ordered], dtype=np.float32),
        )

    def search_batch(self, queries: np.ndarray, k: int) -> list[CentroidSearchResult]:
        """Per-query beam search under one lock acquisition.

        The graph cannot fuse queries into one kernel (each walks its own
        frontier), but every expansion already runs vectorized; results are
        bit-identical to per-query :meth:`search` by construction.
        """
        queries = as_matrix(queries, self.dim)
        with self._lock:
            return [self._search_locked(query, k) for query in queries]

    def get(self, posting_id: int) -> np.ndarray:
        with self._lock:
            row = self._pid_row.get(posting_id)
            if row is None:
                raise IndexError_(f"no centroid for posting {posting_id}")
            return self._matrix[row].copy()

    def __contains__(self, posting_id: int) -> bool:
        with self._lock:
            return posting_id in self._pid_row

    def __len__(self) -> int:
        with self._lock:
            return len(self._pid_row)

    def items(self) -> list[tuple[int, np.ndarray]]:
        with self._lock:
            return [
                (pid, self._matrix[row].copy())
                for pid, row in self._pid_row.items()
            ]

    def memory_bytes(self) -> int:
        with self._lock:
            vec_bytes = len(self._pid_row) * self.dim * 4
            edge_bytes = sum(
                int(self._adjacency[row].nbytes)
                for row in self._pid_row.values()
            )
            return vec_bytes + edge_bytes

    def edge_count(self) -> int:
        """Total directed edges (diagnostics for graph-quality tests)."""
        with self._lock:
            return sum(
                len(self._adjacency[row]) for row in self._pid_row.values()
            )
