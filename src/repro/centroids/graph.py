"""Incremental navigable small-world graph over posting centroids.

Stand-in for SPTAG: the paper only requires the centroid structure to
answer "k nearest centroids" quickly while supporting inserts (new postings
from splits) and deletes (merged/split-away postings). This implementation
follows the flat-NSW recipe: greedy best-first search from an entry point,
connect each new node to its ``m`` nearest discovered neighbors with
bidirectional edges, prune degrees, and patch the neighborhood when a node
is deleted by cross-linking its former neighbors.
"""

from __future__ import annotations

import heapq
import threading

import numpy as np

from repro.centroids.base import CentroidIndex, CentroidSearchResult
from repro.util.distance import as_vector, sq_l2
from repro.util.errors import IndexError_


class GraphCentroidIndex(CentroidIndex):
    """NSW-style approximate centroid index with insert/delete support.

    Parameters mirror common HNSW/NSW settings: ``m`` is the target degree,
    ``ef_construction``/``ef_search`` the beam widths for build and query.
    """

    def __init__(
        self,
        dim: int,
        m: int = 12,
        ef_construction: int = 48,
        ef_search: int = 48,
    ) -> None:
        super().__init__(dim)
        if m < 2:
            raise ValueError("m must be at least 2")
        self.m = m
        self.ef_construction = ef_construction
        self.ef_search = ef_search
        self._lock = threading.RLock()
        self._vectors: dict[int, np.ndarray] = {}
        self._neighbors: dict[int, set[int]] = {}
        self._entry_point: int | None = None

    # ------------------------------------------------------------------
    # internal search
    # ------------------------------------------------------------------
    def _beam_search(self, query: np.ndarray, ef: int) -> list[tuple[float, int]]:
        """Best-first search; returns (distance, node) pairs, ascending."""
        entry = self._entry_point
        if entry is None:
            return []
        visited = {entry}
        d0 = sq_l2(query, self._vectors[entry])
        # candidates: min-heap by distance; results: max-heap (negated).
        candidates: list[tuple[float, int]] = [(d0, entry)]
        results: list[tuple[float, int]] = [(-d0, entry)]
        while candidates:
            dist, node = heapq.heappop(candidates)
            if len(results) >= ef and dist > -results[0][0]:
                break
            for nbr in self._neighbors[node]:
                if nbr in visited:
                    continue
                visited.add(nbr)
                d = sq_l2(query, self._vectors[nbr])
                if len(results) < ef or d < -results[0][0]:
                    heapq.heappush(candidates, (d, nbr))
                    heapq.heappush(results, (-d, nbr))
                    if len(results) > ef:
                        heapq.heappop(results)
        ordered = sorted((-negd, node) for negd, node in results)
        return ordered

    def _prune_degree(self, node: int) -> None:
        """Keep only the ``m`` closest neighbors of ``node``."""
        nbrs = self._neighbors[node]
        limit = self.m * 2  # allow slack; hard-prune beyond 2m
        if len(nbrs) <= limit:
            return
        vec = self._vectors[node]
        ranked = sorted(nbrs, key=lambda other: sq_l2(vec, self._vectors[other]))
        keep = set(ranked[: self.m])
        for dropped in nbrs - keep:
            self._neighbors[dropped].discard(node)
        self._neighbors[node] = keep

    # ------------------------------------------------------------------
    # CentroidIndex API
    # ------------------------------------------------------------------
    def add(self, posting_id: int, centroid: np.ndarray) -> None:
        centroid = as_vector(centroid, self.dim).copy()
        with self._lock:
            if posting_id in self._vectors:
                raise IndexError_(f"centroid for posting {posting_id} exists")
            nearest = self._beam_search(centroid, self.ef_construction)
            self._vectors[posting_id] = centroid
            links = {node for _, node in nearest[: self.m]}
            self._neighbors[posting_id] = set(links)
            for nbr in links:
                self._neighbors[nbr].add(posting_id)
                self._prune_degree(nbr)
            if self._entry_point is None:
                self._entry_point = posting_id

    def remove(self, posting_id: int) -> None:
        with self._lock:
            if posting_id not in self._vectors:
                raise IndexError_(f"no centroid for posting {posting_id}")
            nbrs = self._neighbors.pop(posting_id)
            del self._vectors[posting_id]
            for nbr in nbrs:
                self._neighbors[nbr].discard(posting_id)
            # Patch the hole: cross-link former neighbors so the graph stays
            # connected (the standard cheap delete repair).
            nbr_list = list(nbrs)
            for i, a in enumerate(nbr_list):
                for b in nbr_list[i + 1 :]:
                    if len(self._neighbors[a]) < self.m or len(
                        self._neighbors[b]
                    ) < self.m:
                        self._neighbors[a].add(b)
                        self._neighbors[b].add(a)
            for nbr in nbr_list:
                self._prune_degree(nbr)
            if self._entry_point == posting_id:
                self._entry_point = next(iter(self._vectors), None)

    def search(self, query: np.ndarray, k: int) -> CentroidSearchResult:
        query = as_vector(query, self.dim)
        with self._lock:
            if k <= 0 or not self._vectors:
                return CentroidSearchResult(
                    posting_ids=np.empty(0, dtype=np.int64),
                    distances=np.empty(0, dtype=np.float32),
                )
            ef = max(self.ef_search, k)
            ordered = self._beam_search(query, ef)[:k]
            return CentroidSearchResult(
                posting_ids=np.array([node for _, node in ordered], dtype=np.int64),
                distances=np.array([d for d, _ in ordered], dtype=np.float32),
            )

    def get(self, posting_id: int) -> np.ndarray:
        with self._lock:
            vec = self._vectors.get(posting_id)
            if vec is None:
                raise IndexError_(f"no centroid for posting {posting_id}")
            return vec.copy()

    def __contains__(self, posting_id: int) -> bool:
        with self._lock:
            return posting_id in self._vectors

    def __len__(self) -> int:
        with self._lock:
            return len(self._vectors)

    def items(self) -> list[tuple[int, np.ndarray]]:
        with self._lock:
            return [(pid, vec.copy()) for pid, vec in self._vectors.items()]

    def memory_bytes(self) -> int:
        with self._lock:
            vec_bytes = len(self._vectors) * self.dim * 4
            edge_bytes = sum(len(n) for n in self._neighbors.values()) * 8
            return vec_bytes + edge_bytes

    def edge_count(self) -> int:
        """Total directed edges (diagnostics for graph-quality tests)."""
        with self._lock:
            return sum(len(n) for n in self._neighbors.values())
