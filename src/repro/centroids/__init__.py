"""In-memory centroid navigation index (the paper's SPTAG component).

SPANN/SPFresh keep one centroid per posting in an in-memory ANN structure
used to route queries and inserts to candidate postings. Two interchangeable
implementations are provided behind :class:`CentroidIndex`:

* :class:`BruteForceCentroidIndex` — exact, simple, great for tests and the
  default at reproduction scale;
* :class:`GraphCentroidIndex` — an incremental navigable-small-world graph,
  the scalable stand-in for SPTAG, used by the centroid-index ablation.
"""

from repro.centroids.base import CentroidIndex, CentroidSearchResult
from repro.centroids.brute import BruteForceCentroidIndex
from repro.centroids.graph import GraphCentroidIndex
from repro.centroids.bkt import BKTreeCentroidIndex

__all__ = [
    "CentroidIndex",
    "CentroidSearchResult",
    "BruteForceCentroidIndex",
    "GraphCentroidIndex",
    "BKTreeCentroidIndex",
]


def make_centroid_index(kind: str, dim: int) -> CentroidIndex:
    """Factory keyed by config string: ``"brute"``, ``"graph"``, ``"bkt"``."""
    if kind == "brute":
        return BruteForceCentroidIndex(dim)
    if kind == "graph":
        return GraphCentroidIndex(dim)
    if kind == "bkt":
        return BKTreeCentroidIndex(dim)
    raise ValueError(f"unknown centroid index kind: {kind!r}")
